# Empty dependencies file for test_until_unbounded.
# This may be replaced when dependencies are built.
