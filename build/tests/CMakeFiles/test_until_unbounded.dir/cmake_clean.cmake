file(REMOVE_RECURSE
  "CMakeFiles/test_until_unbounded.dir/test_until_unbounded.cpp.o"
  "CMakeFiles/test_until_unbounded.dir/test_until_unbounded.cpp.o.d"
  "test_until_unbounded"
  "test_until_unbounded.pdb"
  "test_until_unbounded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_until_unbounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
