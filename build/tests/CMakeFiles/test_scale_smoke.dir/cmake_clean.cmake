file(REMOVE_RECURSE
  "CMakeFiles/test_scale_smoke.dir/test_scale_smoke.cpp.o"
  "CMakeFiles/test_scale_smoke.dir/test_scale_smoke.cpp.o.d"
  "test_scale_smoke"
  "test_scale_smoke.pdb"
  "test_scale_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
