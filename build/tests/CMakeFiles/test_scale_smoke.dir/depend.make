# Empty dependencies file for test_scale_smoke.
# This may be replaced when dependencies are built.
