# Empty dependencies file for test_impulse_rewards.
# This may be replaced when dependencies are built.
