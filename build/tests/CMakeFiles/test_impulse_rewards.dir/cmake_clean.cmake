file(REMOVE_RECURSE
  "CMakeFiles/test_impulse_rewards.dir/test_impulse_rewards.cpp.o"
  "CMakeFiles/test_impulse_rewards.dir/test_impulse_rewards.cpp.o.d"
  "test_impulse_rewards"
  "test_impulse_rewards.pdb"
  "test_impulse_rewards[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_impulse_rewards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
