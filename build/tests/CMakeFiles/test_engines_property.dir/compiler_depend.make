# Empty compiler generated dependencies file for test_engines_property.
# This may be replaced when dependencies are built.
