file(REMOVE_RECURSE
  "CMakeFiles/test_engines_property.dir/test_engines_property.cpp.o"
  "CMakeFiles/test_engines_property.dir/test_engines_property.cpp.o.d"
  "test_engines_property"
  "test_engines_property.pdb"
  "test_engines_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engines_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
