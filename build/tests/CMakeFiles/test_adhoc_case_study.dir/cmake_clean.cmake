file(REMOVE_RECURSE
  "CMakeFiles/test_adhoc_case_study.dir/test_adhoc_case_study.cpp.o"
  "CMakeFiles/test_adhoc_case_study.dir/test_adhoc_case_study.cpp.o.d"
  "test_adhoc_case_study"
  "test_adhoc_case_study.pdb"
  "test_adhoc_case_study[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adhoc_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
