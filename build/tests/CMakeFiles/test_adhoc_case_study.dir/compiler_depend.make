# Empty compiler generated dependencies file for test_adhoc_case_study.
# This may be replaced when dependencies are built.
