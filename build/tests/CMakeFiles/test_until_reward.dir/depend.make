# Empty dependencies file for test_until_reward.
# This may be replaced when dependencies are built.
