file(REMOVE_RECURSE
  "CMakeFiles/test_until_reward.dir/test_until_reward.cpp.o"
  "CMakeFiles/test_until_reward.dir/test_until_reward.cpp.o.d"
  "test_until_reward"
  "test_until_reward.pdb"
  "test_until_reward[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_until_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
