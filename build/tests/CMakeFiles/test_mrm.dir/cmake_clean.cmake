file(REMOVE_RECURSE
  "CMakeFiles/test_mrm.dir/test_mrm.cpp.o"
  "CMakeFiles/test_mrm.dir/test_mrm.cpp.o.d"
  "test_mrm"
  "test_mrm.pdb"
  "test_mrm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
