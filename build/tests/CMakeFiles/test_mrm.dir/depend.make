# Empty dependencies file for test_mrm.
# This may be replaced when dependencies are built.
