file(REMOVE_RECURSE
  "CMakeFiles/test_srn_immediate.dir/test_srn_immediate.cpp.o"
  "CMakeFiles/test_srn_immediate.dir/test_srn_immediate.cpp.o.d"
  "test_srn_immediate"
  "test_srn_immediate.pdb"
  "test_srn_immediate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srn_immediate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
