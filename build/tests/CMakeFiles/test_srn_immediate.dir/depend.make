# Empty dependencies file for test_srn_immediate.
# This may be replaced when dependencies are built.
