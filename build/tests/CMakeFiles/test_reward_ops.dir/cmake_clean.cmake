file(REMOVE_RECURSE
  "CMakeFiles/test_reward_ops.dir/test_reward_ops.cpp.o"
  "CMakeFiles/test_reward_ops.dir/test_reward_ops.cpp.o.d"
  "test_reward_ops"
  "test_reward_ops.pdb"
  "test_reward_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reward_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
