# Empty dependencies file for test_reward_ops.
# This may be replaced when dependencies are built.
