file(REMOVE_RECURSE
  "CMakeFiles/test_reward_formulas.dir/test_reward_formulas.cpp.o"
  "CMakeFiles/test_reward_formulas.dir/test_reward_formulas.cpp.o.d"
  "test_reward_formulas"
  "test_reward_formulas.pdb"
  "test_reward_formulas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reward_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
