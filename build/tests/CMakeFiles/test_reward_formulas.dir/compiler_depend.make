# Empty compiler generated dependencies file for test_reward_formulas.
# This may be replaced when dependencies are built.
