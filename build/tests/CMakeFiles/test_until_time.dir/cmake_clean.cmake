file(REMOVE_RECURSE
  "CMakeFiles/test_until_time.dir/test_until_time.cpp.o"
  "CMakeFiles/test_until_time.dir/test_until_time.cpp.o.d"
  "test_until_time"
  "test_until_time.pdb"
  "test_until_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_until_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
