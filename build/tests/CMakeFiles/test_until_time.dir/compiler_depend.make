# Empty compiler generated dependencies file for test_until_time.
# This may be replaced when dependencies are built.
