# Empty dependencies file for test_state_set.
# This may be replaced when dependencies are built.
