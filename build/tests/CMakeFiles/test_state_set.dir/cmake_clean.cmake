file(REMOVE_RECURSE
  "CMakeFiles/test_state_set.dir/test_state_set.cpp.o"
  "CMakeFiles/test_state_set.dir/test_state_set.cpp.o.d"
  "test_state_set"
  "test_state_set.pdb"
  "test_state_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
