# Empty dependencies file for test_weak_until.
# This may be replaced when dependencies are built.
