file(REMOVE_RECURSE
  "CMakeFiles/test_weak_until.dir/test_weak_until.cpp.o"
  "CMakeFiles/test_weak_until.dir/test_weak_until.cpp.o.d"
  "test_weak_until"
  "test_weak_until.pdb"
  "test_weak_until[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weak_until.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
