# Empty compiler generated dependencies file for test_srn.
# This may be replaced when dependencies are built.
