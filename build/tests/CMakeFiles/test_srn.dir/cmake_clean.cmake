file(REMOVE_RECURSE
  "CMakeFiles/test_srn.dir/test_srn.cpp.o"
  "CMakeFiles/test_srn.dir/test_srn.cpp.o.d"
  "test_srn"
  "test_srn.pdb"
  "test_srn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
