# Empty dependencies file for test_globally.
# This may be replaced when dependencies are built.
