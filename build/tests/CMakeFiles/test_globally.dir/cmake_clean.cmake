file(REMOVE_RECURSE
  "CMakeFiles/test_globally.dir/test_globally.cpp.o"
  "CMakeFiles/test_globally.dir/test_globally.cpp.o.d"
  "test_globally"
  "test_globally.pdb"
  "test_globally[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_globally.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
