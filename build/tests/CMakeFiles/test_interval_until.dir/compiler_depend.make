# Empty compiler generated dependencies file for test_interval_until.
# This may be replaced when dependencies are built.
