file(REMOVE_RECURSE
  "CMakeFiles/test_interval_until.dir/test_interval_until.cpp.o"
  "CMakeFiles/test_interval_until.dir/test_interval_until.cpp.o.d"
  "test_interval_until"
  "test_interval_until.pdb"
  "test_interval_until[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_until.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
