# Empty dependencies file for test_checker_basic.
# This may be replaced when dependencies are built.
