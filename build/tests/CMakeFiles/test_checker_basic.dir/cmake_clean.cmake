file(REMOVE_RECURSE
  "CMakeFiles/test_checker_basic.dir/test_checker_basic.cpp.o"
  "CMakeFiles/test_checker_basic.dir/test_checker_basic.cpp.o.d"
  "test_checker_basic"
  "test_checker_basic.pdb"
  "test_checker_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
