file(REMOVE_RECURSE
  "CMakeFiles/test_labelling.dir/test_labelling.cpp.o"
  "CMakeFiles/test_labelling.dir/test_labelling.cpp.o.d"
  "test_labelling"
  "test_labelling.pdb"
  "test_labelling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_labelling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
