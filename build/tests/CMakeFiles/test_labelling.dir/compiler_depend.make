# Empty compiler generated dependencies file for test_labelling.
# This may be replaced when dependencies are built.
