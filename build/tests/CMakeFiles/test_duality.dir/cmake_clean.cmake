file(REMOVE_RECURSE
  "CMakeFiles/test_duality.dir/test_duality.cpp.o"
  "CMakeFiles/test_duality.dir/test_duality.cpp.o.d"
  "test_duality"
  "test_duality.pdb"
  "test_duality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_duality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
