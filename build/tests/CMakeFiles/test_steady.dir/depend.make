# Empty dependencies file for test_steady.
# This may be replaced when dependencies are built.
