file(REMOVE_RECURSE
  "CMakeFiles/test_steady.dir/test_steady.cpp.o"
  "CMakeFiles/test_steady.dir/test_steady.cpp.o.d"
  "test_steady"
  "test_steady.pdb"
  "test_steady[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steady.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
