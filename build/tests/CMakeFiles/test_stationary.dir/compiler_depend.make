# Empty compiler generated dependencies file for test_stationary.
# This may be replaced when dependencies are built.
