# Empty compiler generated dependencies file for test_foxglynn.
# This may be replaced when dependencies are built.
