file(REMOVE_RECURSE
  "CMakeFiles/test_foxglynn.dir/test_foxglynn.cpp.o"
  "CMakeFiles/test_foxglynn.dir/test_foxglynn.cpp.o.d"
  "test_foxglynn"
  "test_foxglynn.pdb"
  "test_foxglynn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_foxglynn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
