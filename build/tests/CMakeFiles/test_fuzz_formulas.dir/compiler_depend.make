# Empty compiler generated dependencies file for test_fuzz_formulas.
# This may be replaced when dependencies are built.
