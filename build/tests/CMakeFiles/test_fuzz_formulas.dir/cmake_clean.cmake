file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_formulas.dir/test_fuzz_formulas.cpp.o"
  "CMakeFiles/test_fuzz_formulas.dir/test_fuzz_formulas.cpp.o.d"
  "test_fuzz_formulas"
  "test_fuzz_formulas.pdb"
  "test_fuzz_formulas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
