# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adhoc_network "/root/repo/build/examples/adhoc_network")
set_tests_properties(example_adhoc_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adhoc_sensitivity "/root/repo/build/examples/adhoc_sensitivity")
set_tests_properties(example_adhoc_sensitivity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiprocessor_performability "/root/repo/build/examples/multiprocessor_performability")
set_tests_properties(example_multiprocessor_performability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_availability "/root/repo/build/examples/cluster_availability" "2")
set_tests_properties(example_cluster_availability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_csrl_cli_usage "/root/repo/build/examples/csrl_cli")
set_tests_properties(example_csrl_cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
