file(REMOVE_RECURSE
  "CMakeFiles/adhoc_network.dir/adhoc_network.cpp.o"
  "CMakeFiles/adhoc_network.dir/adhoc_network.cpp.o.d"
  "adhoc_network"
  "adhoc_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
