# Empty compiler generated dependencies file for csrl_cli.
# This may be replaced when dependencies are built.
