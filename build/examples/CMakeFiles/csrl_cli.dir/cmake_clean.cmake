file(REMOVE_RECURSE
  "CMakeFiles/csrl_cli.dir/csrl_cli.cpp.o"
  "CMakeFiles/csrl_cli.dir/csrl_cli.cpp.o.d"
  "csrl_cli"
  "csrl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csrl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
