# Empty dependencies file for multiprocessor_performability.
# This may be replaced when dependencies are built.
