file(REMOVE_RECURSE
  "CMakeFiles/multiprocessor_performability.dir/multiprocessor_performability.cpp.o"
  "CMakeFiles/multiprocessor_performability.dir/multiprocessor_performability.cpp.o.d"
  "multiprocessor_performability"
  "multiprocessor_performability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocessor_performability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
