file(REMOVE_RECURSE
  "CMakeFiles/adhoc_sensitivity.dir/adhoc_sensitivity.cpp.o"
  "CMakeFiles/adhoc_sensitivity.dir/adhoc_sensitivity.cpp.o.d"
  "adhoc_sensitivity"
  "adhoc_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
