# Empty dependencies file for adhoc_sensitivity.
# This may be replaced when dependencies are built.
