file(REMOVE_RECURSE
  "CMakeFiles/cluster_availability.dir/cluster_availability.cpp.o"
  "CMakeFiles/cluster_availability.dir/cluster_availability.cpp.o.d"
  "cluster_availability"
  "cluster_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
