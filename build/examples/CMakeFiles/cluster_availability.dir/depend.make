# Empty dependencies file for cluster_availability.
# This may be replaced when dependencies are built.
