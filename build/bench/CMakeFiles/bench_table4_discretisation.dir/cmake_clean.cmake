file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_discretisation.dir/bench_table4_discretisation.cpp.o"
  "CMakeFiles/bench_table4_discretisation.dir/bench_table4_discretisation.cpp.o.d"
  "bench_table4_discretisation"
  "bench_table4_discretisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_discretisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
