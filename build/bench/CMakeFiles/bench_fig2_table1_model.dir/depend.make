# Empty dependencies file for bench_fig2_table1_model.
# This may be replaced when dependencies are built.
