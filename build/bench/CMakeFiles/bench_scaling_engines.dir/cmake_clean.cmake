file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_engines.dir/bench_scaling_engines.cpp.o"
  "CMakeFiles/bench_scaling_engines.dir/bench_scaling_engines.cpp.o.d"
  "bench_scaling_engines"
  "bench_scaling_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
