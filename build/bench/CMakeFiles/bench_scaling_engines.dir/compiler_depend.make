# Empty compiler generated dependencies file for bench_scaling_engines.
# This may be replaced when dependencies are built.
