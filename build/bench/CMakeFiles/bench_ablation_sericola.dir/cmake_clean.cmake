file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sericola.dir/bench_ablation_sericola.cpp.o"
  "CMakeFiles/bench_ablation_sericola.dir/bench_ablation_sericola.cpp.o.d"
  "bench_ablation_sericola"
  "bench_ablation_sericola.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sericola.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
