# Empty dependencies file for bench_ablation_sericola.
# This may be replaced when dependencies are built.
