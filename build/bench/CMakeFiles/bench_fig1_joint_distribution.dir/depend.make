# Empty dependencies file for bench_fig1_joint_distribution.
# This may be replaced when dependencies are built.
