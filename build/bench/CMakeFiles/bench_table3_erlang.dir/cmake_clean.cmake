file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_erlang.dir/bench_table3_erlang.cpp.o"
  "CMakeFiles/bench_table3_erlang.dir/bench_table3_erlang.cpp.o.d"
  "bench_table3_erlang"
  "bench_table3_erlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_erlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
