file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sericola.dir/bench_table2_sericola.cpp.o"
  "CMakeFiles/bench_table2_sericola.dir/bench_table2_sericola.cpp.o.d"
  "bench_table2_sericola"
  "bench_table2_sericola.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sericola.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
