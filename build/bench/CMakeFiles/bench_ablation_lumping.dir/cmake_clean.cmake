file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lumping.dir/bench_ablation_lumping.cpp.o"
  "CMakeFiles/bench_ablation_lumping.dir/bench_ablation_lumping.cpp.o.d"
  "bench_ablation_lumping"
  "bench_ablation_lumping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lumping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
