# Empty dependencies file for bench_case_study_properties.
# This may be replaced when dependencies are built.
