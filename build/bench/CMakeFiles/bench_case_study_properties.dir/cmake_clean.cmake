file(REMOVE_RECURSE
  "CMakeFiles/bench_case_study_properties.dir/bench_case_study_properties.cpp.o"
  "CMakeFiles/bench_case_study_properties.dir/bench_case_study_properties.cpp.o.d"
  "bench_case_study_properties"
  "bench_case_study_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_study_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
