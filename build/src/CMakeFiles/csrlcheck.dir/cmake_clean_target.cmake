file(REMOVE_RECURSE
  "libcsrlcheck.a"
)
