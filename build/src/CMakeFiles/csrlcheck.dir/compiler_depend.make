# Empty compiler generated dependencies file for csrlcheck.
# This may be replaced when dependencies are built.
