
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checker.cpp" "src/CMakeFiles/csrlcheck.dir/core/checker.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/checker.cpp.o.d"
  "/root/repo/src/core/engines/discretisation_engine.cpp" "src/CMakeFiles/csrlcheck.dir/core/engines/discretisation_engine.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/engines/discretisation_engine.cpp.o.d"
  "/root/repo/src/core/engines/engine.cpp" "src/CMakeFiles/csrlcheck.dir/core/engines/engine.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/engines/engine.cpp.o.d"
  "/root/repo/src/core/engines/erlang_engine.cpp" "src/CMakeFiles/csrlcheck.dir/core/engines/erlang_engine.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/engines/erlang_engine.cpp.o.d"
  "/root/repo/src/core/engines/sericola_engine.cpp" "src/CMakeFiles/csrlcheck.dir/core/engines/sericola_engine.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/engines/sericola_engine.cpp.o.d"
  "/root/repo/src/core/options.cpp" "src/CMakeFiles/csrlcheck.dir/core/options.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/options.cpp.o.d"
  "/root/repo/src/core/reward_formulas.cpp" "src/CMakeFiles/csrlcheck.dir/core/reward_formulas.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/reward_formulas.cpp.o.d"
  "/root/repo/src/core/reward_ops.cpp" "src/CMakeFiles/csrlcheck.dir/core/reward_ops.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/reward_ops.cpp.o.d"
  "/root/repo/src/core/steady.cpp" "src/CMakeFiles/csrlcheck.dir/core/steady.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/steady.cpp.o.d"
  "/root/repo/src/core/until.cpp" "src/CMakeFiles/csrlcheck.dir/core/until.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/core/until.cpp.o.d"
  "/root/repo/src/ctmc/ctmc.cpp" "src/CMakeFiles/csrlcheck.dir/ctmc/ctmc.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/ctmc/ctmc.cpp.o.d"
  "/root/repo/src/ctmc/foxglynn.cpp" "src/CMakeFiles/csrlcheck.dir/ctmc/foxglynn.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/ctmc/foxglynn.cpp.o.d"
  "/root/repo/src/ctmc/graph.cpp" "src/CMakeFiles/csrlcheck.dir/ctmc/graph.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/ctmc/graph.cpp.o.d"
  "/root/repo/src/ctmc/labelling.cpp" "src/CMakeFiles/csrlcheck.dir/ctmc/labelling.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/ctmc/labelling.cpp.o.d"
  "/root/repo/src/ctmc/stationary.cpp" "src/CMakeFiles/csrlcheck.dir/ctmc/stationary.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/ctmc/stationary.cpp.o.d"
  "/root/repo/src/ctmc/uniformisation.cpp" "src/CMakeFiles/csrlcheck.dir/ctmc/uniformisation.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/ctmc/uniformisation.cpp.o.d"
  "/root/repo/src/io/explicit_format.cpp" "src/CMakeFiles/csrlcheck.dir/io/explicit_format.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/io/explicit_format.cpp.o.d"
  "/root/repo/src/logic/formula.cpp" "src/CMakeFiles/csrlcheck.dir/logic/formula.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/logic/formula.cpp.o.d"
  "/root/repo/src/logic/lexer.cpp" "src/CMakeFiles/csrlcheck.dir/logic/lexer.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/logic/lexer.cpp.o.d"
  "/root/repo/src/logic/parser.cpp" "src/CMakeFiles/csrlcheck.dir/logic/parser.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/logic/parser.cpp.o.d"
  "/root/repo/src/matrix/csr.cpp" "src/CMakeFiles/csrlcheck.dir/matrix/csr.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/matrix/csr.cpp.o.d"
  "/root/repo/src/matrix/solvers.cpp" "src/CMakeFiles/csrlcheck.dir/matrix/solvers.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/matrix/solvers.cpp.o.d"
  "/root/repo/src/matrix/vector_ops.cpp" "src/CMakeFiles/csrlcheck.dir/matrix/vector_ops.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/matrix/vector_ops.cpp.o.d"
  "/root/repo/src/models/adhoc.cpp" "src/CMakeFiles/csrlcheck.dir/models/adhoc.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/models/adhoc.cpp.o.d"
  "/root/repo/src/models/cluster.cpp" "src/CMakeFiles/csrlcheck.dir/models/cluster.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/models/cluster.cpp.o.d"
  "/root/repo/src/models/multiprocessor.cpp" "src/CMakeFiles/csrlcheck.dir/models/multiprocessor.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/models/multiprocessor.cpp.o.d"
  "/root/repo/src/models/synthetic.cpp" "src/CMakeFiles/csrlcheck.dir/models/synthetic.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/models/synthetic.cpp.o.d"
  "/root/repo/src/mrm/diagnostics.cpp" "src/CMakeFiles/csrlcheck.dir/mrm/diagnostics.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/mrm/diagnostics.cpp.o.d"
  "/root/repo/src/mrm/lumping.cpp" "src/CMakeFiles/csrlcheck.dir/mrm/lumping.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/mrm/lumping.cpp.o.d"
  "/root/repo/src/mrm/mrm.cpp" "src/CMakeFiles/csrlcheck.dir/mrm/mrm.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/mrm/mrm.cpp.o.d"
  "/root/repo/src/mrm/transform.cpp" "src/CMakeFiles/csrlcheck.dir/mrm/transform.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/mrm/transform.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/csrlcheck.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/srn/reachability.cpp" "src/CMakeFiles/csrlcheck.dir/srn/reachability.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/srn/reachability.cpp.o.d"
  "/root/repo/src/srn/srn.cpp" "src/CMakeFiles/csrlcheck.dir/srn/srn.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/srn/srn.cpp.o.d"
  "/root/repo/src/util/state_set.cpp" "src/CMakeFiles/csrlcheck.dir/util/state_set.cpp.o" "gcc" "src/CMakeFiles/csrlcheck.dir/util/state_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
