"""Command-line driver for the csrlcheck analyzer.

Usage:
    python3 scripts/analyze/run.py DIR [DIR...] [--report PATH] [--quiet]

Analyzes every .cpp/.hpp under the given directories (or single files),
prints human-readable findings, optionally writes the JSON report, and
exits 1 when any unwaived finding survives.

Paths in findings are reported relative to the common source root so
the layer pass can read the architecture from them: pass `src` (the
usual invocation) and files appear as e.g. matrix/csr.hpp.
"""

import argparse
import sys
from pathlib import Path

from . import passes, report


def gather_files(args_paths):
    """(root, [files]) — root is the directory include paths are
    relative to (`src` itself when `src` is the argument)."""
    files = []
    roots = []
    for arg in args_paths:
        p = Path(arg)
        if p.is_file():
            files.append(p)
            roots.append(p.parent)
        elif p.is_dir():
            roots.append(p)
            files.extend(sorted(
                f for f in p.rglob("*") if f.suffix in passes.CPP_SUFFIXES))
        else:
            print(f"analyze: no such path: {arg}", file=sys.stderr)
            return None, None
    if not roots:
        return None, None
    root = roots[0]
    return root, files


def load_contexts(root, files):
    contexts = {}
    for f in files:
        try:
            rel = f.relative_to(root).as_posix()
        except ValueError:
            rel = f.as_posix()
        contexts[rel] = passes.FileContext(rel, f.read_text(encoding="utf-8"))
    return contexts


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="+", help="directories or files")
    parser.add_argument("--report", metavar="PATH",
                        help="write the JSON findings report here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-finding lines")
    args = parser.parse_args(argv)

    root, files = gather_files(args.paths)
    if root is None:
        return 2
    contexts = load_contexts(root, files)
    findings, hot_report = passes.run_all(contexts)

    open_findings = [f for f in findings if not f.waived]
    waived = [f for f in findings if f.waived]

    if not args.quiet:
        for f in open_findings:
            print(f"{root}/{f.file}:{f.line}: [{f.rule}] {f.message}")

    if args.report:
        report.write_report(
            report.build_report(findings, hot_report, len(files)),
            args.report)

    hot = hot_report
    print(
        f"analyze: {len(files)} files, {len(hot['roots'])} hot roots,"
        f" {len(hot['closure'])} functions in the hot closure,"
        f" {len(open_findings)} open finding(s), {len(waived)} waived",
        file=sys.stderr if open_findings else sys.stdout)
    return 1 if open_findings else 0
