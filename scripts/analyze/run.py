#!/usr/bin/env python3
"""Entry point wrapper so the analyzer runs without installation:

    python3 scripts/analyze/run.py src [--report build/ANALYZE_report.json]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analyze.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
