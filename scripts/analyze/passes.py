"""Analysis passes: legacy lint rules, the layer/include graph, and the
hot-set call-graph closure.

Every pass produces ``Finding(file, line, rule, message)`` records and
honours the one waiver syntax::

    // lint:allow <rule> (<justification>)

trailing on the offending line or on a comment-only line directly above
it.  The justification is mandatory so waivers stay auditable.

Rules
-----
Line-based (ported from the original scripts/lint.py):
  raw-new-delete, float-eq, unordered-iter, pragma-once, obs-name,
  loop-alloc, spmm-blocking — see the per-rule messages for rationale.

Graph-based (new in this framework):
  layer          An #include that points *up* the architecture contract
                 ``obs < util < {logic, matrix} < ctmc < mrm <
                 {srn, sim, io} < {core, models} < service``.  Includes
                 may only point at the same top-level directory or at a
                 strictly lower layer.  Exemption: the prelude headers
                 (util/annotations.hpp, util/mutex.hpp) are includable
                 from anywhere; the analyzer verifies they stay
                 self-contained (system headers and other prelude
                 headers only).
  include-cycle  A cycle in the file-level include graph.
  hot-alloc      An allocation (new / make_unique / make_shared /
                 push_back / emplace_back / resize / reserve /
                 to_string / vector-or-string local) reachable from a
                 hot-set loop body.
  hot-lock       A mutex acquisition (lock_guard / unique_lock /
                 scoped_lock / shared_lock / MutexLock / .lock() /
                 try_lock) reachable from a hot-set loop body.
  hot-throw      A `throw` reachable from a hot-set loop body.
  hot-io         An I/O call (printf family, iostreams, fstreams)
                 reachable from a hot-set loop body.

The hot set is rooted at the kernel entry points by name (multiply*,
pack/unpack_block, apply_block_pendings, accumulate_series, the solver
sweeps, run_batch/run_multi, all_starts_points) and closed over calls to
functions defined in the analyzed tree, resolved same-file, then
same-directory, then unique-global.  Scheduling boundaries
(parallel_for / parallel_reduce) and Workspace arena channels
(acquire / release) are not followed: work distribution and arena
leasing happen outside the measured loops by construction, and each has
its own runtime pin (bit-identical results across thread counts;
allocs_in_loop == 0).
"""

import re
from dataclasses import dataclass

from . import cppmodel

# --------------------------------------------------------------------------
# Shared: findings + waivers
# --------------------------------------------------------------------------

CPP_SUFFIXES = {".cpp", ".hpp"}

WAIVER_RE = re.compile(r"//\s*lint:allow\s+([a-z-]+)\s*\(.+\)")


@dataclass(frozen=True)
class Finding:
    file: str      # repo-relative path
    line: int      # 1-based
    rule: str
    message: str
    waived: bool = False


class FileContext:
    """Everything the passes need about one source file."""

    def __init__(self, rel_path, text):
        self.path = rel_path           # repo-relative, posix separators
        self.text = text
        self.lines = text.splitlines()
        self.model = cppmodel.build_model(rel_path, text)
        self.stream = self.model.stream
        # Lines that carry at least one code token (for "comment-only
        # line above" waiver placement).
        self.code_lines = {t.line for t in self.stream.tokens}
        # Legacy passes work on comment/string-stripped lines.
        self.stripped = []
        in_block = False
        for raw in self.lines:
            code, comment, in_block = strip_comments_and_strings(raw, in_block)
            self.stripped.append((code, comment))

    def waived_at(self, rule, line):
        """Waiver trailing on `line` or on a comment-only line above."""
        if _comment_waives(rule, self.stream.comments.get(line, "")):
            return True
        above = line - 1
        return above in self.stream.comments and \
            above not in self.code_lines and \
            _comment_waives(rule, self.stream.comments[above])


def _comment_waives(rule, comment_text):
    m = WAIVER_RE.search(comment_text)
    return m is not None and m.group(1) == rule


def finding(ctx, line, rule, message):
    return Finding(ctx.path, line, rule, message,
                   waived=ctx.waived_at(rule, line))


# --------------------------------------------------------------------------
# Legacy line-based passes (ported from scripts/lint.py)
# --------------------------------------------------------------------------

EXACT_SENTINELS = {"0.0", "1.0", "0.", "1.", ".0"}
FLOAT_LITERAL = r"-?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?"
FLOAT_EQ_RE = re.compile(
    r"(?:[=!]=\s*(" + FLOAT_LITERAL + r"))|(?:(" + FLOAT_LITERAL + r")\s*[=!]=)"
)
RAW_NEW_RE = re.compile(r"\bnew\b\s+[A-Za-z_:<]")
RAW_DELETE_RE = re.compile(r"\bdelete\b\s*(\[\s*\])?\s*[A-Za-z_(]")
DELETED_FN_RE = re.compile(r"=\s*delete\s*[;,)]")
OBS_SITE_RE = re.compile(r"\bCSRL_(?:SPAN|COUNT|GAUGE|HIST)\s*\(\s*\"([^\"]*)\"")
OBS_NAME_RE = re.compile(r"^[a-z0-9_]+(/[a-z0-9_]+)*$")
LOOP_ALLOC_DIRS = {"matrix", "ctmc"}
LOOP_HEAD_RE = re.compile(r"\b(?:for|while)\s*\(")
VECTOR_DOUBLE_DECL_RE = re.compile(r"\bstd::vector<double>\s+\w+")
SPMM_BLOCKING_DIRS = {"engines", "ctmc"}
ONE_RHS_PRODUCT_RE = re.compile(r"\.\s*multiply(?:_left)?(?:_fused)?\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;:)]+:\s*(\w+)\s*\)")


def strip_comments_and_strings(line, in_block_comment):
    """Blank out comment and string-literal contents, preserving column
    positions, and return (code, trailing_comment, still_in_block)."""
    out = []
    comment = ""
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block_comment = False
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            comment = line[i:]
            out.append(" " * (n - i))
            break
        if ch == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
            continue
        if ch in "\"'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), comment, in_block_comment


def loop_pattern_lines(stripped_lines, pattern):
    """Line numbers (1-based) of `pattern` matches inside for/while loop
    bodies, tracked by brace depth across the file."""
    hits = []
    depth = 0
    body_depths = []
    awaiting_body = False
    head_parens = 0
    for lineno, (code, _comment) in enumerate(stripped_lines, start=1):
        head_starts = {m.start() for m in LOOP_HEAD_RE.finditer(code)}
        decl_starts = {m.start() for m in pattern.finditer(code)}
        for pos, ch in enumerate(code):
            if pos in head_starts:
                awaiting_body = True
                head_parens = 0
            if pos in decl_starts and body_depths:
                hits.append(lineno)
            if ch == "(":
                if awaiting_body:
                    head_parens += 1
            elif ch == ")":
                if awaiting_body and head_parens > 0:
                    head_parens -= 1
            elif ch == "{":
                depth += 1
                if awaiting_body and head_parens == 0:
                    body_depths.append(depth)
                    awaiting_body = False
            elif ch == ";":
                if awaiting_body and head_parens == 0:
                    awaiting_body = False
            elif ch == "}":
                if body_depths and body_depths[-1] == depth:
                    body_depths.pop()
                depth -= 1
    return hits


def _is_sentinel(literal):
    return literal.lstrip("-").rstrip("fF") in EXACT_SENTINELS


def legacy_pass(ctx):
    """All line-based rules on one file."""
    findings = []
    parts = set(ctx.path.split("/"))

    if ctx.path.endswith(".hpp") and "#pragma once" not in ctx.text:
        findings.append(finding(ctx, 1, "pragma-once",
                                "header lacks #pragma once"))

    unordered_names = set()
    for code, _comment in ctx.stripped:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))

    if LOOP_ALLOC_DIRS & parts:
        for line in loop_pattern_lines(ctx.stripped, VECTOR_DOUBLE_DECL_RE):
            findings.append(finding(
                ctx, line, "loop-alloc",
                "std::vector<double> constructed inside a loop body"
                " (hoist it or lease from a Workspace arena)"))

    if SPMM_BLOCKING_DIRS & parts:
        for line in loop_pattern_lines(ctx.stripped, ONE_RHS_PRODUCT_RE):
            findings.append(finding(
                ctx, line, "spmm-blocking",
                "one-RHS product inside a loop body (group the right-hand"
                " sides through the blocked multi-RHS kernels of"
                " matrix/spmm.hpp, or waive with the loop's single-vector"
                " justification)"))

    for lineno, (code, _comment) in enumerate(ctx.stripped, start=1):
        if RAW_NEW_RE.search(code):
            findings.append(finding(ctx, lineno, "raw-new-delete",
                                    "raw `new` expression"))
        if RAW_DELETE_RE.search(code) and not DELETED_FN_RE.search(code):
            findings.append(finding(ctx, lineno, "raw-new-delete",
                                    "raw `delete` expression"))

        for m in FLOAT_EQ_RE.finditer(code):
            literal = m.group(1) or m.group(2)
            if not _is_sentinel(literal):
                findings.append(finding(
                    ctx, lineno, "float-eq",
                    f"exact comparison with float literal {literal}"))

        raw = ctx.lines[lineno - 1]
        for m in OBS_SITE_RE.finditer(raw):
            if not code.startswith("CSRL_", m.start()):
                continue  # the site text sits inside a comment
            name = m.group(1)
            if not OBS_NAME_RE.match(name):
                findings.append(finding(
                    ctx, lineno, "obs-name",
                    f'observability name "{name}" violates'
                    " ^[a-z0-9_]+(/[a-z0-9_]+)*$"))

        for m in RANGE_FOR_RE.finditer(code):
            if m.group(1) in unordered_names:
                findings.append(finding(
                    ctx, lineno, "unordered-iter",
                    f"iteration over unordered container `{m.group(1)}`"
                    " (unspecified order)"))

    return findings


# --------------------------------------------------------------------------
# Layer / include-graph pass
# --------------------------------------------------------------------------

# The architecture contract.  Equal layer numbers are siblings: they may
# not include each other (only same-directory or strictly lower).
LAYERS = {
    "obs": 0,
    "util": 1,
    "logic": 2,
    "matrix": 2,
    "ctmc": 3,
    "mrm": 4,
    "srn": 5,
    "sim": 5,
    "io": 5,
    "core": 6,
    "models": 6,
    "service": 7,
}

# Prelude headers: includable from any layer (even below util), provided
# they stay self-contained — system headers and other prelude headers
# only.  The layer pass verifies that containment on every run.
PRELUDE = {"util/annotations.hpp", "util/mutex.hpp"}


def _top_dir(rel_path):
    """First path component of a repo-relative include ("matrix" for
    matrix/csr.hpp), or None for flat paths."""
    if "/" in rel_path:
        return rel_path.split("/", 1)[0]
    return None


def layer_pass(contexts):
    """Upward-include and cycle findings over the whole file set.

    `contexts` maps repo-relative path (relative to src/, e.g.
    "matrix/csr.hpp") to FileContext.
    """
    findings = []

    # Prelude self-containment: everything may include them only because
    # they pull in nothing project-local beyond each other.
    for prelude in sorted(PRELUDE):
        ctx = contexts.get(prelude)
        if ctx is None:
            continue
        for line, inc, is_system in ctx.model.includes:
            if not is_system and inc not in PRELUDE:
                findings.append(finding(
                    ctx, line, "layer",
                    f'prelude header includes project header "{inc}" —'
                    " prelude headers must stay self-contained"
                    " (system headers and other prelude headers only)"))

    for path, ctx in sorted(contexts.items()):
        src_top = _top_dir(path)
        if src_top not in LAYERS:
            continue
        for line, inc, is_system in ctx.model.includes:
            if is_system:
                continue
            if inc in PRELUDE:
                continue
            inc_top = _top_dir(inc)
            if inc_top is None or inc_top not in LAYERS:
                continue
            if inc_top == src_top:
                continue
            if LAYERS[inc_top] < LAYERS[src_top]:
                continue
            direction = "upward" if LAYERS[inc_top] > LAYERS[src_top] \
                else "sibling"
            findings.append(finding(
                ctx, line, "layer",
                f'{direction} include "{inc}" from layer'
                f" {src_top}:{LAYERS[src_top]} to {inc_top}:{LAYERS[inc_top]}"
                " — the architecture contract allows same-directory or"
                " strictly lower-layer includes only"))

    # File-level include cycles (DFS, iterative).
    graph = {
        path: [inc for _line, inc, is_sys in ctx.model.includes
               if not is_sys and inc in contexts]
        for path, ctx in contexts.items()
    }
    state = {}  # path -> 1 (on stack) | 2 (done)
    for start in sorted(graph):
        if state.get(start):
            continue
        stack = [(start, iter(graph[start]))]
        state[start] = 1
        chain = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if state.get(nxt) == 1:
                    cycle = chain[chain.index(nxt):] + [nxt]
                    ctx = contexts[node]
                    inc_line = next(
                        (ln for ln, inc, _s in ctx.model.includes
                         if inc == nxt), 1)
                    findings.append(finding(
                        ctx, inc_line, "include-cycle",
                        "include cycle: " + " -> ".join(cycle)))
                    continue
                if state.get(nxt) == 2:
                    continue
                state[nxt] = 1
                chain.append(nxt)
                stack.append((nxt, iter(graph[nxt])))
                advanced = True
                break
            if not advanced:
                state[node] = 2
                chain.pop()
                stack.pop()
    return findings


# --------------------------------------------------------------------------
# Hot-set closure pass
# --------------------------------------------------------------------------

# Kernel entry points, by unqualified function name.  Anything matching
# becomes a hot root; its loop bodies (and the full bodies of everything
# those loops call, transitively) are the hot region.
HOT_ROOT_PATTERNS = [
    re.compile(p) for p in (
        r"^multiply(_left)?(_block)?(_fused)?$",
        r"^multiply(_left)?_active$",
        r"^multiply_multi",
        r"^apply_block_pendings$",
        r"^pack_block$",
        r"^unpack_block$",
        r"^accumulate_series$",
        r"^jacobi_sweep$",
        r"^gauss_seidel_sweep$",
        r"^bicgstab$",
        r"^solve_fixpoint$",
        r"^power_stationary$",
        r"^run_batch$",
        r"^run_multi$",
        r"^all_starts_points$",
        r"^sign_states$",
    )
]

# Call boundaries the closure does not cross:
#   parallel_for / parallel_reduce — scheduling; work distribution sits
#     outside the measured loops and has its own runtime pin
#     (bit-identical results across thread counts);
#   acquire / release — Workspace arena leasing; covered by the
#     allocs_in_loop == 0 pin via Workspace::LoopGuard;
#   poisson_weights — Fox-Glynn window construction; runs once per
#     horizon window in the setup loops *before* the LoopGuard-pinned
#     series iteration starts, O(right-left) per window, amortised over
#     the steps-times-nnz series work.  Its own call sites (the
#     windows.push_back setup loops) remain visible to the detectors.
CLOSURE_BOUNDARIES = {"parallel_for", "parallel_reduce", "acquire",
                      "release", "poisson_weights"}

ALLOC_CALLS = {"make_unique", "make_shared", "push_back", "emplace_back",
               "resize", "reserve", "to_string"}
LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock",
              "MutexLock"}
LOCK_CALLS = {"lock", "try_lock", "lock_shared"}
IO_NAMES = {"printf", "fprintf", "sprintf", "snprintf", "puts", "putchar",
            "fputs", "fopen", "fclose", "fread", "fwrite", "getline",
            "cout", "cerr", "clog", "ofstream", "ifstream", "fstream",
            "stringstream", "ostringstream"}
CONTAINER_DECL_TYPES = {"vector", "string", "deque", "map", "set",
                        "unordered_map", "unordered_set"}


def _is_hot_root(fn):
    return any(p.match(fn.name) for p in HOT_ROOT_PATTERNS)


def _resolve_callee(call, caller, index_by_file, index_by_dir, index_global):
    """Same file, then same directory, then unique global; None when the
    name is unknown or ambiguous (heuristic stays conservative: it never
    guesses between overload homes)."""
    if call.name in CLOSURE_BOUNDARIES:
        return None
    fns = index_by_file.get((caller.file, call.name))
    if fns:
        return fns[0]
    caller_dir = caller.file.rsplit("/", 1)[0] if "/" in caller.file else ""
    fns = index_by_dir.get((caller_dir, call.name))
    if fns and len({f.file for f in fns}) == 1:
        return fns[0]
    fns = index_global.get(call.name)
    if fns and len(fns) == 1:
        return fns[0]
    return None


class HotRegion:
    """One contiguous hot token range inside a function."""

    def __init__(self, fn, ctx, start, end, why):
        self.fn = fn
        self.ctx = ctx
        self.start = start
        self.end = end
        self.why = why  # "loop body" | "called from hot region"


def hot_pass(contexts):
    """Closure + detectors.  Returns (findings, report_dict)."""
    # Indexes over every function definition in the tree.
    index_by_file = {}
    index_by_dir = {}
    index_global = {}
    fn_ctx = {}
    for path, ctx in contexts.items():
        for fn in ctx.model.functions:
            fn_ctx[id(fn)] = ctx
            index_by_file.setdefault((path, fn.name), []).append(fn)
            d = path.rsplit("/", 1)[0] if "/" in path else ""
            index_by_dir.setdefault((d, fn.name), []).append(fn)
            index_global.setdefault(fn.name, []).append(fn)

    roots = [fn for fns in index_global.values() for fn in fns
             if _is_hot_root(fn)]

    # Seed: loop bodies of every root.
    regions = []
    hot_fns = {}  # qualname@file -> reason
    for fn in roots:
        hot_fns[f"{fn.file}:{fn.qualname}"] = "root"
        for start, end in fn.loops:
            regions.append(HotRegion(fn, fn_ctx[id(fn)], start, end,
                                     "loop body"))

    # Close over calls: a function called from a hot region is hot in
    # its entirety (it runs once per loop iteration).
    worklist = list(regions)
    edges = []
    while worklist:
        region = worklist.pop()
        code = region.ctx.stream.code
        for call in cppmodel.extract_calls(code, region.start, region.end):
            callee = _resolve_callee(call, region.fn, index_by_file,
                                     index_by_dir, index_global)
            if callee is None:
                continue
            key = f"{callee.file}:{callee.qualname}"
            edges.append({
                "from": f"{region.fn.file}:{region.fn.qualname}",
                "to": key,
                "line": call.line,
            })
            if key in hot_fns:
                continue
            hot_fns[key] = f"called from {region.fn.qualname}"
            new_region = HotRegion(callee, fn_ctx[id(callee)],
                                   callee.body[0], callee.body[1],
                                   "called from hot region")
            regions.append(new_region)
            worklist.append(new_region)

    findings = _hot_detectors(regions)
    report = {
        "roots": sorted(f"{fn.file}:{fn.qualname}" for fn in roots),
        "closure": {k: v for k, v in sorted(hot_fns.items())},
        "edges": edges,
        "regions": len(regions),
    }
    return findings, report


def _hot_detectors(regions):
    findings = []
    seen = set()  # (file, line, rule) — overlapping regions dedup

    def emit(ctx, line, rule, message, fn):
        key = (ctx.path, line, rule)
        if key in seen:
            return
        seen.add(key)
        findings.append(finding(
            ctx, line, rule,
            f"{message} inside the hot set (reached via {fn.qualname})"))

    for region in regions:
        ctx = region.ctx
        code = ctx.stream.code
        n = len(code)
        i = region.start
        while i <= region.end and i < n:
            t = code[i]
            if t.kind == "ident":
                is_call = cppmodel.call_opens_at(code, i,
                                                 min(region.end, n - 1))
                prev = code[i - 1] if i > 0 else None
                is_member = prev is not None and prev.kind == "punct" and \
                    prev.text in (".", "->")

                if t.text == "new":
                    emit(ctx, t.line, "hot-alloc", "`new` expression",
                         region.fn)
                elif t.text == "throw":
                    emit(ctx, t.line, "hot-throw", "`throw` statement",
                         region.fn)
                elif is_call and t.text in ALLOC_CALLS:
                    emit(ctx, t.line, "hot-alloc",
                         f"allocating call `{t.text}()`", region.fn)
                elif is_call and is_member and t.text in LOCK_CALLS:
                    emit(ctx, t.line, "hot-lock",
                         f"mutex acquisition `.{t.text}()`", region.fn)
                elif t.text in LOCK_TYPES and not is_member:
                    emit(ctx, t.line, "hot-lock",
                         f"lock object `{t.text}`", region.fn)
                elif t.text in IO_NAMES and not is_member:
                    emit(ctx, t.line, "hot-io",
                         f"I/O facility `{t.text}`", region.fn)
                elif t.text in CONTAINER_DECL_TYPES and not is_member:
                    line = _container_decl(code, i, region.end)
                    if line is not None:
                        emit(ctx, line, "hot-alloc",
                             f"`std::{t.text}` local constructed in the"
                             " hot region", region.fn)
            i += 1
    return findings


def _container_decl(code, i, end):
    """Detect `std::vector<...> name` / `std::string name` declarations
    at code[i] (i points at the container ident).  Returns the line of
    the declared name, or None when the ident is a type mention only
    (parameter, template argument, return type use, member access)."""
    if i < 2 or code[i - 1].text != "::" or code[i - 2].text != "std":
        return None
    j = i + 1
    if j <= end and code[j].kind == "punct" and code[j].text == "<":
        depth = 0
        while j <= end:
            t = code[j]
            if t.kind == "punct":
                if t.text == "<":
                    depth += 1
                elif t.text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif t.text == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                elif t.text in (";", "{"):
                    return None
            j += 1
        j += 1
    if j > end or code[j].kind != "ident":
        return None
    name_tok = code[j]
    after = code[j + 1] if j + 1 <= end else None
    if after is None or after.kind != "punct":
        return None
    if after.text in (";", "=", "(", "{"):
        # `std::vector<double> tmp;` / `... tmp(n);` / `... tmp = ...;`
        # A reference/pointer binding (`std::vector<double>& v = ...`)
        # never reaches here: `&`/`*` break the ident-after-type shape.
        return name_tok.line
    return None


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def run_all(contexts):
    """Run every pass.  Returns (findings, hot_report) where findings
    includes waived records (filtered by the caller for exit status but
    kept in the JSON report for auditability)."""
    findings = []
    for _path, ctx in sorted(contexts.items()):
        findings.extend(legacy_pass(ctx))
    findings.extend(layer_pass(contexts))
    hot_findings, hot_report = hot_pass(contexts)
    findings.extend(hot_findings)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, hot_report
