"""Lightweight C++ declaration/call extractor over the token stream.

Builds, per file, the list of function definitions (qualified name, body
token range, the token ranges of every for/while/do loop body inside it)
and, per token range, the calls it contains.  Heuristic by design — no
template instantiation, no overload resolution — but tuned to be exact
on this codebase's style and conservative where it guesses:

  * a function definition is `name ( params ) [quals] { body }` at
    namespace/class scope, with constructor init lists walked back
    through so a member initialiser is never mistaken for the function
    name;
  * lambdas are part of their enclosing function's body (their bodies
    belong to whatever loop/function region encloses them textually);
  * a call is `name (` where name is not a keyword, not an ALL_CAPS
    macro, and not preceded by `new` handling covered separately by the
    detectors.
"""

from dataclasses import dataclass, field

from . import tokens as tok

# Keywords that look like `ident (` but are not calls or function names.
CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "return",
    "catch", "sizeof", "alignof", "alignas", "decltype", "noexcept",
    "static_assert", "throw", "new", "delete", "co_await", "co_yield",
    "co_return", "requires", "typeid", "goto", "default",
}
CAST_KEYWORDS = {"static_cast", "dynamic_cast", "const_cast",
                 "reinterpret_cast"}
NOT_FUNCTION_NAMES = CONTROL_KEYWORDS | CAST_KEYWORDS | {
    "operator", "template", "namespace", "class", "struct", "enum",
    "union", "public", "private", "protected", "try", "using", "typedef",
    "constexpr", "consteval", "constinit", "inline", "static", "extern",
    "friend", "virtual", "explicit", "mutable", "volatile", "const",
    "typename", "concept",
}


@dataclass
class FunctionDef:
    name: str          # unqualified, e.g. "multiply_left"
    qualname: str      # e.g. "CsrMatrix::multiply_left"
    file: str          # repo-relative path
    line: int
    body: tuple        # (start, end) token indices of the {...} body,
                       # inclusive of the braces, in stream.code
    loops: list = field(default_factory=list)  # [(start, end)] loop bodies


@dataclass(frozen=True)
class Call:
    name: str          # last name component at the call site
    line: int
    is_member: bool    # preceded by `.` or `->` (method call)


@dataclass
class SourceModel:
    path: str
    stream: object     # TokenStream
    functions: list    # [FunctionDef]
    includes: list     # [(line, path, is_system)]


def match_paren_back(code, close_idx):
    """Index of the `(` matching code[close_idx] == `)`, or -1."""
    depth = 0
    i = close_idx
    while i >= 0:
        t = code[i]
        if t.kind == "punct":
            if t.text == ")":
                depth += 1
            elif t.text == "(":
                depth -= 1
                if depth == 0:
                    return i
        i -= 1
    return -1


def match_brace_forward(code, open_idx):
    """Index of the `}` matching code[open_idx] == `{`, or len(code)-1."""
    depth = 0
    for i in range(open_idx, len(code)):
        t = code[i]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i
    return len(code) - 1


def _function_head(code, open_idx):
    """Try to read a function head ending at the `{` at open_idx.
    Returns (name, qualname, name_idx) or None."""
    i = open_idx - 1
    # Skip trailing qualifiers and specifiers between `)` and `{`:
    # const/noexcept/override/final/mutable/-> trailing return/attributes,
    # and constructor init lists (`: member(expr), member{expr}`).
    while i >= 0:
        t = code[i]
        if t.kind == "ident" and t.text in (
                "const", "noexcept", "override", "final", "mutable",
                "try", "volatile", "&&"):
            i -= 1
            continue
        if t.kind == "punct" and t.text in ("&", "&&"):
            i -= 1
            continue
        if t.kind == "punct" and t.text == ")":
            # Either the parameter list or a noexcept(...)/init-list call.
            open_paren = match_paren_back(code, i)
            if open_paren <= 0:
                return None
            before = code[open_paren - 1]
            if before.kind == "ident" and before.text == "noexcept":
                i = open_paren - 2
                continue
            if before.kind == "ident" and before.text not in CONTROL_KEYWORDS:
                # Could be the function name, or a member initialiser /
                # base-class initialiser in a ctor init list.  Walk the
                # name back to see what precedes the full ident chain.
                name_idx = open_paren - 1
                chain_start = name_idx
                while chain_start >= 2 and \
                        code[chain_start - 1].kind == "punct" and \
                        code[chain_start - 1].text == "::" and \
                        code[chain_start - 2].kind == "ident":
                    chain_start -= 2
                prev = code[chain_start - 1] if chain_start >= 1 else None
                if prev is not None and prev.kind == "punct" and \
                        prev.text in (",", ":") :
                    # Init-list item: keep walking back past it.
                    i = chain_start - 2
                    continue
                return _name_from_chain(code, name_idx)
            if before.kind == "punct" and before.text in (">", "]"):
                # Operator template or lambda — not a named function we
                # track; treat the body as part of the enclosing region.
                return None
            return None
        if t.kind == "punct" and t.text in (">",):
            return None
        # `= default`-style or stray tokens: give up.
        return None
    return None


def _name_from_chain(code, name_idx):
    name_tok = code[name_idx]
    if name_tok.kind != "ident" or name_tok.text in NOT_FUNCTION_NAMES:
        return None
    parts = [name_tok.text]
    i = name_idx
    while i >= 2 and code[i - 1].kind == "punct" and \
            code[i - 1].text == "::" and code[i - 2].kind == "ident":
        parts.insert(0, code[i - 2].text)
        i -= 2
    # A plain declaration like `struct Foo {` never reaches here (no
    # parens); destructors (`~Foo`) keep the tilde out of the name chain,
    # which is fine — they are not hot roots or hot callees by name.
    return name_tok.text, "::".join(parts), name_idx


def extract_functions(stream, path):
    """All function definitions with their loop regions."""
    code = stream.code
    functions = []
    body_end = -1  # end of the innermost function body being skipped
    i = 0
    ends = []  # stack of function body end indices
    while i < len(code):
        t = code[i]
        if ends and i > ends[-1]:
            ends.pop()
        if t.kind == "punct" and t.text == "{":
            if not ends:
                head = _function_head(code, i)
                if head is not None:
                    name, qualname, _ = head
                    end = match_brace_forward(code, i)
                    fn = FunctionDef(name=name, qualname=qualname, file=path,
                                     line=t.line, body=(i, end))
                    fn.loops = _loop_regions(code, i, end)
                    functions.append(fn)
                    ends.append(end)
        i += 1
    return functions


def _loop_regions(code, body_start, body_end):
    """Token ranges of every for/while/do loop body inside [start, end].
    Braced bodies span their braces; brace-less bodies span up to the
    terminating `;` of the single statement."""
    regions = []
    i = body_start
    while i <= body_end:
        t = code[i]
        if t.kind == "ident" and t.text in ("for", "while"):
            j = i + 1
            if j <= body_end and code[j].kind == "punct" and \
                    code[j].text == "(":
                depth = 0
                while j <= body_end:
                    c = code[j]
                    if c.kind == "punct":
                        if c.text == "(":
                            depth += 1
                        elif c.text == ")":
                            depth -= 1
                            if depth == 0:
                                break
                    j += 1
                k = j + 1
                if k <= body_end:
                    if code[k].kind == "punct" and code[k].text == "{":
                        end = match_brace_forward(code, k)
                        regions.append((k, min(end, body_end)))
                    elif not (code[k].kind == "punct" and code[k].text == ";"):
                        end = _statement_end(code, k, body_end)
                        regions.append((k, end))
        elif t.kind == "ident" and t.text == "do":
            k = i + 1
            if k <= body_end and code[k].kind == "punct" and \
                    code[k].text == "{":
                end = match_brace_forward(code, k)
                regions.append((k, min(end, body_end)))
        i += 1
    return regions


def _statement_end(code, start, limit):
    depth = 0
    for i in range(start, limit + 1):
        t = code[i]
        if t.kind == "punct":
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            elif t.text == ";" and depth == 0:
                return i
    return limit


def call_opens_at(code, i, limit):
    """True when the ident at code[i] heads a call: `name(` directly, or
    `name<...>(` with a short, well-formed template argument list (the
    scan aborts on statement boundaries and logical operators, so a
    comparison like `a < b && (c)` is not misread as a call)."""
    j = i + 1
    if j > limit:
        return False
    if code[j].kind == "punct" and code[j].text == "(":
        return True
    if code[j].kind != "punct" or code[j].text != "<":
        return False
    depth = 0
    for k in range(j, min(j + 30, limit + 1)):
        t = code[k]
        if t.kind != "punct":
            continue
        if t.text == "<":
            depth += 1
        elif t.text == ">":
            depth -= 1
            if depth == 0:
                nxt = code[k + 1] if k + 1 <= limit else None
                return nxt is not None and nxt.kind == "punct" and \
                    nxt.text == "("
        elif t.text == ">>":
            depth -= 2
            if depth <= 0:
                nxt = code[k + 1] if k + 1 <= limit else None
                return nxt is not None and nxt.kind == "punct" and \
                    nxt.text == "("
        elif t.text in (";", "{", "}", "&&", "||"):
            return False
    return False


def extract_calls(code, start, end):
    """Call sites in code[start:end+1] (inclusive range)."""
    calls = []
    for i in range(start, min(end, len(code) - 1) + 1):
        t = code[i]
        if t.kind != "ident" or i + 1 > end:
            continue
        if not call_opens_at(code, i, end):
            continue
        name = t.text
        if name in CONTROL_KEYWORDS or name in CAST_KEYWORDS:
            continue
        if name.isupper() or (name.startswith("CSRL_") and name.isupper()):
            continue  # macro invocation; audited separately
        prev = code[i - 1] if i > start else None
        is_member = prev is not None and prev.kind == "punct" and \
            prev.text in (".", "->")
        # `Type name(args)` declarations are indistinguishable from calls
        # here; the detectors treat constructor-style uses by name, which
        # is the conservative direction for a purity check.
        calls.append(Call(name=name, line=t.line, is_member=is_member))
    return calls


def build_model(path, text):
    stream = tok.tokenize(text)
    functions = extract_functions(stream, path)
    return SourceModel(path=path, stream=stream, functions=functions,
                       includes=stream.includes())
