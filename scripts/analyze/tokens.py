"""C++ tokenizer for the csrlcheck analyzer.

Good enough to be trustworthy on this codebase, honest about what it is
not: a lexer, not a preprocessor or a parser.  It understands

  * line and block comments (kept aside for waiver lookup),
  * string/char literals including encoding prefixes and raw strings
    (``R"delim(...)delim"`` with arbitrary delimiters, newlines inside),
  * preprocessor directives with backslash continuations, folded into
    single ``pp`` tokens (so a multi-line macro body never leaks tokens
    into the code stream),
  * ``#if 0`` / ``#if 1`` conditional regions: tokens under an
    ``#if 0`` arm are skipped; any condition the lexer cannot decide is
    treated as active (conservative for a linter: both arms analyzed),
  * identifiers, numeric literals (hex, floats, digit separators,
    suffixes) and multi-character operators.

Every token carries its 1-based source line.  Comment text is collected
into a ``line -> text`` map used by the waiver pass.
"""

import re
from dataclasses import dataclass

# Token kinds: "ident", "num", "str", "chr", "punct", "pp".
@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# Hex/binary/octal/decimal integers and floats, with ' separators and
# size/FP suffixes.  pp-numbers like 1e+5 are handled by the [eEpP] tail.
NUM_RE = re.compile(
    r"(?:0[xX][0-9a-fA-F']+|0[bB][01']+|(?:\d[\d']*)?\.?\d[\d']*)"
    r"(?:[eEpP][-+]?\d+)?[a-zA-Z]*"
)
# Longest-match multi-char operators the extractor cares about; all other
# punctuation is emitted one character at a time.
MULTI_OPS = (
    "<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "++", "--", ".*",
)
STRING_PREFIX_RE = re.compile(r'(?:u8|[uUL])?R?"')
RAW_STRING_RE = re.compile(r'(?:u8|[uUL])?R"([^()\\ \t\n]*)\(')


class Tokenizer:
    """One-shot tokenizer: Tokenizer().tokenize(text) -> TokenStream."""

    def tokenize(self, text):
        tokens = []
        comments = {}  # line -> concatenated comment text on that line
        i = 0
        line = 1
        n = len(text)
        at_line_start = True  # only whitespace seen since the last newline
        # Stack of booleans for #if nesting: True = tokens active.
        cond_stack = []

        def active():
            return all(cond_stack)

        def note_comment(ln, body):
            comments[ln] = comments.get(ln, "") + body

        while i < n:
            ch = text[i]

            if ch == "\n":
                line += 1
                i += 1
                at_line_start = True
                continue
            if ch in " \t\r\f\v":
                i += 1
                continue

            # Comments -------------------------------------------------
            if text.startswith("//", i):
                end = text.find("\n", i)
                if end < 0:
                    end = n
                note_comment(line, text[i:end])
                i = end
                continue
            if text.startswith("/*", i):
                end = text.find("*/", i + 2)
                if end < 0:
                    end = n
                else:
                    end += 2
                body = text[i:end]
                note_comment(line, body.split("\n", 1)[0])
                line += body.count("\n")
                i = end
                # A block comment does not produce code on its line, so
                # line-start state survives it (matters for `/**/ #if`).
                continue

            # Preprocessor ---------------------------------------------
            if ch == "#" and at_line_start:
                start = i
                start_line = line
                while i < n:
                    end = text.find("\n", i)
                    if end < 0:
                        end = n
                        break
                    # Honour backslash-newline continuations.
                    j = end - 1
                    while j >= i and text[j] in " \t\r":
                        j -= 1
                    if j >= i and text[j] == "\\":
                        # line advances via directive.count("\n") below.
                        i = end + 1
                        continue
                    break
                directive = text[start:end]
                line += directive.count("\n")
                i = end
                self._apply_conditional(directive, cond_stack)
                if active():
                    tokens.append(Token("pp", directive, start_line))
                at_line_start = True
                continue

            at_line_start = False

            # Raw strings ----------------------------------------------
            m = RAW_STRING_RE.match(text, i)
            if m:
                closer = ")" + m.group(1) + '"'
                end = text.find(closer, m.end())
                if end < 0:
                    end = n
                else:
                    end += len(closer)
                body = text[i:end]
                if active():
                    tokens.append(Token("str", body, line))
                line += body.count("\n")
                i = end
                continue

            # Ordinary string literals ---------------------------------
            m = STRING_PREFIX_RE.match(text, i)
            if m and not m.group(0).endswith('R"'):
                end = self._scan_quoted(text, m.end() - 1, '"')
                if active():
                    tokens.append(Token("str", text[i:end], line))
                line += text.count("\n", i, end)
                i = end
                continue

            # Char literals.  A bare ' after an identifier or number is a
            # digit separator context already consumed by NUM_RE, so any
            # ' reached here opens a literal.
            if ch == "'":
                end = self._scan_quoted(text, i, "'")
                if active():
                    tokens.append(Token("chr", text[i:end], line))
                i = end
                continue

            # Identifiers and numbers ----------------------------------
            m = IDENT_RE.match(text, i)
            if m:
                if active():
                    tokens.append(Token("ident", m.group(0), line))
                i = m.end()
                continue
            if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
                m = NUM_RE.match(text, i)
                if m:
                    if active():
                        tokens.append(Token("num", m.group(0), line))
                    i = m.end()
                    continue

            # Operators / punctuation ----------------------------------
            for op in MULTI_OPS:
                if text.startswith(op, i):
                    if active():
                        tokens.append(Token("punct", op, line))
                    i += len(op)
                    break
            else:
                if active():
                    tokens.append(Token("punct", ch, line))
                i += 1

        return TokenStream(tokens, comments)

    @staticmethod
    def _scan_quoted(text, start, quote):
        """Index one past the closing quote (start points at the opener)."""
        i = start + 1
        n = len(text)
        while i < n:
            c = text[i]
            if c == "\\":
                i += 2
                continue
            if c == quote or c == "\n":  # unterminated: stop at newline
                return i + 1 if c == quote else i
            i += 1
        return n

    @staticmethod
    def _apply_conditional(directive, cond_stack):
        """Track #if/#else/#endif activity.  Only literal `#if 0` and
        `#if 1` are decided; every other condition is taken as active on
        both arms (a linter must not silently skip real code)."""
        stripped = re.sub(r"^#\s*", "#", directive.strip())
        m = re.match(r"#(if|ifdef|ifndef|elif|else|endif)\b\s*(.*)", stripped,
                     re.DOTALL)
        if not m:
            return
        kind, rest = m.group(1), m.group(2).strip()
        if kind in ("if", "ifdef", "ifndef"):
            if kind == "if" and rest.split("//")[0].strip() == "0":
                cond_stack.append(False)
            else:
                cond_stack.append(True)
        elif kind == "elif":
            if cond_stack:
                # Active only if no earlier arm was (we only track the
                # literal-0 case, where the first arm was inactive).
                cond_stack[-1] = not cond_stack[-1] and \
                    rest.split("//")[0].strip() != "0"
        elif kind == "else":
            if cond_stack:
                cond_stack[-1] = not cond_stack[-1]
        elif kind == "endif":
            if cond_stack:
                cond_stack.pop()


class TokenStream:
    """Tokenizer output: the token list, the comment map, and the code
    view (pp directives filtered out) the extractor works on."""

    def __init__(self, tokens, comments):
        self.tokens = tokens
        self.comments = comments
        self.code = [t for t in tokens if t.kind != "pp"]

    def includes(self):
        """(line, path, is_system) for every #include directive."""
        out = []
        for t in self.tokens:
            if t.kind != "pp":
                continue
            m = re.match(r'#\s*include\s+([<"])([^>"]+)[>"]', t.text)
            if m:
                out.append((t.line, m.group(2), m.group(1) == "<"))
        return out


def tokenize(text):
    return Tokenizer().tokenize(text)
