"""Machine-readable findings report.

The `analyze` CMake target writes this JSON to build/ANALYZE_report.json
and CI archives it, so the schema is part of the tool's contract:

{
  "tool": "csrlcheck-analyze",
  "version": 1,
  "files": <int>,                       # files analyzed
  "findings": [                         # every finding, waived or not
    {"file": str, "line": int, "rule": str,
     "message": str, "waived": bool}, ...
  ],
  "summary": {"<rule>": {"open": int, "waived": int}, ...},
  "hot_set": {                          # closure proof for the hot pass
    "roots": [ "file:qualname", ... ],
    "closure": { "file:qualname": "<why hot>", ... },
    "edges": [ {"from":..., "to":..., "line":...}, ... ],
    "regions": <int>,
    "violations": {"hot-alloc": int, "hot-lock": int,
                   "hot-throw": int, "hot-io": int}   # open only
  }
}

Exit-status contract: open (unwaived) findings and only those fail the
run; waived findings stay in the report so the waiver inventory is
auditable from CI artifacts alone.
"""

import json

HOT_RULES = ("hot-alloc", "hot-lock", "hot-throw", "hot-io")


def build_report(findings, hot_report, file_count):
    summary = {}
    for f in findings:
        entry = summary.setdefault(f.rule, {"open": 0, "waived": 0})
        entry["waived" if f.waived else "open"] += 1
    hot = dict(hot_report)
    hot["violations"] = {
        rule: sum(1 for f in findings if f.rule == rule and not f.waived)
        for rule in HOT_RULES
    }
    return {
        "tool": "csrlcheck-analyze",
        "version": 1,
        "files": file_count,
        "findings": [
            {"file": f.file, "line": f.line, "rule": f.rule,
             "message": f.message, "waived": f.waived}
            for f in findings
        ],
        "summary": {rule: summary[rule] for rule in sorted(summary)},
        "hot_set": hot,
    }


def write_report(report, path):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
