"""csrlcheck static analyzer (DESIGN.md section 3g).

A call-graph-aware architecture analyzer replacing the bare-regex
scripts/lint.py: a real C++ tokenizer plus a lightweight declaration/call
extractor feed

  * an include/layer graph that enforces the architecture contract
    (no cycles, no upward includes — see passes.LAYERS), and
  * a heuristic call graph that computes the transitive closure of the
    hot set (SpMV/SpMM kernels, solver sweeps, uniformisation series,
    Sericola/discretisation sweeps) and statically rejects any reachable
    allocation, mutex acquisition, throw or I/O call — the static
    counterpart of the runtime allocs_in_loop == 0 pins.

The legacy lint rules (raw-new-delete, float-eq, unordered-iter,
pragma-once, obs-name, loop-alloc, spmm-blocking) are passes of the same
framework: one analyzer, one `// lint:allow <rule> (<justification>)`
waiver syntax, one machine-readable findings report.

Entry points: `python3 scripts/analyze/run.py src` (or the `analyze`
CMake target, which also writes build/ANALYZE_report.json).
"""

__all__ = ["tokens", "cppmodel", "passes", "report", "cli"]
