"""The gate policies: hard (exact counters) and soft (wall-time bands).

Hard gates treat a counter missing on one side as zero, so a newly
instrumented counter gates from its first appearance and a counter that
disappears shows up as an improvement (prompting a baseline refresh)
rather than vanishing from the comparison.
"""

import statistics
from dataclasses import dataclass

# Thread-pool dispatch statistics depend on the host's thread count and
# scheduling; everything else the kernels count is structural and
# bit-identical across machines (DESIGN.md section 3h).
HARD_EXCLUDE_PREFIXES = ("pool/",)

# 1.4826 * MAD estimates sigma consistently for normal noise; k sigmas
# around the history median is the soft band.
MAD_SIGMA = 1.4826
DEFAULT_K = 4.0
# Fallback when the ledger history is too short for a MAD band: a fixed
# relative tolerance around the baseline median.  Wide on purpose —
# single-shot wall-clock comparisons on shared hosts are that noisy.
DEFAULT_REL_TOLERANCE = 0.50
# A MAD band narrower than this fraction of the median is treated as
# this fraction: timer quantisation can make MAD collapse to ~0 for
# fast workloads, and a zero-width band would flag every run.
MIN_REL_BAND = 0.10


@dataclass
class Finding:
    """One gate outcome worth reporting."""

    kind: str      # hard-regression | hard-improvement | soft-regression
    metric: str
    baseline: float
    current: float
    detail: str = ""

    @property
    def is_hard_failure(self):
        return self.kind == "hard-regression"


def is_hard_counter(name):
    return not name.startswith(HARD_EXCLUDE_PREFIXES)


def hard_gate(baseline_counters, current_counters):
    """Exact comparison over the union of hard counters.

    Returns findings sorted by metric name; equal counters produce
    nothing.  Any increase is a hard failure."""
    findings = []
    names = set(baseline_counters) | set(current_counters)
    for name in sorted(names):
        if not is_hard_counter(name):
            continue
        base = baseline_counters.get(name, 0)
        cur = current_counters.get(name, 0)
        if cur == base:
            continue
        if cur > base:
            findings.append(Finding(
                "hard-regression", name, base, cur,
                f"deterministic counter increased {base} -> {cur}"))
        else:
            findings.append(Finding(
                "hard-improvement", name, base, cur,
                f"counter decreased {base} -> {cur}; "
                "refresh bench/baselines/ to lock in the win"))
    return findings


def soft_band(label, baseline_median, history_medians,
              k=DEFAULT_K, rel_tolerance=DEFAULT_REL_TOLERANCE,
              min_history=3):
    """(upper_bound_ms, description) for one workload's wall time."""
    history = [m for m in (history_medians or []) if m is not None]
    if len(history) >= min_history:
        centre = statistics.median(history)
        band = max(k * MAD_SIGMA * mad_of(history), MIN_REL_BAND * centre)
        return centre + band, (
            f"median {centre:.3f} ms over {len(history)} ledger entries, "
            f"MAD band +-{band:.3f} ms (k={k:g})")
    upper = baseline_median * (1.0 + rel_tolerance)
    return upper, (
        f"baseline {baseline_median:.3f} ms + {rel_tolerance:.0%} fixed "
        f"tolerance (history too short for a MAD band)")


def mad_of(values):
    med = statistics.median(values)
    return statistics.median(abs(v - med) for v in values)


def soft_gate(baseline_medians, current_medians, history=None,
              k=DEFAULT_K, rel_tolerance=DEFAULT_REL_TOLERANCE):
    """Wall-time comparison per workload label.

    `history` maps label -> [median_ms, ...] from the ledger (may be
    None or partial).  Workloads present only on one side are skipped:
    wall gates are advisory and a label mismatch is a config change,
    not a perf signal."""
    findings = []
    history = history or {}
    for label in sorted(set(baseline_medians) & set(current_medians)):
        base = baseline_medians[label]
        cur = current_medians[label]
        upper, description = soft_band(
            label, base, history.get(label), k=k,
            rel_tolerance=rel_tolerance)
        if cur > upper:
            findings.append(Finding(
                "soft-regression", f"reps/{label}/median_ms", base, cur,
                f"median {cur:.3f} ms exceeds the noise band "
                f"({description})"))
    return findings
