#!/usr/bin/env python3
"""Entry point wrapper so the perf gates run without installation:

    python3 scripts/perf/run.py baseline-check bench/baselines build
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from perf.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
