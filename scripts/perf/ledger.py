"""Loading and normalising bench reports and ledger histories.

Every consumer in this package works on one shape — `Report` — no
matter which on-disk document it came from.  The loaders accept:

  * csrl-bench-obs-v1       (BENCH_<name>_obs.json, written by BenchObs)
  * csrl-run-report-v1      (<stem>.report.json, written by ReportScope)
  * csrl-bench-parallel-scaling-v1 (reps + records, no counters)
  * csrl-bench-ledger-v1    (one BENCH_history.jsonl line; the embedded
                             "report" document is unwrapped and the
                             stamp kept as `Report.stamp`)

Unknown schemas fail loudly: silently gating on a misparsed document
would read as "no regression" when nothing was checked.
"""

import json
from dataclasses import dataclass, field

KNOWN_SCHEMAS = (
    "csrl-bench-obs-v1",
    "csrl-run-report-v1",
    "csrl-bench-parallel-scaling-v1",
)
LEDGER_SCHEMA = "csrl-bench-ledger-v1"


@dataclass
class Report:
    """One normalised bench/run report."""

    name: str                      # bench or engine name
    source: str                    # path (plus line number for ledgers)
    schema: str
    counters: dict = field(default_factory=dict)   # name -> int
    gauges: dict = field(default_factory=dict)     # name -> float
    histograms: dict = field(default_factory=dict) # name -> stats dict
    reps: list = field(default_factory=list)       # [{name, median_ms, ...}]
    wall_seconds: float = None
    stamp: dict = field(default_factory=dict)      # ledger stamp, if any

    def rep_medians(self):
        """{workload label: median_ms} for the soft gates."""
        return {
            r["name"]: r["median_ms"]
            for r in self.reps
            if "name" in r and "median_ms" in r
        }


class ReportError(ValueError):
    """A document could not be parsed as any known report schema."""


def normalise(doc, source):
    """dict -> Report, unwrapping a ledger line if necessary."""
    if not isinstance(doc, dict):
        raise ReportError(f"{source}: expected a JSON object")
    stamp = {}
    if doc.get("schema") == LEDGER_SCHEMA:
        stamp = {
            "bench": doc.get("bench"),
            "git_sha": doc.get("git_sha"),
            "build": doc.get("build", {}),
            "hardware": doc.get("hardware", {}),
        }
        doc = doc.get("report")
        if not isinstance(doc, dict):
            raise ReportError(f"{source}: ledger line carries no report")
    schema = doc.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise ReportError(f"{source}: unknown report schema {schema!r}")
    return Report(
        name=doc.get("bench") or doc.get("engine") or "unknown",
        source=source,
        schema=schema,
        counters=dict(doc.get("counters", {})),
        gauges=dict(doc.get("gauges", {})),
        histograms=dict(doc.get("histograms", {})),
        reps=list(doc.get("reps", [])),
        wall_seconds=doc.get("wall_seconds"),
        stamp=stamp,
    )


def load_report(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return normalise(doc, str(path))


def load_ledger(path):
    """All parseable entries of a BENCH_history.jsonl, in file order.

    Blank lines are skipped; a malformed line raises (a corrupt ledger
    should be noticed, not silently shortened)."""
    reports = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            reports.append(normalise(doc, f"{path}:{lineno}"))
    return reports
