"""Report-level diffing and the PERF_report.json / markdown emitters."""

import json
from dataclasses import dataclass, field

from . import gates


@dataclass
class DiffResult:
    """The gate outcomes of one baseline/current report pair."""

    name: str
    baseline: str
    current: str
    findings: list = field(default_factory=list)

    @property
    def hard_failures(self):
        return [f for f in self.findings if f.is_hard_failure]

    @property
    def soft_failures(self):
        return [f for f in self.findings if f.kind == "soft-regression"]

    @property
    def improvements(self):
        return [f for f in self.findings if f.kind == "hard-improvement"]


def diff_reports(baseline, current, history=None, k=gates.DEFAULT_K,
                 rel_tolerance=gates.DEFAULT_REL_TOLERANCE):
    """Run both gates over a normalised baseline/current report pair.

    `history` maps workload label -> [median_ms, ...] from the ledger
    for MAD bands; None falls back to the fixed tolerance."""
    findings = gates.hard_gate(baseline.counters, current.counters)
    findings.extend(gates.soft_gate(
        baseline.rep_medians(), current.rep_medians(), history=history,
        k=k, rel_tolerance=rel_tolerance))
    return DiffResult(
        name=current.name, baseline=baseline.source,
        current=current.source, findings=findings)


def passed(results, strict_wall=False):
    if any(r.hard_failures for r in results):
        return False
    if strict_wall and any(r.soft_failures for r in results):
        return False
    return True


def build_report(results, mode, strict_wall=False):
    """The csrl-perf-report-v1 document (what CI archives)."""
    return {
        "schema": "csrl-perf-report-v1",
        "mode": mode,
        "strict_wall": strict_wall,
        "passed": passed(results, strict_wall=strict_wall),
        "pairs": [
            {
                "name": r.name,
                "baseline": r.baseline,
                "current": r.current,
                "hard_failures": len(r.hard_failures),
                "soft_failures": len(r.soft_failures),
                "improvements": len(r.improvements),
                "findings": [
                    {
                        "kind": f.kind,
                        "metric": f.metric,
                        "baseline": f.baseline,
                        "current": f.current,
                        "detail": f.detail,
                    }
                    for f in r.findings
                ],
            }
            for r in results
        ],
    }


def write_report(report, path):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=1, sort_keys=False)
        f.write("\n")


_KIND_LABELS = {
    "hard-regression": "HARD FAIL",
    "hard-improvement": "improved",
    "soft-regression": "soft warn",
}


def markdown_table(results):
    """One markdown table over all pairs; '' when everything is clean."""
    rows = []
    for r in results:
        for f in r.findings:
            rows.append((r.name, _KIND_LABELS.get(f.kind, f.kind),
                         f.metric, _format(f.baseline), _format(f.current),
                         f.detail))
    if not rows:
        return ""
    lines = [
        "| bench | outcome | metric | baseline | current | detail |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(
            str(c).replace("|", "\\|") for c in row) + " |")
    return "\n".join(lines)


def _format(value):
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))
