"""Command-line driver for the perf gates.

Usage:
    python3 scripts/perf/run.py diff BASELINE CURRENT [options]
    python3 scripts/perf/run.py baseline-check BASELINE_DIR CURRENT_DIR
    python3 scripts/perf/run.py ledger HISTORY_FILE [--bench NAME]

All modes print a markdown table of findings (nothing when clean),
write the csrl-perf-report-v1 document (--report, default
PERF_report.json), and exit 1 when a hard counter regressed — or when
a wall-time band is exceeded under --strict-wall.  Exit 2 means the
inputs themselves were unusable.

`diff` compares two report files (BENCH_*_obs.json, *.report.json, or
a single ledger line saved to a file); `--history BENCH_history.jsonl`
supplies ledger context so the wall-time bands are MAD-based instead
of the fixed fallback tolerance.  `baseline-check` pairs the
BENCH_*_obs.json files of two directories by filename — what CI runs
against bench/baselines/.  `ledger` checks the newest entry of each
bench in a history file against its own past.
"""

import argparse
import sys
from pathlib import Path

from . import diff, gates, ledger


def history_for(reports, bench_name):
    """{workload label: [median_ms, ...]} over a bench's ledger entries."""
    history = {}
    for report in reports:
        if report.name != bench_name:
            continue
        for label, median in report.rep_medians().items():
            history.setdefault(label, []).append(median)
    return history


def cmd_diff(args):
    baseline = ledger.load_report(args.baseline)
    current = ledger.load_report(args.current)
    history = None
    if args.history:
        entries = ledger.load_ledger(args.history)
        history = history_for(entries, current.name)
    result = diff.diff_reports(baseline, current, history=history,
                               k=args.k, rel_tolerance=args.rel_tolerance)
    return [result]


def cmd_baseline_check(args):
    baseline_dir = Path(args.baseline_dir)
    current_dir = Path(args.current_dir)
    pairs = []
    for base_path in sorted(baseline_dir.glob("BENCH_*_obs.json")):
        cur_path = current_dir / base_path.name
        if not cur_path.is_file():
            print(f"perf: no current report for {base_path.name}; "
                  "that bench was not run, skipping",
                  file=sys.stderr)
            continue
        pairs.append((base_path, cur_path))
    if not pairs:
        print(f"perf: no BENCH_*_obs.json pairs between {baseline_dir} "
              f"and {current_dir}", file=sys.stderr)
        return None
    results = []
    for base_path, cur_path in pairs:
        baseline = ledger.load_report(base_path)
        current = ledger.load_report(cur_path)
        results.append(diff.diff_reports(
            baseline, current, k=args.k,
            rel_tolerance=args.rel_tolerance))
    return results


def cmd_ledger(args):
    entries = ledger.load_ledger(args.history_file)
    if args.bench:
        entries = [e for e in entries if e.name == args.bench]
    by_bench = {}
    for entry in entries:
        by_bench.setdefault(entry.name, []).append(entry)
    results = []
    for name in sorted(by_bench):
        runs = by_bench[name]
        if len(runs) < 2:
            print(f"perf: bench {name}: only {len(runs)} ledger entry, "
                  "nothing to compare against", file=sys.stderr)
            continue
        history = {}
        for run in runs[:-1]:
            for label, median in run.rep_medians().items():
                history.setdefault(label, []).append(median)
        results.append(diff.diff_reports(
            runs[-2], runs[-1], history=history, k=args.k,
            rel_tolerance=args.rel_tolerance))
    if not results:
        print("perf: no bench in the ledger has two entries to compare",
              file=sys.stderr)
        return None
    return results


def add_common(parser):
    parser.add_argument("--report", metavar="PATH",
                        default="PERF_report.json",
                        help="write the JSON outcome here "
                        "(default: %(default)s; 'none' disables)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write the markdown table here")
    parser.add_argument("--strict-wall", action="store_true",
                        help="wall-time band violations fail the check "
                        "instead of warning")
    parser.add_argument("--k", type=float, default=gates.DEFAULT_K,
                        help="MAD band width in sigma estimates "
                        "(default: %(default)s)")
    parser.add_argument("--rel-tolerance", type=float,
                        default=gates.DEFAULT_REL_TOLERANCE,
                        help="fallback relative wall tolerance when the "
                        "history is short (default: %(default)s)")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="perf", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("diff", help="compare two report files")
    p.add_argument("baseline")
    p.add_argument("current")
    p.add_argument("--history", metavar="LEDGER",
                   help="BENCH_history.jsonl for MAD wall bands")
    add_common(p)
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("baseline-check",
                       help="pair BENCH_*_obs.json files of two directories")
    p.add_argument("baseline_dir")
    p.add_argument("current_dir")
    add_common(p)
    p.set_defaults(func=cmd_baseline_check)

    p = sub.add_parser("ledger",
                       help="check each bench's newest ledger entry "
                       "against its history")
    p.add_argument("history_file")
    p.add_argument("--bench", help="restrict to one bench name")
    add_common(p)
    p.set_defaults(func=cmd_ledger)

    args = parser.parse_args(argv)

    try:
        results = args.func(args)
    except (OSError, ValueError) as error:
        print(f"perf: {error}", file=sys.stderr)
        return 2
    if results is None:
        return 2

    table = diff.markdown_table(results)
    if table:
        print(table)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as f:
            f.write((table or "No findings.") + "\n")
    if args.report and args.report != "none":
        diff.write_report(
            diff.build_report(results, args.command,
                              strict_wall=args.strict_wall),
            args.report)

    hard = sum(len(r.hard_failures) for r in results)
    soft = sum(len(r.soft_failures) for r in results)
    improved = sum(len(r.improvements) for r in results)
    ok = diff.passed(results, strict_wall=args.strict_wall)
    print(f"perf: {len(results)} pair(s) compared, {hard} hard "
          f"regression(s), {soft} wall-time warning(s), {improved} "
          f"improvement(s): {'PASS' if ok else 'FAIL'}",
          file=sys.stderr if not ok else sys.stdout)
    return 0 if ok else 1
