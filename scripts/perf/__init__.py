"""csrlcheck perf ledger tooling (DESIGN.md section 3h).

Diffs bench reports and ledger histories so performance regressions are
caught mechanically instead of by eyeballing BENCH_*.json:

  * **Hard gates** cover the deterministic counters (SpMV/SpMM call and
    cost-model counts, rows_active, allocs_in_loop, sweep and iteration
    counters).  The kernels are bit-identical across thread counts by
    construction, so these counters must match exactly between runs of
    the same code — any increase is a regression and fails the check,
    any decrease is an improvement that warrants refreshing the
    committed baselines.  Only the thread-pool dispatch statistics
    (``pool/``) are excluded: how work splits between inline runs and
    queued tasks legitimately depends on the host.

  * **Soft gates** cover wall time (the per-workload medians under the
    report's ``reps`` key).  Wall time is noisy on shared CI hosts, so
    violations warn by default and only fail under ``--strict-wall``.
    The noise band comes from the ledger history when at least
    ``MIN_HISTORY`` medians are available (median +- k * 1.4826 * MAD,
    the consistent sigma estimate), and falls back to a fixed relative
    tolerance around the baseline otherwise.

Inputs: ``BENCH_*_obs.json`` documents (schema csrl-bench-obs-v1),
``*.report.json`` run reports (csrl-run-report-v1), ledger lines
(csrl-bench-ledger-v1, unwrapped automatically), and the
parallel-scaling document (csrl-bench-parallel-scaling-v1).

Entry points: ``python3 scripts/perf/run.py diff A B``,
``... baseline-check BASELINE_DIR CURRENT_DIR``, ``... ledger FILE``
(or the ``perf`` CMake target, which runs baseline-check against
``bench/baselines/``).  Every mode writes PERF_report.json
(csrl-perf-report-v1) and prints a markdown table.
"""

__all__ = ["ledger", "gates", "diff", "cli"]

MIN_HISTORY = 3
