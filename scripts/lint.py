#!/usr/bin/env python3
"""Project-specific lint pass for csrlcheck.

Checks C++ sources under the given directories for patterns that
clang-tidy does not catch (or that we want enforced even where clang-tidy
is not installed):

  raw-new-delete     Raw `new` / `delete` expressions.  All ownership in
                     this codebase goes through containers and
                     std::unique_ptr; a raw allocation is either a leak
                     waiting to happen or a missing make_unique.
                     (`= delete` declarations are not allocations.)

  float-eq           `==` / `!=` with a floating-point literal other than
                     the exact sentinels 0.0 and 1.0.  Those two are
                     legitimate: 0.0 marks structurally absent entries
                     (absorbing states, skipped work) and 1.0 marks exact
                     point masses — both are assigned, never computed.
                     Any other literal comparison is almost certainly a
                     tolerance bug; use std::abs(a - b) <= tol.

  unordered-iter     Range-for over a std::unordered_map/set declared in
                     the same file.  Iteration order is unspecified and
                     varies across libstdc++ versions, so anything that
                     feeds results, output, or numerical accumulation from
                     such a loop is a nondeterminism bug.  Iterate a
                     sorted copy or an index vector instead.

  pragma-once        Headers must start their include-guard life with
                     `#pragma once`.

  obs-name           The name literal of a CSRL_SPAN / CSRL_COUNT /
                     CSRL_GAUGE / CSRL_HIST site must match
                     ^[a-z0-9_]+(/[a-z0-9_]+)*$ (the subsystem/engine/
                     phase scheme of src/obs/obs.hpp).  Reports and
                     traces are keyed by these names, so a stray space,
                     capital or dot silently forks the aggregation.

  loop-alloc         A `std::vector<double>` declared inside a loop body
                     in src/matrix/ or src/ctmc/ — the hot-path layers
                     whose iteration loops are contractually
                     allocation-free (util/workspace.hpp).  A vector
                     constructed per iteration reallocates on every pass;
                     hoist it out of the loop or lease it from the
                     caller's Workspace arena.

  spmm-blocking      A one-RHS product call (.multiply( / .multiply_left(
                     / .multiply_fused( / .multiply_left_fused() inside a
                     loop body in src/core/engines/ or src/ctmc/.  A
                     product issued per loop iteration usually means a
                     batch of right-hand sides is re-streaming the matrix
                     once per vector; group them through the blocked
                     multi-RHS kernels (matrix/spmm.hpp) instead.  Waive
                     individually where a loop genuinely has only one
                     vector in flight per pass (power iterations,
                     width-1 fallbacks).

A finding can be waived for one line with a comment
`// lint:allow <rule> (<justification>)` — trailing on the line itself
or, where indentation leaves no room, on a comment-only line directly
above it.  The justification is required so waivers stay auditable.

Usage: scripts/lint.py DIR [DIR...]
Exit status: 0 when clean, 1 when any finding survives.
"""

import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".hpp"}

WAIVER_RE = re.compile(r"//\s*lint:allow\s+([a-z-]+)\s*\(.+\)")

# Sentinel literals that may be compared exactly (see module docstring).
EXACT_SENTINELS = {"0.0", "1.0", "0.", "1.", ".0"}

FLOAT_LITERAL = r"-?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?"
FLOAT_EQ_RE = re.compile(
    r"(?:[=!]=\s*(" + FLOAT_LITERAL + r"))|(?:(" + FLOAT_LITERAL + r")\s*[=!]=)"
)

NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` is still new; see below
RAW_NEW_RE = re.compile(r"\bnew\b\s+[A-Za-z_:<]")
RAW_DELETE_RE = re.compile(r"\bdelete\b\s*(\[\s*\])?\s*[A-Za-z_(]")
DELETED_FN_RE = re.compile(r"=\s*delete\s*[;,)]")

# Observability sites: the first argument must be a literal matching the
# naming scheme.  Matched against the raw line (string contents are
# blanked in the stripped code); the stripped code is consulted at the
# match position to skip occurrences inside comments.
OBS_SITE_RE = re.compile(r"\bCSRL_(?:SPAN|COUNT|GAUGE|HIST)\s*\(\s*\"([^\"]*)\"")
OBS_NAME_RE = re.compile(r"^[a-z0-9_]+(/[a-z0-9_]+)*$")

# Hot-path layers whose iteration loops must stay allocation-free; the
# loop-alloc rule only fires on files inside these directories.
LOOP_ALLOC_DIRS = {"matrix", "ctmc"}

LOOP_HEAD_RE = re.compile(r"\b(?:for|while)\s*\(")
VECTOR_DOUBLE_DECL_RE = re.compile(r"\bstd::vector<double>\s+\w+")

# Layers whose loops should batch products through the blocked SpMM
# kernels; the spmm-blocking rule only fires on files inside these
# directories.  The pattern deliberately misses multiply_block /
# multiply_active — those are already the batched/frontier forms.
SPMM_BLOCKING_DIRS = {"engines", "ctmc"}
ONE_RHS_PRODUCT_RE = re.compile(
    r"\.\s*multiply(?:_left)?(?:_fused)?\s*\("
)

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;:)]+:\s*(\w+)\s*\)")


def strip_comments_and_strings(line, in_block_comment):
    """Blank out comment and string-literal contents, preserving column
    positions, and return (code, trailing_comment, still_in_block)."""
    out = []
    comment = ""
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block_comment = False
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            comment = line[i:]
            out.append(" " * (n - i))
            break
        if ch == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
            continue
        if ch in "\"'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), comment, in_block_comment


def loop_pattern_lines(stripped_lines, pattern):
    """Line numbers (1-based) of `pattern` matches inside for/while loop
    bodies, tracked by brace depth across the file.  Loop heads may span
    lines; a body only counts once its `{` opens (brace-less
    single-statement bodies are not tracked)."""
    hits = []
    depth = 0
    body_depths = []  # brace depths at which a loop body opened
    awaiting_body = False  # saw a loop head, its '{' not yet reached
    head_parens = 0  # unclosed parens of that loop head
    for lineno, (code, _comment) in enumerate(stripped_lines, start=1):
        head_starts = {m.start() for m in LOOP_HEAD_RE.finditer(code)}
        decl_starts = {m.start() for m in pattern.finditer(code)}
        for pos, ch in enumerate(code):
            if pos in head_starts:
                awaiting_body = True
                head_parens = 0
            if pos in decl_starts and body_depths:
                hits.append(lineno)
            if ch == "(":
                if awaiting_body:
                    head_parens += 1
            elif ch == ")":
                if awaiting_body and head_parens > 0:
                    head_parens -= 1
            elif ch == "{":
                depth += 1
                if awaiting_body and head_parens == 0:
                    body_depths.append(depth)
                    awaiting_body = False
            elif ch == ";":
                if awaiting_body and head_parens == 0:
                    awaiting_body = False  # brace-less body ended
            elif ch == "}":
                if body_depths and body_depths[-1] == depth:
                    body_depths.pop()
                depth -= 1
    return hits


def waived(rule, comment):
    m = WAIVER_RE.search(comment)
    return m is not None and m.group(1) == rule


def waived_at(rule, stripped_lines, lineno):
    """Waiver trailing on `lineno` (1-based), or on a comment-only line
    directly above it."""
    if waived(rule, stripped_lines[lineno - 1][1]):
        return True
    if lineno >= 2:
        code, comment = stripped_lines[lineno - 2]
        return not code.strip() and waived(rule, comment)
    return False


def is_sentinel(literal):
    return literal.lstrip("-").rstrip("fF") in EXACT_SENTINELS


def lint_file(path):
    findings = []
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    def report(lineno, rule, message):
        findings.append((path, lineno, rule, message))

    if path.suffix == ".hpp" and "#pragma once" not in text:
        report(1, "pragma-once", "header lacks #pragma once")

    unordered_names = set()
    in_block = False
    stripped_lines = []
    for raw in lines:
        code, comment, in_block = strip_comments_and_strings(raw, in_block)
        stripped_lines.append((code, comment))
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))

    if LOOP_ALLOC_DIRS & set(path.parts):
        for lineno in loop_pattern_lines(stripped_lines, VECTOR_DOUBLE_DECL_RE):
            if not waived_at("loop-alloc", stripped_lines, lineno):
                report(
                    lineno,
                    "loop-alloc",
                    "std::vector<double> constructed inside a loop body"
                    " (hoist it or lease from a Workspace arena)",
                )

    if SPMM_BLOCKING_DIRS & set(path.parts):
        for lineno in loop_pattern_lines(stripped_lines, ONE_RHS_PRODUCT_RE):
            if not waived_at("spmm-blocking", stripped_lines, lineno):
                report(
                    lineno,
                    "spmm-blocking",
                    "one-RHS product inside a loop body (group the"
                    " right-hand sides through the blocked multi-RHS"
                    " kernels of matrix/spmm.hpp, or waive with the"
                    " loop's single-vector justification)",
                )

    for lineno, (code, comment) in enumerate(stripped_lines, start=1):
        if RAW_NEW_RE.search(code) and not waived("raw-new-delete", comment):
            report(lineno, "raw-new-delete", "raw `new` expression")
        if (
            RAW_DELETE_RE.search(code)
            and not DELETED_FN_RE.search(code)
            and not waived("raw-new-delete", comment)
        ):
            report(lineno, "raw-new-delete", "raw `delete` expression")

        for m in FLOAT_EQ_RE.finditer(code):
            literal = m.group(1) or m.group(2)
            if is_sentinel(literal):
                continue
            if not waived("float-eq", comment):
                report(
                    lineno,
                    "float-eq",
                    f"exact comparison with float literal {literal}",
                )

        for m in OBS_SITE_RE.finditer(lines[lineno - 1]):
            if not code.startswith("CSRL_", m.start()):
                continue  # the site text sits inside a comment
            name = m.group(1)
            if not OBS_NAME_RE.match(name) and not waived("obs-name", comment):
                report(
                    lineno,
                    "obs-name",
                    f'observability name "{name}" violates'
                    " ^[a-z0-9_]+(/[a-z0-9_]+)*$",
                )

        for m in RANGE_FOR_RE.finditer(code):
            if m.group(1) in unordered_names and not waived(
                "unordered-iter", comment
            ):
                report(
                    lineno,
                    "unordered-iter",
                    f"iteration over unordered container `{m.group(1)}`"
                    " (unspecified order)",
                )

    return findings


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        root = Path(arg)
        if root.is_file():
            files.append(root)
        else:
            files.extend(
                p
                for p in sorted(root.rglob("*"))
                if p.suffix in CPP_SUFFIXES
            )
    all_findings = []
    for path in files:
        all_findings.extend(lint_file(path))
    for path, lineno, rule, message in all_findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if all_findings:
        print(f"lint.py: {len(all_findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint.py: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
