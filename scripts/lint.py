#!/usr/bin/env python3
"""Compatibility shim: the lint rules now live in scripts/analyze/.

The original regex linter grew into a call-graph-aware analyzer (see
scripts/analyze/__init__.py); every legacy rule (raw-new-delete,
float-eq, unordered-iter, pragma-once, obs-name, loop-alloc,
spmm-blocking) runs there as a pass alongside the layer/include-graph
and hot-set passes, under the same
`// lint:allow <rule> (<justification>)` waiver syntax.

Usage is unchanged: scripts/lint.py DIR [DIR...]
Exit status: 0 when clean, 1 when any unwaived finding survives.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
