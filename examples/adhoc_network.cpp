// The paper's Section 5 case study, end to end: build the SRN of Figure 2,
// generate its state space, translate properties Q1-Q3 to CSRL, and check
// them with each computational procedure.
//
//   $ ./adhoc_network
#include <cstdio>

#include "core/checker.hpp"
#include "logic/parser.hpp"
#include "models/adhoc.hpp"
#include "srn/reachability.hpp"
#include "obs/obs.hpp"

int main() {
  using namespace csrl;

  // --- model construction ------------------------------------------------
  const Srn net = build_adhoc_srn();
  const ReachabilityGraph graph = explore(net);
  const Mrm& model = graph.model;

  std::printf("SRN of Fig. 2: %zu places, %zu transitions\n", net.num_places(),
              net.num_transitions());
  std::printf("reachability graph: %zu states, %zu firings\n\n",
              model.num_states(), graph.num_firings);

  std::printf("state  reward(mA)  marking (non-empty places)\n");
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    std::printf("%5zu  %9.0f   ", s, model.reward(s));
    for (const std::string& ap : model.labelling().labels_of(s))
      std::printf("%s ", ap.c_str());
    std::printf("%s\n", s == model.initial_state() ? " <- initial" : "");
  }

  // --- the properties of Section 5.3 --------------------------------------
  std::printf("\nproperties (battery 750 mAh, bounds: %.0f h / %.0f mAh):\n",
              kTimeBoundHours, kRewardBoundMah);
  const Checker checker(model);
  struct Property {
    const char* name;
    const char* bounded;
    const char* query;
  };
  const Property properties[] = {
      {"Q1", kPropertyQ1, kQueryQ1},
      {"Q2", kPropertyQ2, kQueryQ2},
      {"Q3", kPropertyQ3, kQueryQ3},
  };
  for (const Property& property : properties) {
    const double value =
        checker.value_initially(*parse_formula(property.query));
    const bool verdict =
        checker.holds_initially(*parse_formula(property.bounded));
    std::printf("  %s: %s\n      probability %.8f  =>  %s\n", property.name,
                property.bounded, value, verdict ? "HOLDS" : "does NOT hold");
  }

  // --- Q3 with each Section-4 procedure -----------------------------------
  std::printf("\nQ3 across the three computational procedures:\n");
  struct EngineChoice {
    const char* name;
    CheckOptions options;
  };
  CheckOptions sericola;
  sericola.engine = P3Engine::kSericola;
  sericola.sericola_epsilon = 1e-9;
  CheckOptions erlang;
  erlang.engine = P3Engine::kErlang;
  erlang.erlang_phases = 1024;
  CheckOptions discretisation;
  discretisation.engine = P3Engine::kDiscretisation;
  discretisation.discretisation_step = 1.0 / 64.0;
  const EngineChoice engines[] = {
      {"occupation time (Sericola, eps=1e-9)", sericola},
      {"pseudo-Erlang (k=1024)", erlang},
      {"discretisation (d=1/64)", discretisation},
  };
  const FormulaPtr q3 = parse_formula(kQueryQ3);
  for (const EngineChoice& engine : engines) {
    WallTimer timer;
    const double value = Checker(model, engine.options).value_initially(*q3);
    std::printf("  %-40s %.8f   (%.3f s)\n", engine.name, value,
                timer.seconds());
  }
  std::printf("\npaper's converged value (Table 2): %.8f\n", kPaperQ3Reference);
  std::printf("see EXPERIMENTS.md for the comparison discussion\n");
  return 0;
}
