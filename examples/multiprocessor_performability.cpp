// Meyer's performability distribution in CSRL.
//
// The paper notes that CSRL subsumes the classic performability measure of
// Meyer [18, 19]: the distribution of the accumulated computational
// capacity Y_t of a degradable system.  This example evaluates it for a
// 4-processor system with imperfect coverage and contrasts it with plain
// availability measures.
//
//   $ ./multiprocessor_performability
#include <cstdio>
#include <string>

#include "core/checker.hpp"
#include "core/engines/sericola_engine.hpp"
#include "core/reward_ops.hpp"
#include "logic/parser.hpp"
#include "models/multiprocessor.hpp"

int main() {
  using namespace csrl;
  const MultiprocessorParams params{
      .processors = 4,
      .failure_rate = 0.1,  // per processor per day
      .repair_rate = 1.0,   // one repair facility
      .coverage = 0.95,
  };
  const Mrm model = multiprocessor_mrm(params);
  const Checker checker(model);

  std::printf("degradable multiprocessor: %zu processors, coverage %.2f\n\n",
              params.processors, params.coverage);

  // Availability-style measures (CSL fragment).
  std::printf("dependability measures:\n");
  for (const char* q : {
           "P=? [ F[0,10] down ]",             // mission failure by day 10
           "P=? [ !degraded U[0,10] down ]",   // sudden death (never degraded)
           "S=? [ operational ]",              // long-run availability
       }) {
    std::printf("  %-34s = %.6f\n", q,
                checker.value_initially(*parse_formula(q)));
  }

  // Meyer's performability distribution: Pr{Y_t <= r} where the reward is
  // the delivered capacity.  This is exactly the joint distribution of
  // Theorem 2 with the target set = all states — the quantity the three
  // Section-4 engines compute; reward-bounded *until* formulas are its
  // reachability-conditioned cousins (e.g. Q3 of the case study).
  const double t = 10.0;
  const SericolaEngine engine(1e-10);
  StateSet everything(model.num_states(), /*filled=*/true);
  std::printf("\nMeyer performability distribution Pr{Y_%.0f <= r}"
              " (capacity-days accumulated in %.0f days):\n", t, t);
  for (double r : {10.0, 20.0, 30.0, 35.0, 38.0, 40.0}) {
    const double p =
        engine.joint_probability_all_starts(model, t, r,
                                            everything)[model.initial_state()];
    std::printf("  r = %4.0f : %.6f\n", r, p);
  }
  std::printf("(40 = perfect capacity: 4 processors x 10 days)\n");

  // A CSRL until-formula variant: accumulate at most r capacity-days AND
  // end in total failure within the horizon.
  std::printf("\nP=?[ true U[0,10]{0,r} down ] (cheap-failure probability):\n");
  for (double r : {10.0, 20.0, 30.0}) {
    const std::string q = "P=? [ F[0,10]{0," + std::to_string(r) + "} down ]";
    std::printf("  r = %4.0f : %.6f\n", r,
                checker.value_initially(*parse_formula(q)));
  }

  // Expected rewards round the picture out — via the R operator of the
  // logic (equivalent to the expected-reward utility functions).
  std::printf("\nexpected-reward measures (R operator):\n");
  for (const char* q : {
           "R=? [ C<=10 ]",   // capacity-days accumulated in 10 days
           "R=? [ I=10 ]",    // capacity at day 10
           "R=? [ S ]",       // long-run capacity rate
           "R=? [ F down ]",  // capacity delivered before total failure
       }) {
    std::printf("  %-18s = %10.4f\n", q,
                checker.value_initially(*parse_formula(q)));
  }
  std::printf("  (cross-check: E[Y_10] = %.4f via reward_ops)\n",
              expected_accumulated_reward(model, 10.0));

  // Bounded form: does the system deliver at least 30 capacity-days in 10?
  std::printf("\n'R>=30 [ C<=10 ]' holds initially: %s\n",
              checker.holds_initially(*parse_formula("R>=30 [ C<=10 ]"))
                  ? "yes" : "no");
  return 0;
}
