// Quickstart: build a tiny Markov reward model by hand, parse CSRL
// formulas, and check them with all three P3 engines.
//
//   $ ./quickstart
//
// The model: a small job processor that alternates between "idle" and
// "busy", can overheat from busy, and consumes power at different rates
// (the reward structure).  We ask CSRL questions combining time bounds
// (deadlines) and reward bounds (energy budgets).
#include <cstdio>

#include "core/checker.hpp"
#include "logic/parser.hpp"
#include "matrix/csr.hpp"
#include "mrm/mrm.hpp"

namespace {

csrl::Mrm build_model() {
  using namespace csrl;
  // States: 0 = idle, 1 = busy, 2 = overheated (absorbing).
  CsrBuilder rates(3, 3);
  rates.add(0, 1, 2.0);   // a job arrives
  rates.add(1, 0, 1.5);   // the job completes
  rates.add(1, 2, 0.25);  // overheat while busy

  // Power draw in watts: idle 1, busy 10, overheated 0 (shut down).
  std::vector<double> rewards{1.0, 10.0, 0.0};

  Labelling labelling(3);
  labelling.add_label(0, "idle");
  labelling.add_label(1, "busy");
  labelling.add_label(2, "overheated");

  return Mrm(Ctmc(rates.build()), std::move(rewards), std::move(labelling),
             /*initial_state=*/0);
}

}  // namespace

int main() {
  using namespace csrl;
  const Mrm model = build_model();

  const char* queries[] = {
      // Plain CSL-style questions.
      "P=? [ F[0,2] overheated ]",    // overheat within 2 hours?
      "P=? [ !busy U overheated ]",   // overheat without ever working?
      "S=? [ overheated ]",           // long-run: certain meltdown
      // CSRL proper: time AND energy bounds at once (property class P3).
      "P=? [ F[0,8]{0,20} overheated ]",  // melt within 8h on <= 20 Wh
      "P=? [ F{0,20} overheated ]",       // ... with only the energy budget
  };

  std::printf("model: 3 states, initial state 'idle'\n\n");
  for (P3Engine engine :
       {P3Engine::kSericola, P3Engine::kErlang, P3Engine::kDiscretisation}) {
    CheckOptions options;
    options.engine = engine;
    options.erlang_phases = 512;
    options.discretisation_step = 1.0 / 128.0;
    const Checker checker(model, options);
    const char* engine_name =
        engine == P3Engine::kSericola
            ? "sericola"
            : (engine == P3Engine::kErlang ? "erlang-512" : "discret-1/128");
    std::printf("--- engine: %s ---\n", engine_name);
    for (const char* query : queries) {
      const FormulaPtr formula = parse_formula(query);
      std::printf("  %-36s = %.6f\n", query,
                  checker.value_initially(*formula));
    }
    std::printf("\n");
  }

  // Boolean-bounded form: which states satisfy a nested CSRL property?
  const Checker checker(model);
  const FormulaPtr nested = parse_formula(
      "P<0.1 [ F[0,1]{0,12} overheated ] & P>0.5 [ X (busy | idle) ]");
  std::printf("Sat( %s ) = %s\n", nested->to_string().c_str(),
              checker.sat(*nested).to_string().c_str());
  return 0;
}
