// Sensitivity analysis of the paper's case study: how the Q3 verdict
// responds to the battery budget, the mission duration and the doze
// policy.  This is the kind of design-space exploration the paper's
// Section 5 motivates ("systems are expected to perform well under power
// constraints") — each sweep is a column of CSRL checks on the same
// reduced model.
//
//   $ ./adhoc_sensitivity
#include <cstdio>

#include "core/engines/sericola_engine.hpp"
#include "core/reward_ops.hpp"
#include "models/adhoc.hpp"
#include "mrm/mrm.hpp"

namespace {

using namespace csrl;

double q3(const Mrm& reduced, double t, double r) {
  const SericolaEngine engine(1e-9);
  StateSet success(reduced.num_states());
  success.insert(3);
  return engine.joint_probability_all_starts(reduced, t, r,
                                             success)[reduced.initial_state()];
}

/// Reduced Q3 model with a scaled doze policy: `doze_factor` scales the
/// rate of entering doze mode (1.0 = the paper's 12/h).
Mrm reduced_with_doze_factor(double doze_factor) {
  CsrBuilder b(5, 5);
  b.add(0, 1, 3.75);
  b.add(1, 0, 12.0 * doze_factor);
  b.add(1, 2, 6.0);
  b.add(2, 1, 15.0);
  b.add(1, 3, 0.75);
  b.add(1, 4, 0.75);
  b.add(2, 3, 0.75);
  b.add(2, 4, 0.75);
  return Mrm(Ctmc(b.build()), {20.0, 100.0, 200.0, 0.0, 0.0}, Labelling(5), 1);
}

}  // namespace

int main() {
  const Mrm reduced = build_q3_reduced_mrm();

  std::printf("Q3: launch an outbound call within t hours and r mAh,\n"
              "    using the phone only for ad hoc relaying before\n\n");

  std::printf("--- battery budget sweep (t = 24 h) ---\n");
  std::printf("%10s  %12s  %s\n", "r (mAh)", "probability", "P>0.5 verdict");
  for (double r : {150.0, 300.0, 450.0, 600.0, 750.0, 1000.0, 1500.0}) {
    const double p = q3(reduced, kTimeBoundHours, r);
    std::printf("%10.0f  %12.8f  %s\n", r, p, p > 0.5 ? "HOLDS" : "violated");
  }

  std::printf("\n--- mission duration sweep (r = 600 mAh) ---\n");
  std::printf("%10s  %12s\n", "t (h)", "probability");
  for (double t : {1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 48.0}) {
    std::printf("%10.0f  %12.8f\n", t, q3(reduced, t, kRewardBoundMah));
  }
  std::printf("(saturates once absorption beats the deadline: the reward\n"
              " budget, not the clock, is what binds at t = 24)\n");

  std::printf("\n--- doze-policy sweep (t = 24 h, r = 600 mAh) ---\n");
  std::printf("%12s  %12s  %14s\n", "doze factor", "probability",
              "E[drain]/h idle");
  for (double factor : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const Mrm variant = reduced_with_doze_factor(factor);
    const double p = q3(variant, kTimeBoundHours, kRewardBoundMah);
    // Long-run drain of the idle/doze cycling alone (ignore absorption by
    // removing it from the comparison: use short-horizon expected reward).
    const double drain = expected_accumulated_reward(variant, 1.0);
    std::printf("%12.1f  %12.8f  %11.1f mA\n", factor, p, drain);
  }
  std::printf("(counter-intuitively, dozing *hurts* Q3: it lowers the drain\n"
              " rate but suspends the call thread, so the budget leaks away\n"
              " at 20 mA without any chance of launching — exactly the kind\n"
              " of trade-off CSRL's joint time/reward bounds expose)\n");
  return 0;
}
