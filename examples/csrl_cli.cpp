// csrl_cli — check a CSRL formula against a model stored in the explicit
// file format (see src/io/explicit_format.hpp).
//
//   usage: csrl_cli <model-prefix> <formula> [options]
//     --engine sericola|erlang|discretisation   P3 engine (default sericola)
//     --epsilon <e>                             Sericola truncation bound
//     --phases <k>                              Erlang order
//     --step <d>                                discretisation step
//     --all-states                              print the value per state
//     --diagnose                                print model diagnostics
//     --lump                                    check on the bisimulation
//                                               quotient (same answers)
//
//   example:
//     csrl_cli /tmp/adhoc "P=? [ (Call_Idle | Doze) U[0,24]{0,600} Call_Initiated ]"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/checker.hpp"
#include "io/explicit_format.hpp"
#include "logic/parser.hpp"
#include "mrm/diagnostics.hpp"
#include "mrm/lumping.hpp"
#include "util/error.hpp"
#include "obs/obs.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: csrl_cli <model-prefix> <formula> [--engine "
               "sericola|erlang|discretisation] [--epsilon e] [--phases k] "
               "[--step d] [--all-states]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csrl;
  if (argc < 3) return usage();
  const std::string prefix = argv[1];
  const std::string formula_text = argv[2];

  CheckOptions options;
  bool all_states = false;
  bool want_diagnose = false;
  bool want_lump = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      const std::string engine = next();
      if (engine == "sericola")
        options.engine = P3Engine::kSericola;
      else if (engine == "erlang")
        options.engine = P3Engine::kErlang;
      else if (engine == "discretisation")
        options.engine = P3Engine::kDiscretisation;
      else
        return usage();
    } else if (arg == "--epsilon") {
      options.sericola_epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--phases") {
      options.erlang_phases = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--step") {
      options.discretisation_step = std::strtod(next(), nullptr);
    } else if (arg == "--all-states") {
      all_states = true;
    } else if (arg == "--diagnose") {
      want_diagnose = true;
    } else if (arg == "--lump") {
      want_lump = true;
    } else {
      return usage();
    }
  }

  try {
    WallTimer load_timer;
    Mrm model = load_mrm(prefix);
    std::printf("model '%s': %zu states, %zu transitions (%.3f s)\n",
                prefix.c_str(), model.num_states(), model.rates().nnz(),
                load_timer.seconds());

    if (want_diagnose) std::printf("%s", diagnose(model).summary().c_str());

    const std::size_t init = model.initial_state();
    std::vector<std::size_t> block_of;
    if (want_lump) {
      LumpingResult lumped = lump(model);
      std::printf("lumped: %zu states -> %zu blocks\n", model.num_states(),
                  lumped.num_blocks);
      block_of = std::move(lumped.block_of);
      model = std::move(lumped.quotient);
    }

    const FormulaPtr formula = parse_formula(formula_text);
    std::printf("formula: %s\n", formula->to_string().c_str());

    const Checker checker(model, options);
    WallTimer check_timer;
    std::vector<double> values = checker.values(*formula);
    const double seconds = check_timer.seconds();

    if (!block_of.empty()) {
      // Pull the quotient values back to the original state space.
      std::vector<double> pulled(block_of.size(), 0.0);
      for (std::size_t s = 0; s < block_of.size(); ++s)
        pulled[s] = values[block_of[s]];
      values = std::move(pulled);
    }
    if (all_states) {
      for (std::size_t s = 0; s < values.size(); ++s)
        std::printf("  state %zu: %.10f\n", s, values[s]);
    }
    if (formula->kind() == FormulaKind::kProb && formula->is_query()) {
      std::printf("P=? at initial state %zu: %.10f\n", init, values[init]);
    } else if (formula->kind() == FormulaKind::kSteady && formula->is_query()) {
      std::printf("S=? at initial state %zu: %.10f\n", init, values[init]);
    } else if (formula->kind() == FormulaKind::kReward && formula->is_query()) {
      std::printf("R=? at initial state %zu: %.10f\n", init, values[init]);
    } else {
      std::printf("initial state %zu: %s\n", init,
                  values[init] != 0.0 ? "SATISFIED" : "NOT satisfied");
    }
    std::printf("checked in %.3f s\n", seconds);
    return 0;
  } catch (const SyntaxError& e) {
    std::fprintf(stderr, "syntax error: %s\n", e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
