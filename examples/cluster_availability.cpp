// Dependable workstation cluster (after [14]): CSRL measures on a model
// with a few hundred states, including power/capacity-aware variants the
// plain CSL world cannot express.
//
//   $ ./cluster_availability [workstations_per_side]
#include <cstdio>
#include <cstdlib>

#include "core/checker.hpp"
#include "core/reward_ops.hpp"
#include "logic/parser.hpp"
#include "models/cluster.hpp"
#include "obs/obs.hpp"

int main(int argc, char** argv) {
  using namespace csrl;

  ClusterParams params;
  if (argc > 1) params.workstations_per_side = std::strtoul(argv[1], nullptr, 10);
  params.premium_threshold = (params.workstations_per_side * 3 + 3) / 4;

  WallTimer build_timer;
  const Mrm model = build_cluster_mrm(params);
  std::printf("cluster with %zu workstations/side: %zu states (%.3f s)\n",
              params.workstations_per_side, model.num_states(),
              build_timer.seconds());
  std::printf("premium threshold: >= %zu operational per side\n\n",
              params.premium_threshold);

  const Checker checker(model);
  const char* queries[] = {
      // Long-run QoS levels.
      "S=? [ premium ]",
      "S=? [ minimum ]",
      // A week without losing premium service.
      "P=? [ premium U[0,168] !premium ]",
      // Repair keeps up: from anywhere, premium returns within a day.
      "P=? [ F[0,24] premium ]",
      // CSRL: reach a backbone outage within a day while fewer than 60
      // workstation-hours were delivered (a "we failed early and cheaply"
      // indicator that needs both bounds at once).
      "P=? [ F[0,24]{0,60} BackboneDown ]",
  };
  for (const char* q : queries) {
    WallTimer timer;
    const double value = checker.value_initially(*parse_formula(q));
    std::printf("  %-44s = %.6f  (%.3f s)\n", q, value, timer.seconds());
  }

  std::printf("\nexpected delivered workstation-hours over a week: %.2f"
              " (of %.0f)\n",
              expected_accumulated_reward(model, 168.0),
              static_cast<double>(2 * params.workstations_per_side) * 168.0);
  return 0;
}
