// Blocked multi-RHS SpMM support: block-width resolution and row-major
// block packing.
//
// The kernels themselves are CsrMatrix members (declared in
// matrix/csr.hpp, defined in matrix/spmm.cpp).  This header holds the
// shared plumbing around them:
//
//  * resolve_rhs_block() turns the TransientOptions::rhs_block /
//    CheckOptions knob into an effective block width, honouring the
//    CSRL_RHS_BLOCK environment variable;
//  * pack_block()/unpack_block() convert between the engines' natural
//    one-vector-per-column storage and the kernels' row-major
//    interleaved blocks (X[i * stride + b] = column b, element i).
//
// Packing is an exact element copy, so routing a sweep through
// pack -> multiply_block -> unpack changes no bits relative to looping
// multiply() over the columns.
#pragma once

#include <cstddef>
#include <span>

namespace csrl {

/// Hard upper bound on the block width.  Keeps one row's lane group
/// (kMaxRhsBlock doubles) inside a handful of cache lines and bounds the
/// stack footprint of the kernels' per-lane diff accumulators.
inline constexpr std::size_t kMaxRhsBlock = 64;

/// Default effective block width when neither the option nor the
/// environment picks one.  Chosen by bench_spmm: width 8 saturates the
/// single-stream win on the bench hosts while keeping the packed blocks
/// small (see BENCH_spmm.json trajectories).
inline constexpr std::size_t kDefaultRhsBlock = 8;

/// Resolve the `rhs_block` knob (TransientOptions::rhs_block, reached
/// through CheckOptions::transient) to an effective width in
/// [1, kMaxRhsBlock].  Same pattern as num_threads: `requested` == 0
/// means automatic — the CSRL_RHS_BLOCK environment variable if set,
/// else kDefaultRhsBlock; an explicit value wins over the environment.
/// Width 1 disables blocking (every consumer falls back to the one-RHS
/// path).  Throws ModelError for a requested or environment value of 0
/// or above kMaxRhsBlock, or an unparseable environment value.
std::size_t resolve_rhs_block(std::size_t requested);

/// Gather `cols.size()` state-indexed columns into the row-major block:
/// block[i * stride + b] = cols[b][i] for i in [row_begin, row_end).
/// Row-range form so engines can spread the copy over a pool (disjoint
/// ranges write disjoint block rows).
void pack_block(std::span<const double* const> cols, std::span<double> block,
                std::size_t row_begin, std::size_t row_end,
                std::size_t stride);

/// Scatter the row-major block back into columns:
/// cols[b][i] = block[i * stride + b] for i in [row_begin, row_end).
void unpack_block(std::span<const double> block,
                  std::span<double* const> cols, std::size_t row_begin,
                  std::size_t row_end, std::size_t stride);

}  // namespace csrl
