// Blocked multi-RHS SpMM kernels for CsrMatrix (declared in
// matrix/csr.hpp; see matrix/spmm.hpp for the surrounding plumbing).
//
// Layout and identity argument (DESIGN.md section 3f): a block is
// row-major interleaved — X[i * stride + b] is element i of lane b — so
// one stored entry (r, c, v) touches the contiguous lane group at
// X + c * stride and updates the group at Y + r * stride.  The matrix is
// streamed ONCE for all `width` lanes; that single streaming is the
// entire win, because the sweeps these kernels serve are bound by matrix
// memory traffic, not flops.  Within a row, lane b accumulates
// v_1 * x_b[c_1] + v_2 * x_b[c_2] + ... in exactly the entry order of
// the one-RHS kernel, starting from 0.0, so each result lane is bitwise
// identical to a separate multiply() on that lane.  SIMD only ever runs
// the independent lanes side by side (matrix/simd.hpp), never within one
// lane's sum, so vectorized and scalar builds agree bit for bit too.
//
// The left kernels preserve multiply_left's per-row x == 0 skip *per
// lane*: lane b skips row r's contributions iff x_b[r] == 0, the exact
// branch the one-RHS kernel takes.  Those lane loops stay un-annotated —
// a masked "add ±0.0 instead of skipping" rewrite is not bit-safe for
// signed zeros, and the compiler may only vectorize them with genuine
// masked stores.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <type_traits>

#include "matrix/csr.hpp"
#include "matrix/kernel_tuning.hpp"
#include "matrix/simd.hpp"
#include "matrix/spmm.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace csrl {

namespace {

using kernel_tuning::atomic_max;
using kernel_tuning::kChunksPerThread;
using kernel_tuning::kParallelNnzThreshold;

void check_block_shape(const char* what, std::size_t width, std::size_t stride,
                       std::size_t x_size, std::size_t x_rows,
                       std::size_t y_size, std::size_t y_rows) {
  if (width == 0 || width > kMaxRhsBlock)
    throw ModelError(std::string(what) + ": block width must lie in [1, " +
                     std::to_string(kMaxRhsBlock) + "]");
  if (stride < width)
    throw ModelError(std::string(what) + ": stride below block width");
  if (x_size < x_rows * stride || y_size < y_rows * stride)
    throw ModelError(std::string(what) + ": block size mismatch");
}

void check_block_pendings(const char* what,
                          std::span<const FusedBlockAxpy> pendings,
                          std::size_t width) {
  for (const FusedBlockAxpy& p : pendings)
    if (p.width != width || p.stride < p.width)
      throw ModelError(std::string(what) +
                       ": block pending width does not match the block");
}

// Run `body` with the block width as a compile-time constant for the
// power-of-two widths resolve_rhs_block favours, so the per-lane loops
// fully unroll and each lane's accumulator stays register-resident
// across a row's entries; other widths run the identical code with the
// width as a plain runtime value.  Specialisation only changes
// trip-count knowledge — per-lane association order is the same either
// way, so results are bitwise independent of which path ran.
template <typename Body>
void dispatch_block_width(std::size_t width, Body&& body) {
  switch (width) {
    case 1: body(std::integral_constant<std::size_t, 1>()); return;
    case 2: body(std::integral_constant<std::size_t, 2>()); return;
    case 4: body(std::integral_constant<std::size_t, 4>()); return;
    case 8: body(std::integral_constant<std::size_t, 8>()); return;
    case 16: body(std::integral_constant<std::size_t, 16>()); return;
    default: body(width); return;
  }
}

// Stack-array capacity for a dispatched width: exact for the static
// widths (small arrays scalarise cleanly), kMaxRhsBlock otherwise.
template <typename BW>
constexpr std::size_t lane_capacity() {
  if constexpr (std::is_same_v<BW, std::size_t>) return kMaxRhsBlock;
  else return BW::value;
}

/// Deterministic cost charge for one block product (DESIGN.md 3h).  The
/// model captures exactly what blocking buys: the CsrEntry stream
/// (16 B/entry) and row_ptr slots (8 B/row) are paid ONCE per product,
/// while the x gathers and y writes (8 B each) scale with the lane
/// count — so bytes-per-lane falls as the width grows, and the perf
/// diff tool can verify the saving from counters alone.
inline void charge_spmm_cost([[maybe_unused]] std::uint64_t nnz,
                             [[maybe_unused]] std::uint64_t rows,
                             [[maybe_unused]] std::uint64_t width) {
  CSRL_COUNT("cost/spmm/flops", 2 * nnz * width);
  CSRL_COUNT("cost/spmm/bytes", 16 * nnz + 8 * rows + 8 * width * (nnz + rows));
}

/// Blocked fused-epilogue charge: every row updates `lanes` interleaved
/// accumulators — 2 flops and a 16 B read-modify-write per lane (the
/// source block value is resident from the product traversal).
inline void charge_block_epilogue_cost([[maybe_unused]] std::uint64_t rows,
                                       [[maybe_unused]] std::uint64_t lanes) {
  CSRL_COUNT("cost/epilogue/flops", 2 * rows * lanes);
  CSRL_COUNT("cost/epilogue/bytes", 16 * rows * lanes);
}

}  // namespace

std::size_t resolve_rhs_block(std::size_t requested) {
  if (requested == 0) {
    const char* env = std::getenv("CSRL_RHS_BLOCK");
    if (env == nullptr || *env == '\0') return kDefaultRhsBlock;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || parsed == 0 || parsed > kMaxRhsBlock)
      throw ModelError(
          "CSRL_RHS_BLOCK must be an integer in [1, " +
          std::to_string(kMaxRhsBlock) + "], got \"" + env + "\"");
    return static_cast<std::size_t>(parsed);
  }
  if (requested > kMaxRhsBlock)
    throw ModelError("rhs_block must lie in [1, " +
                     std::to_string(kMaxRhsBlock) + "] (0 = automatic)");
  return requested;
}

void pack_block(std::span<const double* const> cols, std::span<double> block,
                std::size_t row_begin, std::size_t row_end,
                std::size_t stride) {
  const std::size_t width = cols.size();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double* out = block.data() + i * stride;
    for (std::size_t b = 0; b < width; ++b) out[b] = cols[b][i];
  }
}

void unpack_block(std::span<const double> block,
                  std::span<double* const> cols, std::size_t row_begin,
                  std::size_t row_end, std::size_t stride) {
  const std::size_t width = cols.size();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* in = block.data() + i * stride;
    for (std::size_t b = 0; b < width; ++b) cols[b][i] = in[b];
  }
}

void CsrMatrix::multiply_block(std::span<const double> x, std::span<double> y,
                               std::size_t width, std::size_t stride) const {
  check_block_shape("CsrMatrix::multiply_block", width, stride, x.size(),
                    cols_, y.size(), rows_);
  // Counted per lane so SpMV-reduction ratios (bench_fig1, test_batch)
  // keep their meaning, plus SpMM-level counters for the block layer.
  CSRL_COUNT("spmv/multiply", width);
  CSRL_COUNT("matrix/spmm/block_products", 1);
  CSRL_COUNT("matrix/spmm/columns", width);
  charge_spmm_cost(nnz(), rows_, width);

  dispatch_block_width(width, [&](auto bw) {
    const std::size_t w = bw;
    const auto gather_rows = [&](std::size_t row_begin, std::size_t row_end) {
      double acc[lane_capacity<decltype(bw)>()];
      for (std::size_t r = row_begin; r < row_end; ++r) {
        CSRL_PRAGMA_SIMD
        for (std::size_t b = 0; b < w; ++b) acc[b] = 0.0;
        for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
          const double v = entries_[i].value;
          const double* xc = x.data() + entries_[i].col * stride;
          CSRL_PRAGMA_SIMD
          for (std::size_t b = 0; b < w; ++b) acc[b] += v * xc[b];
        }
        double* yr = y.data() + r * stride;
        CSRL_PRAGMA_SIMD
        for (std::size_t b = 0; b < w; ++b) yr[b] = acc[b];
      }
    };

    const ThreadPool& pool = ThreadPool::global();
    if (pool.num_threads() == 1 || nnz() * w < kParallelNnzThreshold) {
      gather_rows(0, rows_);
      return;
    }
    const auto chunks = row_chunks(pool.num_threads() * kChunksPerThread);
    pool.parallel_for(0, chunks->size() - 1, 1,
                      [&](std::size_t chunk_begin, std::size_t chunk_end) {
                        for (std::size_t c = chunk_begin; c < chunk_end; ++c)
                          gather_rows((*chunks)[c], (*chunks)[c + 1]);
                      });
  });
}

void CsrMatrix::multiply_left_block(std::span<const double> x,
                                    std::span<double> y, std::size_t width,
                                    std::size_t stride) const {
  check_block_shape("CsrMatrix::multiply_left_block", width, stride, x.size(),
                    rows_, y.size(), cols_);
  CSRL_COUNT("spmv/multiply_left", width);
  CSRL_COUNT("matrix/spmm/block_products", 1);
  CSRL_COUNT("matrix/spmm/columns", width);
  charge_spmm_cost(nnz(), rows_, width);

  dispatch_block_width(width, [&](auto bw) {
    const std::size_t w = bw;
    const ThreadPool& pool = ThreadPool::global();
    if (pool.num_threads() == 1 || nnz() * w < kParallelNnzThreshold) {
      // Serial scatter in row order, skipping per lane exactly where the
      // one-RHS scatter skips the whole row.
      for (std::size_t c = 0; c < cols_; ++c) {
        double* yc = y.data() + c * stride;
        CSRL_PRAGMA_SIMD
        for (std::size_t b = 0; b < w; ++b) yc[b] = 0.0;
      }
      for (std::size_t r = 0; r < rows_; ++r) {
        const double* xr = x.data() + r * stride;
        for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
          const double v = entries_[i].value;
          double* yc = y.data() + entries_[i].col * stride;
          for (std::size_t b = 0; b < w; ++b) {
            const double xv = xr[b];
            if (xv != 0.0) yc[b] += xv * v;
          }
        }
      }
      return;
    }

    // Parallel form: gather along the cached transpose, whose per-column
    // entries are ordered by increasing original row — the exact order
    // the serial scatter adds each lane's contributions (with the same
    // per-lane zero skip), so the two forms are bit-identical per lane.
    const CsrMatrix& t = cached_transpose();
    const auto chunks = t.row_chunks(pool.num_threads() * kChunksPerThread);
    pool.parallel_for(
        0, chunks->size() - 1, 1,
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          double acc[lane_capacity<decltype(bw)>()];
          for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
            for (std::size_t col = (*chunks)[c]; col < (*chunks)[c + 1];
                 ++col) {
              for (std::size_t b = 0; b < w; ++b) acc[b] = 0.0;
              for (const CsrEntry& e : t.row_unchecked(col)) {
                const double v = e.value;
                const double* xr = x.data() + e.col * stride;
                for (std::size_t b = 0; b < w; ++b) {
                  const double xv = xr[b];
                  if (xv != 0.0) acc[b] += xv * v;
                }
              }
              double* yc = y.data() + col * stride;
              for (std::size_t b = 0; b < w; ++b) yc[b] = acc[b];
            }
          }
        });
  });
}

void CsrMatrix::multiply_block_fused(std::span<const double> x,
                                     std::span<double> y, std::size_t width,
                                     std::size_t stride,
                                     std::span<const FusedBlockAxpy> pendings,
                                     std::span<double> diffs) const {
  if (rows_ != cols_)
    throw ModelError("CsrMatrix::multiply_block_fused: square matrices only");
  check_block_shape("CsrMatrix::multiply_block_fused", width, stride, x.size(),
                    cols_, y.size(), rows_);
  check_block_pendings("CsrMatrix::multiply_block_fused", pendings, width);
  const bool want_diff = !diffs.empty();
  if (want_diff && diffs.size() < width)
    throw ModelError("CsrMatrix::multiply_block_fused: diffs below width");
  CSRL_COUNT("spmv/multiply", width);
  CSRL_COUNT("matrix/spmv/rows_active", rows_ * width);
  CSRL_COUNT("matrix/spmm/block_products", 1);
  CSRL_COUNT("matrix/spmm/columns", width);
  charge_spmm_cost(nnz(), rows_, width);
  charge_block_epilogue_cost(rows_, pendings.size() * width);

  dispatch_block_width(width, [&](auto bw) {
    const std::size_t w = bw;
    const auto process_rows = [&](std::size_t row_begin, std::size_t row_end,
                                  double* local) {
      double acc[lane_capacity<decltype(bw)>()];
      for (std::size_t r = row_begin; r < row_end; ++r) {
        CSRL_PRAGMA_SIMD
        for (std::size_t b = 0; b < w; ++b) acc[b] = 0.0;
        for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
          const double v = entries_[i].value;
          const double* xc = x.data() + entries_[i].col * stride;
          CSRL_PRAGMA_SIMD
          for (std::size_t b = 0; b < w; ++b) acc[b] += v * xc[b];
        }
        double* yr = y.data() + r * stride;
        CSRL_PRAGMA_SIMD
        for (std::size_t b = 0; b < w; ++b) yr[b] = acc[b];
        const double* xr = x.data() + r * stride;
        for (const FusedBlockAxpy& p : pendings) {
          double* out = p.out + r * p.stride;
          const double* pw = p.weights;
          CSRL_PRAGMA_SIMD
          for (std::size_t b = 0; b < w; ++b) out[b] += pw[b] * xr[b];
        }
        if (want_diff)
          for (std::size_t b = 0; b < w; ++b)
            local[b] = std::max(local[b], std::abs(acc[b] - xr[b]));
      }
    };

    const ThreadPool& pool = ThreadPool::global();
    if (pool.num_threads() == 1 || nnz() * w < kParallelNnzThreshold) {
      double local[kMaxRhsBlock] = {0.0};
      process_rows(0, rows_, local);
      if (want_diff)
        for (std::size_t b = 0; b < w; ++b) diffs[b] = local[b];
      return;
    }

    std::atomic<double> merged[kMaxRhsBlock];
    for (std::size_t b = 0; b < w; ++b)
      merged[b].store(0.0, std::memory_order_relaxed);
    const auto chunks = row_chunks(pool.num_threads() * kChunksPerThread);
    pool.parallel_for(0, chunks->size() - 1, 1,
                      [&](std::size_t chunk_begin, std::size_t chunk_end) {
                        double local[kMaxRhsBlock] = {0.0};
                        for (std::size_t c = chunk_begin; c < chunk_end; ++c)
                          process_rows((*chunks)[c], (*chunks)[c + 1], local);
                        for (std::size_t b = 0; b < w; ++b)
                          atomic_max(merged[b], local[b]);
                      });
    if (want_diff)
      for (std::size_t b = 0; b < w; ++b)
        diffs[b] = merged[b].load(std::memory_order_relaxed);
  });
}

void CsrMatrix::multiply_left_block_fused(
    std::span<const double> x, std::span<double> y, std::size_t width,
    std::size_t stride, std::span<const FusedBlockAxpy> pendings,
    std::span<double> diffs) const {
  if (rows_ != cols_)
    throw ModelError(
        "CsrMatrix::multiply_left_block_fused: square matrices only");
  check_block_shape("CsrMatrix::multiply_left_block_fused", width, stride,
                    x.size(), rows_, y.size(), cols_);
  check_block_pendings("CsrMatrix::multiply_left_block_fused", pendings,
                       width);
  const bool want_diff = !diffs.empty();
  if (want_diff && diffs.size() < width)
    throw ModelError(
        "CsrMatrix::multiply_left_block_fused: diffs below width");
  CSRL_COUNT("spmv/multiply_left", width);
  CSRL_COUNT("matrix/spmv/rows_active", rows_ * width);
  CSRL_COUNT("matrix/spmm/block_products", 1);
  CSRL_COUNT("matrix/spmm/columns", width);
  charge_spmm_cost(nnz(), rows_, width);
  charge_block_epilogue_cost(rows_, pendings.size() * width);

  // Gather along the transpose like multiply_left_fused, per lane with
  // the serial scatter's x == 0 skip, so each lane matches its one-RHS
  // fused run bit for bit at any thread count.
  const CsrMatrix& t = cached_transpose();
  dispatch_block_width(width, [&](auto bw) {
    const std::size_t w = bw;
    const auto process_cols = [&](std::size_t col_begin, std::size_t col_end,
                                  double* local) {
      double acc[lane_capacity<decltype(bw)>()];
      for (std::size_t col = col_begin; col < col_end; ++col) {
        for (std::size_t b = 0; b < w; ++b) acc[b] = 0.0;
        for (const CsrEntry& e : t.row_unchecked(col)) {
          const double v = e.value;
          const double* xr = x.data() + e.col * stride;
          for (std::size_t b = 0; b < w; ++b) {
            const double xv = xr[b];
            if (xv != 0.0) acc[b] += xv * v;
          }
        }
        double* yc = y.data() + col * stride;
        CSRL_PRAGMA_SIMD
        for (std::size_t b = 0; b < w; ++b) yc[b] = acc[b];
        const double* xc = x.data() + col * stride;
        for (const FusedBlockAxpy& p : pendings) {
          double* out = p.out + col * p.stride;
          const double* pw = p.weights;
          CSRL_PRAGMA_SIMD
          for (std::size_t b = 0; b < w; ++b) out[b] += pw[b] * xc[b];
        }
        if (want_diff)
          for (std::size_t b = 0; b < w; ++b)
            local[b] = std::max(local[b], std::abs(acc[b] - xc[b]));
      }
    };

    const ThreadPool& pool = ThreadPool::global();
    if (pool.num_threads() == 1 || nnz() * w < kParallelNnzThreshold) {
      double local[kMaxRhsBlock] = {0.0};
      process_cols(0, cols_, local);
      if (want_diff)
        for (std::size_t b = 0; b < w; ++b) diffs[b] = local[b];
      return;
    }

    std::atomic<double> merged[kMaxRhsBlock];
    for (std::size_t b = 0; b < w; ++b)
      merged[b].store(0.0, std::memory_order_relaxed);
    const auto chunks = t.row_chunks(pool.num_threads() * kChunksPerThread);
    pool.parallel_for(0, chunks->size() - 1, 1,
                      [&](std::size_t chunk_begin, std::size_t chunk_end) {
                        double local[kMaxRhsBlock] = {0.0};
                        for (std::size_t c = chunk_begin; c < chunk_end; ++c)
                          process_cols((*chunks)[c], (*chunks)[c + 1], local);
                        for (std::size_t b = 0; b < w; ++b)
                          atomic_max(merged[b], local[b]);
                      });
    if (want_diff)
      for (std::size_t b = 0; b < w; ++b)
        diffs[b] = merged[b].load(std::memory_order_relaxed);
  });
}

}  // namespace csrl
