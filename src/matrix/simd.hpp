// SIMD gear for the blocked multi-RHS (SpMM) kernels.
//
// The block kernels in matrix/spmm.cpp vectorize across the B lanes of a
// row-major vector block: every lane accumulates its own terms in exactly
// the association order of the one-RHS kernel, and SIMD only ever runs
// *lanes* side by side — never a reduction within one lane's sum.  A
// vector add/multiply of independent lanes performs the identical IEEE
// operations the scalar loop performs, so vectorized and scalar builds
// are bitwise identical by construction (DESIGN.md section 3f).
//
// CSRL_PRAGMA_SIMD expands to `#pragma omp simd` when the build enables
// the CSRL_SIMD option (compiled with -fopenmp-simd: the pragma alone,
// no OpenMP runtime or threading) and to nothing under CSRL_SIMD=OFF —
// the scalar fallback the `simd-off` CI preset keeps honest.  Annotate
// only loops whose iterations are independent per lane.
#pragma once

#if defined(CSRL_SIMD_ENABLED)
#define CSRL_PRAGMA_SIMD _Pragma("omp simd")
#else
#define CSRL_PRAGMA_SIMD
#endif

namespace csrl {

/// Widest vector instruction set the lane loops compile to, as a stable
/// lowercase token for bench JSON and run reports: "avx512" / "avx2" /
/// "sse2" / "neon", or "scalar" when the build disables CSRL_SIMD (or
/// targets no recognised vector ISA).
inline const char* simd_isa() {
#if !defined(CSRL_SIMD_ENABLED)
  return "scalar";
#elif defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "sse2";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace csrl
