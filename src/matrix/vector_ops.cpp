#include "matrix/vector_ops.hpp"

#include <cmath>

#include "util/error.hpp"

namespace csrl {

namespace {
void check_equal_length(std::size_t a, std::size_t b, const char* where) {
  if (a != b) throw ModelError(std::string(where) + ": length mismatch");
}
}  // namespace

double dot(std::span<const double> a, std::span<const double> b) {
  check_equal_length(a.size(), b.size(), "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_equal_length(x.size(), y.size(), "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

double sum(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

double norm_inf(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  check_equal_length(a.size(), b.size(), "max_abs_diff");
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    best = std::max(best, std::abs(a[i] - b[i]));
  return best;
}

void normalise_l1(std::span<double> x) {
  const double total = sum(x);
  if (!(total > 0.0))
    throw NumericalError("normalise_l1: vector sum is not positive");
  scale(x, 1.0 / total);
}

void hadamard(std::span<const double> a, std::span<const double> b,
              std::span<double> out) {
  check_equal_length(a.size(), b.size(), "hadamard");
  check_equal_length(a.size(), out.size(), "hadamard");
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

double sum_at(std::span<const double> x, std::span<const std::size_t> idx) {
  double acc = 0.0;
  for (std::size_t i : idx) {
    if (i >= x.size()) throw ModelError("sum_at: index out of range");
    acc += x[i];
  }
  return acc;
}

std::vector<double> zeros(std::size_t n) { return std::vector<double>(n, 0.0); }

}  // namespace csrl
