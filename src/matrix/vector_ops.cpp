#include "matrix/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace csrl {

namespace {

void check_equal_length(std::size_t a, std::size_t b, const char* where) {
  // lint:allow hot-throw (argument validation guard at kernel entry)
  if (a != b) throw ModelError(std::string(where) + ": length mismatch");
}

// Below this length the dispatch costs more than the arithmetic.  Only
// order-insensitive operations (elementwise updates and max-reductions)
// run in parallel, so results stay bit-identical to the serial loops at
// any thread count.  Sum-type folds (dot, sum, norm1) deliberately stay
// sequential: their value depends on association order, and keeping the
// serial fold preserves bit-compatibility with existing regression
// baselines; they are O(n) with trivial constants and never dominate a
// checking run.  ThreadPool::parallel_reduce is available for callers
// that want a deterministic chunked sum instead.
constexpr std::size_t kParallelThreshold = 1 << 15;
constexpr std::size_t kGrain = 1 << 13;

}  // namespace

double dot(std::span<const double> a, std::span<const double> b) {
  check_equal_length(a.size(), b.size(), "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_equal_length(x.size(), y.size(), "axpy");
  if (x.size() < kParallelThreshold) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
    return;
  }
  parallel_for(0, x.size(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
  });
}

void scale(std::span<double> x, double alpha) {
  if (x.size() < kParallelThreshold) {
    for (double& v : x) v *= alpha;
    return;
  }
  parallel_for(0, x.size(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) x[i] *= alpha;
  });
}

double sum(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

double norm_inf(std::span<const double> x) {
  const auto chunk_max = [&](std::size_t lo, std::size_t hi) {
    double best = 0.0;
    for (std::size_t i = lo; i < hi; ++i) best = std::max(best, std::abs(x[i]));
    return best;
  };
  if (x.size() < kParallelThreshold) return chunk_max(0, x.size());
  // max is associative and commutative, so the chunked reduction equals
  // the serial fold bit for bit.
  return ThreadPool::global().parallel_reduce(
      0, x.size(), kGrain, 0.0, chunk_max,
      [](double a, double b) { return std::max(a, b); });
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  check_equal_length(a.size(), b.size(), "max_abs_diff");
  const auto chunk_max = [&](std::size_t lo, std::size_t hi) {
    double best = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
      best = std::max(best, std::abs(a[i] - b[i]));
    return best;
  };
  if (a.size() < kParallelThreshold) return chunk_max(0, a.size());
  return ThreadPool::global().parallel_reduce(
      0, a.size(), kGrain, 0.0, chunk_max,
      [](double x, double y) { return std::max(x, y); });
}

void normalise_l1(std::span<double> x) {
  const double total = sum(x);
  if (!(total > 0.0))
    // lint:allow hot-throw (zero-mass guard; the fatal exit, never taken on a distribution)
    throw NumericalError("normalise_l1: vector sum is not positive");
  scale(x, 1.0 / total);
}

void hadamard(std::span<const double> a, std::span<const double> b,
              std::span<double> out) {
  check_equal_length(a.size(), b.size(), "hadamard");
  check_equal_length(a.size(), out.size(), "hadamard");
  if (a.size() < kParallelThreshold) {
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
    return;
  }
  parallel_for(0, a.size(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = a[i] * b[i];
  });
}

double sum_at(std::span<const double> x, std::span<const std::size_t> idx) {
  double acc = 0.0;
  for (std::size_t i : idx) {
    if (i >= x.size()) throw ModelError("sum_at: index out of range");
    acc += x[i];
  }
  return acc;
}

std::vector<double> zeros(std::size_t n) { return std::vector<double>(n, 0.0); }

}  // namespace csrl
