// Dense vector helpers shared by the numerical procedures.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace csrl {

/// Dot product; spans must have equal length.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x; spans must have equal length.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<double> x, double alpha);

/// Sum of all entries.
double sum(std::span<const double> x);

/// L1 norm (sum of absolute values).
double norm1(std::span<const double> x);

/// Maximum absolute value.
double norm_inf(std::span<const double> x);

/// max_i |a_i - b_i|; spans must have equal length.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// Rescale a non-negative vector so its entries sum to 1.
/// Throws NumericalError if the sum is not positive.
void normalise_l1(std::span<double> x);

/// Elementwise product written into `out`; all spans equal length.
void hadamard(std::span<const double> a, std::span<const double> b,
              std::span<double> out);

/// Sum of x over the positions listed in `idx`.
double sum_at(std::span<const double> x, std::span<const std::size_t> idx);

/// Convenience: a vector of `n` zeros (names the intent at call sites).
std::vector<double> zeros(std::size_t n);

}  // namespace csrl
