// Internal tuning constants and helpers shared by the SpMV kernels
// (matrix/csr.cpp) and the blocked SpMM kernels (matrix/spmm.cpp).  Not
// part of the public API.
#pragma once

#include <atomic>
#include <cstddef>

namespace csrl::kernel_tuning {

/// Below this many stored entries a product is cheaper than a dispatch.
constexpr std::size_t kParallelNnzThreshold = 1 << 14;

/// Row chunks per pool lane: a few chunks per thread so dynamic claiming
/// can even out row-structure imbalance that nnz balancing misses.
constexpr std::size_t kChunksPerThread = 4;

/// Merge a chunk-local max into the shared reduction slot.  max is
/// associative, commutative and exact, so the merge order across chunks
/// cannot change the result — the parallel diff is bit-identical to the
/// serial one.
inline void atomic_max(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace csrl::kernel_tuning
