// Iterative solvers for the linear systems arising in CSRL model checking.
//
// Two problem shapes cover everything the checker needs:
//
//  1. Affine fixpoints  x = A x + b  with spectral radius rho(A) < 1.
//     These arise for unbounded-until probabilities on the embedded DTMC
//     restricted to "maybe" states (after the Prob0 graph precomputation
//     the restriction is guaranteed substochastic and convergent).
//
//  2. Stationary distributions  pi = pi P,  pi >= 0,  sum(pi) = 1  of an
//     irreducible stochastic matrix P (a uniformised CTMC restricted to a
//     bottom strongly-connected component).
//
// Jacobi, Gauss-Seidel and SOR are provided for shape 1; power iteration
// for shape 2.  All solvers throw NumericalError if the iteration limit is
// reached before the tolerance is met.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "matrix/csr.hpp"

namespace csrl {

class Workspace;

/// Iterative method selector for solve_fixpoint.
enum class LinearMethod {
  kJacobi,
  kGaussSeidel,
  kSor,
  /// Krylov-subspace method (van der Vorst's BiCGSTAB) on (I - A) x = b;
  /// typically far fewer iterations than the stationary methods on
  /// ill-conditioned systems, at two matrix-vector products per step.
  kBicgstab,
};

/// Convergence controls shared by all iterative solvers.
struct SolverOptions {
  /// Stop when successive iterates differ by at most this (max norm).
  double tolerance = 1e-12;
  /// Hard iteration cap; exceeding it throws NumericalError.
  std::size_t max_iterations = 1'000'000;
  /// Which update scheme solve_fixpoint uses.
  LinearMethod method = LinearMethod::kGaussSeidel;
  /// SOR relaxation factor (only used by LinearMethod::kSor); must be in
  /// (0, 2) for convergence on symmetrisable problems.
  double omega = 1.0;
  /// Optional scratch arena (util/workspace.hpp): the solvers lease their
  /// iteration buffers from it instead of allocating per call, so a
  /// warmed arena keeps the iteration loops heap-free (the obs counter
  /// "matrix/solver/allocs_in_loop" reports the arena allocations a call
  /// incurred; tests pin it to zero against a warmed arena).  Not owned;
  /// may be null.  Not thread-safe — share one only across calls issued
  /// from the same thread.
  Workspace* workspace = nullptr;
};

/// Solve x = A x + b.  A must be square with x/b of matching size and is
/// assumed convergent (rho(A) < 1); diagonal entries A_ss != 1 are required.
/// Returns the fixpoint.
std::vector<double> solve_fixpoint(const CsrMatrix& a, std::span<const double> b,
                                   const SolverOptions& options = {});

/// Left-eigenvector power iteration: returns the stationary distribution of
/// the stochastic matrix P (rows summing to 1).  P must be irreducible and
/// aperiodic; the uniformised matrix of any irreducible CTMC with
/// uniformisation rate strictly above the maximal exit rate qualifies.
std::vector<double> power_stationary(const CsrMatrix& p,
                                     const SolverOptions& options = {});

}  // namespace csrl
