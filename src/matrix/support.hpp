// Active-support tracking for sparsity-aware SpMV.
//
// Uniformisation iterates start as (near-)point masses and spread along
// the transition graph one hop per step, so early iterations touch a tiny
// frontier of the state space while the dense kernel sweeps all of it.
// A SupportMask names the states that may be non-zero in one iterate (a
// conservative superset of the true support); the active kernels in
// matrix/csr.hpp propagate the mask alongside the vector and only visit
// masked rows, falling back to the dense kernel once the frontier stops
// being sparse (see TransientOptions::support_crossover).
//
// The mask is bitmap + index list so membership tests are O(1) and
// iteration is O(|mask|).  Capacity for the full universe is reserved at
// construction, so inserts inside iteration loops never allocate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace csrl {

/// A deferred running-sum update fused into an SpMV pass (see the fused
/// kernels in matrix/csr.hpp): out[i] += weight * x[i] applied during the
/// same memory traversal that reads x for the product.
struct FusedAxpy {
  double weight = 0.0;
  double* out = nullptr;
};

/// Blocked form of FusedAxpy: one per-lane-weighted running-sum update
/// into a row-major vector block (matrix/spmm.hpp), applied during the
/// same traversal as the product.  For every position i the kernel
/// touches and every lane b < width,
///
///   out[i * stride + b] += weights[b] * source_b(i),
///
/// where source_b(i) is x[i] when the kernel iterates a single vector
/// (the fused SpMV kernels: one iterate feeding several interleaved
/// accumulators, e.g. the per-horizon Poisson sums of a batched
/// uniformisation run) and x[i * stride + b] when it iterates a block
/// (the *_block_fused SpMM kernels: each lane feeds its own
/// accumulator).  Lanes whose update is not wanted at this step carry
/// weight 0.0 — with the non-negative accumulators of the series loops
/// the added exact +0.0 leaves every bit unchanged (DESIGN.md 3f).
struct FusedBlockAxpy {
  const double* weights = nullptr;  // per-lane weights, size >= width
  double* out = nullptr;            // row-major interleaved accumulator
  std::size_t width = 0;
  std::size_t stride = 0;
};

/// Conservative superset of the non-zero positions of one iterate.
class SupportMask {
 public:
  SupportMask() = default;

  /// Empty mask over `universe` states; reserves full capacity up front.
  explicit SupportMask(std::size_t universe) : bitmap_(universe, 0) {
    members_.reserve(universe);
  }

  std::size_t universe() const { return bitmap_.size(); }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  bool contains(std::size_t i) const { return bitmap_[i] != 0; }

  /// Insert `i` (idempotent).  Never allocates after construction.
  void insert(std::size_t i) {
    if (bitmap_[i] != 0) return;
    bitmap_[i] = 1;
    // lint:allow hot-alloc (members_ capacity is reserved to the state count at construction; append never reallocates)
    members_.push_back(i);
  }

  /// Remove every member, leaving capacity in place.  O(size()).
  void clear() {
    for (std::size_t i : members_) bitmap_[i] = 0;
    members_.clear();
  }

  /// Rebuild as the support of `x` (positions with x[i] != 0).
  void reset_to_support(std::span<const double> x) {
    clear();
    for (std::size_t i = 0; i < x.size(); ++i)
      if (x[i] != 0.0) insert(i);
  }

  /// Members in ascending order.  The active kernels call this before
  /// traversing, so masked scatters visit rows in exactly the order the
  /// dense kernel would (the bitwise-identity requirement).  In-place
  /// introsort: no allocation.
  void sort();

  /// Drop the member `i` positions whose `keep(i)` is false, resetting
  /// their bitmap bits.  Used by the epsilon-truncation pass.  O(size()).
  template <typename KeepFn>
  void remove_if_not(KeepFn keep) {
    std::size_t kept = 0;
    for (std::size_t i : members_) {
      if (keep(i))
        members_[kept++] = i;
      else
        bitmap_[i] = 0;
    }
    // lint:allow hot-alloc (shrinking resize; capacity is retained, no allocation)
    members_.resize(kept);
  }

  std::span<const std::size_t> members() const { return members_; }

 private:
  std::vector<std::uint8_t> bitmap_;
  std::vector<std::size_t> members_;
};

}  // namespace csrl
