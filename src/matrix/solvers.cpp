#include "matrix/solvers.hpp"

#include <algorithm>
#include <cmath>

#include "matrix/vector_ops.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/workspace.hpp"

namespace csrl {

namespace {

/// Counts the arena allocations of the enclosing solver call and emits
/// them as "matrix/solver/allocs_in_loop" on scope exit, covering every
/// return path.  Against a warmed arena the count is zero (pinned by
/// tests); the stationary sweeps allocate nothing either way.
struct AllocCounterScope {
  explicit AllocCounterScope(Workspace* ws) : guard(ws) {}
  ~AllocCounterScope() {
    CSRL_COUNT("matrix/solver/allocs_in_loop", guard.heap_allocations());
  }
  Workspace::LoopGuard guard;
};

void check_square_system(const CsrMatrix& a, std::size_t b_size, const char* where) {
  if (a.rows() != a.cols())
    throw ModelError(std::string(where) + ": matrix must be square");
  if (a.rows() != b_size)
    throw ModelError(std::string(where) + ": right-hand side size mismatch");
}

/// Deterministic per-iteration cost charge for the stationary sweeps
/// (DESIGN.md 3h).  One Jacobi/Gauss-Seidel sweep streams the matrix
/// once like an SpMV (2*nnz flops, 24*nnz bytes) plus the vector
/// traffic of the splitting and the convergence diff: read b and x,
/// write the iterate, re-read both for the diff — 2*n flops and 48*n
/// bytes.  Structural only (never value-dependent), so totals are
/// bit-identical across machines and thread counts.
inline void charge_sweep_cost([[maybe_unused]] std::uint64_t nnz,
                              [[maybe_unused]] std::uint64_t n) {
  CSRL_COUNT("cost/solver/flops", 2 * nnz + 2 * n);
  CSRL_COUNT("cost/solver/bytes", 24 * nnz + 48 * n);
}

/// Per-iteration vector-op charge for BiCGSTAB: three dots, four axpy
/// updates and two norms over length-n vectors (~22*n flops, ~16 vector
/// passes of 8*n bytes).  The two matrix applies inside the iteration
/// charge themselves under cost/spmv via CsrMatrix::multiply.
inline void charge_bicgstab_iteration_cost([[maybe_unused]] std::uint64_t n) {
  CSRL_COUNT("cost/solver/flops", 22 * n);
  CSRL_COUNT("cost/solver/bytes", 128 * n);
}

/// Per-iteration vector-op charge for the stationary power method: an
/// L1 normalisation and a convergence diff (4*n flops, four vector
/// passes of 8*n bytes).  The multiply_left charges itself under
/// cost/spmv.
inline void charge_power_iteration_cost([[maybe_unused]] std::uint64_t n) {
  CSRL_COUNT("cost/solver/flops", 4 * n);
  CSRL_COUNT("cost/solver/bytes", 32 * n);
}

/// One Jacobi sweep for x = Ax + b in the "proper" splitting: the diagonal
/// is moved to the left-hand side, which converges whenever the plain
/// iteration does and is faster in the presence of self-loops.
void jacobi_sweep(const CsrMatrix& a, std::span<const double> b,
                  std::span<const double> x_old, std::span<double> x_new) {
  const std::size_t n = a.rows();
  for (std::size_t s = 0; s < n; ++s) {
    double off = b[s];
    double diag = 0.0;
    for (const auto& e : a.row_unchecked(s)) {
      if (e.col == s)
        diag = e.value;
      else
        off += e.value * x_old[e.col];
    }
    const double denom = 1.0 - diag;
    if (std::abs(denom) < 1e-300)
      // lint:allow hot-throw (numerical breakdown guard; the fatal exit, never taken on a well-posed system)
      throw NumericalError("solve_fixpoint: diagonal entry equal to 1");
    x_new[s] = off / denom;
  }
}

/// One Gauss-Seidel / SOR sweep (in place).  Returns the largest update.
double gauss_seidel_sweep(const CsrMatrix& a, std::span<const double> b,
                          std::span<double> x, double omega) {
  const std::size_t n = a.rows();
  double largest = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    double off = b[s];
    double diag = 0.0;
    for (const auto& e : a.row_unchecked(s)) {
      if (e.col == s)
        diag = e.value;
      else
        off += e.value * x[e.col];
    }
    const double denom = 1.0 - diag;
    if (std::abs(denom) < 1e-300)
      // lint:allow hot-throw (numerical breakdown guard; the fatal exit, never taken on a well-posed system)
      throw NumericalError("solve_fixpoint: diagonal entry equal to 1");
    const double candidate = off / denom;
    const double updated = x[s] + omega * (candidate - x[s]);
    largest = std::max(largest, std::abs(updated - x[s]));
    x[s] = updated;
  }
  return largest;
}

/// BiCGSTAB on M x = b with M = I - A, expressed through y = x - A x.
std::vector<double> bicgstab(const CsrMatrix& a, std::span<const double> b,
                             const SolverOptions& options) {
  CSRL_SPAN("solver/bicgstab");
  const std::size_t n = a.rows();
  const auto apply = [&a](std::span<const double> x, std::vector<double>& y) {
    a.multiply(x, y);           // y = A x
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] - y[i];  // (I-A)x
  };

  std::vector<double> x(n, 0.0);
  Workspace::Lease r_lease(options.workspace, n);
  Workspace::Lease r_hat_lease(options.workspace, n);
  Workspace::Lease p_lease(options.workspace, n);
  Workspace::Lease v_lease(options.workspace, n);
  Workspace::Lease s_lease(options.workspace, n);
  Workspace::Lease t_lease(options.workspace, n);
  std::vector<double>& r = r_lease.get();
  r.assign(b.begin(), b.end());  // r = b - M*0
  std::vector<double>& r_hat = r_hat_lease.get();
  r_hat.assign(r.begin(), r.end());  // shadow residual; never written again
  std::vector<double>& p = p_lease.get();
  std::fill(p.begin(), p.end(), 0.0);
  std::vector<double>& v = v_lease.get();
  std::fill(v.begin(), v.end(), 0.0);
  std::vector<double>& s = s_lease.get();
  std::fill(s.begin(), s.end(), 0.0);
  std::vector<double>& t = t_lease.get();
  std::fill(t.begin(), t.end(), 0.0);

  const double target = options.tolerance * std::max(1.0, norm_inf(b));
  const double r0 = norm_inf(r);
  if (r0 <= target) {
    CSRL_GAUGE("solver/residual", r0);
    return x;
  }

  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    CSRL_COUNT("solver/iterations", 1);
    charge_bicgstab_iteration_cost(n);
    const double rho_next = dot(r_hat, r);
    if (std::abs(rho_next) < 1e-300)
      // lint:allow hot-throw (numerical breakdown guard; the fatal exit, never taken on a converging run)
      throw NumericalError("solve_fixpoint: BiCGSTAB breakdown (rho ~ 0)");
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (std::size_t i = 0; i < n; ++i)
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    apply(p, v);
    const double denominator = dot(r_hat, v);
    if (std::abs(denominator) < 1e-300)
      // lint:allow hot-throw (numerical breakdown guard; the fatal exit, never taken on a converging run)
      throw NumericalError("solve_fixpoint: BiCGSTAB breakdown (r^.v ~ 0)");
    alpha = rho / denominator;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    const double s_norm = norm_inf(s);
    if (s_norm <= target) {
      axpy(alpha, p, x);
      CSRL_GAUGE("solver/residual", s_norm);
      return x;
    }
    apply(s, t);
    const double tt = dot(t, t);
    if (tt < 1e-300)
      // lint:allow hot-throw (numerical breakdown guard; the fatal exit, never taken on a converging run)
      throw NumericalError("solve_fixpoint: BiCGSTAB breakdown (t ~ 0)");
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * p[i] + omega * s[i];
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];
    const double r_norm = norm_inf(r);
    if (r_norm <= target) {
      CSRL_GAUGE("solver/residual", r_norm);
      return x;
    }
  }
  throw NumericalError("solve_fixpoint: BiCGSTAB did not converge within " +
                       std::to_string(options.max_iterations) + " iterations");
}

}  // namespace

std::vector<double> solve_fixpoint(const CsrMatrix& a, std::span<const double> b,
                                   const SolverOptions& options) {
  check_square_system(a, b.size(), "solve_fixpoint");
  const std::size_t n = a.rows();
  std::vector<double> x(n, 0.0);
  if (n == 0) return x;

  AllocCounterScope allocs(options.workspace);
  if (options.method == LinearMethod::kBicgstab) return bicgstab(a, b, options);

  if (options.method == LinearMethod::kJacobi) {
    CSRL_SPAN("solver/jacobi");
    Workspace::Lease x_next_lease(options.workspace, n);
    std::vector<double>& x_next = x_next_lease.get();
    std::fill(x_next.begin(), x_next.end(), 0.0);
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
      CSRL_COUNT("solver/iterations", 1);
      charge_sweep_cost(a.nnz(), n);
      jacobi_sweep(a, b, x, x_next);
      const double diff = max_abs_diff(x, x_next);
      x.swap(x_next);
      if (diff <= options.tolerance) {
        CSRL_GAUGE("solver/residual", diff);
        return x;
      }
    }
  } else {
    CSRL_SPAN("solver/gauss_seidel");
    const double omega =
        options.method == LinearMethod::kSor ? options.omega : 1.0;
    if (!(omega > 0.0 && omega < 2.0))
      throw NumericalError("solve_fixpoint: SOR omega must lie in (0, 2)");
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
      CSRL_COUNT("solver/iterations", 1);
      charge_sweep_cost(a.nnz(), n);
      const double diff = gauss_seidel_sweep(a, b, x, omega);
      if (diff <= options.tolerance) {
        CSRL_GAUGE("solver/residual", diff);
        return x;
      }
    }
  }
  throw NumericalError("solve_fixpoint: no convergence within " +
                       std::to_string(options.max_iterations) + " iterations");
}

std::vector<double> power_stationary(const CsrMatrix& p,
                                     const SolverOptions& options) {
  check_square_system(p, p.rows(), "power_stationary");
  const std::size_t n = p.rows();
  if (n == 0) throw ModelError("power_stationary: empty matrix");

  CSRL_SPAN("solver/power_stationary");
  AllocCounterScope allocs(options.workspace);
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  Workspace::Lease next_lease(options.workspace, n);
  std::vector<double>& next = next_lease.get();
  std::fill(next.begin(), next.end(), 0.0);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    CSRL_COUNT("solver/iterations", 1);
    charge_power_iteration_cost(n);
    p.multiply_left(pi, next);
    normalise_l1(next);
    const double diff = max_abs_diff(pi, next);
    pi.swap(next);
    if (diff <= options.tolerance) {
      CSRL_GAUGE("solver/residual", diff);
      return pi;
    }
  }
  throw NumericalError("power_stationary: no convergence within " +
                       std::to_string(options.max_iterations) + " iterations");
}

}  // namespace csrl
