#include "matrix/csr.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace csrl {

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void CsrBuilder::add(std::size_t row, std::size_t col, double value) {
  if (row >= rows_ || col >= cols_)
    throw ModelError("CsrBuilder::add: index (" + std::to_string(row) + ", " +
                     std::to_string(col) + ") out of range for " +
                     std::to_string(rows_) + "x" + std::to_string(cols_));
  if (!std::isfinite(value))
    throw ModelError("CsrBuilder::add: non-finite value");
  if (value == 0.0) return;
  triplets_.push_back({row, col, value});
}

CsrMatrix CsrBuilder::build() const {
  CsrMatrix m(rows_, cols_);

  // Counting sort by row, then sort each row by column and merge duplicates.
  std::vector<std::size_t> counts(rows_ + 1, 0);
  for (const auto& t : triplets_) ++counts[t.row + 1];
  for (std::size_t r = 0; r < rows_; ++r) counts[r + 1] += counts[r];

  std::vector<CsrEntry> scratch(triplets_.size());
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (const auto& t : triplets_) scratch[cursor[t.row]++] = {t.col, t.value};
  }

  m.row_ptr_.assign(rows_ + 1, 0);
  m.entries_.clear();
  m.entries_.reserve(scratch.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    auto begin = scratch.begin() + static_cast<std::ptrdiff_t>(counts[r]);
    auto end = scratch.begin() + static_cast<std::ptrdiff_t>(counts[r + 1]);
    std::sort(begin, end,
              [](const CsrEntry& a, const CsrEntry& b) { return a.col < b.col; });
    std::size_t row_count = 0;
    for (auto it = begin; it != end; ++it) {
      if (row_count > 0 && m.entries_.back().col == it->col) {
        m.entries_.back().value += it->value;
      } else {
        m.entries_.push_back(*it);
        ++row_count;
      }
    }
    m.row_ptr_[r + 1] = m.row_ptr_[r] + row_count;
  }
  return m;
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

std::span<const CsrEntry> CsrMatrix::row(std::size_t r) const {
  if (r >= rows_) throw ModelError("CsrMatrix::row: row index out of range");
  return {entries_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  const auto entries = row(r);
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), c,
      [](const CsrEntry& e, std::size_t col) { return e.col < col; });
  if (it != entries.end() && it->col == c) return it->value;
  return 0.0;
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_)
    throw ModelError("CsrMatrix::multiply: dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      acc += entries_[i].value * x[entries_[i].col];
    y[r] = acc;
  }
}

void CsrMatrix::multiply_left(std::span<const double> x, std::span<double> y) const {
  if (x.size() != rows_ || y.size() != cols_)
    throw ModelError("CsrMatrix::multiply_left: dimension mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      y[entries_[i].col] += xr * entries_[i].value;
  }
}

std::vector<double> CsrMatrix::row_sums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      sums[r] += entries_[i].value;
  return sums;
}

std::vector<double> CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  std::vector<double> d(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) d[r] = at(r, r);
  return d;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrBuilder b(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (const auto& e : row(r)) b.add(e.col, r, e.value);
  return b.build();
}

CsrMatrix CsrMatrix::scaled(double factor) const {
  CsrMatrix m = *this;
  for (auto& e : m.entries_) e.value *= factor;
  return m;
}

double CsrMatrix::max_abs() const {
  double best = 0.0;
  for (const auto& e : entries_) best = std::max(best, std::abs(e.value));
  return best;
}

}  // namespace csrl
