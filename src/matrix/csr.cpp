#include "matrix/csr.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <utility>

#include "matrix/kernel_tuning.hpp"
#include "matrix/simd.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace csrl {

namespace {

using kernel_tuning::atomic_max;
using kernel_tuning::kChunksPerThread;
using kernel_tuning::kParallelNnzThreshold;

/// Apply every blocked epilogue at position `r` from the scalar source
/// `xr`: out[r * stride + b] += weights[b] * xr per lane.  The lane loop
/// is contiguous and lane-independent, so SIMD cannot reassociate any
/// lane's sum — annotated, and bitwise equal to the scalar loop.
inline void apply_block_pendings(std::span<const FusedBlockAxpy> pendings,
                                 std::size_t r, double xr) {
  for (const FusedBlockAxpy& p : pendings) {
    double* out = p.out + r * p.stride;
    const double* w = p.weights;
    CSRL_PRAGMA_SIMD
    for (std::size_t b = 0; b < p.width; ++b) out[b] += w[b] * xr;
  }
}

/// Deterministic cost accounting (DESIGN.md 3h).  The charges are pure
/// functions of structural dimensions — touched nnz, touched rows, lane
/// counts — never of floating-point values, so totals are bit-identical
/// across machines, thread counts and reps and can gate CI exactly.
/// Traffic model per SpMV: stream the touched CsrEntry records (16 B
/// each) plus their row_ptr slots (8 B), gather x (8 B per entry) and
/// write y (8 B per row) — 24*nnz + 16*rows bytes, 2*nnz flops.
inline void charge_spmv_cost([[maybe_unused]] std::uint64_t touched_nnz,
                             [[maybe_unused]] std::uint64_t touched_rows) {
  CSRL_COUNT("cost/spmv/flops", 2 * touched_nnz);
  CSRL_COUNT("cost/spmv/bytes", 24 * touched_nnz + 16 * touched_rows);
}

/// Fused-epilogue charge: each touched position updates `lanes` running
/// sums in place — one multiply-add (2 flops) and a read-modify-write of
/// the 8 B accumulator (16 B) per lane; the x value is already resident
/// from the product traversal.
inline void charge_epilogue_cost([[maybe_unused]] std::uint64_t positions,
                                 [[maybe_unused]] std::uint64_t lanes) {
  CSRL_COUNT("cost/epilogue/flops", 2 * positions * lanes);
  CSRL_COUNT("cost/epilogue/bytes", 16 * positions * lanes);
}

/// Total accumulator lanes the fused epilogues of one pass update.
inline std::uint64_t epilogue_lanes(
    std::span<const FusedAxpy> pendings,
    std::span<const FusedBlockAxpy> block_pendings) {
  std::uint64_t lanes = pendings.size();
  for (const FusedBlockAxpy& p : block_pendings) lanes += p.width;
  return lanes;
}

}  // namespace

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void CsrBuilder::add(std::size_t row, std::size_t col, double value) {
  if (row >= rows_ || col >= cols_)
    throw ModelError("CsrBuilder::add: index (" + std::to_string(row) + ", " +
                     std::to_string(col) + ") out of range for " +
                     std::to_string(rows_) + "x" + std::to_string(cols_));
  if (!std::isfinite(value))
    throw ModelError("CsrBuilder::add: non-finite value");
  if (value == 0.0) return;
  triplets_.push_back({row, col, value});
}

CsrMatrix CsrBuilder::build() const {
  CsrMatrix m(rows_, cols_);

  // Counting sort by row, then sort each row by column and merge duplicates.
  std::vector<std::size_t> counts(rows_ + 1, 0);
  for (const auto& t : triplets_) ++counts[t.row + 1];
  for (std::size_t r = 0; r < rows_; ++r) counts[r + 1] += counts[r];

  std::vector<CsrEntry> scratch(triplets_.size());
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (const auto& t : triplets_) scratch[cursor[t.row]++] = {t.col, t.value};
  }

  m.row_ptr_.assign(rows_ + 1, 0);
  m.entries_.clear();
  m.entries_.reserve(scratch.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    auto begin = scratch.begin() + static_cast<std::ptrdiff_t>(counts[r]);
    auto end = scratch.begin() + static_cast<std::ptrdiff_t>(counts[r + 1]);
    std::sort(begin, end,
              [](const CsrEntry& a, const CsrEntry& b) { return a.col < b.col; });
    std::size_t row_count = 0;
    for (auto it = begin; it != end; ++it) {
      if (row_count > 0 && m.entries_.back().col == it->col) {
        m.entries_.back().value += it->value;
      } else {
        m.entries_.push_back(*it);
        ++row_count;
      }
    }
    m.row_ptr_[r + 1] = m.row_ptr_[r] + row_count;
  }
  // Structural postcondition: strictly increasing columns per row,
  // in-range indices, extents covering every stored entry.  Everything
  // downstream (binary searches in at(), the transpose-gather identity of
  // multiply_left) silently assumes this.
  CSRL_CONTRACT(
      [&] {
        std::size_t covered = 0;
        for (std::size_t r = 0; r < rows_; ++r) {
          for (std::size_t i = m.row_ptr_[r]; i < m.row_ptr_[r + 1]; ++i) {
            if (m.entries_[i].col >= cols_) return false;
            if (i > m.row_ptr_[r] && m.entries_[i - 1].col >= m.entries_[i].col)
              return false;
            if (!std::isfinite(m.entries_[i].value)) return false;
          }
          covered += m.row_ptr_[r + 1] - m.row_ptr_[r];
        }
        return covered == m.entries_.size();
      }(),
      "CsrBuilder::build produced a structurally invalid " +
          std::to_string(rows_) + "x" + std::to_string(cols_) + " matrix");
  return m;
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

CsrMatrix::CsrMatrix(const CsrMatrix& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(other.row_ptr_),
      entries_(other.entries_) {}

CsrMatrix& CsrMatrix::operator=(const CsrMatrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = other.row_ptr_;
  entries_ = other.entries_;
  MutexLock lock(cache_mutex_);
  chunk_cache_.reset();
  chunk_target_ = 0;
  transpose_cache_.reset();
  return *this;
}

// Moves require exclusive access to `other` anyway, but the thread-safety
// analysis reasons per field, not per object: stealing other's guarded
// caches takes other's mutex (uncontended — one atomic op — and moves are
// construction-time, never on a kernel path).  The constructed object's
// own fields are exempt inside its constructor.
CsrMatrix::CsrMatrix(CsrMatrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(std::move(other.row_ptr_)),
      entries_(std::move(other.entries_)) {
  MutexLock lock(other.cache_mutex_);
  chunk_cache_ = std::move(other.chunk_cache_);
  chunk_target_ = other.chunk_target_;
  transpose_cache_ = std::move(other.transpose_cache_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.row_ptr_ = {0};
  other.chunk_target_ = 0;
}

CsrMatrix& CsrMatrix::operator=(CsrMatrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = std::move(other.row_ptr_);
  entries_ = std::move(other.entries_);
  {
    MutexLock mine(cache_mutex_);
    MutexLock theirs(other.cache_mutex_);
    chunk_cache_ = std::move(other.chunk_cache_);
    chunk_target_ = other.chunk_target_;
    transpose_cache_ = std::move(other.transpose_cache_);
    other.chunk_target_ = 0;
  }
  other.rows_ = 0;
  other.cols_ = 0;
  other.row_ptr_ = {0};
  return *this;
}

std::shared_ptr<const std::vector<std::size_t>> CsrMatrix::row_chunks(
    std::size_t target_chunks) const {
  if (target_chunks == 0) target_chunks = 1;
  MutexLock lock(cache_mutex_);
  if (chunk_cache_ && chunk_target_ == target_chunks) return chunk_cache_;

  // Walk row_ptr_ once, closing a chunk whenever it has swallowed its
  // share of the stored entries.  Empty rows ride along with whichever
  // chunk is open; every chunk holds at least one row.
  auto bounds = std::make_shared<std::vector<std::size_t>>();
  bounds->push_back(0);
  if (rows_ > 0) {
    const double per_chunk =
        static_cast<double>(nnz()) / static_cast<double>(target_chunks);
    std::size_t closed = 1;  // chunks closed so far
    for (std::size_t r = 1; r < rows_; ++r) {
      if (bounds->size() >= target_chunks) break;
      const double filled = static_cast<double>(row_ptr_[r]);
      if (filled >= per_chunk * static_cast<double>(closed)) {
        bounds->push_back(r);
        ++closed;
      }
    }
    bounds->push_back(rows_);
  }
  chunk_cache_ = std::move(bounds);
  chunk_target_ = target_chunks;
  return chunk_cache_;
}

const CsrMatrix& CsrMatrix::cached_transpose() const {
  {
    MutexLock lock(cache_mutex_);
    if (transpose_cache_) return *transpose_cache_;
  }
  // Build outside the lock (it is expensive); a duplicate build on a race
  // is wasted work, not an error — first writer wins.
  auto built = std::make_shared<const CsrMatrix>(transposed());
  MutexLock lock(cache_mutex_);
  if (!transpose_cache_) transpose_cache_ = std::move(built);
  return *transpose_cache_;
}

std::span<const CsrEntry> CsrMatrix::row(std::size_t r) const {
  if (r >= rows_) throw ModelError("CsrMatrix::row: row index out of range");
  return {entries_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  const auto entries = row(r);
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), c,
      [](const CsrEntry& e, std::size_t col) { return e.col < col; });
  if (it != entries.end() && it->col == c) return it->value;
  return 0.0;
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_)
    throw ModelError("CsrMatrix::multiply: dimension mismatch");
  CSRL_COUNT("spmv/multiply", 1);
  charge_spmv_cost(nnz(), rows_);

  const auto gather_rows = [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t r = row_begin; r < row_end; ++r) {
      double acc = 0.0;
      for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
        acc += entries_[i].value * x[entries_[i].col];
      y[r] = acc;
    }
  };

  const ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() == 1 || nnz() < kParallelNnzThreshold) {
    gather_rows(0, rows_);
    return;
  }
  // Each y[r] is one independent gather, so any partition of the rows
  // yields bit-identical results; the nnz-balanced chunks only equalise
  // the work.
  const auto chunks = row_chunks(pool.num_threads() * kChunksPerThread);
  pool.parallel_for(0, chunks->size() - 1, 1,
                    [&](std::size_t chunk_begin, std::size_t chunk_end) {
                      for (std::size_t c = chunk_begin; c < chunk_end; ++c)
                        gather_rows((*chunks)[c], (*chunks)[c + 1]);
                    });
}

void CsrMatrix::multiply_left(std::span<const double> x, std::span<double> y) const {
  if (x.size() != rows_ || y.size() != cols_)
    throw ModelError("CsrMatrix::multiply_left: dimension mismatch");
  CSRL_COUNT("spmv/multiply_left", 1);
  charge_spmv_cost(nnz(), rows_);

  const ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() == 1 || nnz() < kParallelNnzThreshold) {
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double xr = x[r];
      if (xr == 0.0) continue;
      for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
        y[entries_[i].col] += xr * entries_[i].value;
    }
    return;
  }

  // Parallel form: gather along the cached transpose instead of scattering
  // along rows, so each y[c] is owned by exactly one chunk.  The transpose
  // stores each column's entries by increasing original row, which is the
  // exact order the serial scatter adds contributions to y[c] — the two
  // forms are therefore bit-identical.
  const CsrMatrix& t = cached_transpose();
  const auto chunks = t.row_chunks(pool.num_threads() * kChunksPerThread);
  pool.parallel_for(
      0, chunks->size() - 1, 1,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
          for (std::size_t col = (*chunks)[c]; col < (*chunks)[c + 1]; ++col) {
            double acc = 0.0;
            for (const CsrEntry& e : t.row_unchecked(col)) {
              const double xr = x[e.col];
              if (xr != 0.0) acc += xr * e.value;
            }
            y[col] = acc;
          }
        }
      });
}

double CsrMatrix::multiply_fused(std::span<const double> x,
                                 std::span<double> y,
                                 std::span<const FusedAxpy> pendings,
                                 std::span<const FusedBlockAxpy> block_pendings,
                                 bool want_diff) const {
  if (rows_ != cols_ || x.size() != cols_ || y.size() != rows_)
    throw ModelError("CsrMatrix::multiply_fused: dimension mismatch");
  CSRL_COUNT("spmv/multiply", 1);
  CSRL_COUNT("matrix/spmv/rows_active", rows_);
  charge_spmv_cost(nnz(), rows_);
  charge_epilogue_cost(rows_, epilogue_lanes(pendings, block_pendings));

  const auto process_rows = [&](std::size_t row_begin, std::size_t row_end) {
    double local = 0.0;
    for (std::size_t r = row_begin; r < row_end; ++r) {
      double acc = 0.0;
      for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
        acc += entries_[i].value * x[entries_[i].col];
      y[r] = acc;
      const double xr = x[r];
      for (const FusedAxpy& p : pendings) p.out[r] += p.weight * xr;
      apply_block_pendings(block_pendings, r, xr);
      if (want_diff) local = std::max(local, std::abs(acc - xr));
    }
    return local;
  };

  const ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() == 1 || nnz() < kParallelNnzThreshold)
    return process_rows(0, rows_);

  std::atomic<double> diff{0.0};
  const auto chunks = row_chunks(pool.num_threads() * kChunksPerThread);
  pool.parallel_for(0, chunks->size() - 1, 1,
                    [&](std::size_t chunk_begin, std::size_t chunk_end) {
                      for (std::size_t c = chunk_begin; c < chunk_end; ++c)
                        atomic_max(diff, process_rows((*chunks)[c],
                                                      (*chunks)[c + 1]));
                    });
  return diff.load(std::memory_order_relaxed);
}

double CsrMatrix::multiply_left_fused(std::span<const double> x,
                                      std::span<double> y,
                                      std::span<const FusedAxpy> pendings,
                                      std::span<const FusedBlockAxpy> block_pendings,
                                      bool want_diff) const {
  if (rows_ != cols_ || x.size() != rows_ || y.size() != cols_)
    throw ModelError("CsrMatrix::multiply_left_fused: dimension mismatch");
  CSRL_COUNT("spmv/multiply_left", 1);
  CSRL_COUNT("matrix/spmv/rows_active", rows_);
  charge_spmv_cost(nnz(), rows_);
  charge_epilogue_cost(rows_, epilogue_lanes(pendings, block_pendings));

  // Gather along the transpose: each column's contributions accumulate
  // in ascending original-row order, the exact sequence the serial
  // scatter of multiply_left performs (including the x == 0 skip), so
  // the bits match the unfused kernel at any thread count.
  const CsrMatrix& t = cached_transpose();
  const auto process_cols = [&](std::size_t col_begin, std::size_t col_end) {
    double local = 0.0;
    for (std::size_t col = col_begin; col < col_end; ++col) {
      double acc = 0.0;
      for (const CsrEntry& e : t.row_unchecked(col)) {
        const double xr = x[e.col];
        if (xr != 0.0) acc += xr * e.value;
      }
      y[col] = acc;
      const double xc = x[col];
      for (const FusedAxpy& p : pendings) p.out[col] += p.weight * xc;
      apply_block_pendings(block_pendings, col, xc);
      if (want_diff) local = std::max(local, std::abs(acc - xc));
    }
    return local;
  };

  const ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() == 1 || nnz() < kParallelNnzThreshold)
    return process_cols(0, cols_);

  std::atomic<double> diff{0.0};
  const auto chunks = t.row_chunks(pool.num_threads() * kChunksPerThread);
  pool.parallel_for(0, chunks->size() - 1, 1,
                    [&](std::size_t chunk_begin, std::size_t chunk_end) {
                      for (std::size_t c = chunk_begin; c < chunk_end; ++c)
                        atomic_max(diff, process_cols((*chunks)[c],
                                                      (*chunks)[c + 1]));
                    });
  return diff.load(std::memory_order_relaxed);
}

double CsrMatrix::multiply_active(std::span<const double> x,
                                  std::span<double> y, const SupportMask& in,
                                  SupportMask& out,
                                  std::span<const FusedAxpy> pendings,
                                  std::span<const FusedBlockAxpy> block_pendings,
                                  bool want_diff) const {
  if (rows_ != cols_ || x.size() != cols_ || y.size() != rows_ ||
      in.universe() != rows_ || out.universe() != rows_)
    throw ModelError("CsrMatrix::multiply_active: dimension mismatch");
  CSRL_COUNT("spmv/multiply", 1);

  // Clear the stale support of y, then find the rows that can see the
  // frontier: exactly the rows holding an entry in an `in` column, i.e.
  // the transpose rows of the `in` members.
  for (std::size_t i : out.members()) y[i] = 0.0;
  out.clear();
  const CsrMatrix& t = cached_transpose();
  for (std::size_t c : in.members())
    for (const CsrEntry& e : t.row_unchecked(c)) out.insert(e.col);
  out.sort();
  CSRL_COUNT("matrix/spmv/rows_active", out.size());
  if (CSRL_OBS_ACTIVE()) {
    // Touched-nnz sum only when recording: the active path's whole point
    // is skipping rows, so its cost charge must count what it touched.
    std::uint64_t touched = 0;
    for (std::size_t r : out.members())
      touched += row_ptr_[r + 1] - row_ptr_[r];
    charge_spmv_cost(touched, out.size());
    charge_epilogue_cost(in.size(), epilogue_lanes(pendings, block_pendings));
  }

  // Full-row gathers for the touched rows: off-frontier columns hold an
  // exact +0.0, so every skipped term of the dense kernel contributes an
  // exact +0.0 there too — identical bits, a fraction of the traffic.
  for (std::size_t r : out.members()) {
    double acc = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      acc += entries_[i].value * x[entries_[i].col];
    y[r] = acc;
  }
  for (const FusedAxpy& p : pendings)
    for (std::size_t i : in.members()) p.out[i] += p.weight * x[i];
  for (std::size_t i : in.members())
    apply_block_pendings(block_pendings, i, x[i]);

  double diff = 0.0;
  if (want_diff) {
    for (std::size_t r : out.members())
      diff = std::max(diff, std::abs(y[r] - x[r]));
    for (std::size_t i : in.members())
      if (!out.contains(i)) diff = std::max(diff, std::abs(x[i]));
  }
  return diff;
}

double CsrMatrix::multiply_left_active(std::span<const double> x,
                                       std::span<double> y,
                                       const SupportMask& in, SupportMask& out,
                                       std::span<const FusedAxpy> pendings,
                                       std::span<const FusedBlockAxpy> block_pendings,
                                       bool want_diff) const {
  if (rows_ != cols_ || x.size() != rows_ || y.size() != cols_ ||
      in.universe() != rows_ || out.universe() != rows_)
    throw ModelError("CsrMatrix::multiply_left_active: dimension mismatch");
  CSRL_COUNT("spmv/multiply_left", 1);
  CSRL_COUNT("matrix/spmv/rows_active", in.size());
  if (CSRL_OBS_ACTIVE()) {
    std::uint64_t touched = 0;
    for (std::size_t r : in.members())
      touched += row_ptr_[r + 1] - row_ptr_[r];
    charge_spmv_cost(touched, in.size());
    charge_epilogue_cost(in.size(), epilogue_lanes(pendings, block_pendings));
  }

  for (std::size_t i : out.members()) y[i] = 0.0;
  out.clear();
  // Scatter the frontier rows in ascending order — the dense serial
  // scatter restricted to the rows it would not skip anyway, so each
  // y[col] receives the same contributions in the same order.
  for (std::size_t r : in.members()) {
    const double xr = x[r];
    for (const FusedAxpy& p : pendings) p.out[r] += p.weight * xr;
    apply_block_pendings(block_pendings, r, xr);
    if (xr == 0.0) continue;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      y[entries_[i].col] += xr * entries_[i].value;
      out.insert(entries_[i].col);
    }
  }

  double diff = 0.0;
  if (want_diff) {
    for (std::size_t i : out.members())
      diff = std::max(diff, std::abs(y[i] - x[i]));
    for (std::size_t i : in.members())
      if (!out.contains(i)) diff = std::max(diff, std::abs(x[i]));
  }
  out.sort();
  return diff;
}

void CsrMatrix::warm_kernel_caches(bool transpose) const {
  const ThreadPool& pool = ThreadPool::global();
  const std::size_t target = pool.num_threads() * kChunksPerThread;
  if (pool.num_threads() > 1 && nnz() >= kParallelNnzThreshold)
    row_chunks(target);
  if (transpose) {
    const CsrMatrix& t = cached_transpose();
    if (pool.num_threads() > 1 && t.nnz() >= kParallelNnzThreshold)
      t.row_chunks(target);
  }
}

std::vector<double> CsrMatrix::row_sums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      sums[r] += entries_[i].value;
  return sums;
}

std::vector<double> CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  std::vector<double> d(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) d[r] = at(r, r);
  return d;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrBuilder b(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (const auto& e : row(r)) b.add(e.col, r, e.value);
  return b.build();
}

CsrMatrix CsrMatrix::scaled(double factor) const {
  CsrMatrix m = *this;
  for (auto& e : m.entries_) e.value *= factor;
  return m;
}

double CsrMatrix::max_abs() const {
  double best = 0.0;
  for (const auto& e : entries_) best = std::max(best, std::abs(e.value));
  return best;
}

}  // namespace csrl
