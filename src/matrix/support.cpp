#include "matrix/support.hpp"

#include <algorithm>

namespace csrl {

void SupportMask::sort() { std::sort(members_.begin(), members_.end()); }

}  // namespace csrl
