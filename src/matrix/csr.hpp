// Compressed sparse row (CSR) matrices.
//
// Every numerical procedure in csrlcheck (uniformisation, the Sericola
// recursion, the Tijms-Veldman scheme, the linear solvers) is driven by
// sparse matrix-vector products over rate or probability matrices, so CSR
// is the central data structure of the library.  Matrices are immutable
// once built; assembly goes through CsrBuilder, which accepts duplicate
// (row, col) entries and sums them, matching how rate matrices are
// accumulated from higher-level formalisms (several SRN transitions may
// connect the same pair of markings).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "matrix/support.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace csrl {

/// One stored entry of a sparse matrix row: column index and value.
struct CsrEntry {
  std::size_t col;
  double value;
};

class CsrMatrix;

/// Incremental triplet assembler for CsrMatrix.
class CsrBuilder {
 public:
  /// Builder for a matrix with `rows` x `cols` shape.
  CsrBuilder(std::size_t rows, std::size_t cols);

  /// Record `value` at (row, col); duplicates accumulate additively.
  /// Zero values are dropped.
  void add(std::size_t row, std::size_t col, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Assemble the CSR matrix.  The builder may be reused afterwards (it is
  /// left unchanged).
  CsrMatrix build() const;

 private:
  struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
  };

  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

/// Immutable sparse matrix in compressed-sparse-row form.
///
/// Both matrix-vector products run on the shared thread pool when it has
/// more than one lane; each product is bit-identical to its serial form at
/// any thread count (rows are gathered independently, and the left product
/// gathers along the cached transpose in the same per-element accumulation
/// order the serial scatter uses).  The row partition is nnz-balanced —
/// chunk boundaries equalise stored entries, not row counts — and cached
/// on the matrix after the first parallel product.
class CsrMatrix {
 public:
  /// Empty 0 x 0 matrix.
  CsrMatrix() = default;

  /// Zero matrix of the given shape.
  CsrMatrix(std::size_t rows, std::size_t cols);

  // Copies share no cache state (the copy re-derives its partition and
  // transpose lazily); moves steal them.
  CsrMatrix(const CsrMatrix& other);
  CsrMatrix& operator=(const CsrMatrix& other);
  CsrMatrix(CsrMatrix&& other) noexcept;
  CsrMatrix& operator=(CsrMatrix&& other) noexcept;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Number of stored (structurally non-zero) entries.
  std::size_t nnz() const { return entries_.size(); }

  /// The stored entries of row `r`, ordered by increasing column.
  /// Throws ModelError when `r` is out of range.
  std::span<const CsrEntry> row(std::size_t r) const;

  /// row() without the range check.  Precondition: r < rows().  This is
  /// the form the kernels use from their inner loops, whose indices come
  /// from row_ptr_ / cached masks and are in range by construction — the
  /// analyzer's hot-path pass statically rejects reachable throws there
  /// (scripts/analyze, rule hot-throw), and a bounds check per gathered
  /// entry is measurable on the SpMV/SpMM paths anyway.  External callers
  /// go through row().
  std::span<const CsrEntry> row_unchecked(std::size_t r) const noexcept {
    return {entries_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
  }

  /// Value at (r, c); zero if not stored.  O(log nnz(row)).
  double at(std::size_t r, std::size_t c) const;

  /// y = A x  (gathers along rows).  Requires x.size() == cols().
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = x A, i.e. y^T = A^T x^T (scatters along rows).  This is the
  /// product used to push probability distributions through a DTMC:
  /// pi_{n+1} = pi_n P.  Requires x.size() == rows().
  void multiply_left(std::span<const double> x, std::span<double> y) const;

  // -- Fused series kernels (ctmc/uniformisation.cpp) ----------------------
  //
  // One memory traversal instead of three for the uniformisation loop:
  // the product, the deferred Poisson-weight axpys of the previous step
  // (`pendings`: out[i] += weight * x[i]) and the steady-state max-diff
  // reduction (max_i |y[i] - x[i]|, returned; 0.0 when !want_diff) all
  // ride the same pass over the vectors.  Requires a square matrix and
  // x/y/pending targets of size rows() with no aliasing between them.
  // Every per-element operation matches the unfused kernels exactly, so
  // results are bit-identical to separate multiply + axpy + max_abs_diff
  // calls, serial or pooled (the diff is a max-reduction, which is
  // order-independent).  multiply_left_fused gathers along the cached
  // transpose even on one lane — the same per-element accumulation order
  // as the serial scatter, hence the same bits.

  /// Fused y = A x; see above.
  double multiply_fused(std::span<const double> x, std::span<double> y,
                        std::span<const FusedAxpy> pendings,
                        bool want_diff) const {
    return multiply_fused(x, y, pendings, {}, want_diff);
  }

  /// Fused y = x A; see above.
  double multiply_left_fused(std::span<const double> x, std::span<double> y,
                             std::span<const FusedAxpy> pendings,
                             bool want_diff) const {
    return multiply_left_fused(x, y, pendings, {}, want_diff);
  }

  // Forms that additionally carry blocked epilogues (FusedBlockAxpy in
  // matrix/support.hpp): for every row r the kernel sweeps, each block
  // pending adds weights[b] * x[r] into its interleaved accumulator
  // out[r * stride + b] for all lanes b — one contiguous, SIMD-friendly
  // lane loop per row instead of one strided scalar store per pending.
  // The per-lane arithmetic is the identical out += w * x of a scalar
  // FusedAxpy, so carrying W accumulators blocked or as W scalar
  // pendings produces the same bits.

  double multiply_fused(std::span<const double> x, std::span<double> y,
                        std::span<const FusedAxpy> pendings,
                        std::span<const FusedBlockAxpy> block_pendings,
                        bool want_diff) const;

  double multiply_left_fused(std::span<const double> x, std::span<double> y,
                             std::span<const FusedAxpy> pendings,
                             std::span<const FusedBlockAxpy> block_pendings,
                             bool want_diff) const;

  // -- Blocked multi-RHS (SpMM) kernels (matrix/spmm.cpp) ------------------
  //
  // B right-hand sides travel through ONE traversal of the stored matrix
  // instead of B: re-streaming the matrix is the dominant memory cost of
  // every sweep, so the blocked forms cut that traffic by the block
  // width.  Blocks are row-major interleaved — X[i * stride + b] holds
  // element i of lane b — so each stored entry touches one contiguous
  // lane group and the inner lane loops vectorize (matrix/simd.hpp).
  // Lane b accumulates its terms in exactly the order the one-RHS kernel
  // uses; the result lane is therefore bitwise identical to a separate
  // multiply()/multiply_left() on that lane, at any thread count and
  // with SIMD on or off.  Requires 1 <= width <= kMaxRhsBlock (see
  // matrix/spmm.hpp) and width <= stride; x and y must not alias.

  /// Y = A X: per lane b, y_b = A x_b.  Requires x of size
  /// cols() * stride covering every lane and y of size rows() * stride.
  void multiply_block(std::span<const double> x, std::span<double> y,
                      std::size_t width, std::size_t stride) const;

  /// Y = X A: per lane b, y_b = x_b A (distribution pushing for several
  /// distributions at once).
  void multiply_left_block(std::span<const double> x, std::span<double> y,
                           std::size_t width, std::size_t stride) const;

  /// Fused block form of multiply_fused: per lane b, y_b = A x_b, block
  /// pendings applied from the block iterate (out[i*s+b] += w[b] *
  /// x[i*stride+b]) and, when `diffs` is non-empty (size >= width), the
  /// per-lane steady-state diffs diffs[b] = max_i |y_b[i] - x_b[i]| —
  /// all in one traversal, each lane bitwise equal to its one-RHS
  /// multiply_fused run.  Square matrices only.
  void multiply_block_fused(std::span<const double> x, std::span<double> y,
                            std::size_t width, std::size_t stride,
                            std::span<const FusedBlockAxpy> pendings,
                            std::span<double> diffs) const;

  /// Fused block form of multiply_left_fused; see above.
  void multiply_left_block_fused(std::span<const double> x,
                                 std::span<double> y, std::size_t width,
                                 std::size_t stride,
                                 std::span<const FusedBlockAxpy> pendings,
                                 std::span<double> diffs) const;

  // -- Active-support kernels (matrix/support.hpp) -------------------------
  //
  // Masked forms of the fused kernels for iterates whose support is a
  // sparse frontier.  `in` must mask every non-zero of x (sorted — the
  // kernels keep masks sorted); off-mask entries of x must be exactly
  // +0.0.  On entry `out` must mask every position where y may hold a
  // stale non-zero (the kernels zero those); on return it masks the new
  // support of y, sorted.  With non-negative x and pending targets the
  // result vector, the pending updates and the returned diff are all
  // bit-identical to the dense fused kernels: skipped positions would
  // only ever add exact +0.0 terms.  Serial (the frontier regime is
  // dispatch-bound, not bandwidth-bound); zero heap allocations.

  /// Active y = A x: visits only the rows that can see the frontier
  /// (predecessors of `in`, via the cached transpose — call
  /// warm_kernel_caches first so the loop stays allocation-free).
  double multiply_active(std::span<const double> x, std::span<double> y,
                         const SupportMask& in, SupportMask& out,
                         std::span<const FusedAxpy> pendings,
                         bool want_diff) const {
    return multiply_active(x, y, in, out, pendings, {}, want_diff);
  }

  /// Active y = x A: scatters only the frontier rows, in ascending order
  /// exactly like the dense serial scatter.
  double multiply_left_active(std::span<const double> x, std::span<double> y,
                              const SupportMask& in, SupportMask& out,
                              std::span<const FusedAxpy> pendings,
                              bool want_diff) const {
    return multiply_left_active(x, y, in, out, pendings, {}, want_diff);
  }

  // Active forms carrying blocked epilogues as well: block pendings are
  // applied over the `in` frontier only, matching the dense blocked
  // kernels bit for bit for non-negative x (off-frontier positions would
  // only ever contribute exact +0.0 terms).

  double multiply_active(std::span<const double> x, std::span<double> y,
                         const SupportMask& in, SupportMask& out,
                         std::span<const FusedAxpy> pendings,
                         std::span<const FusedBlockAxpy> block_pendings,
                         bool want_diff) const;

  double multiply_left_active(std::span<const double> x, std::span<double> y,
                              const SupportMask& in, SupportMask& out,
                              std::span<const FusedAxpy> pendings,
                              std::span<const FusedBlockAxpy> block_pendings,
                              bool want_diff) const;

  /// Pre-build the lazy caches (row partition and, when `transpose`, the
  /// cached transpose with its partition) that the kernels above create
  /// on first use, so iteration loops that follow perform zero heap
  /// allocations.
  void warm_kernel_caches(bool transpose) const;

  /// Sum of the stored entries of each row (exit rates of a rate matrix).
  std::vector<double> row_sums() const;

  /// The diagonal as a dense vector (zero where not stored).
  std::vector<double> diagonal() const;

  /// Transposed copy.
  CsrMatrix transposed() const;

  /// Copy with every value multiplied by `factor`.
  CsrMatrix scaled(double factor) const;

  /// Maximum of the absolute values of all stored entries (0 for empty).
  double max_abs() const;

  /// nnz-balanced row partition into at most `target_chunks` chunks:
  /// boundaries b_0 = 0 < b_1 < ... < b_c = rows() such that each
  /// [b_i, b_{i+1}) holds roughly nnz()/target_chunks stored entries.
  /// Computed once and cached (recomputed only if `target_chunks`
  /// changes, e.g. after a pool re-size).  Thread-safe; the returned
  /// vector stays valid even if the cache is refreshed concurrently.
  std::shared_ptr<const std::vector<std::size_t>> row_chunks(
      std::size_t target_chunks) const;

 private:
  friend class CsrBuilder;

  /// The cached transpose used by the parallel left product (built on
  /// first use, under lock).
  const CsrMatrix& cached_transpose() const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_ = {0};  // size rows_ + 1
  std::vector<CsrEntry> entries_;

  // Lazy, derived-only state; never observable through the public API
  // except as speed.
  mutable Mutex cache_mutex_;
  mutable std::shared_ptr<const std::vector<std::size_t>> chunk_cache_
      CSRL_GUARDED_BY(cache_mutex_);
  mutable std::size_t chunk_target_ CSRL_GUARDED_BY(cache_mutex_) = 0;
  mutable std::shared_ptr<const CsrMatrix> transpose_cache_
      CSRL_GUARDED_BY(cache_mutex_);
};

}  // namespace csrl
