// The paper's case study (Section 5): a battery-powered mobile station in
// an ad hoc network, modelled as the SRN of Figure 2 with the rates and
// rewards of Table 1.
//
// Two concurrent threads of control: the ordinary-call thread (places
// Call_Idle, Call_Initiated, Call_Active, Call_Incoming) and the ad hoc
// thread (Ad_hoc_Idle, Ad_hoc_Active); when both are idle the station may
// doze (place Doze).  Rewards are power-consumption rates in mA; the time
// unit is one hour.
//
// The underlying MRM has 9 recurrent states.  Applying Theorem 1 to the
// paper's property Q3,
//
//   P>0.5 [ (Call_Idle | Doze) U[0,24]{0,600} Call_Initiated ],
//
// yields a reduced MRM with 3 transient and 2 absorbing states, which is
// the input of the three numerical procedures in Tables 2-4.
#pragma once

#include "mrm/mrm.hpp"
#include "srn/reachability.hpp"
#include "srn/srn.hpp"

namespace csrl {

/// Figure 2's SRN with Table 1's rates (per hour) and rewards (mA).
Srn build_adhoc_srn();

/// Reachability graph of the SRN: the 9-state MRM plus its markings.
ReachabilityGraph build_adhoc_graph();

/// Just the 9-state MRM (initial state: both threads idle).
Mrm build_adhoc_mrm();

/// The reduced 5-state MRM for property Q3, constructed directly from the
/// paper's description (3 transient states Doze / both-idle / ad-hoc-busy
/// plus amalgamated "success" and "fail").  Tests cross-check it against
/// reduce_for_until() applied to build_adhoc_mrm().
Mrm build_q3_reduced_mrm();

/// The paper's battery capacity (mAh) and the 80% bound used by Q1/Q3.
inline constexpr double kBatteryCapacityMah = 750.0;
inline constexpr double kRewardBoundMah = 600.0;  // 80% of capacity
inline constexpr double kTimeBoundHours = 24.0;

/// The properties of Section 5.3 in concrete CSRL syntax.
inline constexpr const char* kPropertyQ1 =
    "P>0.5 [ F{0,600} Call_Incoming ]";
inline constexpr const char* kPropertyQ2 =
    "P>0.5 [ F[0,24] Call_Incoming ]";
inline constexpr const char* kPropertyQ3 =
    "P>0.5 [ (Call_Idle | Doze) U[0,24]{0,600} Call_Initiated ]";

/// Quantitative (P=?) versions, convenient for the benches.
inline constexpr const char* kQueryQ1 = "P=? [ F{0,600} Call_Incoming ]";
inline constexpr const char* kQueryQ2 = "P=? [ F[0,24] Call_Incoming ]";
inline constexpr const char* kQueryQ3 =
    "P=? [ (Call_Idle | Doze) U[0,24]{0,600} Call_Initiated ]";

/// Reference value of the Q3 path probability from the paper's Table 2
/// (occupation-time algorithm at epsilon = 1e-8).
inline constexpr double kPaperQ3Reference = 0.49540399;

}  // namespace csrl
