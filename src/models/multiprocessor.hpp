// Degradable multiprocessor, in the spirit of Meyer's original
// performability studies [18, 19]: n processors fail independently and a
// single repair facility restores them; a failure is "covered" (graceful
// degradation) with probability `coverage`, otherwise it crashes the whole
// system.  The reward rate of a state is its computational capacity (the
// number of operational processors), so Pr{Y_t <= r} is exactly Meyer's
// performability distribution — expressible in CSRL as
// P~p [ F[0,t]{0,r} down ] and friends (see examples/).
//
// States: n+1 "up counts" n, n-1, ..., 0.  Labels: "all_up" (i = n),
// "operational" (i >= 1), "degraded" (1 <= i < n), "down" (i = 0).
#pragma once

#include "mrm/mrm.hpp"

namespace csrl {

struct MultiprocessorParams {
  std::size_t processors = 4;
  double failure_rate = 0.1;  // per processor per time unit
  double repair_rate = 1.0;   // single repair facility
  double coverage = 0.95;     // probability a failure degrades gracefully
};

Mrm multiprocessor_mrm(const MultiprocessorParams& params);

}  // namespace csrl
