// Dependable workstation cluster, after the CSL case study of [14]
// (Haverkort, Hermanns, Katoen, SRDS 2000): two groups of N workstations
// connected by a switch each and a backbone.  Components fail and are
// repaired; "premium" quality of service requires at least k operational
// workstations on each side plus the interconnect between them.
//
// Built as an SRN and exploded by the reachability generator — the model
// scales with N ((N+1)^2 * 8 states), which makes it the scaling workload
// of the ablation benches.  Reward rate: the number of operational
// workstations (delivered computational capacity).
//
// Atomic propositions: the place names (LeftUp, RightUp, ..., nonempty)
// plus the derived propositions "premium" and "minimum" evaluated on the
// markings.
#pragma once

#include "mrm/mrm.hpp"
#include "srn/reachability.hpp"
#include "srn/srn.hpp"

namespace csrl {

struct ClusterParams {
  std::size_t workstations_per_side = 4;
  std::size_t premium_threshold = 3;  // k: per-side minimum for "premium"
  double workstation_failure_rate = 1.0 / 500.0;  // per hour
  double switch_failure_rate = 1.0 / 4000.0;
  double backbone_failure_rate = 1.0 / 5000.0;
  double repair_rate = 2.0;  // per hour, per failed component type
};

/// The cluster SRN (places: LeftUp/LeftDown, RightUp/RightDown,
/// LeftSwitchUp/Down, RightSwitchUp/Down, BackboneUp/Down).
Srn build_cluster_srn(const ClusterParams& params);

/// Explored MRM with the derived "premium"/"minimum" labels added.
/// "premium": both switches and the backbone are up and each side has at
/// least `premium_threshold` workstations operational.  "minimum": at
/// least `premium_threshold` workstations operational in total somewhere
/// reachable (either side locally, or both sides together through the
/// interconnect).
Mrm build_cluster_mrm(const ClusterParams& params);

}  // namespace csrl
