#include "models/synthetic.hpp"

#include <bit>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace csrl {

Mrm birth_death_mrm(std::size_t num_states, double birth_rate,
                    double death_rate) {
  if (num_states == 0) throw ModelError("birth_death_mrm: need >= 1 state");
  CsrBuilder rates(num_states, num_states);
  std::vector<double> rewards(num_states, 0.0);
  Labelling labelling(num_states);
  for (std::size_t i = 0; i < num_states; ++i) {
    if (i + 1 < num_states) rates.add(i, i + 1, birth_rate);
    if (i > 0) rates.add(i, i - 1, death_rate);
    rewards[i] = static_cast<double>(i);
  }
  labelling.add_label(0, "empty");
  labelling.add_label(num_states - 1, "full");
  return Mrm(Ctmc(rates.build()), std::move(rewards), std::move(labelling),
             /*initial_state=*/0);
}

Mrm pure_death_mrm(std::size_t num_states, double rate) {
  if (num_states == 0) throw ModelError("pure_death_mrm: need >= 1 state");
  CsrBuilder rates(num_states, num_states);
  std::vector<double> rewards(num_states, 0.0);
  Labelling labelling(num_states);
  for (std::size_t i = 1; i < num_states; ++i) {
    rates.add(i, i - 1, rate);
    rewards[i] = static_cast<double>(i);
  }
  labelling.add_label(0, "dead");
  labelling.add_label(num_states - 1, "fresh");
  return Mrm(Ctmc(rates.build()), std::move(rewards), std::move(labelling),
             num_states - 1);
}

Mrm tandem_queue_mrm(std::size_t capacity1, std::size_t capacity2,
                     double lambda, double mu1, double mu2) {
  const std::size_t w1 = capacity1 + 1;
  const std::size_t w2 = capacity2 + 1;
  const std::size_t n = w1 * w2;
  const auto id = [w2](std::size_t q1, std::size_t q2) { return q1 * w2 + q2; };

  CsrBuilder rates(n, n);
  std::vector<double> rewards(n, 0.0);
  Labelling labelling(n);
  for (std::size_t q1 = 0; q1 <= capacity1; ++q1) {
    for (std::size_t q2 = 0; q2 <= capacity2; ++q2) {
      const std::size_t s = id(q1, q2);
      rewards[s] = static_cast<double>(q1 + q2);
      if (q1 < capacity1) rates.add(s, id(q1 + 1, q2), lambda);
      if (q1 > 0 && q2 < capacity2) rates.add(s, id(q1 - 1, q2 + 1), mu1);
      if (q2 > 0) rates.add(s, id(q1, q2 - 1), mu2);
      if (q1 == 0 && q2 == 0) labelling.add_label(s, "empty");
      if (q1 == capacity1) labelling.add_label(s, "full1");
      if (q2 == capacity2) labelling.add_label(s, "full2");
      if (q1 == capacity1 && q2 == capacity2) labelling.add_label(s, "blocked");
    }
  }
  // Register all propositions even if some never hold for small capacities.
  for (const char* ap : {"empty", "full1", "full2", "blocked"})
    labelling.add_proposition(ap);
  return Mrm(Ctmc(rates.build()), std::move(rewards), std::move(labelling),
             /*initial_state=*/0);
}

Mrm independent_machines_mrm(std::size_t machines, double failure_rate,
                             double repair_rate) {
  if (machines == 0 || machines > 20)
    throw ModelError("independent_machines_mrm: need 1..20 machines");
  const std::size_t n = std::size_t{1} << machines;
  CsrBuilder rates(n, n);
  std::vector<double> rewards(n, 0.0);
  Labelling labelling(n);
  for (std::size_t mask = 0; mask < n; ++mask) {
    rewards[mask] = static_cast<double>(std::popcount(mask));
    for (std::size_t i = 0; i < machines; ++i) {
      const std::size_t bit = std::size_t{1} << i;
      if (mask & bit)
        rates.add(mask, mask & ~bit, failure_rate);
      else
        rates.add(mask, mask | bit, repair_rate);
    }
  }
  labelling.add_label(n - 1, "all_up");
  labelling.add_label(0, "all_down");
  return Mrm(Ctmc(rates.build()), std::move(rewards), std::move(labelling),
             n - 1);
}

Mrm random_mrm(std::uint64_t seed, std::size_t num_states, double density,
               double max_rate, std::uint32_t max_reward) {
  if (num_states == 0) throw ModelError("random_mrm: need >= 1 state");
  SplitMix64 rng(seed);

  CsrBuilder rates(num_states, num_states);
  std::vector<double> rewards(num_states, 0.0);
  Labelling labelling(num_states);
  labelling.add_proposition("a");
  labelling.add_proposition("b");

  for (std::size_t s = 0; s < num_states; ++s) {
    rewards[s] = static_cast<double>(rng.next_below(max_reward + 1));
    if (rng.next_double() < 0.5) labelling.add_label(s, "a");
    if (rng.next_double() < 0.5) labelling.add_label(s, "b");

    if (num_states == 1) continue;
    const auto extra = static_cast<std::size_t>(
        density * static_cast<double>(num_states - 1));
    const std::size_t degree = 1 + rng.next_below(extra + 1);
    for (std::size_t e = 0; e < degree; ++e) {
      std::size_t target = rng.next_below(num_states - 1);
      if (target >= s) ++target;  // no self-loops, keeps models aperiodic
      rates.add(s, target, rng.next_double(0.05, max_rate));
    }
  }
  return Mrm(Ctmc(rates.build()), std::move(rewards), std::move(labelling),
             /*initial_state=*/0);
}

Mrm replicated_mrm(const Mrm& base, std::size_t clones) {
  if (clones == 0) throw ModelError("replicated_mrm: need >= 1 clone");
  const std::size_t n = base.num_states();
  const std::size_t total = clones * n;
  CsrBuilder rates(total, total);
  CsrBuilder impulses(total, total);
  std::vector<double> rewards(total, 0.0);
  Labelling labelling(total);
  for (const std::string& name : base.labelling().propositions())
    labelling.add_proposition(name);
  std::vector<double> initial(total, 0.0);
  const double share = 1.0 / static_cast<double>(clones);
  for (std::size_t c = 0; c < clones; ++c) {
    const std::size_t offset = c * n;
    for (std::size_t s = 0; s < n; ++s) {
      for (const CsrEntry& e : base.rates().row_unchecked(s))
        rates.add(offset + s, offset + e.col, e.value);
      if (base.has_impulse_rewards())
        for (const CsrEntry& e : base.impulse_rewards().row_unchecked(s))
          impulses.add(offset + s, offset + e.col, e.value);
      rewards[offset + s] = base.reward(s);
      for (const std::string& name : base.labelling().labels_of(s))
        labelling.add_label(offset + s, name);
      initial[offset + s] = base.initial_distribution()[s] * share;
    }
  }
  Mrm replicated(Ctmc(rates.build()), std::move(rewards),
                 std::move(labelling), std::move(initial));
  if (base.has_impulse_rewards())
    replicated = replicated.with_impulses(impulses.build());
  return replicated;
}

}  // namespace csrl
