#include "models/cluster.hpp"

#include "util/error.hpp"

namespace csrl {

Srn build_cluster_srn(const ClusterParams& params) {
  const auto n = static_cast<std::uint32_t>(params.workstations_per_side);
  if (n == 0) throw ModelError("build_cluster_srn: need >= 1 workstation");

  Srn net;
  const PlaceId left_up = net.add_place("LeftUp", n);
  const PlaceId left_down = net.add_place("LeftDown");
  const PlaceId right_up = net.add_place("RightUp", n);
  const PlaceId right_down = net.add_place("RightDown");
  const PlaceId lswitch_up = net.add_place("LeftSwitchUp", 1);
  const PlaceId lswitch_down = net.add_place("LeftSwitchDown");
  const PlaceId rswitch_up = net.add_place("RightSwitchUp", 1);
  const PlaceId rswitch_down = net.add_place("RightSwitchDown");
  const PlaceId backbone_up = net.add_place("BackboneUp", 1);
  const PlaceId backbone_down = net.add_place("BackboneDown");

  // Reward: delivered computational capacity = operational workstations.
  net.set_place_reward(left_up, 1.0);
  net.set_place_reward(right_up, 1.0);

  // Fail/repair pair for a component pool; workstation failure rates scale
  // with the number of operational units.
  const auto fail_repair = [&net](const char* prefix, PlaceId up, PlaceId down,
                                  double fail_rate, double repair_rate,
                                  bool scale_with_tokens) {
    const TransitionId fail =
        net.add_transition(std::string(prefix) + "_fail", fail_rate);
    net.add_input_arc(fail, up);
    net.add_output_arc(fail, down);
    if (scale_with_tokens) {
      const std::size_t up_index = up.index;
      net.set_rate_function(fail, [up_index](const Marking& m) {
        return static_cast<double>(m[up_index]);
      });
    }
    const TransitionId repair =
        net.add_transition(std::string(prefix) + "_repair", repair_rate);
    net.add_input_arc(repair, down);
    net.add_output_arc(repair, up);
  };

  fail_repair("left_ws", left_up, left_down, params.workstation_failure_rate,
              params.repair_rate, /*scale_with_tokens=*/true);
  fail_repair("right_ws", right_up, right_down, params.workstation_failure_rate,
              params.repair_rate, /*scale_with_tokens=*/true);
  fail_repair("left_switch", lswitch_up, lswitch_down,
              params.switch_failure_rate, params.repair_rate, false);
  fail_repair("right_switch", rswitch_up, rswitch_down,
              params.switch_failure_rate, params.repair_rate, false);
  fail_repair("backbone", backbone_up, backbone_down,
              params.backbone_failure_rate, params.repair_rate, false);

  return net;
}

Mrm build_cluster_mrm(const ClusterParams& params) {
  const Srn net = build_cluster_srn(params);
  const ReachabilityGraph graph = explore(net);
  const Mrm& base = graph.model;

  // Place indices as laid out in build_cluster_srn.
  constexpr std::size_t kLeftUp = 0;
  constexpr std::size_t kRightUp = 2;
  constexpr std::size_t kLeftSwitchUp = 4;
  constexpr std::size_t kRightSwitchUp = 6;
  constexpr std::size_t kBackboneUp = 8;
  const std::uint32_t k = static_cast<std::uint32_t>(params.premium_threshold);

  Labelling labelling(base.num_states());
  for (std::size_t s = 0; s < base.num_states(); ++s) {
    for (const std::string& ap : base.labelling().labels_of(s))
      labelling.add_label(s, ap);

    const Marking& m = graph.markings[s];
    const bool interconnect = m[kLeftSwitchUp] > 0 && m[kRightSwitchUp] > 0 &&
                              m[kBackboneUp] > 0;
    const bool premium = interconnect && m[kLeftUp] >= k && m[kRightUp] >= k;
    // Minimum service: k workstations reachable from one switch — either
    // one side alone, or both sides pooled across a working interconnect.
    const bool minimum =
        (m[kLeftSwitchUp] > 0 && m[kLeftUp] >= k) ||
        (m[kRightSwitchUp] > 0 && m[kRightUp] >= k) ||
        (interconnect && m[kLeftUp] + m[kRightUp] >= k);
    if (premium) labelling.add_label(s, "premium");
    if (minimum) labelling.add_label(s, "minimum");
  }
  labelling.add_proposition("premium");
  labelling.add_proposition("minimum");

  return Mrm(Ctmc(base.rates()), base.rewards(), std::move(labelling),
             base.initial_distribution());
}

}  // namespace csrl
