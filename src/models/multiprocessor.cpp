#include "models/multiprocessor.hpp"

#include "util/error.hpp"

namespace csrl {

Mrm multiprocessor_mrm(const MultiprocessorParams& params) {
  const std::size_t n = params.processors;
  if (n == 0) throw ModelError("multiprocessor_mrm: need >= 1 processor");
  if (!(params.coverage >= 0.0 && params.coverage <= 1.0))
    throw ModelError("multiprocessor_mrm: coverage must lie in [0, 1]");

  // State i = number of operational processors; index i in 0..n.
  const std::size_t num_states = n + 1;
  CsrBuilder rates(num_states, num_states);
  std::vector<double> rewards(num_states, 0.0);
  Labelling labelling(num_states);

  for (std::size_t i = 0; i <= n; ++i) {
    rewards[i] = static_cast<double>(i);
    if (i > 0) {
      const double total_failure = params.failure_rate * static_cast<double>(i);
      if (i == 1) {
        // Covered or not, losing the last processor takes the system down.
        rates.add(1, 0, total_failure);
      } else {
        if (params.coverage > 0.0)
          rates.add(i, i - 1, total_failure * params.coverage);
        if (params.coverage < 1.0)
          rates.add(i, 0, total_failure * (1.0 - params.coverage));
      }
      labelling.add_label(i, "operational");
      if (i < n) labelling.add_label(i, "degraded");
    }
    if (i < n) rates.add(i, i + 1, params.repair_rate);
  }
  labelling.add_label(n, "all_up");
  labelling.add_label(0, "down");

  return Mrm(Ctmc(rates.build()), std::move(rewards), std::move(labelling),
             /*initial_state=*/n);
}

}  // namespace csrl
