// Synthetic model generators for tests, examples and benches.
#pragma once

#include <cstdint>

#include "mrm/mrm.hpp"

namespace csrl {

/// Birth-death chain on {0, ..., n-1} with constant birth/death rates.
/// Reward of state i is i (e.g. "jobs in service").  Labels: "empty" on
/// state 0, "full" on state n-1.
Mrm birth_death_mrm(std::size_t num_states, double birth_rate,
                    double death_rate);

/// Pure death chain: starts in state n-1 and steps down to the absorbing
/// state 0 at `rate`.  The hitting time of "dead" (state 0) is
/// Erlang(n-1, rate), giving closed forms for tests.  Reward of state i
/// is i.
Mrm pure_death_mrm(std::size_t num_states, double rate);

/// Two M/M/1 queues in tandem with finite capacities; arrivals `lambda`,
/// service rates `mu1`, `mu2`.  Arrivals and stage-1 completions are lost
/// when the target queue is full.  Reward: total number of jobs in the
/// system (holding cost).  Labels: "empty", "full1", "full2", "blocked"
/// (both full).
Mrm tandem_queue_mrm(std::size_t capacity1, std::size_t capacity2,
                     double lambda, double mu1, double mu2);

/// `machines` independent identical fail/repair components; the state is
/// the set of operational machines (2^machines states), the reward the
/// number of operational ones.  Labels: "all_up", "all_down".  The model
/// is fully symmetric, so lumping collapses it to machines+1 blocks — the
/// showcase workload of bench_ablation_lumping.
Mrm independent_machines_mrm(std::size_t machines, double failure_rate,
                             double repair_rate);

/// Pseudo-random MRM for property-based tests: `num_states` states, each
/// non-final state gets 1 + ~density*(n-1) outgoing transitions with rates
/// in (0, max_rate]; rewards are integers in {0, ..., max_reward} (integer
/// so the discretisation engine applies); every state is labelled with a
/// random subset of {"a", "b"}; state 0 is initial.  Deterministic in
/// `seed`.
Mrm random_mrm(std::uint64_t seed, std::size_t num_states, double density,
               double max_rate = 4.0, std::uint32_t max_reward = 3);

/// `clones` disjoint copies of `base` glued into one MRM: state (c, s)
/// is index c * base.num_states() + s, transitions (rates and impulses)
/// stay within a clone, rewards and labels are copied, and the initial
/// mass is split equally over the clones.  Every clone copy of a state
/// is ordinarily lumpable with its siblings, and because transitions
/// never cross clones each copy's CSR row equals the base row entry for
/// entry — the workhorse model of the lumping differential tests, where
/// it makes quotient-vs-full comparisons tight to FP noise rather than
/// engine truncation.  Use a power-of-two clone count so the 1/clones
/// initial masses are exact.
Mrm replicated_mrm(const Mrm& base, std::size_t clones);

}  // namespace csrl
