#include "models/adhoc.hpp"

namespace csrl {

Srn build_adhoc_srn() {
  Srn net;

  // Places; initial marking: both threads idle (Table 1 rewards in mA).
  const PlaceId call_idle = net.add_place("Call_Idle", 1);
  const PlaceId call_initiated = net.add_place("Call_Initiated");
  const PlaceId call_active = net.add_place("Call_Active");
  const PlaceId call_incoming = net.add_place("Call_Incoming");
  const PlaceId adhoc_idle = net.add_place("Ad_hoc_Idle", 1);
  const PlaceId adhoc_active = net.add_place("Ad_hoc_Active");
  const PlaceId doze = net.add_place("Doze");

  net.set_place_reward(call_idle, 50.0);
  net.set_place_reward(call_initiated, 150.0);
  net.set_place_reward(call_active, 200.0);
  net.set_place_reward(call_incoming, 150.0);
  net.set_place_reward(adhoc_idle, 50.0);
  net.set_place_reward(adhoc_active, 150.0);
  net.set_place_reward(doze, 20.0);

  // Helper: a transition moving one token `from` -> `to`.
  const auto move = [&net](const char* name, double rate, PlaceId from,
                           PlaceId to) {
    const TransitionId t = net.add_transition(name, rate);
    net.add_input_arc(t, from);
    net.add_output_arc(t, to);
    return t;
  };

  // Ordinary-call thread (rates per hour, Table 1).
  move("launch", 0.75, call_idle, call_initiated);
  move("ring", 0.75, call_idle, call_incoming);
  move("connect", 360.0, call_initiated, call_active);
  move("give_up", 60.0, call_initiated, call_idle);
  move("accept", 180.0, call_incoming, call_active);
  move("interrupt", 60.0, call_incoming, call_idle);
  move("disconnect", 15.0, call_active, call_idle);

  // Ad hoc thread.
  move("request", 6.0, adhoc_idle, adhoc_active);
  move("reconfirm", 15.0, adhoc_active, adhoc_idle);

  // Doze mode: only when both threads are idle; waking up restores them.
  const TransitionId doze_t = net.add_transition("doze", 12.0);
  net.add_input_arc(doze_t, call_idle);
  net.add_input_arc(doze_t, adhoc_idle);
  net.add_output_arc(doze_t, doze);

  const TransitionId wake_t = net.add_transition("wake_up", 3.75);
  net.add_input_arc(wake_t, doze);
  net.add_output_arc(wake_t, call_idle);
  net.add_output_arc(wake_t, adhoc_idle);

  return net;
}

ReachabilityGraph build_adhoc_graph() { return explore(build_adhoc_srn()); }

Mrm build_adhoc_mrm() { return build_adhoc_graph().model; }

Mrm build_q3_reduced_mrm() {
  // States: 0 = Doze, 1 = (Call_Idle, Ad_hoc_Idle),
  //         2 = (Call_Idle, Ad_hoc_Active), 3 = success, 4 = fail.
  constexpr std::size_t kDoze = 0;
  constexpr std::size_t kBothIdle = 1;
  constexpr std::size_t kAdhocBusy = 2;
  constexpr std::size_t kSuccess = 3;
  constexpr std::size_t kFail = 4;

  CsrBuilder rates(5, 5);
  rates.add(kDoze, kBothIdle, 3.75);       // wake_up
  rates.add(kBothIdle, kDoze, 12.0);       // doze
  rates.add(kBothIdle, kAdhocBusy, 6.0);   // request
  rates.add(kAdhocBusy, kBothIdle, 15.0);  // reconfirm
  rates.add(kBothIdle, kSuccess, 0.75);    // launch
  rates.add(kBothIdle, kFail, 0.75);       // ring
  rates.add(kAdhocBusy, kSuccess, 0.75);   // launch
  rates.add(kAdhocBusy, kFail, 0.75);      // ring

  // Rewards: Doze 20; Call_Idle + Ad_hoc_Idle = 100;
  // Call_Idle + Ad_hoc_Active = 200; absorbing states earn 0 (Theorem 1).
  std::vector<double> rewards{20.0, 100.0, 200.0, 0.0, 0.0};

  Labelling labelling(5);
  labelling.add_label(kDoze, "Doze");
  labelling.add_label(kBothIdle, "Call_Idle");
  labelling.add_label(kAdhocBusy, "Call_Idle");
  labelling.add_label(kAdhocBusy, "Ad_hoc_Active");
  labelling.add_label(kSuccess, "success");
  labelling.add_label(kFail, "fail");

  return Mrm(Ctmc(rates.build()), std::move(rewards), std::move(labelling),
             kBothIdle);
}

}  // namespace csrl
