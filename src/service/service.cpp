#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "core/checker.hpp"
#include "util/error.hpp"

namespace csrl {
namespace service {

namespace {

/// Position of `value` in a sorted-unique axis built from values that
/// include it — exact double comparison is correct here because the axis
/// entries are bit-copies of the queries' own bounds.
std::size_t axis_index(const std::vector<double>& axis, double value) {
  return static_cast<std::size_t>(
      std::lower_bound(axis.begin(), axis.end(), value) - axis.begin());
}

}  // namespace

std::string to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kParseError:
      return "parse_error";
    case QueryStatus::kUnknownModel:
      return "unknown_model";
    case QueryStatus::kRejected:
      return "rejected";
    case QueryStatus::kShutdown:
      return "shutdown";
    case QueryStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

CheckerService::CheckerService(ServiceOptions options)
    : options_(std::move(options)),
      sat_cache_(std::make_shared<SatCache>()),
      metrics_before_(obs::snapshot_metrics()) {
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

CheckerService::~CheckerService() { shutdown(/*drain=*/true); }

ModelId CheckerService::register_model(Mrm model) {
  return registry_.add(std::move(model), options_.check);
}

ModelId CheckerService::register_model(std::shared_ptr<const Mrm> model) {
  return registry_.add(std::move(model), options_.check);
}

bool CheckerService::has_model(ModelId id) const {
  return registry_.find(id) != nullptr;
}

std::size_t CheckerService::num_models() const { return registry_.size(); }

std::future<QueryResult> CheckerService::submit(ModelId model,
                                                std::string_view query) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Pending pending;
  std::future<QueryResult> future = pending.promise.get_future();

  try {
    pending.plan = plan_query(query);
  } catch (const Error& e) {
    QueryResult result;
    result.status = QueryStatus::kParseError;
    result.error = e.what();
    deliver(pending, std::move(result));
    return future;
  }

  pending.artifacts = registry_.find(model);
  if (!pending.artifacts) {
    QueryResult result;
    result.status = QueryStatus::kUnknownModel;
    result.error = "model not registered with the service";
    deliver(pending, std::move(result));
    return future;
  }

  pending.since_submit.reset();
  QueryStatus verdict = QueryStatus::kOk;
  {
    MutexLock lock(mutex_);
    if (!accepting_) {
      verdict = QueryStatus::kShutdown;
    } else if (total_pending_ >= options_.max_pending) {
      verdict = QueryStatus::kRejected;
    } else {
      const auto emplaced = queues_.try_emplace(model);
      if (emplaced.second) queue_order_.push_back(model);
      emplaced.first->second.push_back(std::move(pending));
      ++total_pending_;
    }
  }

  if (verdict == QueryStatus::kOk) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    work_cv_.notify_one();
    return future;
  }

  QueryResult result;
  result.status = verdict;
  result.error = verdict == QueryStatus::kRejected
                     ? "admission queue full (backpressure)"
                     : "service is shutting down";
  deliver(pending, std::move(result));
  return future;
}

QueryResult CheckerService::query(ModelId model, std::string_view text) {
  std::future<QueryResult> future = submit(model, text);
  if (workers_.empty()) drain_now();
  return future.get();
}

void CheckerService::drain_now() {
  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(mutex_);
      if (total_pending_ == 0) return;
      batch = take_next_batch_locked();
      ++active_batches_;
    }
    execute_batch(batch);
    MutexLock lock(mutex_);
    --active_batches_;
    if (total_pending_ == 0 && active_batches_ == 0) idle_cv_.notify_all();
  }
}

void CheckerService::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && total_pending_ == 0) work_cv_.wait(mutex_);
      if (total_pending_ == 0) return;  // stopping and fully drained
      batch = take_next_batch_locked();
      ++active_batches_;
    }
    execute_batch(batch);
    MutexLock lock(mutex_);
    --active_batches_;
    if (total_pending_ == 0 && active_batches_ == 0) idle_cv_.notify_all();
  }
}

void CheckerService::shutdown(bool drain) {
  std::vector<Pending> cancelled;
  {
    MutexLock lock(mutex_);
    accepting_ = false;
    if (!drain) {
      for (ModelId id : queue_order_) {
        const auto it = queues_.find(id);
        if (it == queues_.end()) continue;
        while (!it->second.empty()) {
          cancelled.push_back(std::move(it->second.front()));
          it->second.pop_front();
        }
      }
      total_pending_ = 0;
    }
  }
  for (Pending& pending : cancelled) {
    QueryResult result;
    result.status = QueryStatus::kShutdown;
    result.error = "cancelled by shutdown";
    deliver(pending, std::move(result));
  }

  // Finish what remains: inline when there are no workers, else wait for
  // them.  In-flight batches complete in both modes.
  if (drain && workers_.empty()) drain_now();
  {
    MutexLock lock(mutex_);
    while (total_pending_ > 0 || active_batches_ > 0) idle_cv_.wait(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
}

std::vector<CheckerService::Pending> CheckerService::take_next_batch_locked() {
  std::vector<Pending> batch;
  const std::size_t ring = queue_order_.size();
  for (std::size_t probe = 0; probe < ring; ++probe) {
    const std::size_t index = (next_model_ + probe) % ring;
    const auto it = queues_.find(queue_order_[index]);
    if (it == queues_.end() || it->second.empty()) continue;
    // Fairness: the next take starts scanning after the model served now,
    // so a flood on one model cannot starve the others.
    next_model_ = (index + 1) % ring;
    std::deque<Pending>& queue = it->second;
    batch.push_back(std::move(queue.front()));
    queue.pop_front();
    if (batch.front().plan.kind == PlanKind::kLattice) {
      // Coalesce: every queued query of this model with the same formula
      // skeleton joins the head's lattice pass (hash first, canonical
      // form as the collision-proof identity).
      const std::uint64_t key_hash = batch.front().plan.skeleton_hash;
      const std::string key = batch.front().plan.skeleton;
      const std::size_t cap =
          options_.max_batch == 0 ? queue.size() + 1 : options_.max_batch;
      for (auto member = queue.begin();
           member != queue.end() && batch.size() < cap;) {
        if (member->plan.kind == PlanKind::kLattice &&
            member->plan.skeleton_hash == key_hash &&
            member->plan.skeleton == key) {
          batch.push_back(std::move(*member));
          member = queue.erase(member);
        } else {
          ++member;
        }
      }
    }
    total_pending_ -= batch.size();
    break;
  }
  return batch;
}

void CheckerService::execute_batch(std::vector<Pending>& batch) {
  const std::uint64_t seq =
      serve_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  batches_.fetch_add(1, std::memory_order_relaxed);
  CSRL_SPAN("service/batch");
  CSRL_COUNT("service/batches", 1);

  QueryResult base;
  base.serve_seq = seq;
  base.batch_clients = batch.size();
  base.coalesced = batch.size() > 1;
  if (base.coalesced) {
    coalesced_queries_.fetch_add(batch.size(), std::memory_order_relaxed);
    CSRL_COUNT("service/queries/coalesced", batch.size());
  }

  try {
    Checker checker(batch.front().artifacts, options_.check, sat_cache_);
    if (batch.front().plan.kind == PlanKind::kDirect) {
      Pending& pending = batch.front();
      QueryResult result = base;
      result.status = QueryStatus::kOk;
      result.value = checker.value_initially(*pending.plan.formula);
      result.truth = result.value != 0.0;
      deliver(pending, std::move(result));
      return;
    }

    lattice_passes_.fetch_add(1, std::memory_order_relaxed);
    BatchQuery query;
    query.phi = batch.front().plan.phi;
    query.psi = batch.front().plan.psi;
    query.times.reserve(batch.size());
    query.rewards.reserve(batch.size());
    for (const Pending& pending : batch) {
      query.times.push_back(pending.plan.time_bound);
      query.rewards.push_back(pending.plan.reward_bound);
    }
    std::sort(query.times.begin(), query.times.end());
    query.times.erase(std::unique(query.times.begin(), query.times.end()),
                      query.times.end());
    std::sort(query.rewards.begin(), query.rewards.end());
    query.rewards.erase(
        std::unique(query.rewards.begin(), query.rewards.end()),
        query.rewards.end());

    const BatchResult grid = checker.until_grid(query);
    const std::uint64_t cells = static_cast<std::uint64_t>(
        query.times.size() * query.rewards.size());
    lattice_cells_.fetch_add(cells, std::memory_order_relaxed);
    CSRL_COUNT("service/lattice/passes", 1);
    CSRL_COUNT("service/lattice/cells", cells);

    for (Pending& pending : batch) {
      QueryResult result = base;
      result.status = QueryStatus::kOk;
      result.value =
          grid.value_at(axis_index(grid.times, pending.plan.time_bound),
                        axis_index(grid.rewards, pending.plan.reward_bound));
      result.truth =
          pending.plan.is_value_query
              ? result.value != 0.0
              : compare(pending.plan.comparison, result.value,
                        pending.plan.probability_bound);
      deliver(pending, std::move(result));
    }
  } catch (const std::exception& e) {
    for (Pending& pending : batch) {
      if (pending.delivered) continue;
      QueryResult result = base;
      result.status = QueryStatus::kFailed;
      result.error = e.what();
      deliver(pending, std::move(result));
    }
  }
}

void CheckerService::deliver(Pending& pending, QueryResult result) {
  result.latency_seconds = pending.since_submit.seconds();
  switch (result.status) {
    case QueryStatus::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kParseError:
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kUnknownModel:
      unknown_model_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kShutdown:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  CSRL_COUNT("service/queries/completed", 1);
  CSRL_HIST("service/latency/query", result.latency_seconds);
  pending.delivered = true;
  pending.promise.set_value(std::move(result));
}

ServiceStats CheckerService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  stats.unknown_model = unknown_model_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.lattice_passes = lattice_passes_.load(std::memory_order_relaxed);
  stats.lattice_cells = lattice_cells_.load(std::memory_order_relaxed);
  stats.coalesced_queries =
      coalesced_queries_.load(std::memory_order_relaxed);
  return stats;
}

obs::RunReport CheckerService::report() const {
  obs::RunReport report;
  report.engine = "service";
  for (ModelId id : registry_.ids()) {
    const std::shared_ptr<const ModelArtifacts> artifacts = registry_.find(id);
    if (!artifacts) continue;
    report.states += artifacts->model()->num_states();
    report.transitions += artifacts->model()->rates().nnz();
  }
  report.truncation_error = engine_truncation_error(options_.check);
  report.wall_seconds = uptime_.seconds();
  const obs::MetricsSnapshot after = obs::snapshot_metrics();
  report.metrics = obs::metrics_delta(metrics_before_, after);
  obs::populate_metric_fields(report, after, "service/latency/query");
  return report;
}

}  // namespace service
}  // namespace csrl
