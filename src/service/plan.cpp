#include "service/plan.hpp"

#include "logic/parser.hpp"
#include "util/hash.hpp"

namespace csrl {
namespace service {

QueryPlan plan_query(std::string_view text) {
  QueryPlan plan;
  plan.formula = parse_formula(text);

  // The coalescible shape: a probability root over a plain until whose
  // two intervals are both anchored at 0 with finite upper bounds —
  // exactly the P3 fragment Checker::until_grid evaluates on a lattice.
  const Formula& f = *plan.formula;
  if (f.kind() != FormulaKind::kProb) return plan;
  const PathFormula& path = *f.path();
  if (path.kind() != PathKind::kUntil) return plan;
  const Interval& time = path.time();
  const Interval& reward = path.reward();
  if (time.lo != 0.0 || reward.lo != 0.0) return plan;
  if (!time.has_upper_bound() || !reward.has_upper_bound()) return plan;

  plan.kind = PlanKind::kLattice;
  plan.phi = path.lhs();
  plan.psi = path.target();
  plan.time_bound = time.hi;
  plan.reward_bound = reward.hi;
  plan.is_value_query = f.is_query();
  if (!f.is_query()) {
    plan.comparison = f.comparison();
    plan.probability_bound = f.bound();
  }
  plan.skeleton_hash =
      hashing::mix(hashing::mix(hashing::kOffset, plan.phi->hash()),
                   plan.psi->hash());
  plan.skeleton = plan.phi->to_string() + " U " + plan.psi->to_string();
  return plan;
}

}  // namespace service
}  // namespace csrl
