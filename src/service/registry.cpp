#include "service/registry.hpp"

#include <utility>

#include "obs/obs.hpp"

namespace csrl {
namespace service {

ModelId ModelRegistry::add(std::shared_ptr<const Mrm> model,
                           const CheckOptions& options) {
  // Probe by fingerprint first: the fingerprint walk is O(nnz), but the
  // artifact build on top of it may also lump and reorder — re-running
  // those on a model every session registers would defeat the whole
  // point of the shared-artifact design.  A lost race between two
  // first-time registrations of the same model just discards one of the
  // two identical artifacts.
  const ModelId id = model->fingerprint();
  {
    MutexLock lock(mutex_);
    for (const Entry& entry : entries_)
      if (entry.id == id) return id;
  }
  // Build outside the lock: artifact construction walks the whole model
  // (fingerprint, optional lumping quotient, optional RCM), and
  // registration must not stall lookups.
  std::shared_ptr<const ModelArtifacts> artifacts =
      ModelArtifacts::build(std::move(model), options);
  bool fresh = false;
  {
    MutexLock lock(mutex_);
    bool known = false;
    for (const Entry& entry : entries_)
      if (entry.id == id) known = true;
    if (!known) {
      entries_.push_back({id, std::move(artifacts)});
      fresh = true;
    }
  }
  if (fresh) CSRL_COUNT("service/registry/registered", 1);
  return id;
}

ModelId ModelRegistry::add(Mrm model, const CheckOptions& options) {
  return add(std::make_shared<const Mrm>(std::move(model)), options);
}

std::shared_ptr<const ModelArtifacts> ModelRegistry::find(ModelId id) const {
  MutexLock lock(mutex_);
  for (const Entry& entry : entries_)
    if (entry.id == id) return entry.artifacts;
  return nullptr;
}

std::vector<ModelId> ModelRegistry::ids() const {
  MutexLock lock(mutex_);
  std::vector<ModelId> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.id);
  return out;
}

std::size_t ModelRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace service
}  // namespace csrl
