#include "service/registry.hpp"

#include <utility>

#include "obs/obs.hpp"

namespace csrl {
namespace service {

ModelId ModelRegistry::add(std::shared_ptr<const Mrm> model,
                           const CheckOptions& options) {
  // Build outside the lock: artifact construction walks the whole model
  // (fingerprint, optional RCM), and registration must not stall lookups.
  std::shared_ptr<const ModelArtifacts> artifacts =
      ModelArtifacts::build(std::move(model), options);
  const ModelId id = artifacts->fingerprint();
  bool fresh = false;
  {
    MutexLock lock(mutex_);
    bool known = false;
    for (const Entry& entry : entries_)
      if (entry.id == id) known = true;
    if (!known) {
      entries_.push_back({id, std::move(artifacts)});
      fresh = true;
    }
  }
  if (fresh) CSRL_COUNT("service/registry/registered", 1);
  return id;
}

ModelId ModelRegistry::add(Mrm model, const CheckOptions& options) {
  return add(std::make_shared<const Mrm>(std::move(model)), options);
}

std::shared_ptr<const ModelArtifacts> ModelRegistry::find(ModelId id) const {
  MutexLock lock(mutex_);
  for (const Entry& entry : entries_)
    if (entry.id == id) return entry.artifacts;
  return nullptr;
}

std::vector<ModelId> ModelRegistry::ids() const {
  MutexLock lock(mutex_);
  std::vector<ModelId> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.id);
  return out;
}

std::size_t ModelRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace service
}  // namespace csrl
