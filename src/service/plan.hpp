// Query planning for the resident checker service.
//
// The service front-end accepts textual CSRL queries.  Planning parses
// the text (logic/parser.hpp) and classifies the result by how the
// service will execute it:
//
//   * kLattice — a P3 *point* query P~p[ Phi U[0,t]{0,r} Psi ] (or the
//     quantitative P=? form, or the F sugar): one cell of a times x
//     rewards lattice.  All in-flight lattice queries that agree on the
//     model and on the *formula skeleton* — the (Phi, Psi) operand pair
//     with the numeric bounds stripped — are coalesced into a single
//     Checker::until_grid pass whose cells are scattered back to the
//     waiting clients.  PR 4's batching theorem makes every cell bitwise
//     identical to the per-client point check, so coalescing is purely a
//     scheduling decision, never a numerical one.
//
//   * kDirect — everything else (boolean combinations, steady-state and
//     reward operators, unbounded or interval untils, Next, ...): one
//     per-query Checker evaluation.
//
// The skeleton identity is the canonical printed form of the operand
// pair (collision-proof, like SatCache entries); the structural hash is
// the cheap first-pass key.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "logic/formula.hpp"

namespace csrl {
namespace service {

enum class PlanKind {
  kLattice,  // coalescible P3 point query
  kDirect,   // per-query evaluation
};

/// A parsed query plus the execution route chosen for it.
struct QueryPlan {
  PlanKind kind = PlanKind::kDirect;

  /// The parsed root formula (always set).
  FormulaPtr formula;

  // kLattice only ---------------------------------------------------------
  /// Operands of the until; phi is the paper's "true" formula for the F
  /// sugar (never null for a lattice plan).
  FormulaPtr phi;
  FormulaPtr psi;
  /// The query's lattice cell: upper time and reward bounds.
  double time_bound = 0.0;
  double reward_bound = 0.0;
  /// P=? (value query) vs P~p (verdict query).
  bool is_value_query = false;
  Comparison comparison = Comparison::kGreaterEqual;
  double probability_bound = 0.0;
  /// Coalescing key within one model: cheap hash + collision-proof
  /// canonical form of the (phi, psi) skeleton.
  std::uint64_t skeleton_hash = 0;
  std::string skeleton;
};

/// Parse `text` and choose the execution route.  Throws SyntaxError on
/// malformed input (the service front-end turns that into a parse-error
/// verdict; nothing malformed ever reaches a worker).
QueryPlan plan_query(std::string_view text);

}  // namespace service
}  // namespace csrl
