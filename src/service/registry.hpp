// Model registry of the resident checker service.
//
// Registered models become immutable shared artifacts (core/artifacts.hpp:
// the model, its bit-exact fingerprint, optional RCM reordering), keyed by
// Mrm::fingerprint.  The fingerprint doubles as the client-visible model
// id: registering the bit-identical model twice yields the same id and the
// same artifact (idempotent — two clients uploading the same model share
// everything), and a changed model necessarily gets a new id, so stale
// handles can never alias a different model's artifacts.
//
// Thread-safe: registration and lookup run under an internal mutex; the
// artifacts themselves are immutable, so lookups hand out shared_ptrs
// that stay valid regardless of later registrations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/artifacts.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace csrl {
namespace service {

/// Client-visible model handle: the model's bit-exact fingerprint.
using ModelId = std::uint64_t;

class ModelRegistry {
 public:
  /// Register a model (idempotent on bit-identical models); returns its
  /// id.  `options` contributes structural knobs to the artifact build
  /// (see ModelArtifacts::build); a re-registration reuses the existing
  /// artifact and ignores `options`.
  ModelId add(std::shared_ptr<const Mrm> model,
              const CheckOptions& options = {}) CSRL_EXCLUDES(mutex_);
  ModelId add(Mrm model, const CheckOptions& options = {})
      CSRL_EXCLUDES(mutex_);

  /// The artifact registered under `id`, or null.
  std::shared_ptr<const ModelArtifacts> find(ModelId id) const
      CSRL_EXCLUDES(mutex_);

  /// Registered ids in registration order — the deterministic iteration
  /// order the service's fairness round-robin walks.
  std::vector<ModelId> ids() const CSRL_EXCLUDES(mutex_);

  std::size_t size() const CSRL_EXCLUDES(mutex_);

 private:
  struct Entry {
    ModelId id = 0;
    std::shared_ptr<const ModelArtifacts> artifacts;
  };

  mutable Mutex mutex_;
  // Registration order; linear scans are fine — a resident process
  // serves many queries per registered model, and lookups dominate.
  std::vector<Entry> entries_ CSRL_GUARDED_BY(mutex_);
};

}  // namespace service
}  // namespace csrl
