// Resident checker service: concurrent multi-client query serving with
// cross-client lattice coalescing (DESIGN.md section 3i).
//
// Everything below core/ is a one-shot library call; this layer is the
// long-lived process around it.  A CheckerService owns
//
//   * a ModelRegistry of immutable shared per-model artifacts keyed by
//     the bit-exact Mrm::fingerprint (service/registry.hpp),
//   * one process-wide SatCache shared by every checker the service
//     builds, so Sat sets memoised for one client serve all of them,
//   * a bounded admission queue with per-model round-robin fairness and
//     explicit backpressure verdicts (a full queue answers kRejected
//     immediately; it never blocks the client or silently drops work),
//   * worker threads that drain the queue and — the point of the layer —
//     COALESCE in-flight P3 point queries agreeing on (model, formula
//     skeleton) into one Checker::until_grid lattice pass whose cells
//     are scattered back to the waiting clients.  PR 4 measured a 10x
//     SpMV reduction when a lattice is batched by hand; the service
//     makes that reduction happen automatically across unrelated
//     clients, and PR 4's bitwise contract (a point query is its own
//     1 x 1 grid through the same code path) guarantees every client
//     receives exactly the bits a private Checker::check would have
//     produced.
//
// Threading model: the service's workers are dedicated coordination
// threads — they block on the queue's condition variable, which pool
// lanes must never do.  All numerical work they trigger runs on the
// PR 1 shared ThreadPool through the ordinary kernels, so compute
// parallelism and its bit-determinism guarantees are unchanged.
//
// Shutdown: shutdown(/*drain=*/true) (and the destructor) stops
// admission, lets queued and in-flight queries finish, then joins the
// workers; shutdown(false) instead fails queued queries with kShutdown
// verdicts (in-flight batches still complete — a lattice pass is never
// abandoned halfway).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/batch.hpp"
#include "core/options.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "service/plan.hpp"
#include "service/registry.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace csrl {
namespace service {

/// Terminal verdict of one submitted query.
enum class QueryStatus {
  kOk,            // evaluated; value/truth are valid
  kParseError,    // the query text does not parse (error has the details)
  kUnknownModel,  // the model id is not registered
  kRejected,      // admission backpressure: the bounded queue was full
  kShutdown,      // cancelled by a non-draining shutdown
  kFailed,        // evaluation threw (error has the details)
};

/// Stable lower-case label ("ok", "parse_error", ...).
std::string to_string(QueryStatus status);

/// What a client gets back for one query.
struct QueryResult {
  QueryStatus status = QueryStatus::kFailed;

  /// For P=?/S=?/R=? roots: the quantitative value at the initial state.
  /// For coalesced bounded-P lattice queries: the underlying probability
  /// (more informative than the 0/1 indicator; `truth` carries the
  /// verdict).  For other boolean roots: the 0/1 indicator.
  double value = 0.0;

  /// Truth verdict at the initial state; for value queries, value != 0.
  bool truth = false;

  /// Parse or evaluation error text (kParseError / kFailed).
  std::string error;

  /// Did this query share a lattice pass with other clients?
  bool coalesced = false;

  /// Number of client queries answered by the batch that served this one
  /// (1 for a direct evaluation).
  std::size_t batch_clients = 0;

  /// Execution-order stamp of the serving batch (1, 2, ...): what the
  /// admission-policy tests observe fairness through.
  std::uint64_t serve_seq = 0;

  /// Submit-to-completion wall time, also recorded into the
  /// "service/latency/query" histogram (RunReport p50/p99).
  double latency_seconds = 0.0;
};

/// Service configuration.
struct ServiceOptions {
  /// Worker threads draining the queue.  0 means no workers: queries
  /// queue up until the caller runs drain_now() — the deterministic mode
  /// the admission tests and the offline replay bench use.
  std::size_t workers = 2;

  /// Admission bound: submissions beyond this many queued queries get an
  /// immediate kRejected backpressure verdict.
  std::size_t max_pending = 4096;

  /// Cap on clients coalesced into one lattice pass; 0 = unbounded.
  std::size_t max_batch = 0;

  /// Base CheckOptions for every checker the service builds (engine
  /// choice, epsilons, rhs_block, ...).  lump and reorder_states are
  /// honoured at model registration (quotient and renumbered copy are
  /// artifact properties, built once and shared by every session).
  CheckOptions check{};
};

/// Monotonic counters since construction (plain atomics, so they work in
/// every obs gear).
struct ServiceStats {
  std::uint64_t submitted = 0;      // every submit() call
  std::uint64_t admitted = 0;       // entered the queue
  std::uint64_t completed = 0;      // terminal verdict delivered (any status)
  std::uint64_t ok = 0;             // status kOk
  std::uint64_t parse_errors = 0;   // rejected at the front-end
  std::uint64_t unknown_model = 0;  // rejected at the front-end
  std::uint64_t rejected = 0;       // admission backpressure
  std::uint64_t cancelled = 0;      // kShutdown verdicts
  std::uint64_t failed = 0;         // evaluation threw
  std::uint64_t batches = 0;        // serving passes (direct or lattice)
  std::uint64_t lattice_passes = 0;       // batches that ran until_grid
  std::uint64_t lattice_cells = 0;        // grid cells those passes computed
  std::uint64_t coalesced_queries = 0;    // queries that shared a pass (>1)
};

class CheckerService {
 public:
  explicit CheckerService(ServiceOptions options = {});

  /// Drains and joins (shutdown(true)).
  ~CheckerService();

  CheckerService(const CheckerService&) = delete;
  CheckerService& operator=(const CheckerService&) = delete;

  /// Register a model; returns its id (the fingerprint — idempotent on
  /// bit-identical models).  Callable any time, including while serving.
  ModelId register_model(Mrm model);
  ModelId register_model(std::shared_ptr<const Mrm> model);

  bool has_model(ModelId id) const;
  std::size_t num_models() const;

  /// Submit a textual CSRL query against a registered model.  Returns
  /// immediately; the future resolves with the terminal verdict.  Parse
  /// errors, unknown models, backpressure and shutdown resolve the
  /// future before submit() returns — nothing malformed or inadmissible
  /// ever occupies queue space or reaches a worker.
  std::future<QueryResult> submit(ModelId model, std::string_view query);

  /// submit() + wait.  With workers == 0 the queued query is drained
  /// inline, so the call still completes.
  QueryResult query(ModelId model, std::string_view query);

  /// Run queued batches on the calling thread until the queue is empty.
  /// Safe alongside workers; the deterministic serving mode when
  /// workers == 0 (maximal coalescing: everything queued at drain time
  /// with the same key shares one pass).
  void drain_now();

  /// Stop admission, then either let queued work finish (drain) or fail
  /// it with kShutdown verdicts; in-flight batches always complete.
  /// Joins the workers.  Idempotent.
  void shutdown(bool drain = true);

  ServiceStats stats() const;

  /// Aggregated run report of the service's lifetime so far: model
  /// totals, the full metric delta since construction (SpMV counts, the
  /// cross-session core/sat_cache/* counters), and p50/p99 lifted from
  /// the "service/latency/query" histogram.  Metric-derived fields need
  /// recording on (CSRL_TRACE / ScopedRecording / BenchObs), like every
  /// obs consumer; ServiceStats covers the always-on counters.
  obs::RunReport report() const;

  /// The process-wide Sat-set cache every service checker shares.
  const std::shared_ptr<SatCache>& sat_cache() const { return sat_cache_; }

  const ServiceOptions& options() const { return options_; }

 private:
  /// One admitted query waiting in (or taken from) the queue.
  struct Pending {
    QueryPlan plan;
    std::shared_ptr<const ModelArtifacts> artifacts;
    std::promise<QueryResult> promise;
    WallTimer since_submit;
    /// Guards against double-fulfilling the promise when a batch fails
    /// after some of its members were already answered.
    bool delivered = false;
  };

  void worker_loop();

  /// Pop the next batch under per-model round-robin fairness: the head
  /// of the least-recently-served non-empty model queue, plus — when the
  /// head is a lattice plan — every queued query of that model with the
  /// same skeleton (up to max_batch).  Empty only when nothing pends.
  std::vector<Pending> take_next_batch_locked() CSRL_REQUIRES(mutex_);

  /// Evaluate one batch and deliver its verdicts.  Runs without locks.
  void execute_batch(std::vector<Pending>& batch);

  void deliver(Pending& pending, QueryResult result);

  ServiceOptions options_;
  ModelRegistry registry_;
  std::shared_ptr<SatCache> sat_cache_;
  obs::MetricsSnapshot metrics_before_;
  WallTimer uptime_;

  std::atomic<std::uint64_t> serve_seq_{0};

  // ServiceStats counters.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> unknown_model_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> lattice_passes_{0};
  std::atomic<std::uint64_t> lattice_cells_{0};
  std::atomic<std::uint64_t> coalesced_queries_{0};

  mutable Mutex mutex_;
  CondVar work_cv_;  // queue became non-empty, or stopping
  CondVar idle_cv_;  // queue drained and no batch in flight
  bool accepting_ CSRL_GUARDED_BY(mutex_) = true;
  bool stopping_ CSRL_GUARDED_BY(mutex_) = false;
  std::size_t total_pending_ CSRL_GUARDED_BY(mutex_) = 0;
  std::size_t active_batches_ CSRL_GUARDED_BY(mutex_) = 0;
  /// Fairness cursor into queue_order_: where the next scan starts.
  std::size_t next_model_ CSRL_GUARDED_BY(mutex_) = 0;
  /// Models that ever had queued work, in first-enqueue order — the
  /// deterministic ring the round-robin walks (never iterate queues_).
  std::vector<ModelId> queue_order_ CSRL_GUARDED_BY(mutex_);
  std::unordered_map<ModelId, std::deque<Pending>> queues_
      CSRL_GUARDED_BY(mutex_);

  /// Joined by shutdown(); no synchronisation needed besides it.
  std::vector<std::thread> workers_;
};

}  // namespace service
}  // namespace csrl
