// Implementation of the four until property classes (P0-P3).
#include <cmath>
#include <unordered_map>

#include "core/checker.hpp"
#include "ctmc/graph.hpp"
#include "ctmc/uniformisation.hpp"
#include "mrm/transform.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace csrl {

namespace {

/// Qualitative precomputation for unbounded until on the transition graph:
/// prob-0 states (cannot reach Psi through Phi) and prob-1 states (cannot
/// avoid doing so).
struct UntilPrecomputation {
  StateSet zero;
  StateSet one;
};

UntilPrecomputation qualitative_until(const CsrMatrix& adjacency,
                                      const StateSet& phi,
                                      const StateSet& psi) {
  const StateSet through = phi - psi;
  UntilPrecomputation pre;
  pre.zero = backward_reachable(adjacency, psi, through).complement();
  // A state misses probability 1 exactly if it can wander into a prob-0
  // state while staying in Phi \ Psi.
  pre.one = backward_reachable(adjacency, pre.zero, through).complement();
  return pre;
}

}  // namespace

std::vector<double> Checker::unbounded_until(const StateSet& phi,
                                             const StateSet& psi) const {
  CSRL_SPAN("core/until/p0");
  const std::size_t n = model_->num_states();
  const CsrMatrix p = model_->chain().embedded_dtmc();
  const UntilPrecomputation pre = qualitative_until(model_->rates(), phi, psi);

  std::vector<double> result(n, 0.0);
  for (std::size_t s : pre.one.members()) result[s] = 1.0;

  const StateSet maybe = (pre.zero | pre.one).complement();
  const std::vector<std::size_t> maybe_states = maybe.members();
  if (maybe_states.empty()) return result;

  // x = A x + b on the maybe states, with A the embedded DTMC restricted
  // to maybe x maybe and b the one-step probability into the prob-1 set.
  std::unordered_map<std::size_t, std::size_t> compact;
  compact.reserve(maybe_states.size());
  for (std::size_t i = 0; i < maybe_states.size(); ++i)
    compact.emplace(maybe_states[i], i);

  CsrBuilder a(maybe_states.size(), maybe_states.size());
  std::vector<double> b(maybe_states.size(), 0.0);
  for (std::size_t i = 0; i < maybe_states.size(); ++i) {
    for (const auto& e : p.row(maybe_states[i])) {
      if (pre.one.contains(e.col)) {
        b[i] += e.value;
      } else if (const auto it = compact.find(e.col); it != compact.end()) {
        a.add(i, it->second, e.value);
      }
    }
  }

  const std::vector<double> x = solve_fixpoint(a.build(), b, options_.solver);
  for (std::size_t i = 0; i < maybe_states.size(); ++i)
    result[maybe_states[i]] = x[i];
  return result;
}

std::vector<double> Checker::time_bounded_until(const StateSet& phi,
                                                const StateSet& psi,
                                                Interval time) const {
  CSRL_SPAN("core/until/p1");
  // I = [0, t]: make Psi and the illegal states absorbing, then transient
  // analysis at t decides the formula ([3]; the paper's P1 recipe).
  if (time.lo == 0.0) {
    if (!time.has_upper_bound())
      return unbounded_until(phi, psi);
    const Mrm frozen =
        make_absorbing(*model_, (phi - psi).complement(), /*zero_reward=*/false);
    std::vector<double> result =
        transient_reach(frozen.chain(), psi, time.hi, options_.transient);
    // Psi-states satisfy the until immediately and are absorbing in the
    // frozen chain: pin them to exactly 1 rather than 1 - truncation error.
    for (std::size_t s : psi.members()) result[s] = 1.0;
    return result;
  }

  // I = [t1, t2] with t1 > 0: the standard two-phase scheme.  Phase 2
  // computes the terminal vector v; phase 1 pushes it backward over [0, t1]
  // on the chain with ~Phi absorbing (Phi must hold throughout [0, t1]).
  const std::size_t n = model_->num_states();
  std::vector<double> v;
  if (time.lo == time.hi) {
    v = (phi & psi).indicator();
  } else {
    v = time_bounded_until(phi, psi, Interval::upto(time.hi - time.lo));
    for (std::size_t s = 0; s < n; ++s)
      if (!phi.contains(s)) v[s] = 0.0;
  }
  const Mrm holding = make_absorbing(*model_, phi.complement(),
                                     /*zero_reward=*/false);
  std::vector<double> result =
      transient_backward(holding.chain(), v, time.lo, options_.transient);
  // Starting in a ~Phi state, Phi fails immediately at every t' < t1.
  for (std::size_t s = 0; s < n; ++s)
    if (!phi.contains(s)) result[s] = 0.0;
  return result;
}

std::vector<double> Checker::reward_bounded_until(const StateSet& phi,
                                                  const StateSet& psi,
                                                  Interval reward) const {
  CSRL_SPAN("core/until/p2");
  // P2: swap the reward bound into a time bound on the dual model
  // [4, Thm 1].  Sat sets live on the same state space, so they transfer
  // unchanged.
  //
  // For J = [0, r] we apply the P1 absorbing transform *before* dualising:
  // the until probability is insensitive to it, and it relaxes the
  // duality's positivity precondition to the states the paths actually
  // traverse (Psi-states and illegal states may then carry reward 0).
  if (reward.lo == 0.0) {
    const Mrm frozen =
        make_absorbing(*model_, (phi - psi).complement(), /*zero_reward=*/false);
    const Mrm dual_model = dual(frozen);
    std::vector<double> result = transient_reach(dual_model.chain(), psi,
                                                 reward.hi, options_.transient);
    for (std::size_t s : psi.members()) result[s] = 1.0;
    return result;
  }

  // General reward interval [r1, r2]: dualise the full model (every
  // non-absorbing state needs positive reward) and run the two-phase
  // time-interval scheme there.
  const Mrm dual_model = dual(*model_);
  const Checker dual_checker(dual_model, options_);
  return dual_checker.time_bounded_until(phi, psi, reward);
}

std::vector<double> Checker::time_reward_bounded_until(const StateSet& phi,
                                                       const StateSet& psi,
                                                       double t,
                                                       double r) const {
  if (!(t >= 0.0) || !(r >= 0.0))
    throw ModelError("until: time and reward bounds must be >= 0");

  CSRL_SPAN("core/until/p3");

  // Theorem 1 reduction + engine run, shared with the batched lattice path
  // (core/batch.hpp): a point query is its 1 x 1 grid.
  const double times[1] = {t};
  const double rewards[1] = {r};
  std::vector<std::vector<double>> grid =
      until_grid_sets(phi, psi, times, rewards);
  return std::move(grid[0]);
}

}  // namespace csrl
