// Batched multi-query P3 evaluation with Sat-subformula caching
// (DESIGN.md section 3d).
//
// A performability study rarely asks one question: Figure 1 of the paper
// is a whole surface of Pr{Y_t <= r, X_t in S'} values, and Tables 2-4
// sweep the bounds as well.  Evaluating such a lattice point by point
// re-runs the engines' recursions from scratch although each of them
// yields the smaller bounds as by-products — Sericola's column sweeps
// serve every r' <= r, one uniformisation vector-power sequence serves
// every t' <= t, and the discretisation F-grid passes through every
// smaller (t', r') cell on the way.  BatchQuery evaluates one until
// formula over a full times x rewards lattice through those batched
// engine entry points, at close to the cost of a single (max t, max r)
// solve, with every value bitwise identical to the point-by-point loop.
//
// SatCache is the layer underneath: the Sat sets of the until operands
// (and of every subformula met along the way) are memoised across queries
// and across Checker instances, keyed by the model fingerprint combined
// with the formula's structural hash and verified against the canonical
// printed form.  Invalidation is by construction: a changed model changes
// its fingerprint (all inputs enter bit-for-bit), so stale entries can
// never be returned — they merely age in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/formula.hpp"
#include "obs/report.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/state_set.hpp"

namespace csrl {

/// One time- and reward-bounded until query, evaluated over the full
/// times x rewards lattice: for every pair (t, r),
/// Pr{ phi U^[0,t]_[0,r] psi } from every state.
struct BatchQuery {
  /// Left-hand side of the until; null means "true" (i.e. eventually).
  FormulaPtr phi;
  /// Right-hand side of the until; required.
  FormulaPtr psi;
  /// Time-bound axis (each entry >= 0, any order, repeats allowed).
  std::vector<double> times;
  /// Reward-bound axis (same conventions).
  std::vector<double> rewards;
};

/// Result lattice of a BatchQuery, grid-point major.
struct BatchResult {
  /// The axes the query was evaluated on (copied from the BatchQuery).
  std::vector<double> times;
  std::vector<double> rewards;

  /// per_state[i * rewards.size() + j][s] = Pr_s{ phi U^[0,t_i]_[0,r_j] psi }.
  std::vector<std::vector<double>> per_state;

  /// The model's initial state if its distribution is a point mass;
  /// num_states (one past the valid range) otherwise.
  std::size_t initial_state = 0;

  /// The per-state vector at lattice point (times[i], rewards[j]).
  const std::vector<double>& at(std::size_t time_index,
                                std::size_t reward_index) const;

  /// at(i, j) read at the initial state; throws ModelError when the
  /// initial distribution is not a point mass.
  double value_at(std::size_t time_index, std::size_t reward_index) const;

  /// Engaged by Checker::check_until_grid (like CheckResult::report);
  /// carries the grid axes in its grid_times / grid_rewards fields.
  std::optional<obs::RunReport> report;
};

/// Cross-query Sat-set memo (see file comment).  Thread-safe: every
/// probe and insert runs under the internal mutex, so one cache can be
/// shared across concurrent checkers — the substrate the resident
/// service layer (ROADMAP item 1) builds on.  Contention is not a
/// concern: a probe costs a hash lookup plus a string compare, dwarfed
/// by the numerical work a hit saves.
/// The cache-key scheme: bucket = mix(model fingerprint, formula hash),
/// candidate entries verified by the canonical printed form, so a hash
/// collision costs a string compare, never a wrong Sat set.
class SatCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// The cached Sat set for `f` on the model with this fingerprint, or
  /// nullopt.  Counts a hit or miss.  Returns a copy made under the
  /// lock, so the result stays valid whatever other threads insert.
  std::optional<StateSet> find(std::uint64_t model_fingerprint,
                               const Formula& f) CSRL_EXCLUDES(mutex_);

  /// Memoise Sat(f) for the model with this fingerprint.  Overwrites an
  /// existing entry for the same formula (the sets are equal anyway).
  void insert(std::uint64_t model_fingerprint, const Formula& f, StateSet sat)
      CSRL_EXCLUDES(mutex_);

  /// Number of memoised (model, formula) pairs.
  std::size_t size() const CSRL_EXCLUDES(mutex_);

  /// Hit/miss totals since construction (by value: a snapshot, not a
  /// reference into guarded state).
  Stats stats() const CSRL_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string canonical;  // f.to_string(): the collision-proof identity
    StateSet sat;
  };

  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_
      CSRL_GUARDED_BY(mutex_);
  std::size_t size_ CSRL_GUARDED_BY(mutex_) = 0;
  Stats stats_ CSRL_GUARDED_BY(mutex_);
};

}  // namespace csrl
