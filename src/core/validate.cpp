#include "core/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace csrl {

namespace {

std::string fmt(double v) { return std::to_string(v); }

/// Set while validate_joint_result re-runs an engine through its
/// recompute hook, so the nested run's own postcondition does not
/// recurse forever.
thread_local bool tls_in_recompute = false;

}  // namespace

void Validator::fail(const std::string& what) const {
  std::string message = subject_ + ": " + what;
  // Same self-location scheme as validation::fail (util/contracts.hpp):
  // the innermost active span names the pipeline phase that produced the
  // offending data.
  if (const std::string span = obs::current_span_path(); !span.empty())
    message += " (span: " + span + ")";
  throw ContractViolation(std::move(message));
}

void Validator::csr_structure(const CsrMatrix& m) const {
  std::size_t covered = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto entries = m.row(r);
    covered += entries.size();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].col >= m.cols())
        fail("row " + std::to_string(r) + " column index " +
             std::to_string(entries[i].col) + " out of range for " +
             std::to_string(m.rows()) + "x" + std::to_string(m.cols()));
      if (i > 0 && entries[i - 1].col >= entries[i].col)
        fail("row " + std::to_string(r) + " columns not strictly increasing (" +
             std::to_string(entries[i - 1].col) + " before " +
             std::to_string(entries[i].col) +
             "): unsorted or duplicate entries");
      if (!std::isfinite(entries[i].value))
        fail("row " + std::to_string(r) + " column " +
             std::to_string(entries[i].col) + " stores a non-finite value");
    }
  }
  if (covered != m.nnz())
    fail("row extents cover " + std::to_string(covered) +
         " entries but nnz() is " + std::to_string(m.nnz()));
}

void Validator::stochastic_rows(const CsrMatrix& m, double tol,
                                bool allow_substochastic) const {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (const auto& e : m.row(r)) {
      if (!(e.value >= 0.0))
        fail("row " + std::to_string(r) + " column " + std::to_string(e.col) +
             " has negative probability " + fmt(e.value));
      sum += e.value;
    }
    const bool low_ok = allow_substochastic ? sum >= -tol : sum >= 1.0 - tol;
    if (!low_ok || sum > 1.0 + tol)
      fail("row " + std::to_string(r) + " sums to " + fmt(sum) +
           (allow_substochastic ? ", outside [0, 1]" : ", not 1") +
           " (tolerance " + fmt(tol) + ")");
  }
}

void Validator::generator_rows(const CsrMatrix& m, double tol) const {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    double magnitude = 1.0;
    for (const auto& e : m.row(r)) {
      if (e.col == r) {
        if (e.value > tol)
          fail("row " + std::to_string(r) + " has positive diagonal " +
               fmt(e.value));
      } else if (!(e.value >= 0.0)) {
        fail("row " + std::to_string(r) + " column " + std::to_string(e.col) +
             " has negative off-diagonal rate " + fmt(e.value));
      }
      sum += e.value;
      magnitude = std::max(magnitude, std::abs(e.value));
    }
    if (std::abs(sum) > tol * magnitude)
      fail("row " + std::to_string(r) + " sums to " + fmt(sum) +
           ", not 0 (tolerance " + fmt(tol) + " x " + fmt(magnitude) + ")");
  }
}

void Validator::probability_vector(std::span<const double> v,
                                   double tol) const {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i]))
      fail("entry " + std::to_string(i) + " is non-finite");
    if (v[i] < -tol || v[i] > 1.0 + tol)
      fail("entry " + std::to_string(i) + " = " + fmt(v[i]) +
           " outside [0, 1] (tolerance " + fmt(tol) + ")");
  }
}

void Validator::distribution(std::span<const double> v, double tol) const {
  probability_vector(v, tol);
  double sum = 0.0;
  for (double x : v) sum += x;
  if (std::abs(sum - 1.0) > tol)
    fail("entries sum to " + fmt(sum) + ", not 1 (tolerance " + fmt(tol) +
         ")");
}

void Validator::poisson_window(const PoissonWeights& w, double epsilon) const {
  if (w.right < w.left)
    fail("window [" + std::to_string(w.left) + ", " + std::to_string(w.right) +
         "] is empty");
  if (w.weights.size() != w.right - w.left + 1)
    fail("window [" + std::to_string(w.left) + ", " + std::to_string(w.right) +
         "] holds " + std::to_string(w.weights.size()) + " weights");
  double sum = 0.0;
  for (std::size_t i = 0; i < w.weights.size(); ++i) {
    if (!(w.weights[i] >= 0.0) || !std::isfinite(w.weights[i]))
      fail("weight at " + std::to_string(w.left + i) + " = " +
           fmt(w.weights[i]) + " is negative or non-finite");
    sum += w.weights[i];
  }
  // `total` is Kahan-compensated while this plain check sum drifts by up
  // to ~n*ulp; allow for that drift when comparing the two.
  const double drift =
      1e-12 + 1e-16 * static_cast<double>(w.weights.size());
  if (std::abs(sum - w.total) > drift * std::max(1.0, w.total))
    fail("weights sum to " + fmt(sum) + " but total claims " + fmt(w.total));
  // The growth loop may stop short of 1 - epsilon only on the underflow
  // floor; treat that as a violation too, it means epsilon was
  // unattainable and the caller's error bound is void.
  if (w.total < 1.0 - epsilon - 1e-15 || w.total > 1.0 + 1e-12)
    fail("total mass " + fmt(w.total) + " outside [1 - " + fmt(epsilon) +
         ", 1]");
}

void Validator::monotone_nondecreasing(std::span<const double> lo,
                                       std::span<const double> hi,
                                       double slack) const {
  if (lo.size() != hi.size())
    fail("size mismatch: " + std::to_string(lo.size()) + " vs " +
         std::to_string(hi.size()));
  for (std::size_t i = 0; i < lo.size(); ++i)
    if (lo[i] > hi[i] + slack)
      fail("entry " + std::to_string(i) + " decreases from " + fmt(lo[i]) +
           " to " + fmt(hi[i]) + " as the bound grows (slack " + fmt(slack) +
           ")");
}

void Validator::bitwise_equal(std::span<const double> a,
                              std::span<const double> b) const {
  if (a.size() != b.size())
    fail("size mismatch: " + std::to_string(a.size()) + " vs " +
         std::to_string(b.size()));
  if (a.size() > 0 &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i)
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0)
        fail("entry " + std::to_string(i) + " differs bitwise: " + fmt(a[i]) +
             " vs " + fmt(b[i]));
  }
}

void Validator::dual_inverse(const Mrm& original, const Mrm& dualized,
                             double tol) const {
  const std::size_t n = original.num_states();
  if (dualized.num_states() != n)
    fail("dual changed the state count: " + std::to_string(n) + " -> " +
         std::to_string(dualized.num_states()));
  for (std::size_t s = 0; s < n; ++s) {
    const double rho = original.reward(s);
    if (original.chain().is_absorbing(s)) {
      if (!dualized.chain().is_absorbing(s))
        fail("absorbing state " + std::to_string(s) +
             " gained transitions in the dual");
      continue;
    }
    if (std::abs(dualized.reward(s) * rho - 1.0) > tol)
      fail("state " + std::to_string(s) + ": dual reward " +
           fmt(dualized.reward(s)) + " is not 1/" + fmt(rho));
    for (const auto& e : original.rates().row(s)) {
      const double back = dualized.rates().at(s, e.col) * rho;
      if (std::abs(back - e.value) > tol * std::max(1.0, std::abs(e.value)))
        fail("rate (" + std::to_string(s) + ", " + std::to_string(e.col) +
             "): dual * rho = " + fmt(back) + " but original is " +
             fmt(e.value));
    }
  }
}

void validate_joint_result(
    const std::string& engine_name, double t, double r,
    std::span<const double> result, double monotone_slack,
    const std::function<std::vector<double>(double)>& recompute_at_r) {
  const Validator v(engine_name + " joint distribution (t=" + fmt(t) +
                    ", r=" + fmt(r) + ")");
  // The engines' a-priori error bounds are per-entry, so a result may
  // legitimately poke above 1 by the truncation epsilon; 1e-6 covers
  // every configuration the options expose.
  v.probability_vector(result, 1e-6);

  if (!validation::paranoid() || tls_in_recompute || !recompute_at_r) return;
  tls_in_recompute = true;
  struct Reset {
    ~Reset() { tls_in_recompute = false; }
  } reset;

  // 1-thread vs N-thread agreement: the same computation with every
  // parallel_for forced inline must match bit for bit.
  {
    ForceSerialGuard serial;
    const std::vector<double> serial_result = recompute_at_r(r);
    v.bitwise_equal(serial_result, result);
  }

  // Monotonicity in r.  A halved bound some engines cannot represent
  // (e.g. off the discretisation grid) is a skipped check, not a
  // violation — ModelError is precondition vocabulary, not contract
  // vocabulary.
  if (r > 0.0) {
    try {
      const std::vector<double> at_half = recompute_at_r(r * 0.5);
      v.monotone_nondecreasing(at_half, result, monotone_slack);
    } catch (const ContractViolation&) {
      throw;
    } catch (const ModelError&) {
      // Halved bound rejected by the engine's preconditions; skip.
    }
  }
}

bool joint_grid_monotone_in_reward(
    const std::vector<std::vector<double>>& grid, std::size_t num_times,
    std::span<const double> rewards, double slack) {
  const std::size_t num_rewards = rewards.size();
  if (grid.size() != num_times * num_rewards) return false;
  for (std::size_t i = 0; i < num_times; ++i) {
    for (std::size_t a = 0; a < num_rewards; ++a) {
      for (std::size_t b = 0; b < num_rewards; ++b) {
        if (!(rewards[a] <= rewards[b])) continue;
        const std::vector<double>& lo = grid[i * num_rewards + a];
        const std::vector<double>& hi = grid[i * num_rewards + b];
        if (lo.size() != hi.size()) return false;
        for (std::size_t s = 0; s < lo.size(); ++s)
          if (lo[s] > hi[s] + slack) return false;
      }
    }
  }
  return true;
}

}  // namespace csrl
