// Shared immutable per-model checking artifacts.
//
// A Checker bound directly to an Mrm recomputes per construction what is
// really a property of the model: the bit-exact fingerprint (O(nnz)),
// the bisimulation quotient when lumping is requested, and, when state
// reordering is requested, the reverse Cuthill-McKee permutation plus the
// renumbered model copy.  A resident service that builds a fresh
// (stateless) Checker per query batch cannot afford any of these, and
// more fundamentally the results are immutable facts about the model
// that every session should share.
//
// ModelArtifacts is that shared precomputation: built once — typically at
// model registration (service/registry.hpp) — and handed to any number of
// concurrent Checkers, which then construct in O(states).  The artifact
// owns the model (shared_ptr), so checkers built from it never dangle;
// the lazily-built CSR caches (row chunks, transposes, support masks)
// live inside the shared CsrMatrix and are therefore warmed once per
// artifact rather than once per checker.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/options.hpp"
#include "mrm/mrm.hpp"
#include "obs/report.hpp"

namespace csrl {

/// Immutable bundle: the model, its fingerprint, and (optionally) the
/// bisimulation quotient and/or bandwidth-reduced copy a lumping or
/// reordering checker computes on.  Thread-safe by immutability —
/// build() returns a shared_ptr<const> and nothing mutates afterwards.
class ModelArtifacts {
 public:
  /// Precompute the artifacts for `model`.  `options` contributes only
  /// its structural knobs: lump (resolved through CSRL_LUMP) decides
  /// whether the bisimulation quotient is materialised, reorder_states
  /// whether the RCM permutation and the renumbered copy are (applied to
  /// the quotient when both engage).  The model pointer must be
  /// non-null.  Throws ModelError when lumping is on and impulse rewards
  /// prevent an exact quotient.
  static std::shared_ptr<const ModelArtifacts> build(
      std::shared_ptr<const Mrm> model, const CheckOptions& options = {});

  /// Convenience: copies `model` into shared ownership first.
  static std::shared_ptr<const ModelArtifacts> build(
      Mrm model, const CheckOptions& options = {});

  /// The model as registered (original state numbering).
  const std::shared_ptr<const Mrm>& model() const { return model_; }

  /// Bit-exact fingerprint of the original model (Mrm::fingerprint).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Was the bisimulation quotient materialised?
  bool lumped() const { return lumped_model_ != nullptr; }

  /// Were the RCM permutation and the renumbered copy materialised?
  bool reordered() const { return reordered_model_ != nullptr; }

  /// The model all checking runs on: the renumbered copy when reordered,
  /// else the quotient when lumped, else the original.
  const Mrm& internal_model() const {
    if (reordered_model_) return *reordered_model_;
    if (lumped_model_) return *lumped_model_;
    return *model_;
  }

  /// Shared ownership of internal_model().
  std::shared_ptr<const Mrm> internal_model_ptr() const {
    if (reordered_model_) return reordered_model_;
    if (lumped_model_) return lumped_model_;
    return model_;
  }

  /// Fingerprint of internal_model() — distinct from fingerprint() when
  /// lumped or reordered, so Sat sets cached in internal numbering can
  /// never be confused with original-numbering entries of the same model
  /// (the quotient fingerprints as its own model).
  std::uint64_t internal_fingerprint() const { return internal_fingerprint_; }

  /// Composed original index -> internal index projection (the lumping
  /// block map, the RCM renumbering, or their composition); empty when
  /// the internal numbering is the public one.  Non-injective when
  /// lumped.
  const std::vector<std::size_t>& projection() const { return projection_; }

  /// Dimensions and refiner accounting of the lumping pass; enabled is
  /// false when not lumped.  Checkers copy this into their RunReports.
  const obs::RunReport::Lumping& lumping_info() const { return lumping_info_; }

 private:
  // make_shared needs a public constructor; the private tag type keeps
  // construction confined to build().
  struct BuildTag {};

 public:
  explicit ModelArtifacts(BuildTag) {}

 private:
  std::shared_ptr<const Mrm> model_;
  std::uint64_t fingerprint_ = 0;
  std::shared_ptr<const Mrm> lumped_model_;     // null unless lumping
  std::shared_ptr<const Mrm> reordered_model_;  // null unless reordering
  std::uint64_t internal_fingerprint_ = 0;
  std::vector<std::size_t> projection_;
  obs::RunReport::Lumping lumping_info_;
};

}  // namespace csrl
