// Shared immutable per-model checking artifacts.
//
// A Checker bound directly to an Mrm recomputes per construction what is
// really a property of the model: the bit-exact fingerprint (O(nnz)) and,
// when state reordering is requested, the reverse Cuthill-McKee
// permutation plus the renumbered model copy.  A resident service that
// builds a fresh (stateless) Checker per query batch cannot afford either,
// and more fundamentally the results are immutable facts about the model
// that every session should share.
//
// ModelArtifacts is that shared precomputation: built once — typically at
// model registration (service/registry.hpp) — and handed to any number of
// concurrent Checkers, which then construct in O(1).  The artifact owns
// the model (shared_ptr), so checkers built from it never dangle; the
// lazily-built CSR caches (row chunks, transposes, support masks) live
// inside the shared CsrMatrix and are therefore warmed once per artifact
// rather than once per checker.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/options.hpp"
#include "mrm/mrm.hpp"

namespace csrl {

/// Immutable bundle: the model, its fingerprint, and (optionally) the
/// bandwidth-reduced copy a reordering checker computes on.  Thread-safe
/// by immutability — build() returns a shared_ptr<const> and nothing
/// mutates afterwards.
class ModelArtifacts {
 public:
  /// Precompute the artifacts for `model`.  `options` contributes only
  /// its structural knobs: reorder_states decides whether the RCM
  /// permutation and the renumbered copy are materialised.  The model
  /// pointer must be non-null.
  static std::shared_ptr<const ModelArtifacts> build(
      std::shared_ptr<const Mrm> model, const CheckOptions& options = {});

  /// Convenience: copies `model` into shared ownership first.
  static std::shared_ptr<const ModelArtifacts> build(
      Mrm model, const CheckOptions& options = {});

  /// The model as registered (original state numbering).
  const std::shared_ptr<const Mrm>& model() const { return model_; }

  /// Bit-exact fingerprint of the original model (Mrm::fingerprint).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Were the RCM permutation and the renumbered copy materialised?
  bool reordered() const { return reordered_model_ != nullptr; }

  /// The model all checking runs on: the renumbered copy when reordered,
  /// else the original.
  const Mrm& internal_model() const {
    return reordered_model_ ? *reordered_model_ : *model_;
  }

  /// Shared ownership of internal_model().
  std::shared_ptr<const Mrm> internal_model_ptr() const {
    return reordered_model_ ? reordered_model_ : model_;
  }

  /// Fingerprint of internal_model() — distinct from fingerprint() when
  /// reordered, so Sat sets cached in internal numbering can never be
  /// confused with original-numbering entries of the same model.
  std::uint64_t internal_fingerprint() const { return internal_fingerprint_; }

  /// Index maps of the reordering; empty when not reordered.
  const std::vector<std::size_t>& to_original() const { return to_original_; }
  const std::vector<std::size_t>& to_internal() const { return to_internal_; }

 private:
  // make_shared needs a public constructor; the private tag type keeps
  // construction confined to build().
  struct BuildTag {};

 public:
  explicit ModelArtifacts(BuildTag) {}

 private:
  std::shared_ptr<const Mrm> model_;
  std::uint64_t fingerprint_ = 0;
  std::shared_ptr<const Mrm> reordered_model_;  // null unless reordering
  std::uint64_t internal_fingerprint_ = 0;
  std::vector<std::size_t> to_original_;
  std::vector<std::size_t> to_internal_;
};

}  // namespace csrl
