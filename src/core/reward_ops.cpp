#include "core/reward_ops.hpp"

#include <cmath>

#include "ctmc/foxglynn.hpp"
#include "matrix/vector_ops.hpp"
#include "util/error.hpp"

namespace csrl {

double expected_instantaneous_reward(const Mrm& model, double t,
                                     const TransientOptions& options) {
  const std::vector<double> pi =
      transient_distribution(model.chain(), model.initial_distribution(), t,
                             options);
  return dot(pi, model.rewards());
}

std::vector<double> effective_reward_rates(const Mrm& model) {
  std::vector<double> rates = model.rewards();
  if (model.has_impulse_rewards()) {
    for (std::size_t s = 0; s < model.num_states(); ++s)
      for (const auto& e : model.impulse_rewards().row(s))
        rates[s] += model.rates().at(s, e.col) * e.value;
  }
  return rates;
}

std::vector<double> expected_instantaneous_reward_all_starts(
    const Mrm& model, double t, const TransientOptions& options) {
  return transient_backward(model.chain(), model.rewards(), t, options);
}

std::vector<double> expected_accumulated_reward_all_starts(
    const Mrm& model, double t, const TransientOptions& options) {
  const std::size_t n = model.num_states();
  if (!(t >= 0.0) || !std::isfinite(t))
    throw ModelError("expected_accumulated_reward: time must be >= 0");
  if (t == 0.0 || n == 0) return std::vector<double>(n, 0.0);

  const Ctmc& chain = model.chain();
  const std::vector<double> effective = effective_reward_rates(model);
  if (chain.max_exit_rate() == 0.0) {
    // Nothing ever moves: Y_t = rho(s) t deterministically.
    std::vector<double> result = effective;
    scale(result, t);
    return result;
  }

  const double lambda = chain.max_exit_rate();
  const CsrMatrix p = chain.uniformised_dtmc(lambda);
  const PoissonWeights weights = poisson_weights(lambda * t, options.epsilon);

  // Backward analogue of the integrated-Poisson identity: E_s[Y_t] =
  // (1/lambda) sum_n Pr{N > n} (P^n rho~)(s).
  double tail = weights.total;
  std::vector<double> v = effective;
  std::vector<double> scratch(n, 0.0);
  std::vector<double> result(n, 0.0);
  for (std::size_t step = 0; step <= weights.right; ++step) {
    tail -= weights.weight(step);
    if (tail > 0.0) axpy(tail, v, result);
    if (step < weights.right) {
      p.multiply(v, scratch);
      v.swap(scratch);
    }
  }
  scale(result, 1.0 / lambda);
  return result;
}

double expected_accumulated_reward(const Mrm& model, double t,
                                   const TransientOptions& options) {
  if (!(t >= 0.0) || !std::isfinite(t))
    throw ModelError("expected_accumulated_reward: time must be >= 0");
  if (t == 0.0 || model.num_states() == 0) return 0.0;

  const Ctmc& chain = model.chain();
  const double lambda =
      chain.max_exit_rate() > 0.0 ? chain.max_exit_rate() : 1.0;
  const CsrMatrix p = chain.uniformised_dtmc(lambda);

  // The truncation error of the integral series is bounded by
  // rho_max * t * epsilon, because sum_n Pr{N > n} = lambda t.
  const PoissonWeights weights = poisson_weights(lambda * t, options.epsilon);

  // Impulses enter as their arrival intensity (see effective_reward_rates).
  const std::vector<double> effective = effective_reward_rates(model);

  // tail(n) = Pr{N(lambda t) > n}, accumulated from the truncated window.
  double tail = weights.total;  // ~ Pr{N >= left}
  std::vector<double> pi = model.initial_distribution();
  std::vector<double> scratch(pi.size(), 0.0);

  double acc = 0.0;
  for (std::size_t n = 0; n <= weights.right; ++n) {
    tail -= weights.weight(n);  // now Pr{N > n}
    if (tail > 0.0) acc += tail * dot(pi, effective);
    if (n < weights.right) {
      p.multiply_left(pi, scratch);
      pi.swap(scratch);
    }
  }
  return acc / lambda;
}

}  // namespace csrl
