#include "core/artifacts.hpp"

#include <utility>

#include "ctmc/graph.hpp"
#include "mrm/lumping.hpp"
#include "mrm/transform.hpp"
#include "util/error.hpp"

namespace csrl {

std::shared_ptr<const ModelArtifacts> ModelArtifacts::build(
    std::shared_ptr<const Mrm> model, const CheckOptions& options) {
  if (!model) throw ModelError("ModelArtifacts::build: null model");
  auto artifacts = std::make_shared<ModelArtifacts>(BuildTag{});
  artifacts->model_ = std::move(model);
  artifacts->fingerprint_ = artifacts->model_->fingerprint();
  artifacts->internal_fingerprint_ = artifacts->fingerprint_;
  const Mrm* internal = artifacts->model_.get();
  if (resolve_lump(options.lump) && internal->num_states() > 0) {
    LumpingResult lumped = lump(*internal);
    artifacts->projection_ = std::move(lumped.block_of);
    artifacts->lumping_info_.enabled = true;
    artifacts->lumping_info_.original_states = internal->num_states();
    artifacts->lumping_info_.original_transitions = internal->rates().nnz();
    artifacts->lumping_info_.sweeps = lumped.stats.sweeps;
    artifacts->lumping_info_.splits = lumped.stats.splits;
    artifacts->lumping_info_.states_resigned = lumped.stats.states_resigned;
    artifacts->lumping_info_.wall_seconds = lumped.stats.wall_seconds;
    artifacts->lumped_model_ =
        std::make_shared<const Mrm>(std::move(lumped.quotient));
    internal = artifacts->lumped_model_.get();
    artifacts->lumping_info_.states = internal->num_states();
    artifacts->lumping_info_.transitions = internal->rates().nnz();
    artifacts->internal_fingerprint_ = internal->fingerprint();
  }
  if (options.reorder_states && internal->num_states() > 0) {
    // Applied after lumping: the (smaller) quotient is what gets
    // bandwidth-reduced, and the public projection composes both maps.
    const std::vector<std::size_t> rcm_to_original =
        reverse_cuthill_mckee(internal->rates());
    std::vector<std::size_t> rcm_to_internal(rcm_to_original.size());
    for (std::size_t i = 0; i < rcm_to_original.size(); ++i)
      rcm_to_internal[rcm_to_original[i]] = i;
    artifacts->reordered_model_ = std::make_shared<const Mrm>(
        permute_states(*internal, rcm_to_original));
    internal = artifacts->reordered_model_.get();
    if (artifacts->projection_.empty()) {
      artifacts->projection_ = std::move(rcm_to_internal);
    } else {
      for (std::size_t& block : artifacts->projection_)
        block = rcm_to_internal[block];
    }
    artifacts->internal_fingerprint_ = internal->fingerprint();
  }
  return artifacts;
}

std::shared_ptr<const ModelArtifacts> ModelArtifacts::build(
    Mrm model, const CheckOptions& options) {
  return build(std::make_shared<const Mrm>(std::move(model)), options);
}

}  // namespace csrl
