#include "core/artifacts.hpp"

#include <utility>

#include "ctmc/graph.hpp"
#include "mrm/transform.hpp"
#include "util/error.hpp"

namespace csrl {

std::shared_ptr<const ModelArtifacts> ModelArtifacts::build(
    std::shared_ptr<const Mrm> model, const CheckOptions& options) {
  if (!model) throw ModelError("ModelArtifacts::build: null model");
  auto artifacts = std::make_shared<ModelArtifacts>(BuildTag{});
  artifacts->model_ = std::move(model);
  artifacts->fingerprint_ = artifacts->model_->fingerprint();
  artifacts->internal_fingerprint_ = artifacts->fingerprint_;
  if (options.reorder_states && artifacts->model_->num_states() > 0) {
    artifacts->to_original_ = reverse_cuthill_mckee(artifacts->model_->rates());
    artifacts->to_internal_.resize(artifacts->to_original_.size());
    for (std::size_t i = 0; i < artifacts->to_original_.size(); ++i)
      artifacts->to_internal_[artifacts->to_original_[i]] = i;
    artifacts->reordered_model_ = std::make_shared<const Mrm>(
        permute_states(*artifacts->model_, artifacts->to_original_));
    artifacts->internal_fingerprint_ =
        artifacts->reordered_model_->fingerprint();
  }
  return artifacts;
}

std::shared_ptr<const ModelArtifacts> ModelArtifacts::build(
    Mrm model, const CheckOptions& options) {
  return build(std::make_shared<const Mrm>(std::move(model)), options);
}

}  // namespace csrl
