#include "core/engines/discretisation_engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/validate.hpp"
#include "matrix/simd.hpp"
#include "matrix/spmm.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/workspace.hpp"

namespace csrl {

namespace {

/// Closest integer to x if it is within `tol`, throws otherwise.
std::size_t as_natural(double x, double tol, const char* what) {
  const double rounded = std::round(x);
  if (!(rounded >= 0.0) || std::abs(x - rounded) > tol)
    throw ModelError(std::string("DiscretisationEngine: ") + what +
                     " must be a non-negative integer multiple (got " +
                     std::to_string(x) + "); rescale rewards/step first");
  return static_cast<std::size_t>(rounded);
}

/// State-sweep grain sized so each chunk touches ~this many F cells.
std::size_t sweep_grain(std::size_t width) {
  constexpr std::size_t kCellsPerChunk = 1 << 13;
  return std::max<std::size_t>(1, kCellsPerChunk / std::max<std::size_t>(width, 1));
}

}  // namespace

DiscretisationEngine::DiscretisationEngine(double step,
                                           std::shared_ptr<ThreadPool> pool,
                                           std::size_t rhs_block)
    : JointDistributionEngine(std::move(pool)),
      step_(step),
      rhs_block_(resolve_rhs_block(rhs_block)) {
  if (!(step > 0.0) || !std::isfinite(step))
    throw ModelError("DiscretisationEngine: step must be positive and finite");
}

std::string DiscretisationEngine::name() const {
  return "discretisation-d=" + std::to_string(step_);
}

JointDistribution DiscretisationEngine::joint_distribution(const Mrm& model,
                                                           double t,
                                                           double r) const {
  JointDistribution result;
  if (joint_distribution_trivial_case(model, t, r, result)) return result;

  CSRL_SPAN("p3/discretisation/joint_distribution");
  const std::size_t n = model.num_states();
  const double d = step_;

  // Integer reward rates and grid-aligned horizon/bound, as the paper
  // requires.
  std::vector<std::size_t> rho(n);
  for (std::size_t s = 0; s < n; ++s)
    rho[s] = as_natural(model.reward(s), 1e-9, "every reward rate");
  const std::size_t total_steps = as_natural(t / d, 1e-6, "t/d");
  const std::size_t reward_cells = as_natural(r / d, 1e-6, "r/d");
  if (total_steps == 0)
    throw ModelError("DiscretisationEngine: t must be at least one step d");

  for (std::size_t s = 0; s < n; ++s)
    if (model.chain().exit_rate(s) * d >= 1.0)
      throw ModelError(
          "DiscretisationEngine: step too coarse, E(s)*d must stay below 1 "
          "(state " + std::to_string(s) + ")");

  // F is stored row-major as F[s * width + k]; k ranges over 0..R.  Reward
  // indices beyond R can never come back under the bound (rewards are
  // non-negative), so the columns above R need not be tracked at all.
  const std::size_t width = reward_cells + 1;
  CSRL_GAUGE("p3/discretisation/time_steps", static_cast<double>(total_steps));
  CSRL_GAUGE("p3/discretisation/reward_cells", static_cast<double>(width));
  std::vector<double> current(n * width, 0.0);
  std::vector<double> next(n * width, 0.0);
  auto cell = [width](std::vector<double>& f, std::size_t s, std::size_t k)
      -> double& { return f[s * width + k]; };

  // First iterate F^1: one step of duration d from the initial
  // distribution; state s0 has earned reward index rho(s0).
  for (std::size_t s = 0; s < n; ++s) {
    const double mass = model.initial_distribution()[s];
    if (mass == 0.0) continue;
    if (rho[s] <= reward_cells) cell(current, s, rho[s]) += mass / d;
  }

  // Incoming transitions drive the second summand; iterate over the
  // transposed rate matrix so each new cell gathers its donors.  With
  // impulse rewards (the Section-6 extension, following the approach of
  // the later impulse-reward work) a firing additionally displaces the
  // reward index by iota/d, which must therefore sit on the grid.
  const CsrMatrix incoming = model.rates().transposed();
  struct Donor {
    std::size_t state;
    double weight;      // R(donor, s) * d
    std::size_t shift;  // rho(donor) + iota(donor, s)/d
  };
  std::vector<std::vector<Donor>> donors(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& e : incoming.row(s)) {
      std::size_t shift = rho[e.col];
      if (model.has_impulse_rewards()) {
        const double iota = model.impulse(e.col, s);
        if (iota > 0.0)
          shift += as_natural(iota / d, 1e-6, "every impulse divided by d");
      }
      donors[s].push_back({e.col, e.value * d, shift});
    }
  }

  // The sweep gathers into next[s * width ..] from current[] only, so the
  // states partition into independent chunks; per-state arithmetic is
  // unchanged, hence results are bit-identical at any thread count.  The
  // std::fill is unnecessary in the parallel form (every cell of next is
  // assigned before it is read) but each chunk clears its own slice to
  // keep the gather loop free of branches.
  ThreadPool& workers = pool();
  const std::size_t grain = sweep_grain(width);
  for (std::size_t j = 1; j < total_steps; ++j) {
    CSRL_COUNT("p3/discretisation/sweeps", 1);
    CSRL_HIST_SCOPE("latency/p3_sweep");
    workers.parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
      std::fill(next.begin() + static_cast<std::ptrdiff_t>(lo * width),
                next.begin() + static_cast<std::ptrdiff_t>(hi * width), 0.0);
      for (std::size_t s = lo; s < hi; ++s) {
        const double stay = 1.0 - model.chain().exit_rate(s) * d;
        const std::size_t shift = rho[s];
        for (std::size_t k = shift; k <= reward_cells; ++k)
          cell(next, s, k) = cell(current, s, k - shift) * stay;
        for (const Donor& donor : donors[s]) {
          for (std::size_t k = donor.shift; k <= reward_cells; ++k)
            cell(next, s, k) +=
                cell(current, donor.state, k - donor.shift) * donor.weight;
        }
      }
    });
    current.swap(next);
  }

  result.per_state.assign(n, 0.0);
  workers.parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= reward_cells; ++k) acc += cell(current, s, k);
      result.per_state[s] = acc * d;
    }
  });
  result.steps = total_steps;
  // The Tijms-Veldman error is O(d) with a model-dependent constant; the
  // slack below over-approximates it for the monotonicity cross-check (a
  // halved r that falls off the d-grid makes the recompute throw
  // ModelError, which validate_joint_result treats as "check skipped").
  if (CSRL_CONTRACTS_ACTIVE())
    validate_joint_result(
        name(), t, r, result.per_state,
        2.0 * d * (1.0 + model.chain().max_exit_rate()) * std::max(1.0, t),
        [&](double rr) { return joint_distribution(model, t, rr).per_state; });
  return result;
}

std::vector<JointDistribution> DiscretisationEngine::joint_distribution_grid(
    const Mrm& model, std::span<const double> times,
    std::span<const double> rewards) const {
  Workspace workspace;
  return joint_distribution_grid_impl(model, times, rewards, &workspace);
}

std::vector<JointDistribution> DiscretisationEngine::joint_distribution_grid_impl(
    const Mrm& model, std::span<const double> times,
    std::span<const double> rewards, Workspace* workspace) const {
  const std::size_t num_rewards = rewards.size();
  std::vector<JointDistribution> grid(times.size() * num_rewards);
  struct Live {
    std::size_t slot;
    std::size_t total_steps;
    std::size_t reward_cells;
  };
  std::vector<Live> live;
  const double d = step_;
  for (std::size_t i = 0; i < times.size(); ++i) {
    for (std::size_t j = 0; j < num_rewards; ++j) {
      if (joint_distribution_trivial_case(model, times[i], rewards[j],
                                          grid[i * num_rewards + j]))
        continue;
      live.push_back({i * num_rewards + j,
                      as_natural(times[i] / d, 1e-6, "t/d"),
                      as_natural(rewards[j] / d, 1e-6, "r/d")});
      if (live.back().total_steps == 0)
        throw ModelError("DiscretisationEngine: t must be at least one step d");
    }
  }
  if (live.empty()) return grid;

  CSRL_SPAN("p3/discretisation/joint_distribution_grid");
  const std::size_t n = model.num_states();
  std::vector<std::size_t> rho(n);
  for (std::size_t s = 0; s < n; ++s)
    rho[s] = as_natural(model.reward(s), 1e-9, "every reward rate");
  for (std::size_t s = 0; s < n; ++s)
    if (model.chain().exit_rate(s) * d >= 1.0)
      throw ModelError(
          "DiscretisationEngine: step too coarse, E(s)*d must stay below 1 "
          "(state " + std::to_string(s) + ")");

  std::size_t max_steps = 0;
  std::size_t max_cells = 0;
  for (const Live& pt : live) {
    max_steps = std::max(max_steps, pt.total_steps);
    max_cells = std::max(max_cells, pt.reward_cells);
  }

  // One F array wide enough for the largest reward bound: lower columns
  // are bit-identical to a narrower run (see the header's argument).  The
  // two sweep arrays lease arena storage, so the per-start-state caller's
  // repeated runs reuse one pair of buffers.
  const std::size_t width = max_cells + 1;
  CSRL_GAUGE("p3/discretisation/time_steps", static_cast<double>(max_steps));
  CSRL_GAUGE("p3/discretisation/reward_cells", static_cast<double>(width));
  Workspace::LoopGuard guard(workspace);
  Workspace::Lease current_lease(workspace, n * width);
  Workspace::Lease next_lease(workspace, n * width);
  std::vector<double>& current = current_lease.get();
  std::vector<double>& next = next_lease.get();
  current.assign(n * width, 0.0);
  next.assign(n * width, 0.0);
  auto cell = [width](std::vector<double>& f, std::size_t s, std::size_t k)
      -> double& { return f[s * width + k]; };

  for (std::size_t s = 0; s < n; ++s) {
    const double mass = model.initial_distribution()[s];
    if (mass == 0.0) continue;
    if (rho[s] <= max_cells) cell(current, s, rho[s]) += mass / d;
  }

  const CsrMatrix incoming = model.rates().transposed();
  struct Donor {
    std::size_t state;
    double weight;
    std::size_t shift;
  };
  std::vector<std::vector<Donor>> donors(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& e : incoming.row(s)) {
      std::size_t shift = rho[e.col];
      if (model.has_impulse_rewards()) {
        const double iota = model.impulse(e.col, s);
        if (iota > 0.0)
          shift += as_natural(iota / d, 1e-6, "every impulse divided by d");
      }
      donors[s].push_back({e.col, e.value * d, shift});
    }
  }

  ThreadPool& workers = pool();
  const std::size_t grain = sweep_grain(width);

  // Harvest every grid point whose own step count was just reached: the
  // fold reads columns 0..reward_cells of the shared array in the same
  // ascending order as the single-point run.
  const auto harvest = [&](std::size_t steps_done) {
    for (const Live& pt : live) {
      if (pt.total_steps != steps_done) continue;
      JointDistribution& out = grid[pt.slot];
      out.per_state.assign(n, 0.0);
      workers.parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          double acc = 0.0;
          for (std::size_t k = 0; k <= pt.reward_cells; ++k)
            acc += cell(current, s, k);
          out.per_state[s] = acc * d;
        }
      });
      out.steps = pt.total_steps;
    }
  };

  harvest(1);
  for (std::size_t j = 1; j < max_steps; ++j) {
    CSRL_COUNT("p3/discretisation/sweeps", 1);
    CSRL_HIST_SCOPE("latency/p3_sweep");
    workers.parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
      std::fill(next.begin() + static_cast<std::ptrdiff_t>(lo * width),
                next.begin() + static_cast<std::ptrdiff_t>(hi * width), 0.0);
      for (std::size_t s = lo; s < hi; ++s) {
        const double stay = 1.0 - model.chain().exit_rate(s) * d;
        const std::size_t shift = rho[s];
        for (std::size_t k = shift; k <= max_cells; ++k)
          cell(next, s, k) = cell(current, s, k - shift) * stay;
        for (const Donor& donor : donors[s]) {
          for (std::size_t k = donor.shift; k <= max_cells; ++k)
            cell(next, s, k) +=
                cell(current, donor.state, k - donor.shift) * donor.weight;
        }
      }
    });
    current.swap(next);
    harvest(j + 1);
  }
  CSRL_COUNT("p3/discretisation/allocs_in_loop", guard.heap_allocations());

  CSRL_CONTRACT(
      [&] {
        std::vector<std::vector<double>> view;
        view.reserve(grid.size());
        for (const JointDistribution& g : grid) view.push_back(g.per_state);
        double t_max = 0.0;
        for (double t : times) t_max = std::max(t_max, t);
        return joint_grid_monotone_in_reward(
            view, times.size(), rewards,
            2.0 * d * (1.0 + model.chain().max_exit_rate()) *
                std::max(1.0, t_max));
      }(),
      "DiscretisationEngine: grid results are not monotone in the reward "
      "bound");
  return grid;
}

std::vector<std::vector<JointDistribution>>
DiscretisationEngine::joint_distribution_grid_block(
    std::span<const Mrm> models, std::span<const double> times,
    std::span<const double> rewards, Workspace* workspace) const {
  const std::size_t lanes = models.size();
  if (lanes == 0 || lanes > kMaxRhsBlock)
    throw ModelError(
        "DiscretisationEngine: lane count must lie in [1, kMaxRhsBlock]");
  const Mrm& shape = models.front();
  const std::size_t num_rewards = rewards.size();
  std::vector<std::vector<JointDistribution>> result(
      lanes, std::vector<JointDistribution>(times.size() * num_rewards));

  // Triviality is decided by (t, r) and the shared rates/rewards alone
  // (engine.cpp), so the live set is lane-independent; only the trivial
  // *results* differ per lane (each consults its own initial
  // distribution).
  struct Live {
    std::size_t slot;
    std::size_t total_steps;
    std::size_t reward_cells;
  };
  std::vector<Live> live;
  const double d = step_;
  for (std::size_t i = 0; i < times.size(); ++i) {
    for (std::size_t j = 0; j < num_rewards; ++j) {
      const std::size_t slot = i * num_rewards + j;
      if (joint_distribution_trivial_case(models[0], times[i], rewards[j],
                                          result[0][slot])) {
        for (std::size_t b = 1; b < lanes; ++b)
          joint_distribution_trivial_case(models[b], times[i], rewards[j],
                                          result[b][slot]);
        continue;
      }
      live.push_back({slot, as_natural(times[i] / d, 1e-6, "t/d"),
                      as_natural(rewards[j] / d, 1e-6, "r/d")});
      if (live.back().total_steps == 0)
        throw ModelError("DiscretisationEngine: t must be at least one step d");
    }
  }
  if (live.empty()) return result;

  CSRL_SPAN("p3/discretisation/joint_distribution_grid");
  const std::size_t n = shape.num_states();
  std::vector<std::size_t> rho(n);
  for (std::size_t s = 0; s < n; ++s)
    rho[s] = as_natural(shape.reward(s), 1e-9, "every reward rate");
  for (std::size_t s = 0; s < n; ++s)
    if (shape.chain().exit_rate(s) * d >= 1.0)
      throw ModelError(
          "DiscretisationEngine: step too coarse, E(s)*d must stay below 1 "
          "(state " + std::to_string(s) + ")");

  std::size_t max_steps = 0;
  std::size_t max_cells = 0;
  for (const Live& pt : live) {
    max_steps = std::max(max_steps, pt.total_steps);
    max_cells = std::max(max_cells, pt.reward_cells);
  }

  // One lane-interleaved pair of F arrays: lane b's cell (s, k) lives at
  // (s * width + k) * lanes + b, so the lane loops below are contiguous
  // (and SIMD-safe: lanes never mix, each performs its own single-start
  // arithmetic in the same order).
  const std::size_t width = max_cells + 1;
  CSRL_GAUGE("p3/discretisation/time_steps", static_cast<double>(max_steps));
  CSRL_GAUGE("p3/discretisation/reward_cells", static_cast<double>(width));
  Workspace::LoopGuard guard(workspace);
  Workspace::Lease current_lease(workspace, n * width * lanes);
  Workspace::Lease next_lease(workspace, n * width * lanes);
  std::vector<double>& current = current_lease.get();
  std::vector<double>& next = next_lease.get();
  current.assign(n * width * lanes, 0.0);
  next.assign(n * width * lanes, 0.0);

  for (std::size_t b = 0; b < lanes; ++b) {
    const std::vector<double>& initial = models[b].initial_distribution();
    for (std::size_t s = 0; s < n; ++s) {
      const double mass = initial[s];
      if (mass == 0.0) continue;
      if (rho[s] <= max_cells)
        current[(s * width + rho[s]) * lanes + b] += mass / d;
    }
  }

  const CsrMatrix incoming = shape.rates().transposed();
  struct Donor {
    std::size_t state;
    double weight;
    std::size_t shift;
  };
  std::vector<std::vector<Donor>> donors(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& e : incoming.row(s)) {
      std::size_t shift = rho[e.col];
      if (shape.has_impulse_rewards()) {
        const double iota = shape.impulse(e.col, s);
        if (iota > 0.0)
          shift += as_natural(iota / d, 1e-6, "every impulse divided by d");
      }
      donors[s].push_back({e.col, e.value * d, shift});
    }
  }

  ThreadPool& workers = pool();
  const std::size_t grain = sweep_grain(width * lanes);

  const auto harvest = [&](std::size_t steps_done) {
    for (const Live& pt : live) {
      if (pt.total_steps != steps_done) continue;
      JointDistribution* outs[kMaxRhsBlock];
      for (std::size_t b = 0; b < lanes; ++b) {
        outs[b] = &result[b][pt.slot];
        outs[b]->per_state.assign(n, 0.0);
        outs[b]->steps = pt.total_steps;
      }
      workers.parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          double acc[kMaxRhsBlock] = {};
          for (std::size_t k = 0; k <= pt.reward_cells; ++k) {
            const double* c = current.data() + (s * width + k) * lanes;
            CSRL_PRAGMA_SIMD
            for (std::size_t b = 0; b < lanes; ++b) acc[b] += c[b];
          }
          for (std::size_t b = 0; b < lanes; ++b)
            outs[b]->per_state[s] = acc[b] * d;
        }
      });
    }
  };

  harvest(1);
  for (std::size_t j = 1; j < max_steps; ++j) {
    CSRL_COUNT("p3/discretisation/sweeps", 1);
    CSRL_HIST_SCOPE("latency/p3_sweep");
    workers.parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
      std::fill(
          next.begin() + static_cast<std::ptrdiff_t>(lo * width * lanes),
          next.begin() + static_cast<std::ptrdiff_t>(hi * width * lanes), 0.0);
      for (std::size_t s = lo; s < hi; ++s) {
        const double stay = 1.0 - shape.chain().exit_rate(s) * d;
        const std::size_t shift = rho[s];
        for (std::size_t k = shift; k <= max_cells; ++k) {
          const double* src = current.data() + (s * width + (k - shift)) * lanes;
          double* dst = next.data() + (s * width + k) * lanes;
          CSRL_PRAGMA_SIMD
          for (std::size_t b = 0; b < lanes; ++b) dst[b] = src[b] * stay;
        }
        for (const Donor& donor : donors[s]) {
          for (std::size_t k = donor.shift; k <= max_cells; ++k) {
            const double* src =
                current.data() +
                (donor.state * width + (k - donor.shift)) * lanes;
            double* dst = next.data() + (s * width + k) * lanes;
            CSRL_PRAGMA_SIMD
            for (std::size_t b = 0; b < lanes; ++b)
              dst[b] += src[b] * donor.weight;
          }
        }
      }
    });
    current.swap(next);
    harvest(j + 1);
  }
  CSRL_COUNT("p3/discretisation/allocs_in_loop", guard.heap_allocations());

  CSRL_CONTRACT(
      [&] {
        double t_max = 0.0;
        for (double t : times) t_max = std::max(t_max, t);
        for (std::size_t b = 0; b < lanes; ++b) {
          std::vector<std::vector<double>> view;
          view.reserve(result[b].size());
          for (const JointDistribution& g : result[b])
            view.push_back(g.per_state);
          if (!joint_grid_monotone_in_reward(
                  view, times.size(), rewards,
                  2.0 * d * (1.0 + shape.chain().max_exit_rate()) *
                      std::max(1.0, t_max)))
            return false;
        }
        return true;
      }(),
      "DiscretisationEngine: blocked grid results are not monotone in the "
      "reward bound");
  return result;
}

std::vector<std::vector<double>>
DiscretisationEngine::joint_probability_all_starts_grid(
    const Mrm& model, std::span<const double> times,
    std::span<const double> rewards, const StateSet& target) const {
  const std::size_t n = model.num_states();
  if (target.size() != n)
    throw ModelError("joint_probability_all_starts: universe mismatch");
  CSRL_SPAN("p3/discretisation/all_starts_grid");
  std::vector<std::vector<double>> grid(times.size() * rewards.size(),
                                        std::vector<double>(n, 0.0));
  // One arena across the per-start-state runs: every run sweeps the same
  // n-by-width F arrays, so only the first one allocates them.
  Workspace start_workspace;
  if (rhs_block_ > 1 && n > 1) {
    // Blocked: each group of up to rhs_block_ start states shares one
    // lane-interleaved sweep (joint_distribution_grid_block), bitwise
    // identical per lane to the one-start-per-run loop below.
    std::vector<Mrm> group;
    group.reserve(std::min(rhs_block_, n));
    for (std::size_t s0 = 0; s0 < n; s0 += rhs_block_) {
      const std::size_t lanes = std::min(rhs_block_, n - s0);
      group.clear();
      for (std::size_t b = 0; b < lanes; ++b) {
        Mrm from_s(Ctmc(model.rates()), model.rewards(), model.labelling(),
                   s0 + b);
        if (model.has_impulse_rewards())
          from_s = from_s.with_impulses(model.impulse_rewards());
        group.push_back(std::move(from_s));
      }
      const std::vector<std::vector<JointDistribution>> per_lane =
          joint_distribution_grid_block(group, times, rewards,
                                        &start_workspace);
      for (std::size_t b = 0; b < lanes; ++b)
        for (std::size_t g = 0; g < grid.size(); ++g)
          grid[g][s0 + b] = per_lane[b][g].probability_in(target);
    }
    return grid;
  }
  for (std::size_t s = 0; s < n; ++s) {
    Mrm from_s(Ctmc(model.rates()), model.rewards(), model.labelling(), s);
    if (model.has_impulse_rewards())
      from_s = from_s.with_impulses(model.impulse_rewards());
    const std::vector<JointDistribution> per_start =
        joint_distribution_grid_impl(from_s, times, rewards, &start_workspace);
    for (std::size_t g = 0; g < grid.size(); ++g)
      grid[g][s] = per_start[g].probability_in(target);
  }
  return grid;
}

double DiscretisationEngine::interval_until(const Mrm& model,
                                            const StateSet& phi,
                                            const StateSet& psi, Interval time,
                                            Interval reward) const {
  const std::size_t n = model.num_states();
  if (phi.size() != n || psi.size() != n)
    throw ModelError("interval_until: universe size mismatch");
  if (!time.has_upper_bound() || !reward.has_upper_bound())
    throw ModelError(
        "interval_until: both upper bounds must be finite (unbounded "
        "dimensions are the P0/P1/P2 pipelines' job)");

  CSRL_SPAN("p3/discretisation/interval_until");

  const double d = step_;
  std::vector<std::size_t> rho(n);
  for (std::size_t s = 0; s < n; ++s)
    rho[s] = as_natural(model.reward(s), 1e-9, "every reward rate");
  const std::size_t t_hi = as_natural(time.hi / d, 1e-6, "t2/d");
  const std::size_t t_lo = as_natural(time.lo / d, 1e-6, "t1/d");
  const std::size_t r_hi = as_natural(reward.hi / d, 1e-6, "r2/d");
  const std::size_t r_lo = as_natural(reward.lo / d, 1e-6, "r1/d");
  for (std::size_t s = 0; s < n; ++s)
    if (model.chain().exit_rate(s) * d >= 1.0)
      throw ModelError(
          "interval_until: step too coarse, E(s)*d must stay below 1");

  // Mass classification helpers.  Both grid coordinates only grow along a
  // path, so "past either window" means the mass can never qualify.
  const auto in_windows = [&](std::size_t j, std::size_t k) {
    return j >= t_lo && j <= t_hi && k >= r_lo && k <= r_hi;
  };

  const std::size_t width = r_hi + 1;
  std::vector<double> current(n * width, 0.0);
  std::vector<double> next(n * width, 0.0);
  const auto cell = [width](std::vector<double>& f, std::size_t s,
                            std::size_t k) -> double& {
    return f[s * width + k];
  };

  double success = 0.0;  // accumulated probability mass (not density)

  // Harvest pass at grid instant j: satisfied mass leaves the grid, mass
  // stuck in states that cannot carry the path onward is dropped (fail).
  const auto classify = [&](std::vector<double>& f, std::size_t j) {
    for (std::size_t s = 0; s < n; ++s) {
      const bool is_psi = psi.contains(s);
      const bool is_phi = phi.contains(s);
      for (std::size_t k = 0; k <= r_hi; ++k) {
        double& mass = cell(f, s, k);
        if (mass == 0.0) continue;
        if (is_psi && in_windows(j, k)) {
          success += mass * d;
          mass = 0.0;
        } else if (!is_phi) {
          // Neither satisfied here nor able to continue: the paths die.
          mass = 0.0;
        }
      }
    }
  };

  // Grid instant 0: the initial distribution as densities (mass / d).
  for (std::size_t s = 0; s < n; ++s) {
    const double mass = model.initial_distribution()[s];
    if (mass > 0.0) cell(current, s, 0) += mass / d;
  }
  classify(current, 0);

  // Propagation parallelises exactly like joint_distribution's sweep (each
  // state's slice of `next` has one writer).  The classify pass stays
  // serial: it folds `success` in a fixed (s, k) order, and keeping that
  // fold sequential preserves bit-identical answers at every thread count.
  const CsrMatrix incoming = model.rates().transposed();
  ThreadPool& workers = pool();
  const std::size_t grain = sweep_grain(width);
  for (std::size_t j = 1; j <= t_hi; ++j) {
    CSRL_COUNT("p3/discretisation/sweeps", 1);
    CSRL_HIST_SCOPE("latency/p3_sweep");
    workers.parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
      std::fill(next.begin() + static_cast<std::ptrdiff_t>(lo * width),
                next.begin() + static_cast<std::ptrdiff_t>(hi * width), 0.0);
      for (std::size_t s = lo; s < hi; ++s) {
        const double stay = 1.0 - model.chain().exit_rate(s) * d;
        const std::size_t shift = rho[s];
        for (std::size_t k = shift; k <= r_hi; ++k)
          cell(next, s, k) = cell(current, s, k - shift) * stay;
        for (const auto& e : incoming.row(s)) {
          const std::size_t donor = e.col;
          std::size_t donor_shift = rho[donor];
          if (model.has_impulse_rewards()) {
            const double iota = model.impulse(donor, s);
            if (iota > 0.0)
              donor_shift +=
                  as_natural(iota / d, 1e-6, "every impulse divided by d");
          }
          const double weight = e.value * d;
          for (std::size_t k = donor_shift; k <= r_hi; ++k)
            cell(next, s, k) += cell(current, donor, k - donor_shift) * weight;
        }
      }
    });
    current.swap(next);
    classify(current, j);
  }
  return std::min(success, 1.0);
}

}  // namespace csrl
