#include "core/engines/sericola_engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>

#include "core/validate.hpp"
#include "ctmc/foxglynn.hpp"
#include "matrix/spmm.hpp"
#include "matrix/vector_ops.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/workspace.hpp"

namespace csrl {

namespace {

/// States grouped into reward classes: levels 0 = rho_0 < ... < rho_m with
/// class 0 always anchored at reward zero (possibly empty), as Sericola's
/// recursion requires.
struct RewardClasses {
  std::vector<double> levels;              // size m + 1
  std::vector<std::size_t> class_of;       // per state
  std::vector<std::vector<std::size_t>> members;  // per class
};

RewardClasses classify(const Mrm& model) {
  RewardClasses rc;
  rc.levels = model.distinct_rewards();
  if (rc.levels.empty() || rc.levels.front() > 0.0)
    rc.levels.insert(rc.levels.begin(), 0.0);

  rc.class_of.resize(model.num_states());
  rc.members.resize(rc.levels.size());
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    const auto it = std::lower_bound(rc.levels.begin(), rc.levels.end(),
                                     model.reward(s));
    const auto c = static_cast<std::size_t>(it - rc.levels.begin());
    rc.class_of[s] = c;
    rc.members[c].push_back(s);
  }
  return rc;
}

/// Bernstein basis value C(n,k) x^k (1-x)^{n-k}, stable in log space.
double bernstein(std::size_t n, std::size_t k, double x) {
  if (x == 0.0) return k == 0 ? 1.0 : 0.0;
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  const double log_choose = lgamma_safe(dn + 1.0) - lgamma_safe(dk + 1.0) -
                            lgamma_safe(dn - dk + 1.0);
  return std::exp(log_choose + dk * std::log(x) +
                  (dn - dk) * std::log1p(-x));
}

/// Triangular store for the per-level coefficient vectors c(h, n, k): one
/// slot per reward interval h in 1..m and jump count k in 0..N, each a
/// vector over states.  Views caller-provided (typically workspace-leased)
/// storage, which it zero-fills; swapping two stores just swaps the views.
class LevelStore {
 public:
  LevelStore(std::vector<double>& storage, std::size_t m, std::size_t max_n,
             std::size_t num_states)
      : stride_(max_n + 1), num_states_(num_states) {
    storage.assign(m * stride_ * num_states, 0.0);
    data_ = storage.data();
  }

  double* slot(std::size_t h, std::size_t k) {
    return data_ + ((h - 1) * stride_ + k) * num_states_;
  }
  const double* slot(std::size_t h, std::size_t k) const {
    return data_ + ((h - 1) * stride_ + k) * num_states_;
  }
  std::span<const double> span(std::size_t h, std::size_t k) const {
    return {slot(h, k), num_states_};
  }

 private:
  std::size_t stride_;
  std::size_t num_states_;
  double* data_ = nullptr;
};

}  // namespace

SericolaEngine::SericolaEngine(double epsilon, std::shared_ptr<ThreadPool> pool,
                               std::size_t rhs_block)
    : JointDistributionEngine(std::move(pool)),
      epsilon_(epsilon),
      rhs_block_(resolve_rhs_block(rhs_block)) {
  if (!(epsilon > 0.0 && epsilon < 1.0))
    throw ModelError("SericolaEngine: epsilon must lie in (0, 1)");
}

std::string SericolaEngine::name() const { return "sericola"; }

std::size_t SericolaEngine::truncation_depth(const Mrm& model, double t) const {
  const double lambda =
      model.chain().max_exit_rate() > 0.0 ? model.chain().max_exit_rate() : 1.0;
  return poisson_weights(lambda * t, epsilon_).right;
}

std::vector<std::vector<double>> SericolaEngine::all_starts_points(
    const Mrm& model, std::span<const std::pair<double, double>> points,
    const StateSet& target, Workspace* workspace) const {
  if (model.has_impulse_rewards())
    throw ModelError(
        "SericolaEngine: occupation-time distributions are a rate-reward "
        "result ([23]); for impulse rewards use the discretisation or "
        "pseudo-Erlang engine, or the simulator");

  // Every point satisfies t > 0, 0 < r < max_reward * t (the trivial cases
  // were peeled off by the callers), hence m >= 1 and each point's reward
  // interval index h* below exists.
  const std::size_t num_states = model.num_states();
  const RewardClasses rc = classify(model);
  const std::size_t m = rc.levels.size() - 1;

  // Points sharing a horizon (same bits of t) share one Poisson window and
  // one transient accumulator — their single runs accumulate the transient
  // term identically.
  std::vector<double> horizon_times;
  std::vector<std::size_t> time_of_point(points.size());
  for (std::size_t pt = 0; pt < points.size(); ++pt) {
    const auto key = std::bit_cast<std::uint64_t>(points[pt].first);
    std::size_t idx = horizon_times.size();
    for (std::size_t q = 0; q < horizon_times.size(); ++q) {
      if (std::bit_cast<std::uint64_t>(horizon_times[q]) == key) {
        idx = q;
        break;
      }
    }
    // lint:allow hot-alloc (horizon dedup during point preprocessing, before any series work)
    if (idx == horizon_times.size()) horizon_times.push_back(points[pt].first);
    time_of_point[pt] = idx;
  }

  // Per point: the enclosing reward interval h* and Bernstein abscissa x.
  std::vector<std::size_t> h_star(points.size(), m);
  std::vector<double> x_of(points.size(), 0.0);
  for (std::size_t pt = 0; pt < points.size(); ++pt) {
    const double t = points[pt].first;
    const double r = points[pt].second;
    for (std::size_t h = 1; h <= m; ++h) {
      if (r < rc.levels[h] * t) {
        h_star[pt] = h;
        break;
      }
    }
    const double span_h =
        (rc.levels[h_star[pt]] - rc.levels[h_star[pt] - 1]) * t;
    const double x = (r - rc.levels[h_star[pt] - 1] * t) / span_h;
    x_of[pt] = std::clamp(x, 0.0, 1.0 - 1e-16);
  }

  const double lambda =
      model.chain().max_exit_rate() > 0.0 ? model.chain().max_exit_rate() : 1.0;
  const CsrMatrix p = model.chain().uniformised_dtmc(lambda);
  std::vector<PoissonWeights> windows;
  windows.reserve(horizon_times.size());
  std::size_t max_n = 0;
  for (double t : horizon_times) {
    // lint:allow hot-alloc (per-horizon window setup into capacity reserved above, before the series loop)
    windows.push_back(poisson_weights(lambda * t, epsilon_));
    max_n = std::max(max_n, windows.back().right);
  }
  CSRL_GAUGE("p3/sericola/truncation_depth", static_cast<double>(max_n));
  CSRL_GAUGE("p3/sericola/reward_classes", static_cast<double>(m));

  // c(h, n, k) vectors for the current and previous jump count n, plus the
  // cache of products P * c(h, n-1, k) both sweeps consume.  The stores and
  // the power-iteration pair lease arena storage so repeated calls (the
  // grid paths) skip the per-call allocations after the first.
  Workspace::LoopGuard guard(workspace);
  const std::size_t store_size = m * (max_n + 1) * num_states;
  Workspace::Lease current_store(workspace, store_size);
  Workspace::Lease previous_store(workspace, store_size);
  Workspace::Lease products_store(workspace, store_size);
  LevelStore current(current_store.get(), m, max_n, num_states);
  LevelStore previous(previous_store.get(), m, max_n, num_states);
  LevelStore products(products_store.get(), m, max_n, num_states);

  // Block buffers for the grouped coefficient products (zero-sized, hence
  // free, when blocking is off).
  Workspace::Lease x_block_lease(workspace,
                                 rhs_block_ > 1 ? num_states * rhs_block_ : 0);
  Workspace::Lease y_block_lease(workspace,
                                 rhs_block_ > 1 ? num_states * rhs_block_ : 0);

  Workspace::Lease u_lease(workspace, num_states);
  Workspace::Lease scratch_lease(workspace, num_states);
  std::vector<double>& u = u_lease.get();  // u = P^n v
  {
    const std::vector<double> indicator = target.indicator();
    u.assign(indicator.begin(), indicator.end());
  }
  std::vector<double>& scratch = scratch_lease.get();
  scratch.assign(num_states, 0.0);
  std::vector<std::vector<double>> transient(
      horizon_times.size(), std::vector<double>(num_states, 0.0));
  std::vector<std::vector<double>> exceed(
      points.size(), std::vector<double>(num_states, 0.0));

  // Per-state updates within one (h, k) slot are independent, so the
  // member lists parallelise chunk-wise; the (h, k) iteration order itself
  // carries the recursion's data dependencies and stays sequential.  Each
  // state's value is computed by the same expression regardless of the
  // partition, so results are bit-identical at any thread count.
  ThreadPool& workers = pool();
  constexpr std::size_t kMemberGrain = 1 << 12;

  for (std::size_t n = 0; n <= max_n; ++n) {
    CSRL_SPAN("p3/sericola/column_sweep");
    CSRL_COUNT("p3/sericola/jump_levels", 1);
    CSRL_HIST_SCOPE("latency/p3_sweep");
    if (n > 0) {
      // lint:allow spmm-blocking (single power iterate, no batch to block)
      p.multiply(u, scratch);
      u.swap(scratch);
      const std::size_t num_products = m * n;
      if (rhs_block_ > 1 && num_products > 1) {
        // The m * n products P * c(h, n-1, k) share the matrix, so group
        // them into row-major blocks of at most rhs_block_ lanes and
        // stream P once per group (matrix/spmm.cpp) instead of once per
        // vector.  Pack/unpack are exact element copies and the block
        // kernel gathers each lane in the one-RHS column order, so the
        // products are bitwise those of the looped multiply; the kernel
        // parallelises over nnz-balanced row chunks internally.
        for (std::size_t f0 = 0; f0 < num_products; f0 += rhs_block_) {
          const std::size_t width = std::min(rhs_block_, num_products - f0);
          const double* in_cols[kMaxRhsBlock];
          double* out_cols[kMaxRhsBlock];
          for (std::size_t b = 0; b < width; ++b) {
            const std::size_t h = 1 + (f0 + b) / n;
            const std::size_t k = (f0 + b) % n;
            in_cols[b] = previous.slot(h, k);
            out_cols[b] = products.slot(h, k);
          }
          std::vector<double>& x = x_block_lease.get();
          std::vector<double>& y = y_block_lease.get();
          workers.parallel_for(0, num_states, kMemberGrain,
                               [&](std::size_t lo, std::size_t hi) {
                                 pack_block({in_cols, width}, x, lo, hi,
                                            width);
                               });
          p.multiply_block(x, y, width, width);
          workers.parallel_for(0, num_states, kMemberGrain,
                               [&](std::size_t lo, std::size_t hi) {
                                 unpack_block(y, {out_cols, width}, lo, hi,
                                              width);
                               });
        }
      } else {
        // One-RHS fallback (rhs_block == 1): the products are independent
        // SpMVs; spread them over the pool (each multiply then runs
        // inline in its worker).
        workers.parallel_for(
            0, num_products, 1,
            [&](std::size_t flat_begin, std::size_t flat_end) {
              for (std::size_t f = flat_begin; f < flat_end; ++f) {
                const std::size_t h = 1 + f / n;
                const std::size_t k = f % n;
                std::span<double> out{products.slot(h, k), num_states};
                // lint:allow spmm-blocking (width-1 fallback of the blocked path)
                p.multiply(previous.span(h, k), out);
              }
            });
      }
    }

    // High sweep: rows with rho(i) >= rho_h, h ascending, k ascending.
    for (std::size_t h = 1; h <= m; ++h) {
      const double rho_h = rc.levels[h];
      const double rho_h1 = rc.levels[h - 1];
      for (std::size_t k = 0; k <= n; ++k) {
        double* c = current.slot(h, k);
        for (std::size_t cls = h; cls <= m; ++cls) {
          const double rho_i = rc.levels[cls];
          const double a = (rho_i - rho_h) / (rho_i - rho_h1);
          const double b = (rho_h - rho_h1) / (rho_i - rho_h1);
          const std::vector<std::size_t>& members = rc.members[cls];
          workers.parallel_for(
              0, members.size(), kMemberGrain,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t idx = lo; idx < hi; ++idx) {
                  const std::size_t i = members[idx];
                  if (k == 0) {
                    c[i] = h == 1 ? u[i] : current.slot(h - 1, n)[i];
                  } else {
                    c[i] = a * current.slot(h, k - 1)[i] +
                           b * products.slot(h, k - 1)[i];
                  }
                }
              });
        }
      }
    }

    // Low sweep: rows with rho(i) <= rho_{h-1}, h descending, k descending.
    for (std::size_t h = m; h >= 1; --h) {
      const double rho_h = rc.levels[h];
      const double rho_h1 = rc.levels[h - 1];
      for (std::size_t k = n + 1; k-- > 0;) {
        double* c = current.slot(h, k);
        for (std::size_t cls = 0; cls < h; ++cls) {
          const double rho_i = rc.levels[cls];
          const double a = (rho_h1 - rho_i) / (rho_h - rho_i);
          const double b = (rho_h - rho_h1) / (rho_h - rho_i);
          const std::vector<std::size_t>& members = rc.members[cls];
          workers.parallel_for(
              0, members.size(), kMemberGrain,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t idx = lo; idx < hi; ++idx) {
                  const std::size_t i = members[idx];
                  if (k == n) {
                    c[i] = h == m ? 0.0 : current.slot(h + 1, 0)[i];
                  } else {
                    c[i] = a * current.slot(h, k + 1)[i] +
                           b * products.slot(h, k)[i];
                  }
                }
              });
        }
      }
    }

    // A point's single run executes its accumulation for every n up to its
    // own window's right bound (including zero-weight steps below the
    // window, whose axpy leaves the accumulator bit-unchanged) and never
    // beyond it — mirror that exactly.
    for (std::size_t h = 0; h < horizon_times.size(); ++h) {
      if (n > windows[h].right) continue;
      axpy(windows[h].weight(n), u, transient[h]);
    }
    for (std::size_t pt = 0; pt < points.size(); ++pt) {
      const PoissonWeights& window = windows[time_of_point[pt]];
      if (n > window.right) continue;
      const double w = window.weight(n);
      if (w > 0.0) {
        for (std::size_t k = 0; k <= n; ++k) {
          const double basis = bernstein(n, k, x_of[pt]);
          if (basis > 0.0)
            axpy(w * basis, current.span(h_star[pt], k), exceed[pt]);
        }
      }
    }

    std::swap(current, previous);
  }
  CSRL_COUNT("p3/sericola/allocs_in_loop", guard.heap_allocations());

  std::vector<std::vector<double>> results(points.size());
  for (std::size_t pt = 0; pt < points.size(); ++pt) {
    const std::vector<double>& tr = transient[time_of_point[pt]];
    results[pt].assign(num_states, 0.0);
    for (std::size_t i = 0; i < num_states; ++i)
      results[pt][i] = std::clamp(tr[i] - exceed[pt][i], 0.0, 1.0);
  }
  return results;
}

std::vector<double> SericolaEngine::joint_probability_all_starts(
    const Mrm& model, double t, double r, const StateSet& target) const {
  std::vector<double> trivial;
  if (joint_all_starts_trivial_case(model, t, r, target, trivial))
    return trivial;

  CSRL_SPAN("p3/sericola/all_starts");

  const std::pair<double, double> point[1] = {{t, r}};
  std::vector<double> result =
      std::move(all_starts_points(model, point, target, nullptr)[0]);
  if (CSRL_CONTRACTS_ACTIVE())
    validate_joint_result(
        name() + " all-starts", t, r, result, 2.0 * epsilon_ + 1e-12,
        [&](double rr) {
          return joint_probability_all_starts(model, t, rr, target);
        });
  return result;
}

std::vector<std::vector<double>> SericolaEngine::joint_probability_all_starts_grid(
    const Mrm& model, std::span<const double> times,
    std::span<const double> rewards, const StateSet& target) const {
  const std::size_t num_rewards = rewards.size();
  std::vector<std::vector<double>> grid(times.size() * num_rewards);
  std::vector<std::pair<double, double>> live;
  std::vector<std::size_t> live_slot;
  for (std::size_t i = 0; i < times.size(); ++i) {
    for (std::size_t j = 0; j < num_rewards; ++j) {
      std::vector<double> trivial;
      if (joint_all_starts_trivial_case(model, times[i], rewards[j], target,
                                        trivial)) {
        grid[i * num_rewards + j] = std::move(trivial);
      } else {
        live.emplace_back(times[i], rewards[j]);
        live_slot.push_back(i * num_rewards + j);
      }
    }
  }
  if (live.empty()) return grid;

  CSRL_SPAN("p3/sericola/all_starts_grid");
  Workspace grid_workspace;
  std::vector<std::vector<double>> computed =
      all_starts_points(model, live, target, &grid_workspace);
  for (std::size_t k = 0; k < live.size(); ++k)
    grid[live_slot[k]] = std::move(computed[k]);

  CSRL_CONTRACT(
      joint_grid_monotone_in_reward(grid, times.size(), rewards,
                                    2.0 * epsilon_ + 1e-12),
      "SericolaEngine: grid results are not monotone in the reward bound");
  return grid;
}

std::vector<JointDistribution> SericolaEngine::joint_distribution_grid(
    const Mrm& model, std::span<const double> times,
    std::span<const double> rewards) const {
  const std::size_t num_rewards = rewards.size();
  std::vector<JointDistribution> grid(times.size() * num_rewards);
  std::vector<std::pair<double, double>> live;
  std::vector<std::size_t> live_slot;
  for (std::size_t i = 0; i < times.size(); ++i) {
    for (std::size_t j = 0; j < num_rewards; ++j) {
      if (joint_distribution_trivial_case(model, times[i], rewards[j],
                                          grid[i * num_rewards + j]))
        continue;
      live.emplace_back(times[i], rewards[j]);
      live_slot.push_back(i * num_rewards + j);
    }
  }
  if (live.empty()) return grid;

  CSRL_SPAN("p3/sericola/joint_distribution_grid");

  const std::size_t n = model.num_states();
  for (std::size_t k = 0; k < live.size(); ++k) {
    grid[live_slot[k]].per_state.assign(n, 0.0);
    grid[live_slot[k]].steps = truncation_depth(model, live[k].first);
  }
  // One multi-point pass per final state j; the initial distribution then
  // picks out the required mixture of start states, exactly as the
  // single-point form does.  One arena spans the n passes: the first pass
  // warms it and the remaining n-1 run without heap traffic.
  Workspace grid_workspace;
  for (std::size_t j = 0; j < n; ++j) {
    StateSet single(n);
    single.insert(j);
    const std::vector<std::vector<double>> cols =
        all_starts_points(model, live, single, &grid_workspace);
    for (std::size_t k = 0; k < live.size(); ++k)
      grid[live_slot[k]].per_state[j] =
          dot(model.initial_distribution(), cols[k]);
  }
  return grid;
}

JointDistribution SericolaEngine::joint_distribution(const Mrm& model, double t,
                                                     double r) const {
  JointDistribution result;
  if (joint_distribution_trivial_case(model, t, r, result)) return result;

  CSRL_SPAN("p3/sericola/joint_distribution");

  // One vector pass per final state j (cumulatively the cost of the
  // paper-faithful matrix recursion); the initial distribution then picks
  // out the required mixture of start states.
  const std::size_t n = model.num_states();
  result.per_state.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    StateSet single(n);
    single.insert(j);
    const std::vector<double> h_col =
        joint_probability_all_starts(model, t, r, single);
    result.per_state[j] = dot(model.initial_distribution(), h_col);
  }
  result.steps = truncation_depth(model, t);
  if (CSRL_CONTRACTS_ACTIVE())
    validate_joint_result(
        name(), t, r, result.per_state, 2.0 * epsilon_ + 1e-12,
        [&](double rr) { return joint_distribution(model, t, rr).per_state; });
  return result;
}

}  // namespace csrl
