// Tijms-Veldman discretisation (Section 4.3, after [24]).
//
// Time and accumulated reward are discretised with the same step size d.
// F^j(s, k) approximates the joint density of being in state s at time j*d
// having accumulated reward k*d.  With natural-number reward rates, one
// time step in state s advances the reward index by exactly rho(s), and
// the recursion of the paper applies:
//
//   F^{j+1}(s, k) = F^j(s, k - rho(s)) (1 - E(s) d)
//                 + sum_{s'} F^j(s', k - rho(s')) R(s', s) d
//
// (the displacement of the incoming term uses the *donor* state's reward
// rho(s'), following the paper's prose — its typeset formula says rho(s),
// which disagrees with the explanation underneath it; both choices agree
// in the d -> 0 limit).  Negative reward indices denote impossible
// configurations and contribute zero.
//
// After T = t/d iterations,
//
//   Pr{Y_t <= r, X_t in S'}  ~  sum_{s in S'} sum_{k=0}^{R} F^T(s, k) d,
//
// with R = r/d.  We include k = 0 in the sum (the paper starts at k = 1):
// the k = 0 column carries the probability *atom* of paths that only ever
// visited zero-reward states, which is genuinely part of {Y_t <= r}.
//
// Preconditions (as in the paper): every reward rate is a natural number
// (rational rewards must be pre-scaled by the caller), t and r are
// multiples of d, and d is small enough that E(s) d < 1 for every state.
// The error decreases linearly in d while the work grows ~ d^{-2}, which
// is what bench_table4_discretisation measures.
#pragma once

#include "core/engines/engine.hpp"
#include "logic/formula.hpp"

namespace csrl {

class Workspace;

/// Section 4.3's engine.  `step` is the discretisation step d.  The
/// per-state recurrence sweep runs on `pool` (nullptr = the shared pool);
/// results are bit-identical at any thread count because each state's row
/// of F is written by exactly one chunk.  `rhs_block` is the multi-start
/// block width (TransientOptions::rhs_block semantics: 0 = automatic via
/// CSRL_RHS_BLOCK / kDefaultRhsBlock, 1 disables): the all-starts grid
/// path propagates up to that many start states' F recursions through one
/// lane-interleaved sweep instead of one full sweep per start state,
/// bitwise identical per lane to the one-start runs.
class DiscretisationEngine : public JointDistributionEngine {
 public:
  explicit DiscretisationEngine(double step,
                                std::shared_ptr<ThreadPool> pool = nullptr,
                                std::size_t rhs_block = 0);

  JointDistribution joint_distribution(const Mrm& model, double t,
                                       double r) const override;

  /// General-window until (the paper's Section-6 outlook: "time- and
  /// reward intervals of a more general nature"): the probability, from
  /// the model's initial distribution, of
  ///
  ///     Phi U^{[t1,t2]}_{[r1,r2]} Psi
  ///
  /// with all four bounds arbitrary (upper bounds finite).  The joint
  /// time/reward grid makes this a natural extension of the Tijms-Veldman
  /// scheme: mass flows as usual through Phi-states, arrivals in
  /// (Psi & !Phi)-states are classified on the spot, mass sitting in
  /// (Psi & Phi)-states is harvested as soon as both windows are open,
  /// and mass whose reward exceeds r2 (or whose clock exceeds t2) can
  /// never qualify again because both coordinates are monotone.
  /// Error O(d), like joint_distribution.  Impulse rewards supported.
  /// Cross-validated against the Monte-Carlo simulator, which implements
  /// the same semantics by an unrelated method.
  double interval_until(const Mrm& model, const StateSet& phi,
                        const StateSet& psi, Interval time,
                        Interval reward) const;

  // joint_probability_all_starts is inherited: the scheme propagates a
  // density forward from one initial distribution, so the per-start-state
  // form genuinely costs one run per state.  The paper (like this engine)
  // evaluates single-initial-state queries only.

  /// Batched lattice evaluation.  Column k of F^{j+1} depends only on
  /// columns <= k of F^j (reward shifts are non-negative), so one sweep
  /// over a grid wide enough for the largest reward bound leaves every
  /// lower column bit-identical to a narrower run; each grid point is
  /// harvested from the shared F array the moment its own step count j =
  /// t/d is reached.  A T x R grid thus costs one (max t, max r) run.
  std::vector<JointDistribution> joint_distribution_grid(
      const Mrm& model, std::span<const double> times,
      std::span<const double> rewards) const override;

  /// Grid form of the per-start-state shape: one joint_distribution_grid
  /// run per start state instead of one run per start state *per point*.
  std::vector<std::vector<double>> joint_probability_all_starts_grid(
      const Mrm& model, std::span<const double> times,
      std::span<const double> rewards, const StateSet& target) const override;

  std::string name() const override;

  double step() const { return step_; }

 private:
  /// Body of joint_distribution_grid with the F arrays leased from
  /// `workspace` (nullptr: plain vectors).  joint_probability_all_starts_grid
  /// threads one arena through its per-start-state calls so only the first
  /// run allocates the two n-by-width sweep arrays.
  std::vector<JointDistribution> joint_distribution_grid_impl(
      const Mrm& model, std::span<const double> times,
      std::span<const double> rewards, Workspace* workspace) const;

  /// Blocked multi-start form of joint_distribution_grid_impl.  All
  /// `models` share rates, rewards and labelling and differ only in their
  /// initial distribution (the per-start-state construction of
  /// joint_probability_all_starts_grid); one sweep carries models.size()
  /// lane-interleaved copies of the F recursion (F[(s * width + k) * L + b]
  /// is lane b's cell), so the model-dependent factors stream once per
  /// step instead of once per start.  Per lane the recursion performs the
  /// identical per-cell arithmetic of its own single-start run, so
  /// result[b] is bitwise equal to joint_distribution_grid_impl(models[b],
  /// ...).  models.size() must lie in [1, kMaxRhsBlock].
  std::vector<std::vector<JointDistribution>> joint_distribution_grid_block(
      std::span<const Mrm> models, std::span<const double> times,
      std::span<const double> rewards, Workspace* workspace) const;

  double step_;
  std::size_t rhs_block_;  // resolved effective width, in [1, kMaxRhsBlock]
};

}  // namespace csrl
