#include "core/engines/erlang_engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/validate.hpp"
#include "ctmc/foxglynn.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/workspace.hpp"

namespace csrl {

ErlangEngine::ErlangEngine(std::size_t phases, TransientOptions transient,
                           std::shared_ptr<ThreadPool> pool)
    : JointDistributionEngine(std::move(pool)),
      phases_(phases),
      transient_(transient) {
  if (phases_ == 0)
    throw ModelError("ErlangEngine: the number of phases must be positive");
}

std::string ErlangEngine::name() const {
  return "erlang-" + std::to_string(phases_);
}

Ctmc ErlangEngine::expand(const Mrm& model, double r) const {
  CSRL_SPAN("p3/erlang/expand");
  const std::size_t n = model.num_states();
  const std::size_t k = phases_;
  CSRL_GAUGE("p3/erlang/expanded_states",
             static_cast<double>(n * k + 1));
  const std::size_t exceeded = n * k;
  const double phase_rate_per_reward = static_cast<double>(k) / r;

  CsrBuilder rates(n * k + 1, n * k + 1);
  for (std::size_t s = 0; s < n; ++s) {
    const double advance = model.reward(s) * phase_rate_per_reward;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t from = s * k + i;
      for (const auto& e : model.rates().row(s)) {
        const double iota =
            model.has_impulse_rewards() ? model.impulse(s, e.col) : 0.0;
        if (iota == 0.0) {
          // Plain transitions leave the consumed reward budget untouched.
          rates.add(from, e.col * k + i, e.value);
          continue;
        }
        // An impulse iota crosses a Poisson(iota * k / r) number of budget
        // phases (the budget is a Poisson process of rate k/r along the
        // reward axis); running out of phases crosses the bound.
        const PoissonWeights jumps =
            poisson_weights(iota * phase_rate_per_reward, 1e-12);
        double mass_within = 0.0;
        for (std::size_t j = jumps.left; j <= jumps.right && i + j < k; ++j) {
          rates.add(from, e.col * k + i + j, e.value * jumps.weight(j));
          mass_within += jumps.weight(j);
        }
        const double spill = e.value * (1.0 - mass_within);
        if (spill > 0.0) rates.add(from, exceeded, spill);
      }
      // Budget phase completion; the k-th completion crosses the bound.
      if (advance > 0.0)
        rates.add(from, i + 1 < k ? from + 1 : exceeded, advance);
    }
  }
  return Ctmc(rates.build());
}

JointDistribution ErlangEngine::joint_distribution(const Mrm& model, double t,
                                                   double r) const {
  JointDistribution result;
  if (joint_distribution_trivial_case(model, t, r, result)) return result;

  CSRL_SPAN("p3/erlang/joint_distribution");
  const std::size_t n = model.num_states();
  const std::size_t k = phases_;
  const Ctmc expanded = expand(model, r);

  std::vector<double> initial(expanded.num_states(), 0.0);
  for (std::size_t s = 0; s < n; ++s)
    initial[s * k] = model.initial_distribution()[s];

  // The Erlang engine's sweep unit is one transient solve on the
  // phase-expanded chain (its inner steps land in
  // latency/uniformisation_step like every uniformisation run).
  const std::vector<double> pi = [&] {
    CSRL_HIST_SCOPE("latency/p3_sweep");
    return transient_distribution(expanded, initial, t, transient_);
  }();

  // Per-state mixture over the k phase copies: state s owns the slice
  // pi[s*k .. (s+1)*k), so the fold parallelises over states with the
  // per-state summation order unchanged (bit-identical at any thread
  // count).  The heavy lifting above — uniformisation on the expanded
  // chain — already ran on the pool through the parallel SpMV kernels.
  result.per_state.assign(n, 0.0);
  pool().parallel_for(
      0, n, std::max<std::size_t>(1, (std::size_t{1} << 13) / k),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          double acc = 0.0;
          for (std::size_t i = 0; i < k; ++i) acc += pi[s * k + i];
          result.per_state[s] = acc;
        }
      });
  result.steps =
      poisson_weights(expanded.max_exit_rate() * t, transient_.epsilon).right;
  // The pseudo-Erlang error is O(1/k), degrading to O(1/sqrt(k)) at atoms
  // of Y_t (README); the monotonicity slack covers the latter.
  if (CSRL_CONTRACTS_ACTIVE())
    validate_joint_result(
        name(), t, r, result.per_state,
        4.0 / std::sqrt(static_cast<double>(phases_)) + 1e-9,
        [&](double rr) { return joint_distribution(model, t, rr).per_state; });
  return result;
}

std::vector<double> ErlangEngine::joint_probability_all_starts(
    const Mrm& model, double t, double r, const StateSet& target) const {
  std::vector<double> result;
  if (joint_all_starts_trivial_case(model, t, r, target, result)) return result;

  CSRL_SPAN("p3/erlang/all_starts");
  const std::size_t n = model.num_states();
  const std::size_t k = phases_;
  const Ctmc expanded = expand(model, r);

  // Terminal set: any phase copy of a target state (the budget may be
  // partially consumed as long as it never ran out).
  StateSet expanded_target(expanded.num_states());
  for (std::size_t s : target.members())
    for (std::size_t i = 0; i < k; ++i) expanded_target.insert(s * k + i);

  const std::vector<double> u =
      transient_reach(expanded, expanded_target, t, transient_);

  // A fresh start state has consumed no budget: phase 0.
  result.assign(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) result[s] = u[s * k];
  if (CSRL_CONTRACTS_ACTIVE())
    validate_joint_result(
        name() + " all-starts", t, r, result,
        4.0 / std::sqrt(static_cast<double>(phases_)) + 1e-9,
        [&](double rr) {
          return joint_probability_all_starts(model, t, rr, target);
        });
  return result;
}

std::vector<std::vector<double>> ErlangEngine::joint_probability_all_starts_grid(
    const Mrm& model, std::span<const double> times,
    std::span<const double> rewards, const StateSet& target) const {
  const std::size_t num_rewards = rewards.size();
  std::vector<std::vector<double>> grid(times.size() * num_rewards);
  std::vector<std::vector<std::size_t>> live_times(num_rewards);
  bool any_live = false;
  for (std::size_t i = 0; i < times.size(); ++i) {
    for (std::size_t j = 0; j < num_rewards; ++j) {
      std::vector<double> trivial;
      if (joint_all_starts_trivial_case(model, times[i], rewards[j], target,
                                        trivial)) {
        grid[i * num_rewards + j] = std::move(trivial);
      } else {
        live_times[j].push_back(i);
        any_live = true;
      }
    }
  }
  if (!any_live) return grid;

  CSRL_SPAN("p3/erlang/all_starts_grid");
  const std::size_t n = model.num_states();
  const std::size_t k = phases_;
  // The expanded chain has the same size for every reward column, so one
  // arena serves every batched transient run of the sweep: the first
  // column warms it, the rest iterate without heap traffic.  The
  // transient options' rhs_block rides along: each column's batched run
  // carries all of its live horizons as one interleaved accumulator
  // block per matrix pass (ctmc/uniformisation.cpp), so a column costs
  // about one SpMV stream regardless of how many horizons share it.
  // (Columns cannot be blocked with each other — every reward bound
  // expands to a different chain.)
  Workspace grid_workspace;
  TransientOptions transient = transient_;
  if (transient.workspace == nullptr) transient.workspace = &grid_workspace;
  for (std::size_t j = 0; j < num_rewards; ++j) {
    if (live_times[j].empty()) continue;
    const Ctmc expanded = expand(model, rewards[j]);
    StateSet expanded_target(expanded.num_states());
    for (std::size_t s : target.members())
      for (std::size_t i = 0; i < k; ++i) expanded_target.insert(s * k + i);

    std::vector<double> horizon;
    horizon.reserve(live_times[j].size());
    for (std::size_t i : live_times[j]) horizon.push_back(times[i]);
    const std::vector<std::vector<double>> us =
        transient_reach_batch(expanded, expanded_target, horizon, transient);

    for (std::size_t pos = 0; pos < live_times[j].size(); ++pos) {
      std::vector<double>& out = grid[live_times[j][pos] * num_rewards + j];
      out.assign(n, 0.0);
      for (std::size_t s = 0; s < n; ++s) out[s] = us[pos][s * k];
    }
  }

  CSRL_CONTRACT(
      joint_grid_monotone_in_reward(
          grid, times.size(), rewards,
          4.0 / std::sqrt(static_cast<double>(phases_)) + 1e-9),
      "ErlangEngine: grid results are not monotone in the reward bound");
  return grid;
}

std::vector<JointDistribution> ErlangEngine::joint_distribution_grid(
    const Mrm& model, std::span<const double> times,
    std::span<const double> rewards) const {
  const std::size_t num_rewards = rewards.size();
  std::vector<JointDistribution> grid(times.size() * num_rewards);
  std::vector<std::vector<std::size_t>> live_times(num_rewards);
  bool any_live = false;
  for (std::size_t i = 0; i < times.size(); ++i) {
    for (std::size_t j = 0; j < num_rewards; ++j) {
      if (joint_distribution_trivial_case(model, times[i], rewards[j],
                                          grid[i * num_rewards + j]))
        continue;
      live_times[j].push_back(i);
      any_live = true;
    }
  }
  if (!any_live) return grid;

  CSRL_SPAN("p3/erlang/joint_distribution_grid");
  const std::size_t n = model.num_states();
  const std::size_t k = phases_;
  Workspace grid_workspace;
  TransientOptions transient = transient_;
  if (transient.workspace == nullptr) transient.workspace = &grid_workspace;
  for (std::size_t j = 0; j < num_rewards; ++j) {
    if (live_times[j].empty()) continue;
    const Ctmc expanded = expand(model, rewards[j]);

    std::vector<double> initial(expanded.num_states(), 0.0);
    for (std::size_t s = 0; s < n; ++s)
      initial[s * k] = model.initial_distribution()[s];

    std::vector<double> horizon;
    horizon.reserve(live_times[j].size());
    for (std::size_t i : live_times[j]) horizon.push_back(times[i]);
    const std::vector<std::vector<double>> pis = [&] {
      CSRL_HIST_SCOPE("latency/p3_sweep");
      return transient_distribution_batch(expanded, initial, horizon,
                                          transient);
    }();

    for (std::size_t pos = 0; pos < live_times[j].size(); ++pos) {
      const std::vector<double>& pi = pis[pos];
      JointDistribution& out = grid[live_times[j][pos] * num_rewards + j];
      out.per_state.assign(n, 0.0);
      pool().parallel_for(
          0, n, std::max<std::size_t>(1, (std::size_t{1} << 13) / k),
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
              double acc = 0.0;
              for (std::size_t i = 0; i < k; ++i) acc += pi[s * k + i];
              out.per_state[s] = acc;
            }
          });
      out.steps = poisson_weights(expanded.max_exit_rate() * horizon[pos],
                                  transient_.epsilon)
                      .right;
    }
  }
  return grid;
}

}  // namespace csrl
