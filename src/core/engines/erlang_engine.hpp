// Pseudo-Erlang approximation of the reward bound (Section 4.2).
//
// The fixed reward bound r is replaced by a random bound that is
// Erlang-k distributed with mean r.  Because the Erlang distribution is a
// sum of k exponential phases, the two-dimensional process (X_t, Y_t) with
// the randomised barrier is again a plain CTMC: each original state s is
// expanded into k copies (s, 0) ... (s, k-1) recording how many phases of
// the reward budget have been consumed, plus one absorbing "exceeded"
// state.  Reward accumulates at rate rho(s), and each budget phase is
// exponential with rate k/r per unit of *reward*, so the phase counter
// advances at rate rho(s) * k / r per unit of *time*.  Completing the k-th
// phase means the accumulated reward crossed the (randomised) bound.
//
// Then  Pr{Y_t <= r, X_t = j}  ~  sum_{i < k} pi_{(j,i)}(t),
// computed by standard uniformisation on the expanded chain.  The
// approximation converges to the fixed bound as k grows (the Erlang-k
// distribution concentrates around its mean r); the paper's Table 3 sweeps
// k from 1 to 1024.
//
// As the paper notes, the uniformisation rate of the expanded chain grows
// additively by max_s rho(s) * k / r, so large k slows the transient
// solver; this trade-off is what bench_table3_erlang measures.
#pragma once

#include "core/engines/engine.hpp"
#include "ctmc/uniformisation.hpp"

namespace csrl {

/// Section 4.2's engine.  `phases` is the Erlang order k.
class ErlangEngine : public JointDistributionEngine {
 public:
  explicit ErlangEngine(std::size_t phases, TransientOptions transient = {},
                        std::shared_ptr<ThreadPool> pool = nullptr);

  JointDistribution joint_distribution(const Mrm& model, double t,
                                       double r) const override;

  std::vector<double> joint_probability_all_starts(
      const Mrm& model, double t, double r,
      const StateSet& target) const override;

  /// Batched lattice evaluation.  The expanded chain depends only on the
  /// reward bound, so each reward column shares one expansion, and the
  /// column's time axis rides one batched uniformisation run (a single
  /// vector-power sequence with per-horizon Poisson windows) instead of a
  /// run per point.
  std::vector<std::vector<double>> joint_probability_all_starts_grid(
      const Mrm& model, std::span<const double> times,
      std::span<const double> rewards, const StateSet& target) const override;

  std::vector<JointDistribution> joint_distribution_grid(
      const Mrm& model, std::span<const double> times,
      std::span<const double> rewards) const override;

  std::string name() const override;

  std::size_t phases() const { return phases_; }

 private:
  /// Expanded chain over states (s, i) |-> s * phases_ + i, with the
  /// "bound exceeded" sink at index num_states * phases_.
  Ctmc expand(const Mrm& model, double r) const;

  std::size_t phases_;
  TransientOptions transient_;
};

}  // namespace csrl
