#include "core/engines/engine.hpp"

#include <algorithm>
#include <cmath>

#include "ctmc/uniformisation.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace csrl {

double JointDistribution::probability_in(const StateSet& states) const {
  double acc = 0.0;
  for (std::size_t s : states.members()) {
    if (s >= per_state.size())
      throw ModelError("JointDistribution::probability_in: universe mismatch");
    acc += per_state[s];
  }
  return acc;
}

std::vector<double> JointDistributionEngine::joint_probability_all_starts(
    const Mrm& model, double t, double r, const StateSet& target) const {
  const std::size_t n = model.num_states();
  if (target.size() != n)
    throw ModelError("joint_probability_all_starts: universe mismatch");
  std::vector<double> result(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    Mrm from_s(Ctmc(model.rates()), model.rewards(), model.labelling(), s);
    if (model.has_impulse_rewards())
      from_s = from_s.with_impulses(model.impulse_rewards());
    result[s] = joint_distribution(from_s, t, r).probability_in(target);
  }
  return result;
}

std::vector<std::vector<double>>
JointDistributionEngine::joint_probability_all_starts_grid(
    const Mrm& model, std::span<const double> times,
    std::span<const double> rewards, const StateSet& target) const {
  return joint_grid_reference(*this, model, times, rewards, target);
}

std::vector<JointDistribution> JointDistributionEngine::joint_distribution_grid(
    const Mrm& model, std::span<const double> times,
    std::span<const double> rewards) const {
  return joint_distribution_grid_reference(*this, model, times, rewards);
}

std::vector<std::vector<double>> joint_grid_reference(
    const JointDistributionEngine& engine, const Mrm& model,
    std::span<const double> times, std::span<const double> rewards,
    const StateSet& target) {
  std::vector<std::vector<double>> grid;
  grid.reserve(times.size() * rewards.size());
  for (double t : times)
    for (double r : rewards)
      grid.push_back(engine.joint_probability_all_starts(model, t, r, target));
  return grid;
}

std::vector<JointDistribution> joint_distribution_grid_reference(
    const JointDistributionEngine& engine, const Mrm& model,
    std::span<const double> times, std::span<const double> rewards) {
  std::vector<JointDistribution> grid;
  grid.reserve(times.size() * rewards.size());
  for (double t : times)
    for (double r : rewards)
      grid.push_back(engine.joint_distribution(model, t, r));
  return grid;
}

bool joint_distribution_trivial_case(const Mrm& model, double t, double r,
                                     JointDistribution& out) {
  if (!(t >= 0.0) || !std::isfinite(t))
    throw ModelError("joint_distribution: time bound must be finite and >= 0");
  if (!(r >= 0.0) || !std::isfinite(r))
    throw ModelError("joint_distribution: reward bound must be finite and >= 0");

  const std::size_t n = model.num_states();

  // At t = 0 no reward has accumulated yet, so the joint distribution is
  // the initial distribution itself.
  if (t == 0.0 || n == 0) {
    CSRL_COUNT("p3/trivial_cases", 1);
    out.per_state = model.initial_distribution();
    out.steps = 0;
    return true;
  }

  // Y_t <= max_reward * t holds along every path — but only without
  // impulses (jumps can add reward arbitrarily often) — so a reward bound
  // at or above that level never binds and plain transient analysis is
  // exact.
  if (!model.has_impulse_rewards() && r >= model.max_reward() * t) {
    CSRL_COUNT("p3/trivial_cases", 1);
    out.per_state =
        transient_distribution(model.chain(), model.initial_distribution(), t);
    out.steps = 0;
    return true;
  }

  // r == 0 with a binding bound: Y_t stays at zero exactly on the paths
  // that never enter a positive-reward state (sojourns are almost surely
  // positive) and never fire a positive-impulse transition.  Freeze the
  // positive-reward states and reroute impulse-carrying transitions into a
  // sink, then read off the transient distribution.
  if (r == 0.0) {
    const std::size_t sink = n;
    CsrBuilder rates(n + 1, n + 1);
    for (std::size_t s = 0; s < n; ++s) {
      if (model.reward(s) > 0.0) continue;
      for (const auto& e : model.rates().row(s)) {
        const bool tainted = model.impulse(s, e.col) > 0.0;
        rates.add(s, tainted ? sink : e.col, e.value);
      }
    }
    const Ctmc frozen(rates.build());
    std::vector<double> initial = model.initial_distribution();
    initial.push_back(0.0);
    std::vector<double> pi = transient_distribution(frozen, initial, t);
    pi.pop_back();  // the sink collects the mass that broke the bound
    for (std::size_t s = 0; s < n; ++s)
      if (model.reward(s) > 0.0) pi[s] = 0.0;
    out.per_state = std::move(pi);
    out.steps = 0;
    return true;
  }

  return false;
}

bool joint_all_starts_trivial_case(const Mrm& model, double t, double r,
                                   const StateSet& target,
                                   std::vector<double>& out) {
  if (!(t >= 0.0) || !std::isfinite(t))
    throw ModelError("joint_distribution: time bound must be finite and >= 0");
  if (!(r >= 0.0) || !std::isfinite(r))
    throw ModelError("joint_distribution: reward bound must be finite and >= 0");
  const std::size_t n = model.num_states();
  if (target.size() != n)
    throw ModelError("joint_all_starts_trivial_case: universe mismatch");

  if (t == 0.0 || n == 0) {
    out = target.indicator();
    return true;
  }

  if (!model.has_impulse_rewards() && r >= model.max_reward() * t) {
    out = transient_reach(model.chain(), target, t);
    return true;
  }

  if (r == 0.0) {
    const std::size_t sink = n;
    CsrBuilder rates(n + 1, n + 1);
    StateSet zero_reward_targets(n + 1);
    for (std::size_t s = 0; s < n; ++s) {
      if (model.reward(s) > 0.0) continue;
      if (target.contains(s)) zero_reward_targets.insert(s);
      for (const auto& e : model.rates().row(s)) {
        const bool tainted = model.impulse(s, e.col) > 0.0;
        rates.add(s, tainted ? sink : e.col, e.value);
      }
    }
    const Ctmc frozen(rates.build());
    const std::vector<double> extended =
        transient_reach(frozen, zero_reward_targets, t);
    out.assign(extended.begin(), extended.begin() + static_cast<long>(n));
    for (std::size_t s = 0; s < n; ++s)
      if (model.reward(s) > 0.0) out[s] = 0.0;
    return true;
  }

  return false;
}

}  // namespace csrl
