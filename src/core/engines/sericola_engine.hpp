// Occupation-time distributions (Section 4.4, after Sericola [23]).
//
// Sericola's result expresses the complementary joint probability
//
//   H_ij(t, r) = Pr{Y_t > r, X_t = j | X_0 = i}
//
// as a uniformisation series whose inner sum is a Bernstein polynomial:
// with rewards 0 = rho_0 < rho_1 < ... < rho_m partitioning the states
// into classes, and r in [rho_{h-1} t, rho_h t),
//
//   H(t,r) = sum_{n>=0} e^{-lt} (lt)^n / n!
//            sum_{k=0}^{n} C(n,k) x_h^k (1-x_h)^{n-k}  C(h,n,k),
//
// where x_h = (r - rho_{h-1} t) / ((rho_h - rho_{h-1}) t) in [0,1), l is
// the uniformisation rate and P = I + Q/l.  The coefficient matrices obey
// recursions in (h, n, k) that couple neighbouring reward intervals
// ([23, Thm 5.6]); since 0 <= C(h,n,k) <= P^n entrywise, the inner sum is
// bounded by 1 and the Poisson tail yields an *a priori* truncation depth
// N_eps for any requested error bound eps — the feature the paper singles
// out as this method's advantage (Table 2 reports N_eps per eps).
//
// Implementation note (documented in DESIGN.md): the recursions multiply
// by P on the *left*, so they commute with right-multiplication by a fixed
// target-indicator vector v.  We therefore iterate vectors
// c(h,n,k) = C(h,n,k) v instead of full matrices, obtaining
// Pr_i{Y_t > r, X_t in target} for *all* start states i in one pass and
// dropping the complexity from O(N^2 m |S|^3) time / O(m N |S|^2) space to
// O(N^2 m nnz) time / O(m N |S|) space.  Results are bit-for-bit the same
// linear algebra.  The per-final-state form joint_distribution() runs the
// vector pass once per basis vector, which reproduces the paper-faithful
// matrix cost and is used by tests as a cross-check.
//
// The quantity the checker needs follows by complementation:
//   Pr{Y_t <= r, X_t in T} = Pr{X_t in T} - Pr{Y_t > r, X_t in T},
// and the transient term Pr{X_t in T} falls out of the same pass (the
// powers P^n v are the h=1 recursion base).
#pragma once

#include "core/engines/engine.hpp"

namespace csrl {

class Workspace;

/// Section 4.4's engine.  `epsilon` is the a-priori bound on the Poisson
/// truncation error.  `rhs_block` is the multi-RHS block width for the
/// m * n per-level coefficient products (TransientOptions::rhs_block
/// semantics: 0 = automatic via CSRL_RHS_BLOCK / kDefaultRhsBlock, 1
/// disables blocking); the blocked sweep streams the uniformised matrix
/// once per group of coefficient vectors instead of once per vector and
/// is bitwise identical to the looped multiply at every width.
class SericolaEngine : public JointDistributionEngine {
 public:
  explicit SericolaEngine(double epsilon = 1e-9,
                          std::shared_ptr<ThreadPool> pool = nullptr,
                          std::size_t rhs_block = 0);

  JointDistribution joint_distribution(const Mrm& model, double t,
                                       double r) const override;

  std::vector<double> joint_probability_all_starts(
      const Mrm& model, double t, double r,
      const StateSet& target) const override;

  /// Batched lattice evaluation.  The c(h, n, k) recursion depends on
  /// neither t nor r, so one coefficient pass to the deepest truncation
  /// depth serves every grid point; only the Poisson windows (per t) and
  /// the Bernstein accumulation (per point) are point-specific.  A T x R
  /// grid therefore costs about one (max t, max r) solve instead of T * R.
  std::vector<std::vector<double>> joint_probability_all_starts_grid(
      const Mrm& model, std::span<const double> times,
      std::span<const double> rewards, const StateSet& target) const override;

  std::vector<JointDistribution> joint_distribution_grid(
      const Mrm& model, std::span<const double> times,
      std::span<const double> rewards) const override;

  std::string name() const override;

  double epsilon() const { return epsilon_; }

  /// The truncation depth N_eps chosen for a given model/horizon — the "N"
  /// column of the paper's Table 2.  Exposed for benches and tests.
  std::size_t truncation_depth(const Mrm& model, double t) const;

 private:
  /// Core recursion for a set of non-trivial (t, r) points: one coefficient
  /// recursion to the deepest window serves every point, with one transient
  /// accumulator per distinct t and one Bernstein accumulator per point.
  /// Each returned vector is bitwise identical to the single-point pass for
  /// its (t, r) — see DESIGN.md section 3d for the argument.  The recursion
  /// leases its state-sized stores from `workspace` when one is supplied
  /// (nullptr: plain vectors), so grid paths that call this repeatedly —
  /// joint_distribution_grid runs it once per final state — reuse one set
  /// of buffers instead of reallocating the coefficient stores per call.
  std::vector<std::vector<double>> all_starts_points(
      const Mrm& model, std::span<const std::pair<double, double>> points,
      const StateSet& target, Workspace* workspace) const;

  double epsilon_;
  std::size_t rhs_block_;  // resolved effective width, in [1, kMaxRhsBlock]
};

}  // namespace csrl
