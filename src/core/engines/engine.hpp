// Engine interface for the paper's central numerical problem.
//
// Theorems 1 and 2 reduce time- and reward-bounded until (property class
// P3) to "reward-bounded instant-of-time reachability": the joint
// probability  Pr{Y_t <= r, X_t = j}  on the two-dimensional process
// (X_t, Y_t) of Figure 1, evaluated on the reduced model.  Section 4 of
// the paper develops three procedures for it; each is implemented behind
// this common interface so the checker, the benches and the cross-
// validating tests can swap them freely:
//
//   * ErlangEngine          (Section 4.2, pseudo-Erlang approximation)
//   * DiscretisationEngine  (Section 4.3, Tijms-Veldman)
//   * SericolaEngine        (Section 4.4, occupation-time distributions)
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mrm/mrm.hpp"
#include "util/state_set.hpp"
#include "util/thread_pool.hpp"

namespace csrl {

/// Result of a joint-distribution computation.
struct JointDistribution {
  /// per_state[j] = Pr{Y_t <= r, X_t = j}, from the model's initial
  /// distribution.
  std::vector<double> per_state;
  /// Algorithm-specific effort indicator: Sericola reports the truncation
  /// depth N_epsilon, the Erlang engine the number of uniformisation steps
  /// on the expanded chain, the discretisation engine the number of time
  /// steps t/d.
  std::size_t steps = 0;

  /// Sum of per_state over a set of interest (e.g. Sat(Psi)).
  double probability_in(const StateSet& states) const;
};

/// A procedure computing the joint state/accumulated-reward distribution.
class JointDistributionEngine {
 public:
  virtual ~JointDistributionEngine() = default;

  /// Pr{Y_t <= r, X_t = j} for all j, starting from the model's initial
  /// distribution.  Requires t >= 0 and r >= 0.
  virtual JointDistribution joint_distribution(const Mrm& model, double t,
                                               double r) const = 0;

  /// For every start state s, Pr_s{Y_t <= r, X_t in target}.  This is the
  /// shape Sat-set computation needs.  The default implementation runs
  /// joint_distribution() once per state with a point-mass initial
  /// distribution; engines with a cheaper all-states formulation override
  /// it.
  virtual std::vector<double> joint_probability_all_starts(
      const Mrm& model, double t, double r, const StateSet& target) const;

  /// Grid form of joint_probability_all_starts: evaluates every pair
  /// (times[i], rewards[j]) of the bound grid in one call and returns the
  /// vectors grid-point major,
  ///   result[i * rewards.size() + j][s] = Pr_s{Y_{t_i} <= r_j, X_{t_i} in target}.
  /// The default implementation loops the point call; engines whose
  /// recursions yield smaller bounds as by-products override it to amortise
  /// work across the grid, under the contract that every returned vector is
  /// BITWISE identical to the corresponding point call.
  virtual std::vector<std::vector<double>> joint_probability_all_starts_grid(
      const Mrm& model, std::span<const double> times,
      std::span<const double> rewards, const StateSet& target) const;

  /// Grid form of joint_distribution over the same (times x rewards)
  /// lattice, grid-point major; same bitwise contract as above.
  virtual std::vector<JointDistribution> joint_distribution_grid(
      const Mrm& model, std::span<const double> times,
      std::span<const double> rewards) const;

  /// Short human-readable name ("sericola", "erlang-256", ...).
  virtual std::string name() const = 0;

  /// The pool this engine's per-state sweeps dispatch on: the one injected
  /// at construction, or the process-wide shared pool.  Nested formulas
  /// checked by one Checker therefore reuse a single set of workers.
  ThreadPool& pool() const {
    return pool_ ? *pool_ : ThreadPool::global();
  }

 protected:
  JointDistributionEngine() = default;
  explicit JointDistributionEngine(std::shared_ptr<ThreadPool> pool)
      : pool_(std::move(pool)) {}

 private:
  std::shared_ptr<ThreadPool> pool_;
};

/// Shared preprocessing used by every engine: handles the trivial cases
/// t == 0 (distribution is the initial one), r large enough that the
/// reward bound cannot bind (plain transient analysis applies), and r == 0
/// (exact via transient analysis with positive-reward states frozen).
/// Returns true and fills `out` if the case was trivial.
bool joint_distribution_trivial_case(const Mrm& model, double t, double r,
                                     JointDistribution& out);

/// The same trivial cases in the all-start-states shape: fills out[s] with
/// Pr_s{Y_t <= r, X_t in target} when t, r make the problem degenerate.
bool joint_all_starts_trivial_case(const Mrm& model, double t, double r,
                                   const StateSet& target,
                                   std::vector<double>& out);

/// Point-by-point grid references: literally loop the single-point entry
/// points over the lattice, grid-point major.  These are what the virtual
/// grid methods default to, and what the differential tests and the bench
/// SpMV comparisons diff the batched overrides against.
std::vector<std::vector<double>> joint_grid_reference(
    const JointDistributionEngine& engine, const Mrm& model,
    std::span<const double> times, std::span<const double> rewards,
    const StateSet& target);

std::vector<JointDistribution> joint_distribution_grid_reference(
    const JointDistributionEngine& engine, const Mrm& model,
    std::span<const double> times, std::span<const double> rewards);

}  // namespace csrl
