// Expected-reward utilities on MRMs.
//
// Not part of CSRL's boolean fragment, but the natural quantitative
// companions: the expected instantaneous reward rate E[rho(X_t)] and the
// expected accumulated reward E[Y_t].  Both are computed by
// uniformisation; E[Y_t] uses the standard integrated-Poisson identity
//
//   E[Y_t] = (1/lambda) * sum_{n>=0} Pr{N(lambda t) > n} * (pi_n . rho),
//
// with pi_n the n-step distribution of the uniformised DTMC.
#pragma once

#include "ctmc/uniformisation.hpp"
#include "mrm/mrm.hpp"

namespace csrl {

/// E[rho(X_t)] from the model's initial distribution.
double expected_instantaneous_reward(const Mrm& model, double t,
                                     const TransientOptions& options = {});

/// E[Y_t], the expected reward accumulated over [0, t], from the model's
/// initial distribution.
double expected_accumulated_reward(const Mrm& model, double t,
                                   const TransientOptions& options = {});

/// The effective per-state reward rate rho(s) + sum_{s'} R(s,s') iota(s,s'):
/// impulse rewards contribute to expectations exactly like an extra rate
/// reward equal to their arrival intensity, which lets every expectation
/// routine below treat both kinds uniformly.
std::vector<double> effective_reward_rates(const Mrm& model);

/// E_s[rho(X_t)] for every start state s (one backward uniformisation).
std::vector<double> expected_instantaneous_reward_all_starts(
    const Mrm& model, double t, const TransientOptions& options = {});

/// E_s[Y_t] for every start state s (one backward uniformisation);
/// includes impulse contributions.
std::vector<double> expected_accumulated_reward_all_starts(
    const Mrm& model, double t, const TransientOptions& options = {});

}  // namespace csrl
