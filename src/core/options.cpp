#include "core/options.hpp"

#include "core/engines/discretisation_engine.hpp"
#include "core/engines/erlang_engine.hpp"
#include "core/engines/sericola_engine.hpp"
#include "util/error.hpp"

namespace csrl {

std::unique_ptr<JointDistributionEngine> make_engine(const CheckOptions& options) {
  switch (options.engine) {
    case P3Engine::kSericola:
      return std::make_unique<SericolaEngine>(options.sericola_epsilon);
    case P3Engine::kDiscretisation:
      return std::make_unique<DiscretisationEngine>(options.discretisation_step);
    case P3Engine::kErlang:
      return std::make_unique<ErlangEngine>(options.erlang_phases,
                                            options.transient);
  }
  throw Error("make_engine: invalid engine selector");
}

}  // namespace csrl
