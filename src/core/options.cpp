#include "core/options.hpp"

#include "core/engines/discretisation_engine.hpp"
#include "core/engines/erlang_engine.hpp"
#include "core/engines/sericola_engine.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace csrl {

std::unique_ptr<JointDistributionEngine> make_engine(const CheckOptions& options) {
  // An explicit thread count re-sizes the process-wide pool; 0 leaves the
  // current pool alone (it resolves CSRL_THREADS / hardware_concurrency on
  // first use).  The engine captures the pool so every nested formula
  // checked through the same Checker reuses one set of workers.
  if (options.num_threads != 0)
    ThreadPool::set_global_threads(options.num_threads);
  if (options.validate) validation::set_level(*options.validate);
  std::shared_ptr<ThreadPool> pool = ThreadPool::global_ptr();

  CSRL_SPAN("core/make_engine");
  CSRL_COUNT("engine/instantiations", 1);

  // Every engine receives the multi-RHS block width: Sericola and the
  // discretisation scheme take it directly (their grid paths block the
  // coefficient products / start-state sweeps), the pseudo-Erlang engine
  // inherits it through TransientOptions (its batched uniformisation runs
  // block the per-horizon accumulators and multi-start groups).
  switch (options.engine) {
    case P3Engine::kSericola:
      return std::make_unique<SericolaEngine>(options.sericola_epsilon,
                                              std::move(pool),
                                              options.transient.rhs_block);
    case P3Engine::kDiscretisation:
      return std::make_unique<DiscretisationEngine>(
          options.discretisation_step, std::move(pool),
          options.transient.rhs_block);
    case P3Engine::kErlang:
      return std::make_unique<ErlangEngine>(options.erlang_phases,
                                            options.transient, std::move(pool));
  }
  throw Error("make_engine: invalid engine selector");
}

std::string engine_label(const CheckOptions& options) {
  switch (options.engine) {
    case P3Engine::kSericola:
      return "sericola";
    case P3Engine::kDiscretisation:
      return "discretisation-d=" + std::to_string(options.discretisation_step);
    case P3Engine::kErlang:
      return "erlang-" + std::to_string(options.erlang_phases);
  }
  return "unknown";
}

double engine_truncation_error(const CheckOptions& options) {
  switch (options.engine) {
    case P3Engine::kSericola:
      return options.sericola_epsilon;
    case P3Engine::kDiscretisation:
      return options.discretisation_step;
    case P3Engine::kErlang:
      return options.transient.epsilon;
  }
  return 0.0;
}

}  // namespace csrl
