// Numerical contract checks behind the CSRL_CONTRACT layer.
//
// Validator collects the recurring invariant checks of the numerical
// core in one place — CSR structural sanity, stochastic/generator row
// sums, probability-vector bounds, Fox-Glynn window normalisation, the
// duality transform's algebraic inverse — each reporting violations with
// full context (subject name, row, value, tolerance) through the single
// ContractViolation type of util/error.hpp.  The checks themselves run
// unconditionally when called; call sites gate them with
// CSRL_CONTRACTS_ACTIVE() / validation::paranoid() so release builds
// with validation off pay one predicted branch, and builds configured
// with -DCSRL_CONTRACTS=OFF pay nothing.
//
// validate_joint_result is the shared P3-engine postcondition: results
// are probabilities, and — at the paranoid level, via the engine-supplied
// recompute hook — the distribution is monotone non-decreasing in the
// reward bound r and bit-identical when recomputed with every
// parallel_for forced serial (the 1-thread vs N-thread agreement hook).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ctmc/foxglynn.hpp"
#include "matrix/csr.hpp"
#include "mrm/mrm.hpp"

namespace csrl {

/// Invariant checks over one named subject (a matrix, a vector, an
/// engine result); the name prefixes every violation message.
class Validator {
 public:
  explicit Validator(std::string subject) : subject_(std::move(subject)) {}

  /// CSR structural sanity: per-row columns strictly increasing (hence
  /// sorted and duplicate-free), all column indices < cols(), all stored
  /// values finite and non-zero, row extents covering nnz() exactly.
  void csr_structure(const CsrMatrix& m) const;

  /// Every row of a stochastic matrix sums to 1 within `tol` and has
  /// non-negative entries (rows of a sub-stochastic matrix may sum to
  /// less; pass `allow_substochastic`).
  void stochastic_rows(const CsrMatrix& m, double tol = 1e-9,
                       bool allow_substochastic = false) const;

  /// Every row of an infinitesimal generator sums to 0 within `tol`
  /// (absolute, scaled by the row's largest magnitude) with a
  /// non-positive diagonal and non-negative off-diagonals.
  void generator_rows(const CsrMatrix& m, double tol = 1e-9) const;

  /// Every entry finite and inside [-tol, 1 + tol].
  void probability_vector(std::span<const double> v, double tol = 1e-9) const;

  /// probability_vector + the entries sum to 1 within `tol`.
  void distribution(std::span<const double> v, double tol = 1e-9) const;

  /// Fox-Glynn window sanity: non-empty, weights non-negative and
  /// consistent with `total`, total within [1 - epsilon, 1 + 1e-12].
  void poisson_window(const PoissonWeights& w, double epsilon) const;

  /// lo[i] <= hi[i] + slack for every i (monotonicity in the reward
  /// bound: a smaller r can only shrink Pr{Y_t <= r, X_t = j}).
  void monotone_nondecreasing(std::span<const double> lo,
                              std::span<const double> hi, double slack) const;

  /// Bitwise equality — the parallel-determinism guarantee.
  void bitwise_equal(std::span<const double> a,
                     std::span<const double> b) const;

  /// `dualized` really is the [4, Thm 1] dual of `original`:
  /// rho^(s) * rho(s) = 1 and R^(s,s') * rho(s) = R(s,s') on
  /// non-absorbing states, absorbing states stay absorbing.
  void dual_inverse(const Mrm& original, const Mrm& dualized,
                    double tol = 1e-9) const;

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::string subject_;
};

/// Shared P3-engine postcondition (see file comment).  `recompute_at_r`
/// re-runs the same computation at a different reward bound; engines pass
/// it so the paranoid level can check monotonicity in r (with
/// `monotone_slack` absorbing the engine's approximation error) and
/// serial/parallel agreement.  Recursion through the hook is cut off with
/// a thread-local reentrancy guard, and a recompute that rejects the
/// halved bound (e.g. the discretisation grid refusing an off-grid r) is
/// skipped, not reported.
void validate_joint_result(
    const std::string& engine_name, double t, double r,
    std::span<const double> result, double monotone_slack,
    const std::function<std::vector<double>(double)>& recompute_at_r);

/// Cheap structural postcondition for the batched grid entry points:
/// within each time row of a grid-point-major result lattice, Pr{Y_t <= r}
/// must be non-decreasing in the reward bound (up to `slack` absorbing the
/// engine's approximation error).  Compares every reward pair, so unsorted
/// reward axes are fine.  Returns false instead of throwing so call sites
/// can gate it with CSRL_CONTRACT.
bool joint_grid_monotone_in_reward(
    const std::vector<std::vector<double>>& grid, std::size_t num_times,
    std::span<const double> rewards, double slack);

}  // namespace csrl
