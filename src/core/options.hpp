// Configuration of the model checker.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/engines/engine.hpp"
#include "ctmc/uniformisation.hpp"
#include "matrix/solvers.hpp"
#include "util/contracts.hpp"

namespace csrl {

/// Which of the paper's three procedures decides time- and reward-bounded
/// until formulas (property class P3).
enum class P3Engine {
  kSericola,        // Section 4.4 — the default: a-priori error bound
  kDiscretisation,  // Section 4.3
  kErlang,          // Section 4.2
};

/// All knobs of the checking pipeline.  The defaults give at least ~9
/// significant digits on well-conditioned models.
struct CheckOptions {
  /// Engine for P3 (time- and reward-bounded until) formulas.
  P3Engine engine = P3Engine::kSericola;

  /// Error bound for the Sericola engine's Poisson truncation.
  double sericola_epsilon = 1e-9;

  /// Erlang order k of the pseudo-Erlang engine.
  std::size_t erlang_phases = 256;

  /// Step size d of the Tijms-Veldman engine.  Callers must align t, r and
  /// the reward structure with it (see DiscretisationEngine).
  double discretisation_step = 1.0 / 64.0;

  /// Transient-analysis controls for time-bounded until (P1) and the
  /// duality-based reward-bounded until (P2).  `transient.rhs_block` also
  /// sets the multi-RHS SpMM block width of every P3 engine (the Sericola
  /// coefficient products, the discretisation engine's multi-start
  /// sweeps, the pseudo-Erlang batched accumulators): 0 = automatic
  /// (CSRL_RHS_BLOCK, else 8), 1 disables blocking; results are bitwise
  /// identical at every width.
  TransientOptions transient{};

  /// Linear-solver controls for unbounded until (P0) and the steady-state
  /// operator.
  SolverOptions solver{};

  /// Memoise Sat sets of subformulas (keyed by the model fingerprint and
  /// the formula's structural hash, verified by the canonical printed
  /// form), so repeated fragments across queries are checked once per
  /// cache.  A SatCache passed to the Checker constructor is shared across
  /// checkers; otherwise each Checker owns a private one.
  bool cache_sat_sets = true;

  /// Route grid queries (Checker::until_grid) through the engines' batched
  /// lattice entry points.  Off means one single-point engine run per grid
  /// point — bitwise the same values, only slower; the differential tests
  /// flip this to diff the two paths.
  bool batch = true;

  /// Runtime numerical contract level (util/contracts.hpp): kOff, kBasic
  /// (cheap structural/row-sum/bounds checks at the places that establish
  /// them), kParanoid (+ engine re-runs checking monotonicity in r and
  /// 1-vs-N-thread agreement).  Unset leaves the process-wide setting
  /// alone — the CSRL_VALIDATE environment variable if present, else off
  /// in NDEBUG builds and basic in debug builds.  Like num_threads, a set
  /// value applies process-wide (validation::set_level).
  std::optional<ValidationLevel> validate{};

  /// Collect a machine-readable RunReport (src/obs/report.hpp) for each
  /// Checker::check call: engine chosen, model dimensions, Fox-Glynn
  /// window, iteration/SpMV counters and span timings.  Checker::check
  /// also reports when recording is already on process-wide (the
  /// CSRL_TRACE environment variable or obs::set_recording).
  bool report = false;

  /// Renumber the states by reverse Cuthill-McKee (ctmc/graph.hpp) before
  /// checking, shrinking the bandwidth of the rate matrix so the
  /// SpMV-heavy iteration loops walk memory with better locality.  Purely
  /// internal: every result the Checker returns is translated back, so
  /// the public state numbering (Sat sets, per-state vectors, grid
  /// results) is unchanged.  Off by default — worthwhile for models whose
  /// generator order scatters neighbouring states far apart.
  bool reorder_states = false;

  /// Collapse the model to its bisimulation quotient (mrm/lumping.hpp)
  /// before checking.  Like reorder_states this is purely internal: the
  /// checker quotients once at construction, checks on the (often far
  /// smaller) quotient, and lifts every public result — Sat sets,
  /// per-state vectors, until_grid lattices — back through the block
  /// projection, so the public state numbering is unchanged.  Composes
  /// with reorder_states (the quotient is what gets renumbered) and the
  /// duality pipeline (derived checkers inherit the quotient and never
  /// re-lump).  Unset resolves via the CSRL_LUMP environment variable
  /// ("0"/"1"; malformed values warn and fall back), else off.  Off by
  /// default — the refiner costs a few signature sweeps and only pays on
  /// models with symmetric structure, where it pays enormously
  /// (bench_ablation_lumping).  Construction throws ModelError when
  /// impulse rewards prevent an exact quotient.
  std::optional<bool> lump{};

  /// Number of threads for the parallel kernels and engine sweeps.
  /// 0 = automatic: the CSRL_THREADS environment variable if set, else
  /// std::thread::hardware_concurrency().  All checking through one
  /// Checker — including every nested subformula — shares one pool.
  /// Results are bit-identical at any thread count (see DESIGN.md,
  /// "Parallel execution").
  std::size_t num_threads = 0;
};

/// Instantiate the configured P3 engine.
std::unique_ptr<JointDistributionEngine> make_engine(const CheckOptions& options);

/// Report label of the configured P3 engine (matches Engine::name()).
std::string engine_label(const CheckOptions& options);

/// Configured a-priori error knob of the run: the Sericola truncation
/// epsilon, the O(d) discretisation step, or the transient-analysis
/// epsilon for the pseudo-Erlang pipeline.
double engine_truncation_error(const CheckOptions& options);

}  // namespace csrl
