// The CSRL model checker (Section 3 of the paper).
//
// Checking is the usual bottom-up traversal of the formula parse tree:
// every subformula is resolved to the set Sat(Phi) of states satisfying
// it.  Boolean connectives are set operations; the temporal operators
// dispatch to numerical procedures chosen by the shape of their time
// interval I and reward interval J, following the paper's taxonomy:
//
//   P0  (I, J unbounded)        linear system on the embedded DTMC [13]
//   P1  (only I bounded)        absorbing transform + transient analysis [3]
//   P2  (only J bounded)        duality transform [4, Thm 1] + P1
//   P3  (I and J bounded)       Theorem 1 reduction + a joint-distribution
//                               engine (Section 4; selectable, Sericola by
//                               default)
//
// The steady-state operator S~p follows [2]: BSCC analysis, one stationary
// distribution per BSCC, and unbounded reachability towards the BSCCs.
//
// Extensions beyond the paper's fragment (its Section 6 outlook):
//   * general time intervals [t1, t2] for reward-unbounded until, via the
//     standard two-phase scheme; through duality this also yields general
//     reward intervals [r1, r2] for time-unbounded until;
//   * quantitative queries P=?[...] / S=?[...].
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "logic/formula.hpp"
#include "mrm/mrm.hpp"
#include "obs/report.hpp"
#include "util/state_set.hpp"

namespace csrl {

struct BatchQuery;
struct BatchResult;
class ModelArtifacts;
class SatCache;

/// Result of a full quantitative check, optionally carrying the run's
/// observability report (CheckOptions::report, or process-wide recording
/// via CSRL_TRACE / obs::set_recording).
struct CheckResult {
  /// value_initially(f): the probability for P=?/S=? roots, a 0/1
  /// indicator for boolean-valued formulas.
  double value = 0.0;

  /// Engine, model dimensions, Fox-Glynn window, iteration/SpMV counters
  /// and span timings of this check; engaged only when reporting was
  /// requested.
  std::optional<obs::RunReport> report;
};

/// Model checker bound to one model.  The model must outlive the checker.
class Checker {
 public:
  /// `sat_cache` shares memoised Sat sets across checkers (core/batch.hpp);
  /// entries are keyed by the model fingerprint, so one cache safely serves
  /// checkers bound to different models.  Null gives this checker a private
  /// cache (or none, when CheckOptions::cache_sat_sets is off).
  explicit Checker(const Mrm& model, CheckOptions options = {},
                   std::shared_ptr<SatCache> sat_cache = nullptr);

  /// Checker over precomputed shared artifacts (core/artifacts.hpp):
  /// construction is O(1) — the fingerprint and any state reordering come
  /// from the artifact, which the checker keeps alive (no outlive
  /// obligation on the caller).  This is the stateless-engine form the
  /// resident service uses: one immutable artifact per registered model,
  /// any number of concurrent short-lived checkers on top of it.
  /// `options.reorder_states` and `options.lump` are ignored here —
  /// reordering and lumping are decided when the artifact is built.
  explicit Checker(std::shared_ptr<const ModelArtifacts> artifacts,
                   CheckOptions options = {},
                   std::shared_ptr<SatCache> sat_cache = nullptr);

  /// The set Sat(f).  Throws ModelError if f contains a quantitative query
  /// node (P=? / S=?), which has no truth value.
  StateSet sat(const Formula& f) const;

  /// Convenience: does the model's initial state satisfy f?  (Requires a
  /// point-mass initial distribution.)
  bool holds_initially(const Formula& f) const;

  /// Per-state quantitative values: probabilities for P=?/S=? roots,
  /// 0/1 indicators for boolean-valued formulas.
  std::vector<double> values(const Formula& f) const;

  /// values(f) at the initial state.
  double value_initially(const Formula& f) const;

  /// value_initially(f) plus, when CheckOptions::report asks (or
  /// recording is already on), the run's RunReport.  When the
  /// CSRL_OBS_OUT environment variable names an output stem the report
  /// and a chrome://tracing file are also written to disk.
  CheckResult check(const Formula& f) const;

  /// Batched P3 evaluation (core/batch.hpp): one until formula over the
  /// query's full times x rewards lattice in a single engine pass, every
  /// value bitwise identical to the point-by-point loop.
  BatchResult until_grid(const BatchQuery& query) const;

  /// until_grid plus, when CheckOptions::report asks (or recording is
  /// already on), a RunReport carrying the grid axes.
  BatchResult check_until_grid(const BatchQuery& query) const;

  /// Pr_s(path formula) for every state s.
  std::vector<double> path_probabilities(const PathFormula& p) const;

  /// Per-state expected-reward values of a kReward formula
  /// (reward_formulas.cpp): E_s[Y_t], E_s[rho(X_t)], expected reward to
  /// reach a target (+infinity where reaching is not almost sure), or the
  /// long-run reward rate.  Impulse rewards are included via their arrival
  /// intensity except in the instantaneous measure.
  std::vector<double> reward_values(const Formula& f) const;

  /// Long-run probability of sitting in `phi_states`, for every start
  /// state.
  std::vector<double> steady_probabilities(const StateSet& phi_states) const;

  /// The model as constructed — with CheckOptions::reorder_states the
  /// checker computes on an internally renumbered copy, and with
  /// CheckOptions::lump on the bisimulation quotient, but this (like
  /// every public result) always speaks the original numbering.
  const Mrm& model() const { return *original_model_; }
  const CheckOptions& options() const { return options_; }

 private:
  // The *_internal methods hold the actual checking logic and speak the
  // internal state numbering (identical to the public one unless
  // reorder_states or lump engaged).  The public methods above are thin
  // wrappers that translate arguments and results at the boundary.
  StateSet sat_internal(const Formula& f) const;
  std::vector<double> values_internal(const Formula& f) const;
  std::vector<double> path_probabilities_internal(const PathFormula& p) const;
  std::vector<double> reward_values_internal(const Formula& f) const;
  std::vector<double> steady_probabilities_internal(
      const StateSet& phi_states) const;
  BatchResult until_grid_internal(const BatchQuery& query) const;

  // Boundary translation through to_internal_; all three are the
  // identity when neither lumping nor reordering is in effect.  Values
  // and sets lift internal -> original by reading every original state's
  // image (well-defined even when the projection is many-to-one);
  // map_to_internal additionally verifies the argument is a union of
  // lumping blocks and throws ModelError otherwise — an original-
  // numbering set that splits a block has no internal counterpart.
  std::vector<double> map_to_original(std::vector<double> values) const;
  StateSet map_to_original(const StateSet& internal_set) const;
  StateSet map_to_internal(const StateSet& original_set) const;

  StateSet compute_sat(const Formula& f) const;
  std::vector<double> next_probabilities(const PathFormula& p) const;
  std::vector<double> until_probabilities(const PathFormula& p) const;

  // The four property classes (until.cpp).
  std::vector<double> unbounded_until(const StateSet& phi,
                                      const StateSet& psi) const;
  std::vector<double> time_bounded_until(const StateSet& phi,
                                         const StateSet& psi,
                                         Interval time) const;
  std::vector<double> reward_bounded_until(const StateSet& phi,
                                           const StateSet& psi,
                                           Interval reward) const;
  std::vector<double> time_reward_bounded_until(const StateSet& phi,
                                                const StateSet& psi, double t,
                                                double r) const;

  // Shared lattice evaluation behind until_grid and the P3 point path
  // (which is a 1 x 1 grid); defined in batch.cpp.
  std::vector<std::vector<double>> until_grid_sets(
      const StateSet& phi, const StateSet& psi, std::span<const double> times,
      std::span<const double> rewards) const;

  // The model all checking runs on: the constructor argument, the
  // bisimulation quotient when lump engaged, the bandwidth-reduced copy
  // when reorder_states engaged, or the quotient-then-reordered
  // composition of both.
  const Mrm* model_;
  // The constructor argument, always; what model() returns.
  const Mrm* original_model_;
  CheckOptions options_;
  // Sat-set memo (core/batch.hpp), possibly shared across checkers; null
  // when cache_sat_sets is off.  The fingerprint scopes this checker's
  // entries within the cache.
  std::shared_ptr<SatCache> sat_cache_;
  std::uint64_t model_fingerprint_ = 0;
  // Internal copies (CheckOptions::lump / reorder_states), shared so
  // checkers stay copyable; null when the respective pass is off.
  std::shared_ptr<const Mrm> lumped_model_;
  std::shared_ptr<const Mrm> reordered_model_;
  // Composed original index -> internal index projection: the lumping
  // block map, the RCM renumbering, or reorder-of-block composition.
  // Empty when the internal numbering is the public one; injective
  // unless lumping engaged.
  std::vector<std::size_t> to_internal_;
  // Dimensions and refiner accounting of the lumping pass, for the
  // RunReport "lumping" section; enabled is false when lump is off.
  obs::RunReport::Lumping lump_info_;
  // Engaged by the artifacts constructor only: keeps the shared model
  // (and its quotient / reordered copies) alive for this checker's
  // lifetime.
  std::shared_ptr<const ModelArtifacts> artifacts_;
};

}  // namespace csrl
