#include "core/checker.hpp"

#include <cmath>

#include "core/artifacts.hpp"
#include "core/batch.hpp"
#include "core/engines/discretisation_engine.hpp"
#include "ctmc/graph.hpp"
#include "mrm/lumping.hpp"
#include "mrm/transform.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace csrl {

Checker::Checker(const Mrm& model, CheckOptions options,
                 std::shared_ptr<SatCache> sat_cache)
    : model_(&model),
      original_model_(&model),
      options_(options),
      sat_cache_(std::move(sat_cache)) {
  // Applied here as well as in make_engine so the P0/P1/P2 pipelines
  // (which never instantiate a P3 engine) also see the requested level.
  if (options_.validate) validation::set_level(*options_.validate);
  if (resolve_lump(options_.lump) && model.num_states() > 0) {
    // Quotient once at the outermost checker; like reorder_states below
    // the flag is consumed so checkers built internally on derived models
    // (e.g. the duality pipeline's dual checker) inherit the quotient and
    // never lump again — their per-state vectors feed straight back into
    // this checker's internal computations.
    LumpingResult lumped = lump(model);
    to_internal_ = std::move(lumped.block_of);
    lumped_model_ = std::make_shared<const Mrm>(std::move(lumped.quotient));
    model_ = lumped_model_.get();
    lump_info_.enabled = true;
    lump_info_.original_states = model.num_states();
    lump_info_.original_transitions = model.rates().nnz();
    lump_info_.states = model_->num_states();
    lump_info_.transitions = model_->rates().nnz();
    lump_info_.sweeps = lumped.stats.sweeps;
    lump_info_.splits = lumped.stats.splits;
    lump_info_.states_resigned = lumped.stats.states_resigned;
    lump_info_.wall_seconds = lumped.stats.wall_seconds;
  }
  options_.lump = false;
  if (options_.reorder_states && model_->num_states() > 0) {
    // Renumber once at the outermost checker; the flag is consumed so
    // checkers built internally on derived models (e.g. the duality
    // pipeline's dual checker) inherit the internal numbering and never
    // permute again — their per-state vectors feed straight back into
    // this checker's internal computations.  Applied after lumping, so
    // the (smaller) quotient is what gets bandwidth-reduced.
    options_.reorder_states = false;
    const std::vector<std::size_t> rcm_to_original =
        reverse_cuthill_mckee(model_->rates());
    std::vector<std::size_t> rcm_to_internal(rcm_to_original.size());
    for (std::size_t i = 0; i < rcm_to_original.size(); ++i)
      rcm_to_internal[rcm_to_original[i]] = i;
    reordered_model_ =
        std::make_shared<const Mrm>(permute_states(*model_, rcm_to_original));
    model_ = reordered_model_.get();
    if (to_internal_.empty()) {
      to_internal_ = std::move(rcm_to_internal);
    } else {
      for (std::size_t& block : to_internal_)
        block = rcm_to_internal[block];
    }
  }
  if (!sat_cache_ && options_.cache_sat_sets)
    sat_cache_ = std::make_shared<SatCache>();
  // The fingerprint scopes this model's entries in a (possibly shared)
  // cache; computing it once here keeps sat() fingerprint-free.  The
  // reordered copy fingerprints differently from the original, so cached
  // internal-numbering sets can never leak across the two.
  if (sat_cache_) model_fingerprint_ = model_->fingerprint();
}

Checker::Checker(std::shared_ptr<const ModelArtifacts> artifacts,
                 CheckOptions options, std::shared_ptr<SatCache> sat_cache)
    : model_(&artifacts->internal_model()),
      original_model_(artifacts->model().get()),
      options_(options),
      sat_cache_(std::move(sat_cache)),
      artifacts_(std::move(artifacts)) {
  if (options_.validate) validation::set_level(*options_.validate);
  // Lumping and reordering were decided when the artifact was built;
  // consume the flags so internally-derived checkers never quotient or
  // permute again (see the model constructor above for the rationale).
  // The artifact keeps the quotient / reordered copies alive.
  options_.reorder_states = false;
  options_.lump = false;
  to_internal_ = artifacts_->projection();
  lump_info_ = artifacts_->lumping_info();
  if (!sat_cache_ && options_.cache_sat_sets)
    sat_cache_ = std::make_shared<SatCache>();
  // The artifact already paid the O(nnz) fingerprint walk — the whole
  // point of this constructor.
  if (sat_cache_) model_fingerprint_ = artifacts_->internal_fingerprint();
}

StateSet Checker::sat(const Formula& f) const {
  return map_to_original(sat_internal(f));
}

std::vector<double> Checker::values(const Formula& f) const {
  return map_to_original(values_internal(f));
}

std::vector<double> Checker::path_probabilities(const PathFormula& p) const {
  return map_to_original(path_probabilities_internal(p));
}

std::vector<double> Checker::reward_values(const Formula& f) const {
  return map_to_original(reward_values_internal(f));
}

std::vector<double> Checker::steady_probabilities(
    const StateSet& phi_states) const {
  return map_to_original(
      steady_probabilities_internal(map_to_internal(phi_states)));
}

std::vector<double> Checker::map_to_original(std::vector<double> values) const {
  if (to_internal_.empty()) return values;
  std::vector<double> out(to_internal_.size());
  for (std::size_t s = 0; s < out.size(); ++s) out[s] = values[to_internal_[s]];
  return out;
}

StateSet Checker::map_to_original(const StateSet& internal_set) const {
  if (to_internal_.empty()) return internal_set;
  StateSet out(to_internal_.size());
  for (std::size_t s = 0; s < to_internal_.size(); ++s)
    if (internal_set.contains(to_internal_[s])) out.insert(s);
  return out;
}

StateSet Checker::map_to_internal(const StateSet& original_set) const {
  if (to_internal_.empty()) return original_set;
  if (original_set.size() != to_internal_.size())
    throw ModelError("steady_probabilities: universe size mismatch");
  const std::size_t internal_states = model_->num_states();
  // Per internal state, how many originals project onto it and how many
  // of those the argument holds: an internal state enters the image only
  // when fully covered.  Partial coverage means the set splits a lumping
  // block — it has no internal counterpart, and silently rounding either
  // way would change the formula's meaning.  (Without lumping the
  // projection is bijective, every count is 0 or 1, and this is the old
  // member-by-member translation.)
  std::vector<std::size_t> covered(internal_states, 0);
  std::vector<std::size_t> sizes(internal_states, 0);
  for (const std::size_t block : to_internal_) ++sizes[block];
  for (const std::size_t s : original_set.members())
    ++covered[to_internal_[s]];
  StateSet out(internal_states);
  for (std::size_t i = 0; i < internal_states; ++i) {
    if (covered[i] == 0) continue;
    if (covered[i] != sizes[i])
      throw ModelError(
          "steady_probabilities: the given state set splits a lumping "
          "block and cannot be expressed on the quotient; pass a union of "
          "blocks or check with CheckOptions::lump off");
    out.insert(i);
  }
  return out;
}

StateSet Checker::sat_internal(const Formula& f) const {
  // Cheap leaves are not worth a cache probe; numerically expensive nodes
  // (temporal/steady/reward operators under boolean structure) are.
  if (!sat_cache_ || f.kind() == FormulaKind::kTrue ||
      f.kind() == FormulaKind::kAtomic) {
    return compute_sat(f);
  }
  if (std::optional<StateSet> hit = sat_cache_->find(model_fingerprint_, f)) {
    CSRL_COUNT("core/sat_cache/hits", 1);
    return *std::move(hit);
  }
  CSRL_COUNT("core/sat_cache/misses", 1);
  StateSet result = compute_sat(f);
  sat_cache_->insert(model_fingerprint_, f, result);
  return result;
}

StateSet Checker::compute_sat(const Formula& f) const {
  const std::size_t n = model_->num_states();
  switch (f.kind()) {
    case FormulaKind::kTrue:
      return StateSet(n, /*filled=*/true);
    case FormulaKind::kAtomic:
      return model_->labelling().states_with(f.name());
    case FormulaKind::kNot:
      return sat_internal(*f.operand()).complement();
    case FormulaKind::kAnd:
      return sat_internal(*f.lhs()) & sat_internal(*f.rhs());
    case FormulaKind::kOr:
      return sat_internal(*f.lhs()) | sat_internal(*f.rhs());
    case FormulaKind::kProb: {
      if (f.is_query())
        throw ModelError(
            "sat: P=? is a quantitative query and has no truth value; use "
            "values() or give a probability bound");
      const std::vector<double> probs = path_probabilities_internal(*f.path());
      StateSet result(n);
      for (std::size_t s = 0; s < n; ++s)
        if (compare(f.comparison(), probs[s], f.bound())) result.insert(s);
      return result;
    }
    case FormulaKind::kSteady: {
      if (f.is_query())
        throw ModelError(
            "sat: S=? is a quantitative query and has no truth value; use "
            "values() or give a probability bound");
      const StateSet phi = sat_internal(*f.operand());
      const std::vector<double> probs = steady_probabilities_internal(phi);
      StateSet result(n);
      for (std::size_t s = 0; s < n; ++s)
        if (compare(f.comparison(), probs[s], f.bound())) result.insert(s);
      return result;
    }
    case FormulaKind::kReward: {
      if (f.is_query())
        throw ModelError(
            "sat: R=? is a quantitative query and has no truth value; use "
            "values() or give a reward bound");
      const std::vector<double> expectations = reward_values_internal(f);
      StateSet result(n);
      for (std::size_t s = 0; s < n; ++s)
        if (compare(f.comparison(), expectations[s], f.bound()))
          result.insert(s);
      return result;
    }
  }
  throw Error("Checker::sat: invalid formula kind");
}

bool Checker::holds_initially(const Formula& f) const {
  return sat_internal(f).contains(model_->initial_state());
}

std::vector<double> Checker::values_internal(const Formula& f) const {
  if (f.kind() == FormulaKind::kProb && f.is_query())
    return path_probabilities_internal(*f.path());
  if (f.kind() == FormulaKind::kSteady && f.is_query())
    return steady_probabilities_internal(sat_internal(*f.operand()));
  if (f.kind() == FormulaKind::kReward && f.is_query())
    return reward_values_internal(f);
  return sat_internal(f).indicator();
}

double Checker::value_initially(const Formula& f) const {
  return values_internal(f)[model_->initial_state()];
}

CheckResult Checker::check(const Formula& f) const {
  CheckResult result;
  if (!options_.report && !obs::recording_enabled()) {
    result.value = value_initially(f);
    return result;
  }
  obs::ReportScope scope;
  {
    CSRL_SPAN("core/check");
    const WallTimer latency_timer;
    result.value = value_initially(f);
    // Seconds into the log-bucketed histogram: the RunReport lifts its
    // p50/p99 from this delta, and a resident service reusing one scope
    // across queries gets real percentiles from the same site.
    CSRL_HIST("latency/check", latency_timer.seconds());
  }
  result.report =
      scope.finish(engine_label(options_), model_->num_states(),
                   model_->rates().nnz(), engine_truncation_error(options_));
  result.report->lumping = lump_info_;
  obs::write_report_if_requested(*result.report);
  return result;
}

std::vector<double> Checker::path_probabilities_internal(
    const PathFormula& p) const {
  if (p.kind() == PathKind::kNext) return next_probabilities(p);
  if (p.kind() == PathKind::kWeakUntil) {
    // Phi W Psi fails exactly when the path leaves Phi before reaching Psi
    // within the bounds: the complement is (Phi & !Psi) U (!Phi & !Psi).
    const FormulaPtr not_psi = Formula::negation(p.target());
    const PathFormulaPtr complement = PathFormula::until(
        p.time(), p.reward(), Formula::conjunction(p.lhs(), not_psi),
        Formula::conjunction(Formula::negation(p.lhs()), not_psi));
    std::vector<double> probs = until_probabilities(*complement);
    for (double& v : probs) v = 1.0 - v;
    return probs;
  }
  if (p.kind() == PathKind::kGlobally) {
    // Pr(G^I_J Phi) = 1 - Pr(F^I_J !Phi): the violating paths are exactly
    // those that eventually reach a !Phi-state within the bounds.
    const PathFormulaPtr complement = PathFormula::eventually(
        p.time(), p.reward(), Formula::negation(p.target()));
    std::vector<double> probs = until_probabilities(*complement);
    for (double& v : probs) v = 1.0 - v;
    return probs;
  }
  return until_probabilities(p);
}

std::vector<double> Checker::next_probabilities(const PathFormula& p) const {
  const std::size_t n = model_->num_states();
  const StateSet targets = sat_internal(*p.target());
  const Interval& time = p.time();
  const Interval& reward = p.reward();

  std::vector<double> result(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const double exit = model_->chain().exit_rate(s);
    if (exit == 0.0) continue;  // no next transition ever happens
    const double rho = model_->reward(s);

    // Per target transition: the jump instant T ~ Exp(exit) must satisfy
    // T in I and rho(s)*T + iota(s, s') in J; both constraints intersect
    // to one interval [a, b] of admissible jump instants.  (Without
    // impulses the interval is the same for every arc, but the per-arc
    // loop costs the same here.)
    double acc = 0.0;
    for (const auto& e : model_->rates().row(s)) {
      if (!targets.contains(e.col)) continue;
      const double iota = model_->impulse(s, e.col);
      double a = time.lo;
      double b = time.hi;
      if (rho > 0.0) {
        a = std::max(a, (reward.lo - iota) / rho);
        b = std::min(b, (reward.hi - iota) / rho);
      } else if (iota < reward.lo || iota > reward.hi) {
        continue;  // the jump reward is exactly iota; it misses the window
      }
      if (a > b) continue;
      const double mass = std::exp(-exit * std::max(a, 0.0)) -
                          (std::isinf(b) ? 0.0 : std::exp(-exit * b));
      acc += e.value / exit * mass;
    }
    result[s] = acc;
  }
  return result;
}

std::vector<double> Checker::until_probabilities(const PathFormula& p) const {
  const StateSet phi = sat_internal(*p.lhs());
  const StateSet psi = sat_internal(*p.target());
  const Interval& time = p.time();
  const Interval& reward = p.reward();

  // An unsatisfiable right-hand side makes the until fail surely; deciding
  // this here keeps the numerical pipelines (and their preconditions, e.g.
  // the duality's positive rewards) out of the trivial case.
  if (psi.empty()) return std::vector<double>(model_->num_states(), 0.0);

  if (reward.is_unbounded()) {
    if (time.is_unbounded()) return unbounded_until(phi, psi);
    return time_bounded_until(phi, psi, time);
  }
  if (time.is_unbounded()) return reward_bounded_until(phi, psi, reward);

  // Both dimensions bounded: property class P3.  The paper's three
  // procedures cover intervals anchored at 0; general windows (its
  // Section-6 outlook) are served by the discretisation engine's grid
  // extension.
  if (time.lo != 0.0 || reward.lo != 0.0) {
    if (options_.engine != P3Engine::kDiscretisation)
      throw ModelError(
          "until: general time/reward windows are only implemented by the "
          "discretisation engine (set CheckOptions::engine to "
          "kDiscretisation) or the simulator");
    const DiscretisationEngine engine(options_.discretisation_step);
    const std::size_t n = model_->num_states();
    std::vector<double> result(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      Mrm from_s(Ctmc(model_->rates()), model_->rewards(),
                 model_->labelling(), s);
      if (model_->has_impulse_rewards())
        from_s = from_s.with_impulses(model_->impulse_rewards());
      result[s] = engine.interval_until(from_s, phi, psi, time, reward);
    }
    return result;
  }
  return time_reward_bounded_until(phi, psi, time.hi, reward.hi);
}

}  // namespace csrl
