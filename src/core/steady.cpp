// Steady-state operator (following [2]; the paper omits it from its
// exposition but the logic and our checker support it).
//
// For each start state s the long-run probability of sitting in Phi is
//
//   sum_B  Pr{reach BSCC B from s} * pi_B(Phi /\ B),
//
// where pi_B is the stationary distribution of the chain restricted to
// the bottom strongly connected component B.
#include "core/checker.hpp"
#include "ctmc/graph.hpp"
#include "ctmc/stationary.hpp"
#include "util/error.hpp"

namespace csrl {

std::vector<double> Checker::steady_probabilities_internal(
    const StateSet& phi_states) const {
  const std::size_t n = model_->num_states();
  if (phi_states.size() != n)
    throw ModelError("steady_probabilities: universe size mismatch");
  if (n == 0) return {};

  const std::vector<StateSet> bsccs = bottom_sccs(model_->rates());
  const StateSet everything(n, /*filled=*/true);

  std::vector<double> result(n, 0.0);
  for (const StateSet& bscc : bsccs) {
    const std::vector<std::size_t> members = bscc.members();
    const std::vector<double> pi =
        component_stationary(model_->chain(), members, options_.solver);

    double phi_mass = 0.0;
    for (std::size_t i = 0; i < members.size(); ++i)
      if (phi_states.contains(members[i])) phi_mass += pi[i];
    if (phi_mass == 0.0) continue;

    // Pr{eventually absorbed in this BSCC}, for every start state.
    const std::vector<double> reach = unbounded_until(everything, bscc);
    for (std::size_t s = 0; s < n; ++s) result[s] += reach[s] * phi_mass;
  }
  return result;
}

}  // namespace csrl
