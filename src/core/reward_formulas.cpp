// The expected-reward operator R (an implemented extension; the measures
// follow the conventions later probabilistic model checkers established).
#include <limits>
#include <unordered_map>

#include "core/checker.hpp"
#include "core/reward_ops.hpp"
#include "ctmc/graph.hpp"
#include "ctmc/stationary.hpp"
#include "util/error.hpp"

namespace csrl {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Expected reward accumulated until first hitting `target`, for every
/// start state; +infinity where the hit is not almost sure.  Costs are
/// per-visit expectations on the embedded DTMC:
///   cost(s) = rho(s)/E(s) + sum_{s'} P(s,s') iota(s,s')
/// (the second term is exactly (effective - rho)/E).
std::vector<double> reachability_reward(const Mrm& model,
                                        const StateSet& target,
                                        const SolverOptions& solver) {
  const std::size_t n = model.num_states();
  std::vector<double> result(n, 0.0);
  if (target.count() == n) return result;

  // Qualitative analysis of F target.
  const StateSet not_target = target.complement();
  const StateSet can_reach =
      backward_reachable(model.rates(), target, not_target);
  const StateSet never = can_reach.complement();
  const StateSet not_sure =
      backward_reachable(model.rates(), never, not_target);
  const StateSet sure = not_sure.complement();

  for (std::size_t s : not_sure.members()) result[s] = kInf;

  // Solve on the sure-but-not-yet-there states.  Prob-1-ness is closed
  // under successors outside the target, so the system never touches an
  // infinite value.
  const StateSet solve_states = sure - target;
  const std::vector<std::size_t> order = solve_states.members();
  if (order.empty()) return result;

  std::unordered_map<std::size_t, std::size_t> compact;
  compact.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) compact.emplace(order[i], i);

  const CsrMatrix p = model.chain().embedded_dtmc();
  const std::vector<double> effective = effective_reward_rates(model);
  CsrBuilder a(order.size(), order.size());
  std::vector<double> b(order.size(), 0.0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t s = order[i];
    const double exit = model.chain().exit_rate(s);
    // exit > 0 is guaranteed: an absorbing non-target state cannot be
    // "sure" to reach the target.
    b[i] = effective[s] / exit;
    for (const auto& e : p.row(s)) {
      if (const auto it = compact.find(e.col); it != compact.end())
        a.add(i, it->second, e.value);
    }
  }
  const std::vector<double> x = solve_fixpoint(a.build(), b, solver);
  for (std::size_t i = 0; i < order.size(); ++i) result[order[i]] = x[i];
  return result;
}

}  // namespace

std::vector<double> Checker::reward_values_internal(const Formula& f) const {
  if (f.kind() != FormulaKind::kReward)
    throw ModelError("reward_values: not a reward formula");

  switch (f.reward_query_kind()) {
    case RewardQuery::kCumulative:
      return expected_accumulated_reward_all_starts(
          *model_, f.reward_parameter(), options_.transient);
    case RewardQuery::kInstantaneous:
      return expected_instantaneous_reward_all_starts(
          *model_, f.reward_parameter(), options_.transient);
    case RewardQuery::kReachability:
      return reachability_reward(*model_, sat_internal(*f.reward_target()),
                                 options_.solver);
    case RewardQuery::kSteadyState: {
      // Long-run reward rate: per BSCC the stationary average of the
      // effective reward, mixed by the absorption probabilities.
      const std::size_t n = model_->num_states();
      const std::vector<StateSet> bsccs = bottom_sccs(model_->rates());
      const std::vector<double> effective = effective_reward_rates(*model_);
      const StateSet everything(n, /*filled=*/true);
      std::vector<double> result(n, 0.0);
      for (const StateSet& bscc : bsccs) {
        const std::vector<std::size_t> members = bscc.members();
        const std::vector<double> pi =
            component_stationary(model_->chain(), members, options_.solver);
        double rate = 0.0;
        for (std::size_t i = 0; i < members.size(); ++i)
          rate += pi[i] * effective[members[i]];
        if (rate == 0.0) continue;
        const std::vector<double> reach = unbounded_until(everything, bscc);
        for (std::size_t s = 0; s < n; ++s) result[s] += reach[s] * rate;
      }
      return result;
    }
  }
  throw Error("reward_values: invalid reward query");
}

}  // namespace csrl
