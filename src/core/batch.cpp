#include "core/batch.hpp"

#include <cmath>
#include <utility>

#include "core/checker.hpp"
#include "mrm/transform.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace csrl {

namespace {

std::uint64_t bucket_key(std::uint64_t model_fingerprint, const Formula& f) {
  return hashing::mix(hashing::mix(hashing::kOffset, model_fingerprint),
                      f.hash());
}

/// The unique initial state of a point-mass distribution, or alpha.size()
/// when the distribution genuinely mixes states (the non-throwing sibling
/// of Mrm::initial_state()).
std::size_t point_mass_state(const std::vector<double>& alpha) {
  std::size_t found = alpha.size();
  for (std::size_t s = 0; s < alpha.size(); ++s) {
    if (alpha[s] == 0.0) continue;
    if (alpha[s] == 1.0 && found == alpha.size()) {
      found = s;
    } else {
      return alpha.size();
    }
  }
  return found;
}

void validate_axis(std::span<const double> axis, const char* what) {
  if (axis.empty())
    throw ModelError(std::string("until_grid: the ") + what +
                     " axis must not be empty");
  for (double v : axis)
    if (!(v >= 0.0) || !std::isfinite(v))
      throw ModelError(std::string("until_grid: every ") + what +
                       " bound must be finite and >= 0");
}

}  // namespace

std::optional<StateSet> SatCache::find(std::uint64_t model_fingerprint,
                                       const Formula& f) {
  // The key and the canonical form derive from the arguments alone;
  // computing them outside the lock keeps the critical section to the
  // lookup, the string compares and the hit copy.
  const std::uint64_t key = bucket_key(model_fingerprint, f);
  const std::string canonical = f.to_string();
  MutexLock lock(mutex_);
  const auto it = buckets_.find(key);
  if (it != buckets_.end()) {
    for (const Entry& entry : it->second) {
      if (entry.canonical == canonical) {
        ++stats_.hits;
        return entry.sat;
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void SatCache::insert(std::uint64_t model_fingerprint, const Formula& f,
                      StateSet sat) {
  const std::uint64_t key = bucket_key(model_fingerprint, f);
  std::string canonical = f.to_string();
  MutexLock lock(mutex_);
  std::vector<Entry>& bucket = buckets_[key];
  for (Entry& entry : bucket) {
    if (entry.canonical == canonical) {
      entry.sat = std::move(sat);
      return;
    }
  }
  bucket.push_back({std::move(canonical), std::move(sat)});
  ++size_;
}

std::size_t SatCache::size() const {
  MutexLock lock(mutex_);
  return size_;
}

SatCache::Stats SatCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

const std::vector<double>& BatchResult::at(std::size_t time_index,
                                           std::size_t reward_index) const {
  if (time_index >= times.size() || reward_index >= rewards.size())
    throw ModelError("BatchResult::at: lattice index out of range");
  return per_state[time_index * rewards.size() + reward_index];
}

double BatchResult::value_at(std::size_t time_index,
                             std::size_t reward_index) const {
  const std::vector<double>& values = at(time_index, reward_index);
  if (initial_state >= values.size())
    throw ModelError(
        "BatchResult::value_at: the initial distribution is not a point "
        "mass; read at() against your own distribution instead");
  return values[initial_state];
}

std::vector<std::vector<double>> Checker::until_grid_sets(
    const StateSet& phi, const StateSet& psi, std::span<const double> times,
    std::span<const double> rewards) const {
  // Theorem 1: one amalgamating reduction serves the whole lattice — it
  // depends on the Sat sets only, not on the bounds.
  const UntilReduction reduction = reduce_for_until(*model_, phi, psi);
  StateSet target(reduction.model.num_states());
  target.insert(reduction.success_state);

  const auto engine = make_engine(options_);
  const std::vector<std::vector<double>> h =
      options_.batch
          ? engine->joint_probability_all_starts_grid(reduction.model, times,
                                                      rewards, target)
          : joint_grid_reference(*engine, reduction.model, times, rewards,
                                 target);

  const std::size_t n = model_->num_states();
  std::vector<std::vector<double>> grid(h.size());
  for (std::size_t g = 0; g < h.size(); ++g) {
    grid[g].assign(n, 0.0);
    for (std::size_t s = 0; s < n; ++s)
      grid[g][s] = h[g][reduction.state_map[s]];
  }
  return grid;
}

BatchResult Checker::until_grid(const BatchQuery& query) const {
  BatchResult result = until_grid_internal(query);
  if (!to_internal_.empty()) {
    for (std::vector<double>& cell : result.per_state)
      cell = map_to_original(std::move(cell));
    // Under lumping the internal -> original direction is one-to-many, so
    // the internal initial state cannot be translated; recompute it from
    // the original distribution instead (same point-mass rule as the
    // internal computation).
    result.initial_state =
        point_mass_state(original_model_->initial_distribution());
  }
  return result;
}

BatchResult Checker::until_grid_internal(const BatchQuery& query) const {
  if (!query.psi)
    throw ModelError("until_grid: the psi (right-hand side) formula is "
                     "required");
  validate_axis(query.times, "time");
  validate_axis(query.rewards, "reward");

  CSRL_SPAN("core/until_grid");

  const std::size_t n = model_->num_states();
  const StateSet phi_set =
      query.phi ? sat_internal(*query.phi) : StateSet(n, /*filled=*/true);
  const StateSet psi_set = sat_internal(*query.psi);

  BatchResult result;
  result.times = query.times;
  result.rewards = query.rewards;
  result.initial_state = point_mass_state(model_->initial_distribution());
  if (psi_set.empty()) {
    // As in until_probabilities: an unsatisfiable right-hand side fails
    // surely, everywhere on the lattice.
    result.per_state.assign(query.times.size() * query.rewards.size(),
                            std::vector<double>(n, 0.0));
    return result;
  }
  result.per_state =
      until_grid_sets(phi_set, psi_set, query.times, query.rewards);
  return result;
}

BatchResult Checker::check_until_grid(const BatchQuery& query) const {
  if (!options_.report && !obs::recording_enabled()) return until_grid(query);
  obs::ReportScope scope;
  BatchResult result;
  {
    CSRL_SPAN("core/check");
    const WallTimer latency_timer;
    result = until_grid(query);
    CSRL_HIST("latency/check", latency_timer.seconds());
  }
  obs::RunReport report =
      scope.finish(engine_label(options_), model_->num_states(),
                   model_->rates().nnz(), engine_truncation_error(options_));
  report.lumping = lump_info_;
  report.grid_times = result.times;
  report.grid_rewards = result.rewards;
  obs::write_report_if_requested(report);
  result.report = std::move(report);
  return result;
}

}  // namespace csrl
