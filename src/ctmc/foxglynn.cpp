#include "ctmc/foxglynn.hpp"

#include <cmath>
#include <deque>

#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace csrl {

double poisson_pmf(std::size_t n, double lambda) {
  if (lambda < 0.0) throw NumericalError("poisson_pmf: negative rate");
  if (lambda == 0.0) return n == 0 ? 1.0 : 0.0;
  const double x = static_cast<double>(n);
  // The textbook log-space form -lambda + n log(lambda) - lgamma(n + 1)
  // cancels three terms of magnitude ~n log n down to ~log(pmf); near the
  // mode of a large-lambda Poisson that costs ~n log(n) * ulp of absolute
  // log error, i.e. a ~1e-12 *relative* error at lambda ~ 2000 — enough
  // to void tight truncation guarantees built on these weights.  For
  // n >= 32 rearrange via Stirling so every term is O(1) or proportional
  // to the small quantity d = lambda - n:
  //     log pmf = [n log1p(d/n) - d] - log(sqrt(2 pi n)) - stirling(n)
  // which is cancellation-free for every lambda (for n < 32 lgamma is
  // small and the direct form is already accurate).
  if (x < 32.0)
    return std::exp(-lambda + x * std::log(lambda) - lgamma_safe(x + 1.0));
  const double d = lambda - x;
  const double core = x * std::log1p(d / x) - d;
  const double x2 = x * x;
  const double stirling =
      (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / (1260.0 * x2)) / x2) / x;
  constexpr double kHalfLog2Pi = 0.91893853320467274178;  // log(2 pi) / 2
  return std::exp(core - 0.5 * std::log(x) - kHalfLog2Pi - stirling);
}

PoissonWeights poisson_weights(double lambda_t, double epsilon) {
  if (!(lambda_t >= 0.0))
    throw NumericalError("poisson_weights: negative lambda*t");
  if (!(epsilon > 0.0 && epsilon < 1.0))
    throw NumericalError("poisson_weights: epsilon must be in (0, 1)");

  CSRL_SPAN("ctmc/foxglynn/window");
  PoissonWeights result;
  if (lambda_t == 0.0) {
    result.left = result.right = 0;
    result.weights = {1.0};
    result.total = 1.0;
    CSRL_COUNT("foxglynn/windows", 1);
    CSRL_GAUGE("foxglynn/window_left", 0.0);
    CSRL_GAUGE("foxglynn/window_right", 0.0);
    CSRL_HIST("foxglynn/window_width", 1.0);
    return result;
  }

  // Grow the window outwards from the mode, always annexing the heavier
  // neighbour, until the captured mass reaches 1 - epsilon.  Poisson pmfs
  // are unimodal, so this yields the smallest such window.  The running
  // total uses Kahan compensation: a plain sum of the ~sqrt(lambda_t)
  // window terms drifts by ~n*ulp, which for tight epsilon (1e-12 at
  // lambda_t in the thousands) exceeds epsilon itself and would leave the
  // window short of its guaranteed mass no matter how far it grows.
  const auto mode = static_cast<std::size_t>(std::floor(lambda_t));
  std::deque<double> window{poisson_pmf(mode, lambda_t)};
  std::size_t left = mode;
  std::size_t right = mode;
  double total = window.front();
  double carry = 0.0;  // Kahan compensation term for `total`
  const auto add_to_total = [&total, &carry](double term) {
    const double y = term - carry;
    const double t = total + y;
    carry = (t - total) - y;
    total = t;
  };
  double below = left == 0 ? 0.0 : window.front() * static_cast<double>(left) / lambda_t;
  double above = window.back() * lambda_t / static_cast<double>(right + 1);

  const double target = 1.0 - epsilon;
  while (total < target) {
    const bool can_go_down = left > 0;
    if (can_go_down && below >= above) {
      window.push_front(below);
      add_to_total(below);
      --left;
      below = left == 0 ? 0.0
                        : window.front() * static_cast<double>(left) / lambda_t;
    } else {
      window.push_back(above);
      add_to_total(above);
      ++right;
      above = window.back() * lambda_t / static_cast<double>(right + 1);
      if (above == 0.0 && (!can_go_down || below == 0.0)) break;  // underflow floor
    }
  }

  result.left = left;
  result.right = right;
  result.weights.assign(window.begin(), window.end());
  result.total = total;
  // Normalisation contract: the window must really hold >= 1 - epsilon of
  // the Poisson mass (otherwise every truncation-error bound built on it
  // is void), must never exceed 1 by more than accumulated rounding, and
  // each weight must be a valid probability.
  CSRL_CONTRACT(
      [&] {
        if (result.weights.size() != result.right - result.left + 1)
          return false;
        for (double w : result.weights)
          if (!(w >= 0.0) || !(w <= 1.0) || !std::isfinite(w)) return false;
        return result.total >= 1.0 - epsilon - 1e-15 &&
               result.total <= 1.0 + 1e-12;
      }(),
      "poisson_weights: window [" + std::to_string(result.left) + ", " +
          std::to_string(result.right) + "] with total " +
          std::to_string(result.total) + " violates normalisation for "
          "lambda*t = " + std::to_string(lambda_t) + ", epsilon = " +
          std::to_string(epsilon));
  CSRL_COUNT("foxglynn/windows", 1);
  CSRL_GAUGE("foxglynn/window_left", static_cast<double>(result.left));
  CSRL_GAUGE("foxglynn/window_right", static_cast<double>(result.right));
  CSRL_HIST("foxglynn/window_width",
            static_cast<double>(result.right - result.left + 1));
  return result;
}

}  // namespace csrl
