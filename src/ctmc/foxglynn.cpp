#include "ctmc/foxglynn.hpp"

#include <cmath>
#include <deque>

#include "util/error.hpp"

namespace csrl {

double poisson_pmf(std::size_t n, double lambda) {
  if (lambda < 0.0) throw NumericalError("poisson_pmf: negative rate");
  if (lambda == 0.0) return n == 0 ? 1.0 : 0.0;
  const double x = static_cast<double>(n);
  return std::exp(-lambda + x * std::log(lambda) - std::lgamma(x + 1.0));
}

PoissonWeights poisson_weights(double lambda_t, double epsilon) {
  if (!(lambda_t >= 0.0))
    throw NumericalError("poisson_weights: negative lambda*t");
  if (!(epsilon > 0.0 && epsilon < 1.0))
    throw NumericalError("poisson_weights: epsilon must be in (0, 1)");

  PoissonWeights result;
  if (lambda_t == 0.0) {
    result.left = result.right = 0;
    result.weights = {1.0};
    result.total = 1.0;
    return result;
  }

  // Grow the window outwards from the mode, always annexing the heavier
  // neighbour, until the captured mass reaches 1 - epsilon.  Poisson pmfs
  // are unimodal, so this yields the smallest such window.
  const auto mode = static_cast<std::size_t>(std::floor(lambda_t));
  std::deque<double> window{poisson_pmf(mode, lambda_t)};
  std::size_t left = mode;
  std::size_t right = mode;
  double total = window.front();
  double below = left == 0 ? 0.0 : window.front() * static_cast<double>(left) / lambda_t;
  double above = window.back() * lambda_t / static_cast<double>(right + 1);

  const double target = 1.0 - epsilon;
  while (total < target) {
    const bool can_go_down = left > 0;
    if (can_go_down && below >= above) {
      window.push_front(below);
      total += below;
      --left;
      below = left == 0 ? 0.0
                        : window.front() * static_cast<double>(left) / lambda_t;
    } else {
      window.push_back(above);
      total += above;
      ++right;
      above = window.back() * lambda_t / static_cast<double>(right + 1);
      if (above == 0.0 && (!can_go_down || below == 0.0)) break;  // underflow floor
    }
  }

  result.left = left;
  result.right = right;
  result.weights.assign(window.begin(), window.end());
  result.total = total;
  return result;
}

}  // namespace csrl
