#include "ctmc/labelling.hpp"

#include "util/error.hpp"

namespace csrl {

std::size_t Labelling::add_proposition(const std::string& name) {
  if (name.empty()) throw ModelError("Labelling: empty proposition name");
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const std::size_t id = names_.size();
  names_.push_back(name);
  index_.emplace(name, id);
  sets_.emplace_back(num_states_);
  return id;
}

bool Labelling::has_proposition(const std::string& name) const {
  return index_.contains(name);
}

void Labelling::add_label(std::size_t state, const std::string& name) {
  if (state >= num_states_)
    throw ModelError("Labelling::add_label: state out of range");
  sets_[add_proposition(name)].insert(state);
}

bool Labelling::has_label(std::size_t state, const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return false;
  return sets_[it->second].contains(state);
}

const StateSet& Labelling::states_with(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end())
    throw ModelError("Labelling: unknown atomic proposition '" + name + "'");
  return sets_[it->second];
}

std::vector<std::string> Labelling::labels_of(std::size_t state) const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (sets_[i].contains(state)) out.push_back(names_[i]);
  return out;
}

}  // namespace csrl
