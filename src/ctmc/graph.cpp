#include "ctmc/graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace csrl {

namespace {

void check_square(const CsrMatrix& m, const char* where) {
  if (m.rows() != m.cols())
    throw ModelError(std::string(where) + ": adjacency matrix must be square");
}

}  // namespace

StateSet forward_reachable(const CsrMatrix& adjacency, const StateSet& from) {
  check_square(adjacency, "forward_reachable");
  if (from.size() != adjacency.rows())
    throw ModelError("forward_reachable: universe size mismatch");

  StateSet visited = from;
  std::vector<std::size_t> frontier = from.members();
  while (!frontier.empty()) {
    const std::size_t s = frontier.back();
    frontier.pop_back();
    for (const auto& e : adjacency.row(s)) {
      if (!visited.contains(e.col)) {
        visited.insert(e.col);
        frontier.push_back(e.col);
      }
    }
  }
  return visited;
}

StateSet backward_reachable(const CsrMatrix& adjacency, const StateSet& targets,
                            const StateSet& through) {
  check_square(adjacency, "backward_reachable");
  const std::size_t n = adjacency.rows();
  if (targets.size() != n || through.size() != n)
    throw ModelError("backward_reachable: universe size mismatch");

  const CsrMatrix reverse = adjacency.transposed();
  StateSet visited = targets;
  std::vector<std::size_t> frontier = targets.members();
  while (!frontier.empty()) {
    const std::size_t s = frontier.back();
    frontier.pop_back();
    for (const auto& e : reverse.row(s)) {
      // e.col is a predecessor of s; it may be annexed if it is allowed as
      // an intermediate state.
      if (!visited.contains(e.col) && through.contains(e.col)) {
        visited.insert(e.col);
        frontier.push_back(e.col);
      }
    }
  }
  return visited;
}

std::vector<std::vector<std::size_t>> strongly_connected_components(
    const CsrMatrix& adjacency) {
  check_square(adjacency, "strongly_connected_components");
  const std::size_t n = adjacency.rows();

  constexpr std::size_t kUndefined = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUndefined);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> components;
  std::size_t counter = 0;

  struct Frame {
    std::size_t state;
    std::size_t edge;
  };
  std::vector<Frame> frames;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUndefined) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t v = f.state;
      if (f.edge == 0) {
        index[v] = lowlink[v] = counter++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      const auto edges = adjacency.row(v);
      if (f.edge < edges.size()) {
        const std::size_t w = edges[f.edge++].col;
        if (index[w] == kUndefined) {
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        frames.pop_back();
        if (!frames.empty())
          lowlink[frames.back().state] = std::min(lowlink[frames.back().state],
                                                  lowlink[v]);
        if (lowlink[v] == index[v]) {
          std::vector<std::size_t> component;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          components.push_back(std::move(component));
        }
      }
    }
  }
  return components;
}

std::vector<StateSet> bottom_sccs(const CsrMatrix& adjacency) {
  const std::size_t n = adjacency.rows();
  const auto components = strongly_connected_components(adjacency);

  std::vector<std::size_t> component_of(n, 0);
  for (std::size_t c = 0; c < components.size(); ++c)
    for (std::size_t s : components[c]) component_of[s] = c;

  std::vector<StateSet> bottoms;
  for (std::size_t c = 0; c < components.size(); ++c) {
    bool escapes = false;
    for (std::size_t s : components[c]) {
      for (const auto& e : adjacency.row(s)) {
        if (component_of[e.col] != c) {
          escapes = true;
          break;
        }
      }
      if (escapes) break;
    }
    if (!escapes) {
      StateSet set(n);
      for (std::size_t s : components[c]) set.insert(s);
      bottoms.push_back(std::move(set));
    }
  }
  return bottoms;
}

std::vector<std::size_t> reverse_cuthill_mckee(const CsrMatrix& adjacency) {
  check_square(adjacency, "reverse_cuthill_mckee");
  const std::size_t n = adjacency.rows();

  // Symmetrise the pattern: bandwidth is a property of A + A^T, and a
  // CTMC's rate matrix is frequently unsymmetric (pure birth chains).
  std::vector<std::vector<std::size_t>> neighbours(n);
  const CsrMatrix reverse = adjacency.transposed();
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& e : adjacency.row(s))
      if (e.col != s) neighbours[s].push_back(e.col);
    for (const auto& e : reverse.row(s))
      if (e.col != s) neighbours[s].push_back(e.col);
    std::sort(neighbours[s].begin(), neighbours[s].end());
    neighbours[s].erase(
        std::unique(neighbours[s].begin(), neighbours[s].end()),
        neighbours[s].end());
  }

  const auto by_degree_then_index = [&](std::size_t a, std::size_t b) {
    if (neighbours[a].size() != neighbours[b].size())
      return neighbours[a].size() < neighbours[b].size();
    return a < b;
  };

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> scratch;
  for (std::size_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    // Start each component from its minimum-degree state, the classic
    // peripheral-node heuristic.
    std::size_t start = root;
    {
      // Collect the whole component first so the start choice does not
      // depend on BFS order.
      std::vector<std::size_t> component;
      std::vector<std::size_t> frontier = {root};
      visited[root] = true;
      while (!frontier.empty()) {
        const std::size_t s = frontier.back();
        frontier.pop_back();
        component.push_back(s);
        for (std::size_t next : neighbours[s]) {
          if (visited[next]) continue;
          visited[next] = true;
          frontier.push_back(next);
        }
      }
      for (std::size_t s : component) {
        visited[s] = false;  // reset for the ordering BFS below
        if (by_degree_then_index(s, start)) start = s;
      }
    }
    const std::size_t head = order.size();
    order.push_back(start);
    visited[start] = true;
    for (std::size_t at = head; at < order.size(); ++at) {
      scratch.clear();
      for (std::size_t next : neighbours[order[at]]) {
        if (visited[next]) continue;
        visited[next] = true;
        scratch.push_back(next);
      }
      std::sort(scratch.begin(), scratch.end(), by_degree_then_index);
      order.insert(order.end(), scratch.begin(), scratch.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace csrl
