// Transient analysis of CTMCs by uniformisation.
//
// This is the workhorse behind model checking time-bounded until (property
// class P1 of the paper, following [3]), the dual reward-bounded until
// (P2), and the pseudo-Erlang engine for the combined case (P3).
#pragma once

#include <span>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "util/state_set.hpp"

namespace csrl {

class Workspace;

/// Accumulator for the active-support truncation error (see
/// TransientOptions::support_epsilon).  The mass dropped below the
/// threshold sums across every call that carries the budget; because the
/// uniformised matrix is substochastic and the Poisson weights sum to at
/// most 1, `support_dropped` soundly bounds both the L1 deviation of a
/// forward result and the max-norm deviation of a backward result from
/// the corresponding epsilon = 0 (bitwise dense-identical) run.  The
/// total error bound of a run is this plus the a-priori Fox-Glynn
/// epsilon; RunReport carries both (obs/report.hpp).
struct TruncationBudget {
  double support_dropped = 0.0;
};

/// Controls for uniformisation-based transient analysis.
struct TransientOptions {
  /// Bound on the truncation error of the Poisson series (L1, a priori).
  double epsilon = 1e-10;
  /// Uniformisation rate lambda; 0 selects max exit rate automatically
  /// (with a fallback of 1.0 for a chain where every state is absorbing).
  double uniformisation_rate = 0.0;
  /// Stop iterating powers of P early once the iterate is stationary to
  /// within steady_state_tolerance and attribute the remaining Poisson
  /// mass to that iterate.
  bool steady_state_detection = true;
  double steady_state_tolerance = 1e-14;
  /// Iterate over the active frontier only while it is sparse
  /// (matrix/support.hpp), switching to the dense fused kernel once it
  /// covers support_crossover of the state space.  Engages only for
  /// non-negative start vectors (all library uses); results are bitwise
  /// identical to the dense path whenever support_epsilon is 0.
  bool active_support = true;
  /// Drop frontier entries with magnitude below this threshold.  The
  /// dropped mass accumulates into `budget` (and the obs histogram
  /// "uniformisation/truncation_dropped") as a sound deviation bound; 0
  /// drops nothing and reproduces the dense output bit for bit.
  double support_epsilon = 0.0;
  /// Frontier density (fraction of states) above which the active mode
  /// hands over to the dense kernel.
  double support_crossover = 0.25;
  /// Block width B for the multi-RHS (SpMM) paths: batched runs carry
  /// their per-horizon Poisson accumulators as one interleaved block per
  /// matrix pass, the multi-start entry points group start vectors into
  /// lanes of at most B, and the P3 engines group their level/start
  /// sweeps the same way (matrix/spmm.hpp).  0 = automatic: the
  /// CSRL_RHS_BLOCK environment variable if set, else the bench-chosen
  /// default (kDefaultRhsBlock, currently 8); an explicit value wins
  /// over the environment, exactly the num_threads pattern.  1 disables
  /// blocking (the one-RHS paths).  Values above kMaxRhsBlock (64) — or
  /// an environment value of 0 — are rejected.  Results are bitwise
  /// identical at every width.
  std::size_t rhs_block = 0;
  /// Optional scratch arena (util/workspace.hpp): series buffers are
  /// leased from it instead of allocated per call, so a warmed arena
  /// serves a whole batched grid without heap traffic.  Not owned; may
  /// be null.  The arena is not thread-safe — share one only across
  /// calls issued from the same thread.
  Workspace* workspace = nullptr;
  /// Optional truncation-error accumulator.  Not owned; may be null.
  TruncationBudget* budget = nullptr;
};

/// Forward transient analysis: the state distribution at time t >= 0,
/// starting from `initial` (non-negative, typically summing to 1).
/// Returns a vector of size num_states; entries sum to sum(initial) up to
/// the truncation error.
std::vector<double> transient_distribution(const Ctmc& chain,
                                           std::span<const double> initial,
                                           double t,
                                           const TransientOptions& options = {});

/// Backward transient analysis with an arbitrary terminal value vector v:
/// returns u with u(s) = E_s[v(X_t)] = (e^{Qt} v)(s).  With v an indicator
/// this is occupancy probability; with v a vector of until-probabilities it
/// implements the two-phase scheme for general time intervals.
std::vector<double> transient_backward(const Ctmc& chain,
                                       std::span<const double> terminal,
                                       double t,
                                       const TransientOptions& options = {});

/// Backward transient analysis: for every state s, the probability
/// Pr_s{X_t in target} of occupying `target` at time t when starting in s.
/// One uniformisation run delivers the value for all start states, which is
/// exactly the shape Sat-set computation needs.
std::vector<double> transient_reach(const Ctmc& chain, const StateSet& target,
                                    double t,
                                    const TransientOptions& options = {});

// -- Batched (multi-horizon) forms -----------------------------------------
//
// One vector-power sequence P^n serves every horizon at once: the iterate
// at step n is shared, only the Poisson windows differ per t, so a batch
// over horizons {t_1, ..., t_T} costs one run at max t_i in SpMVs instead
// of T runs.  Each returned vector is BITWISE identical to the
// corresponding single-horizon call: per horizon, the same iterates are
// accumulated with the same weights in the same order, the horizon's
// series simply stops being accumulated once n passes its own Fox-Glynn
// right bound, and a steady-state cutoff folds the remaining mass of each
// still-running horizon's window exactly as the single run would (a
// horizon whose window ended before the cutoff step never reaches the
// detection in the single run either).  Horizons may come in any order
// and may repeat.

/// transient_distribution for several horizons; result[i] bitwise equals
/// transient_distribution(chain, initial, times[i], options).
std::vector<std::vector<double>> transient_distribution_batch(
    const Ctmc& chain, std::span<const double> initial,
    std::span<const double> times, const TransientOptions& options = {});

/// transient_backward for several horizons; result[i] bitwise equals
/// transient_backward(chain, terminal, times[i], options).
std::vector<std::vector<double>> transient_backward_batch(
    const Ctmc& chain, std::span<const double> terminal,
    std::span<const double> times, const TransientOptions& options = {});

/// transient_reach for several horizons; result[i] bitwise equals
/// transient_reach(chain, target, times[i], options).
std::vector<std::vector<double>> transient_reach_batch(
    const Ctmc& chain, const StateSet& target, std::span<const double> times,
    const TransientOptions& options = {});

// -- Multi-start (blocked multi-RHS) forms ---------------------------------
//
// Several t = 0 vectors travel through the chain together: the starts
// are grouped into row-major blocks of at most rhs_block lanes
// (matrix/spmm.hpp) and each group streams the uniformised matrix ONCE
// per step via the *_block_fused kernels, instead of once per start.
// result[s][i] is BITWISE identical to the corresponding single-start
// batch call: every lane accumulates the same weighted iterates in the
// same order, and steady-state detection runs per lane (the fused block
// kernels return per-lane diffs), so each lane folds its remaining
// Poisson mass at exactly the step its own single run would.  The
// active-support mode tracks one frontier per run and therefore stays
// off inside a block; that changes no bits while support_epsilon == 0
// (the active kernels are bitwise identical to the dense ones there),
// so with support_epsilon > 0 — where truncation makes the active path
// produce genuinely different values — the multi entry points fall back
// to per-start single runs instead.

/// transient_distribution for several initial distributions;
/// result[s][i] bitwise equals
/// transient_distribution_batch(chain, initials[s], times, options)[i].
std::vector<std::vector<std::vector<double>>> transient_distribution_multi(
    const Ctmc& chain, std::span<const std::vector<double>> initials,
    std::span<const double> times, const TransientOptions& options = {});

/// transient_backward for several terminal value vectors; result[s][i]
/// bitwise equals
/// transient_backward_batch(chain, terminals[s], times, options)[i].
std::vector<std::vector<std::vector<double>>> transient_backward_multi(
    const Ctmc& chain, std::span<const std::vector<double>> terminals,
    std::span<const double> times, const TransientOptions& options = {});

}  // namespace csrl
