// Atomic-proposition labelling of a state space.
//
// CSRL state formulas bottom out in atomic propositions ("buffer empty",
// "Call_Incoming", ...).  A Labelling maps proposition names to the set of
// states they hold in; the checker resolves leaves of the formula parse
// tree against it.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/state_set.hpp"

namespace csrl {

/// Assignment of atomic propositions to states of a fixed universe.
class Labelling {
 public:
  Labelling() = default;

  /// Labelling over `num_states` states with no propositions yet.
  explicit Labelling(std::size_t num_states) : num_states_(num_states) {}

  std::size_t num_states() const { return num_states_; }

  /// Register a proposition name (idempotent); returns its index.
  std::size_t add_proposition(const std::string& name);

  bool has_proposition(const std::string& name) const;

  /// Label `state` with `name`, registering the proposition if new.
  void add_label(std::size_t state, const std::string& name);

  /// True if `state` is labelled with `name` (false for unknown names).
  bool has_label(std::size_t state, const std::string& name) const;

  /// The set of states labelled `name`.  Throws ModelError for a name that
  /// was never registered — in a logic context that is almost always a typo
  /// in the formula, and silently returning the empty set would make the
  /// formula trivially (un)satisfied.
  const StateSet& states_with(const std::string& name) const;

  /// All registered proposition names, in registration order.
  const std::vector<std::string>& propositions() const { return names_; }

  /// Names of the propositions holding in `state`.
  std::vector<std::string> labels_of(std::size_t state) const;

 private:
  std::size_t num_states_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<StateSet> sets_;
};

}  // namespace csrl
