// Truncated Poisson weights for uniformisation (Fox-Glynn style).
//
// Uniformisation (Jensen [17], Gross & Miller [12]) expresses transient
// CTMC probabilities as a Poisson-weighted sum over powers of the
// uniformised DTMC:
//
//     pi(t) = sum_{n >= 0} e^{-lambda t} (lambda t)^n / n!  *  pi(0) P^n.
//
// PoissonWeights computes a window [left, right] of Poisson(lambda t)
// probabilities whose total mass is at least 1 - epsilon, so truncating
// the series to that window bounds the error by epsilon (the summands are
// bounded by the weights because ||pi P^n||_1 <= 1).
//
// The classic Fox-Glynn algorithm additionally scales weights to dodge
// underflow for extreme lambda*t; we compute the anchor weight in log
// space (lgamma), which is underflow-safe for every realistic lambda*t
// (individual Poisson probabilities near the mode behave like
// 1/sqrt(2 pi lambda t) and stay far above DBL_MIN) and keeps the code
// auditable.
#pragma once

#include <cstddef>
#include <vector>

namespace csrl {

/// A truncated window of Poisson probabilities.
struct PoissonWeights {
  /// Smallest retained number of jumps.
  std::size_t left = 0;
  /// Largest retained number of jumps.
  std::size_t right = 0;
  /// weights[i] = Poisson pmf at (left + i).
  std::vector<double> weights;
  /// Sum of the retained weights; >= 1 - epsilon by construction.
  double total = 0.0;

  /// Pmf at n jumps; zero outside the window.
  double weight(std::size_t n) const {
    if (n < left || n > right) return 0.0;
    return weights[n - left];
  }
};

/// Single Poisson pmf value e^{-lambda} lambda^n / n!, evaluated stably in
/// log space.  Exposed for tests and for the next-operator closed forms.
double poisson_pmf(std::size_t n, double lambda);

/// Compute the truncation window for Poisson(lambda_t) with tail mass at
/// most `epsilon`.  Requires lambda_t >= 0 and 0 < epsilon < 1.  For
/// lambda_t == 0 the window is {0} with weight 1.
PoissonWeights poisson_weights(double lambda_t, double epsilon);

}  // namespace csrl
