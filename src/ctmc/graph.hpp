// Graph algorithms on the sparsity pattern of a transition matrix.
//
// Qualitative model-checking steps (the Prob0/Prob1 precomputations for
// unbounded until, and the bottom-strongly-connected-component analysis
// behind the steady-state operator) only depend on which transitions exist,
// not on their rates.  These routines treat a square CsrMatrix as a
// directed graph: edge s -> s' iff a non-zero entry (s, s') is stored.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/csr.hpp"
#include "util/state_set.hpp"

namespace csrl {

/// States reachable from `from` (inclusive) along stored edges.
StateSet forward_reachable(const CsrMatrix& adjacency, const StateSet& from);

/// States that can reach `targets` along a path whose intermediate states
/// (i.e. all states before the target is hit, including the start state)
/// lie in `through`.  Targets themselves are always included in the result.
/// This is the classic Prob0-style backward search of PCTL/CSL checking.
StateSet backward_reachable(const CsrMatrix& adjacency, const StateSet& targets,
                            const StateSet& through);

/// Strongly connected components in reverse topological order of the
/// condensation (Tarjan); each component lists its member states.
std::vector<std::vector<std::size_t>> strongly_connected_components(
    const CsrMatrix& adjacency);

/// Bottom strongly connected components: SCCs with no edge leaving them.
/// Every infinite CTMC path eventually settles in one of these, which is
/// what grounds the steady-state operator's semantics.
std::vector<StateSet> bottom_sccs(const CsrMatrix& adjacency);

/// Reverse Cuthill-McKee ordering of the symmetrised sparsity pattern:
/// returns a permutation `perm` with perm[new_index] = old_index that
/// reduces the bandwidth of the permuted matrix, clustering each state's
/// neighbours near it so the SpMV-heavy iteration loops walk memory with
/// better locality.  Deterministic: each BFS component starts from its
/// minimum-degree state (ties by index) and neighbours are visited in
/// (degree, index) order.  Purely a performance device — callers apply
/// the inverse permutation to their results, so public numbering never
/// changes (see CheckOptions::reorder_states).
std::vector<std::size_t> reverse_cuthill_mckee(const CsrMatrix& adjacency);

}  // namespace csrl
