// Stationary distributions of closed CTMC components.
//
// Shared by the steady-state operator (S ~p) and the long-run reward
// operator (R ~r [ S ]): both weigh per-BSCC stationary vectors by
// absorption probabilities.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "matrix/solvers.hpp"

namespace csrl {

/// Stationary distribution of the CTMC restricted to the closed component
/// with the given member states, indexed like `members`.  The component
/// must be closed (no rate leaves it) and strongly connected; a singleton
/// trivially yields {1}.
std::vector<double> component_stationary(const Ctmc& chain,
                                         std::span<const std::size_t> members,
                                         const SolverOptions& solver = {});

}  // namespace csrl
