#include "ctmc/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace csrl {

namespace {

/// Contract helper: every row of `m` sums to 1 within `tol` with
/// non-negative entries.  (The full Validator lives in core/validate and
/// cannot be used from this layer.)
bool rows_stochastic(const CsrMatrix& m, double tol) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (const auto& e : m.row(r)) {
      if (!(e.value >= 0.0)) return false;
      sum += e.value;
    }
    if (std::abs(sum - 1.0) > tol) return false;
  }
  return true;
}

}  // namespace

Ctmc::Ctmc(CsrMatrix rates) : rates_(std::move(rates)) {
  if (rates_.rows() != rates_.cols())
    throw ModelError("Ctmc: rate matrix must be square");
  for (std::size_t s = 0; s < rates_.rows(); ++s)
    for (const auto& e : rates_.row(s))
      if (!(e.value >= 0.0) || !std::isfinite(e.value))
        throw ModelError("Ctmc: negative or non-finite rate at (" +
                         std::to_string(s) + ", " + std::to_string(e.col) + ")");
  exit_rates_ = rates_.row_sums();
  max_exit_rate_ = exit_rates_.empty()
                       ? 0.0
                       : *std::max_element(exit_rates_.begin(), exit_rates_.end());
}

CsrMatrix Ctmc::generator() const {
  CsrBuilder b(num_states(), num_states());
  for (std::size_t s = 0; s < num_states(); ++s) {
    for (const auto& e : rates_.row(s)) b.add(s, e.col, e.value);
    b.add(s, s, -exit_rates_[s]);
  }
  return b.build();
}

CsrMatrix Ctmc::embedded_dtmc() const {
  CsrBuilder b(num_states(), num_states());
  for (std::size_t s = 0; s < num_states(); ++s) {
    if (is_absorbing(s)) {
      b.add(s, s, 1.0);
      continue;
    }
    for (const auto& e : rates_.row(s)) b.add(s, e.col, e.value / exit_rates_[s]);
  }
  CsrMatrix p = b.build();
  CSRL_CONTRACT(rows_stochastic(p, 1e-12),
                "Ctmc::embedded_dtmc: a row of P = R(s,.)/E(s) does not sum "
                "to 1 (tolerance 1e-12)");
  return p;
}

CsrMatrix Ctmc::uniformised_dtmc(double lambda) const {
  if (!(lambda > 0.0))
    throw ModelError("Ctmc::uniformised_dtmc: lambda must be positive");
  // A tiny relative slack absorbs floating-point noise in callers that pass
  // exactly max_exit_rate().
  if (lambda < max_exit_rate_ * (1.0 - 1e-12))
    throw ModelError("Ctmc::uniformised_dtmc: lambda below max exit rate");
  CsrBuilder b(num_states(), num_states());
  for (std::size_t s = 0; s < num_states(); ++s) {
    for (const auto& e : rates_.row(s)) b.add(s, e.col, e.value / lambda);
    const double self = 1.0 - exit_rates_[s] / lambda;
    if (self > 0.0) b.add(s, s, self);
  }
  CsrMatrix p = b.build();
  // The self-loop complement can cancel to ~E(s)/lambda * ulp below 1;
  // 1e-12 absorbs that while still catching any real defect.
  CSRL_CONTRACT(rows_stochastic(p, 1e-12),
                "Ctmc::uniformised_dtmc: a row of P = I + Q/lambda does not "
                "sum to 1 at lambda = " + std::to_string(lambda));
  return p;
}

}  // namespace csrl
