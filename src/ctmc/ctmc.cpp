#include "ctmc/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace csrl {

Ctmc::Ctmc(CsrMatrix rates) : rates_(std::move(rates)) {
  if (rates_.rows() != rates_.cols())
    throw ModelError("Ctmc: rate matrix must be square");
  for (std::size_t s = 0; s < rates_.rows(); ++s)
    for (const auto& e : rates_.row(s))
      if (!(e.value >= 0.0) || !std::isfinite(e.value))
        throw ModelError("Ctmc: negative or non-finite rate at (" +
                         std::to_string(s) + ", " + std::to_string(e.col) + ")");
  exit_rates_ = rates_.row_sums();
  max_exit_rate_ = exit_rates_.empty()
                       ? 0.0
                       : *std::max_element(exit_rates_.begin(), exit_rates_.end());
}

CsrMatrix Ctmc::generator() const {
  CsrBuilder b(num_states(), num_states());
  for (std::size_t s = 0; s < num_states(); ++s) {
    for (const auto& e : rates_.row(s)) b.add(s, e.col, e.value);
    b.add(s, s, -exit_rates_[s]);
  }
  return b.build();
}

CsrMatrix Ctmc::embedded_dtmc() const {
  CsrBuilder b(num_states(), num_states());
  for (std::size_t s = 0; s < num_states(); ++s) {
    if (is_absorbing(s)) {
      b.add(s, s, 1.0);
      continue;
    }
    for (const auto& e : rates_.row(s)) b.add(s, e.col, e.value / exit_rates_[s]);
  }
  return b.build();
}

CsrMatrix Ctmc::uniformised_dtmc(double lambda) const {
  if (!(lambda > 0.0))
    throw ModelError("Ctmc::uniformised_dtmc: lambda must be positive");
  // A tiny relative slack absorbs floating-point noise in callers that pass
  // exactly max_exit_rate().
  if (lambda < max_exit_rate_ * (1.0 - 1e-12))
    throw ModelError("Ctmc::uniformised_dtmc: lambda below max exit rate");
  CsrBuilder b(num_states(), num_states());
  for (std::size_t s = 0; s < num_states(); ++s) {
    for (const auto& e : rates_.row(s)) b.add(s, e.col, e.value / lambda);
    const double self = 1.0 - exit_rates_[s] / lambda;
    if (self > 0.0) b.add(s, s, self);
  }
  return b.build();
}

}  // namespace csrl
