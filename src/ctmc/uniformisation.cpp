#include "ctmc/uniformisation.hpp"

#include <cmath>

#include "ctmc/foxglynn.hpp"
#include "matrix/vector_ops.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace csrl {

namespace {

/// Contract helper: all entries of `v` finite and inside [-tol, cap+tol].
bool within_probability_bounds(std::span<const double> v, double cap,
                               double tol) {
  for (double x : v)
    if (!std::isfinite(x) || x < -tol || x > cap + tol) return false;
  return true;
}

double resolve_rate(const Ctmc& chain, const TransientOptions& options) {
  if (options.uniformisation_rate != 0.0) {
    if (options.uniformisation_rate < chain.max_exit_rate())
      throw ModelError("transient analysis: uniformisation rate below max exit rate");
    return options.uniformisation_rate;
  }
  return chain.max_exit_rate() > 0.0 ? chain.max_exit_rate() : 1.0;
}

/// Shared series loop.  `step` advances the iterate by one power of P;
/// the Poisson-weighted iterates are accumulated into `result`.
template <typename StepFn>
void accumulate_series(std::vector<double>& iterate, std::vector<double>& scratch,
                       std::vector<double>& result, const PoissonWeights& weights,
                       const TransientOptions& options, StepFn step) {
  // Fox-Glynn guarantees at least one weight for every lambda*t >= 0, but
  // a degenerate window (e.g. from a pathologically tiny lambda*t) must
  // not read past the end — guard the anchor access defensively.
  if (weights.left == 0 && !weights.weights.empty())
    axpy(weights.weights[0], iterate, result);
  for (std::size_t n = 1; n <= weights.right; ++n) {
    CSRL_COUNT("uniformisation/steps", 1);
    step(iterate, scratch);
    // The steady-state check compares the *full* vector (max_abs_diff is a
    // max-reduction over every entry, serial or parallel alike), so
    // convergence decisions are identical at any thread count.
    if (options.steady_state_detection &&
        max_abs_diff(iterate, scratch) <= options.steady_state_tolerance) {
      // The iterate has converged: every further power of P yields the
      // same vector, so the rest of the Poisson mass multiplies it.
      double remaining = 0.0;
      for (std::size_t m = std::max(n, weights.left); m <= weights.right; ++m)
        remaining += weights.weight(m);
      axpy(remaining, scratch, result);
      iterate.swap(scratch);
      CSRL_COUNT("uniformisation/steady_state_cutoffs", 1);
      return;
    }
    iterate.swap(scratch);
    if (n >= weights.left) axpy(weights.weight(n), iterate, result);
  }
}

/// Batched counterpart of accumulate_series: one iterate sequence shared
/// by every horizon, one Poisson window per horizon.  Mirrors the
/// single-horizon loop operation for operation (see the header's bitwise
/// guarantee): each pre-zeroed *results[i] receives exactly the axpy
/// sequence the single run for its horizon would issue, a horizon simply
/// stops participating once n passes its window's right bound, and a
/// steady-state cutoff folds each still-running horizon's remaining window
/// mass with the same summation loop as the single run.
template <typename StepFn>
void accumulate_series_batch(std::vector<double>& iterate,
                             std::vector<double>& scratch,
                             const std::vector<PoissonWeights>& windows,
                             const std::vector<std::vector<double>*>& results,
                             const TransientOptions& options, StepFn step) {
  std::size_t max_right = 0;
  for (const PoissonWeights& w : windows)
    max_right = std::max(max_right, w.right);
  for (std::size_t i = 0; i < windows.size(); ++i)
    if (windows[i].left == 0 && !windows[i].weights.empty())
      axpy(windows[i].weights[0], iterate, *results[i]);
  for (std::size_t n = 1; n <= max_right; ++n) {
    CSRL_COUNT("uniformisation/steps", 1);
    step(iterate, scratch);
    if (options.steady_state_detection &&
        max_abs_diff(iterate, scratch) <= options.steady_state_tolerance) {
      // Identical iterates mean identical convergence decisions: every
      // horizon whose window reaches this step would detect the cutoff at
      // the same n in its single run (and one that ended earlier already
      // received its full series above).
      for (std::size_t i = 0; i < windows.size(); ++i) {
        if (windows[i].right < n) continue;
        double remaining = 0.0;
        for (std::size_t m = std::max(n, windows[i].left);
             m <= windows[i].right; ++m)
          remaining += windows[i].weight(m);
        axpy(remaining, scratch, *results[i]);
      }
      iterate.swap(scratch);
      CSRL_COUNT("uniformisation/steady_state_cutoffs", 1);
      return;
    }
    iterate.swap(scratch);
    for (std::size_t i = 0; i < windows.size(); ++i)
      if (n >= windows[i].left && n <= windows[i].right)
        axpy(windows[i].weight(n), iterate, *results[i]);
  }
}

/// Shared wrapper for the three *_batch entry points: splits degenerate
/// horizons (t == 0, empty or fully absorbing chain) from the series
/// horizons, builds the per-horizon windows and runs the batched loop.
/// `start` is the t = 0 vector (initial distribution or terminal values).
template <typename StepFn>
std::vector<std::vector<double>> run_batch(const Ctmc& chain,
                                           std::span<const double> start,
                                           std::span<const double> times,
                                           const TransientOptions& options,
                                           const char* what, StepFn step_of) {
  const std::size_t n = chain.num_states();
  if (start.size() != n)
    throw ModelError(std::string(what) + ": vector size mismatch");
  for (double t : times)
    if (!(t >= 0.0) || !std::isfinite(t))
      throw ModelError(std::string(what) + ": times must be finite and >= 0");

  std::vector<std::vector<double>> results(times.size());
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] == 0.0 || n == 0 || chain.max_exit_rate() == 0.0)
      results[i].assign(start.begin(), start.end());
    else
      active.push_back(i);
  }
  if (active.empty()) return results;

  const double lambda = resolve_rate(chain, options);
  const CsrMatrix p = chain.uniformised_dtmc(lambda);
  const auto step = step_of(p);

  std::vector<PoissonWeights> windows;
  windows.reserve(active.size());
  std::vector<std::vector<double>*> outs;
  outs.reserve(active.size());
  for (std::size_t i : active) {
    windows.push_back(poisson_weights(lambda * times[i], options.epsilon));
    results[i].assign(n, 0.0);
    outs.push_back(&results[i]);
  }

  std::vector<double> iterate(start.begin(), start.end());
  std::vector<double> scratch(n, 0.0);
  accumulate_series_batch(iterate, scratch, windows, outs, options, step);
  return results;
}

}  // namespace

std::vector<double> transient_distribution(const Ctmc& chain,
                                           std::span<const double> initial,
                                           double t,
                                           const TransientOptions& options) {
  const std::size_t n = chain.num_states();
  if (initial.size() != n)
    throw ModelError("transient_distribution: initial distribution size mismatch");
  for (double v : initial)
    if (!(v >= 0.0) || !std::isfinite(v))
      throw ModelError("transient_distribution: initial entries must be >= 0");
  if (!(t >= 0.0) || !std::isfinite(t))
    throw ModelError("transient_distribution: time must be finite and >= 0");

  std::vector<double> pi(initial.begin(), initial.end());
  // With every state absorbing the distribution never moves; returning it
  // directly also avoids charging the truncation error for nothing.
  if (t == 0.0 || n == 0 || chain.max_exit_rate() == 0.0) return pi;

  CSRL_SPAN("ctmc/transient/forward");

  const double lambda = resolve_rate(chain, options);
  const CsrMatrix p = chain.uniformised_dtmc(lambda);
  const PoissonWeights weights = poisson_weights(lambda * t, options.epsilon);

  std::vector<double> result(n, 0.0);
  std::vector<double> scratch(n, 0.0);
  accumulate_series(pi, scratch, result, weights, options,
                    [&p](const std::vector<double>& x, std::vector<double>& y) {
                      p.multiply_left(x, y);
                    });
  // P is stochastic, so each entry stays within the initial total mass
  // and the summed mass can only shrink by the truncation error.  This
  // also holds for the sub-distributions the engines feed in.
  CSRL_CONTRACT(
      [&] {
        double mass_in = 0.0;
        for (double v : initial) mass_in += v;
        if (!within_probability_bounds(result, mass_in, 1e-9)) return false;
        double mass_out = 0.0;
        for (double v : result) mass_out += v;
        return mass_out <= mass_in + 1e-9;
      }(),
      "transient_distribution: result is not a sub-distribution of the "
      "initial mass at t = " + std::to_string(t));
  return result;
}

std::vector<double> transient_backward(const Ctmc& chain,
                                       std::span<const double> terminal,
                                       double t, const TransientOptions& options) {
  const std::size_t n = chain.num_states();
  if (terminal.size() != n)
    throw ModelError("transient_backward: terminal vector size mismatch");
  if (!(t >= 0.0) || !std::isfinite(t))
    throw ModelError("transient_backward: time must be finite and >= 0");

  std::vector<double> u(terminal.begin(), terminal.end());
  if (t == 0.0 || n == 0 || chain.max_exit_rate() == 0.0) return u;

  CSRL_SPAN("ctmc/transient/backward");

  const double lambda = resolve_rate(chain, options);
  const CsrMatrix p = chain.uniformised_dtmc(lambda);
  const PoissonWeights weights = poisson_weights(lambda * t, options.epsilon);

  std::vector<double> result(n, 0.0);
  std::vector<double> scratch(n, 0.0);
  accumulate_series(u, scratch, result, weights, options,
                    [&p](const std::vector<double>& x, std::vector<double>& y) {
                      p.multiply(x, y);
                    });
  // E_s[v(X_t)] is a convex-combination-of-v per step, so whenever the
  // terminal vector is a [0,1] value function the result must be too.
  CSRL_CONTRACT(within_probability_bounds(terminal, 1.0, 0.0)
                    ? within_probability_bounds(result, 1.0, 1e-9)
                    : true,
                "transient_backward: [0,1] terminal values produced an "
                "out-of-range expectation at t = " + std::to_string(t));
  return result;
}

std::vector<double> transient_reach(const Ctmc& chain, const StateSet& target,
                                    double t, const TransientOptions& options) {
  if (target.size() != chain.num_states())
    throw ModelError("transient_reach: target universe size mismatch");
  return transient_backward(chain, target.indicator(), t, options);
}

std::vector<std::vector<double>> transient_distribution_batch(
    const Ctmc& chain, std::span<const double> initial,
    std::span<const double> times, const TransientOptions& options) {
  for (double v : initial)
    if (!(v >= 0.0) || !std::isfinite(v))
      throw ModelError(
          "transient_distribution_batch: initial entries must be >= 0");

  CSRL_SPAN("ctmc/transient/forward_batch");
  auto results =
      run_batch(chain, initial, times, options, "transient_distribution_batch",
                [](const CsrMatrix& p) {
                  return [&p](const std::vector<double>& x,
                              std::vector<double>& y) { p.multiply_left(x, y); };
                });
  CSRL_CONTRACT(
      [&] {
        double mass_in = 0.0;
        for (double v : initial) mass_in += v;
        for (const auto& result : results) {
          if (!within_probability_bounds(result, mass_in, 1e-9)) return false;
          double mass_out = 0.0;
          for (double v : result) mass_out += v;
          if (mass_out > mass_in + 1e-9) return false;
        }
        return true;
      }(),
      "transient_distribution_batch: a result is not a sub-distribution of "
      "the initial mass");
  return results;
}

std::vector<std::vector<double>> transient_backward_batch(
    const Ctmc& chain, std::span<const double> terminal,
    std::span<const double> times, const TransientOptions& options) {
  CSRL_SPAN("ctmc/transient/backward_batch");
  auto results =
      run_batch(chain, terminal, times, options, "transient_backward_batch",
                [](const CsrMatrix& p) {
                  return [&p](const std::vector<double>& x,
                              std::vector<double>& y) { p.multiply(x, y); };
                });
  CSRL_CONTRACT(
      [&] {
        if (!within_probability_bounds(terminal, 1.0, 0.0)) return true;
        for (const auto& result : results)
          if (!within_probability_bounds(result, 1.0, 1e-9)) return false;
        return true;
      }(),
      "transient_backward_batch: [0,1] terminal values produced an "
      "out-of-range expectation");
  return results;
}

std::vector<std::vector<double>> transient_reach_batch(
    const Ctmc& chain, const StateSet& target, std::span<const double> times,
    const TransientOptions& options) {
  if (target.size() != chain.num_states())
    throw ModelError("transient_reach_batch: target universe size mismatch");
  return transient_backward_batch(chain, target.indicator(), times, options);
}

}  // namespace csrl
