#include "ctmc/uniformisation.hpp"

#include <algorithm>
#include <cmath>

#include "ctmc/foxglynn.hpp"
#include "matrix/simd.hpp"
#include "matrix/spmm.hpp"
#include "matrix/support.hpp"
#include "matrix/vector_ops.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/workspace.hpp"

namespace csrl {

namespace {

/// Contract helper: all entries of `v` finite and inside [-tol, cap+tol].
bool within_probability_bounds(std::span<const double> v, double cap,
                               double tol) {
  for (double x : v)
    if (!std::isfinite(x) || x < -tol || x > cap + tol) return false;
  return true;
}

double resolve_rate(const Ctmc& chain, const TransientOptions& options) {
  if (options.uniformisation_rate != 0.0) {
    if (options.uniformisation_rate < chain.max_exit_rate())
      throw ModelError("transient analysis: uniformisation rate below max exit rate");
    return options.uniformisation_rate;
  }
  return chain.max_exit_rate() > 0.0 ? chain.max_exit_rate() : 1.0;
}

/// The active-support mode engages only for non-negative start vectors.
/// Together with the strictly positive stored entries of the uniformised
/// DTMC this rules out signed zeros anywhere in the iteration, which is
/// what makes "skip an off-support term" bit-identical to "add its exact
/// +0.0" in the dense kernel.  (A NaN entry fails v >= 0 and falls back
/// to the dense path too.)
bool eligible_for_active(std::span<const double> start) {
  for (double v : start)
    if (!(v >= 0.0)) return false;
  return true;
}

/// One step's latency sample for the "latency/uniformisation_step"
/// histogram.  Dormant-safe: when recording is off the constructor does
/// not even read the clock, so the series loop's per-step overhead stays
/// one predicted branch.  The destructor fires on break/cutoff exits
/// too, so the last (partial) step is still sampled.
struct StepLatencySample {
  StepLatencySample() : t0(CSRL_OBS_ACTIVE() ? obs::now_ns() : -1) {}
  ~StepLatencySample() {
    if (t0 >= 0)
      CSRL_HIST("latency/uniformisation_step",
                static_cast<double>(obs::now_ns() - t0) * 1e-9);
  }
  StepLatencySample(const StepLatencySample&) = delete;
  StepLatencySample& operator=(const StepLatencySample&) = delete;
  std::int64_t t0;
};

/// The one series loop behind every transient entry point, single- or
/// multi-horizon (a single horizon is simply a one-window batch; the
/// header's bitwise batch == single guarantee is by construction).  One
/// iterate sequence P^n serves every window; pre-zeroed *results[i]
/// receives exactly the weight-n axpy sequence its horizon needs.
///
/// Poisson-weight updates are deferred one step so they ride the next
/// SpMV's memory traversal (the fused kernels of matrix/csr.hpp): the
/// weight-n axpy on the step-n iterate is carried as a pending into step
/// n + 1.  The window anchors (weight 0 on the start vector) seed the
/// first step's pendings, and whatever is pending when the loop ends is
/// flushed as a plain axpy.  In every case the per-element arithmetic is
/// the identical y[i] += w * x[i] of the unfused loop, so fusion changes
/// no bits.  A steady-state cutoff at step n happens before weight n is
/// pended, so the remaining-mass fold (which starts at n) attributes the
/// window tail exactly as the unfused loop did.
///
/// While the start vector is non-negative and its support is below the
/// crossover density, steps run on the active-support kernels, which
/// visit only the frontier and keep the result bit-identical to the
/// dense path for support_epsilon == 0.  With support_epsilon > 0,
/// frontier entries below the threshold are dropped and their total
/// magnitude accumulates into `dropped`: each step's drop vector d
/// perturbs every later iterate by at most ||d||_1 in L1 (P is
/// substochastic), and the Poisson weights sum to at most 1, so the
/// total is a sound bound on the L1 (forward) / max-norm (backward)
/// deviation of every result from its epsilon = 0 run.
///
/// Blocked accumulation: with `block_acc` non-empty (size n_states * W,
/// W = windows.size(), paired with `block_weights` of size W) the
/// per-window running sums live interleaved in block_acc[i * W + w]
/// instead of in *results[w], and all W Poisson axpys of one step ride
/// the traversal as ONE FusedBlockAxpy — a contiguous, vectorizable
/// lane loop per row instead of W strided scalar passes.  Every lane
/// performs the identical out += weight * x sequence (steps outside a
/// window carry lane weight 0.0, whose exact +0.0 add is a bit-level
/// no-op on accumulators that start at +0.0 and can never reach -0.0 by
/// addition), so the unpacked lanes equal the unblocked accumulators
/// bit for bit; the caller unpacks into results afterwards.
void accumulate_series(const CsrMatrix& p, bool forward,
                       std::vector<double>& iterate,
                       std::vector<double>& scratch,
                       const std::vector<PoissonWeights>& windows,
                       const std::vector<std::vector<double>*>& results,
                       const TransientOptions& options,
                       std::span<double> block_acc = {},
                       std::span<double> block_weights = {}) {
  const std::size_t n_states = iterate.size();
  const std::size_t num_windows = windows.size();
  std::size_t max_right = 0;
  for (const PoissonWeights& w : windows)
    max_right = std::max(max_right, w.right);

  // Fox-Glynn guarantees at least one weight for every lambda*t >= 0, but
  // a degenerate window (e.g. from a pathologically tiny lambda*t) must
  // not read past the end — guard the anchor access defensively.
  const bool blocked = !block_acc.empty();
  std::vector<FusedAxpy> pendings;
  FusedBlockAxpy block_pending;
  std::span<const FusedBlockAxpy> block_pendings{};
  if (blocked) {
    std::fill(block_acc.begin(), block_acc.end(), 0.0);
    for (std::size_t i = 0; i < num_windows; ++i)
      block_weights[i] = (windows[i].left == 0 && !windows[i].weights.empty())
                             ? windows[i].weights[0]
                             : 0.0;
    block_pending = {block_weights.data(), block_acc.data(), num_windows,
                     num_windows};
    block_pendings = {&block_pending, 1};
  } else {
    pendings.reserve(num_windows);
    for (std::size_t i = 0; i < num_windows; ++i)
      if (windows[i].left == 0 && !windows[i].weights.empty())
        // lint:allow hot-alloc (append into capacity reserved to num_windows just above; never reallocates)
        pendings.push_back({windows[i].weights[0], results[i]->data()});
  }

  bool active = options.active_support && n_states > 0 &&
                eligible_for_active(iterate);
  if (active) {
    std::size_t support = 0;
    for (double v : iterate)
      if (v != 0.0) ++support;
    active = static_cast<double>(support) <=
             options.support_crossover * static_cast<double>(n_states);
  }
  SupportMask mask_in;
  SupportMask mask_out;
  if (active) {
    mask_in = SupportMask(n_states);
    mask_in.reset_to_support(iterate);
    mask_out = SupportMask(n_states);
    // The stale mask of scratch is empty, so scratch must be exactly
    // zero everywhere on entry to the first active step.
    std::fill(scratch.begin(), scratch.end(), 0.0);
  }
  p.warm_kernel_caches(forward || active);

  double dropped = 0.0;
  bool cutoff = false;
  for (std::size_t n = 1; n <= max_right; ++n) {
    CSRL_COUNT("uniformisation/steps", 1);
    const StepLatencySample step_latency;
    const bool want_diff = options.steady_state_detection;
    double diff;
    if (active) {
      diff = forward ? p.multiply_left_active(iterate, scratch, mask_in,
                                              mask_out, pendings,
                                              block_pendings, want_diff)
                     : p.multiply_active(iterate, scratch, mask_in, mask_out,
                                         pendings, block_pendings, want_diff);
      if (options.support_epsilon > 0.0) {
        mask_out.remove_if_not([&](std::size_t i) {
          const double v = scratch[i];
          if (v != 0.0 && std::abs(v) < options.support_epsilon) {
            dropped += std::abs(v);
            scratch[i] = 0.0;
            return false;
          }
          return true;
        });
      }
    } else if (forward) {
      // One iterate in flight: batched horizons already ride the fused
      // pendings, and multi-start runs take run_multi instead.
      // lint:allow spmm-blocking (single power iterate per step)
      diff = p.multiply_left_fused(iterate, scratch, pendings,
                                   block_pendings, want_diff);
    } else {
      // lint:allow spmm-blocking (single power iterate per step)
      diff = p.multiply_fused(iterate, scratch, pendings, block_pendings,
                              want_diff);
    }
    pendings.clear();
    // The steady-state check compares the *full* vector (the fused diff
    // is a max-reduction over every entry, serial or parallel alike, and
    // the active kernels account for positions entering or leaving the
    // frontier), so convergence decisions are identical at any thread
    // count and in either mode.
    if (options.steady_state_detection &&
        diff <= options.steady_state_tolerance) {
      // The iterate has converged: every further power of P yields the
      // same vector, so the rest of each still-running window's Poisson
      // mass multiplies it.  A horizon whose window ended before this
      // step already received its full series.
      if (blocked) {
        // One blocked fold: lane weights are the remaining window masses
        // (0.0 for windows that already ended — an exact +0.0 add).
        for (std::size_t i = 0; i < num_windows; ++i) {
          double remaining = 0.0;
          if (windows[i].right >= n)
            for (std::size_t m = std::max(n, windows[i].left);
                 m <= windows[i].right; ++m)
              remaining += windows[i].weight(m);
          block_weights[i] = remaining;
        }
        for (std::size_t i = 0; i < n_states; ++i) {
          const double s = scratch[i];
          double* out = block_acc.data() + i * num_windows;
          CSRL_PRAGMA_SIMD
          for (std::size_t w = 0; w < num_windows; ++w)
            out[w] += block_weights[w] * s;
        }
      } else {
        for (std::size_t i = 0; i < windows.size(); ++i) {
          if (windows[i].right < n) continue;
          double remaining = 0.0;
          for (std::size_t m = std::max(n, windows[i].left);
               m <= windows[i].right; ++m)
            remaining += windows[i].weight(m);
          axpy(remaining, scratch, *results[i]);
        }
      }
      iterate.swap(scratch);
      CSRL_COUNT("uniformisation/steady_state_cutoffs", 1);
      cutoff = true;
      break;
    }
    iterate.swap(scratch);
    if (active) {
      // After the swap the out-mask names the support of the new
      // iterate and the in-mask names the stale non-zeros of the new
      // scratch — exactly the entry invariant of the next step.
      std::swap(mask_in, mask_out);
      // Hand over to the dense kernels once the frontier stops being
      // sparse; they overwrite scratch in full, so the masks simply
      // retire.  The handover never changes bits, only traversal order
      // of identical per-element operations.
      if (static_cast<double>(mask_in.size()) >
          options.support_crossover * static_cast<double>(n_states))
        active = false;
    }
    if (blocked) {
      for (std::size_t i = 0; i < num_windows; ++i)
        block_weights[i] = (n >= windows[i].left && n <= windows[i].right)
                               ? windows[i].weight(n)
                               : 0.0;
    } else {
      for (std::size_t i = 0; i < windows.size(); ++i)
        if (n >= windows[i].left && n <= windows[i].right)
          // lint:allow hot-alloc (capacity reserved to num_windows at setup; the runtime LoopGuard pins series-loop allocations to zero)
          pendings.push_back({windows[i].weight(n), results[i]->data()});
    }
  }
  if (!cutoff) {
    if (blocked) {
      // Flush the last pending block of weights against the final iterate.
      for (std::size_t i = 0; i < n_states; ++i) {
        const double xi = iterate[i];
        double* out = block_acc.data() + i * num_windows;
        CSRL_PRAGMA_SIMD
        for (std::size_t w = 0; w < num_windows; ++w)
          out[w] += block_weights[w] * xi;
      }
    } else {
      for (const FusedAxpy& pending : pendings)
        axpy(pending.weight, iterate,
             std::span<double>(pending.out, n_states));
    }
  }
  if (options.support_epsilon > 0.0)
    CSRL_HIST("uniformisation/truncation_dropped", dropped);
  if (options.budget != nullptr) options.budget->support_dropped += dropped;
}

/// Shared wrapper for every entry point: splits degenerate horizons
/// (t == 0, empty or fully absorbing chain) from the series horizons,
/// builds the per-horizon windows, leases the iteration buffers and runs
/// the series loop.  `start` is the t = 0 vector (initial distribution
/// or terminal values); `forward` selects distribution pushing (y = x P)
/// over value backpropagation (y = P x).
std::vector<std::vector<double>> run_batch(const Ctmc& chain,
                                           std::span<const double> start,
                                           std::span<const double> times,
                                           const TransientOptions& options,
                                           const char* what, bool forward) {
  const std::size_t n = chain.num_states();
  if (start.size() != n)
    throw ModelError(std::string(what) + ": vector size mismatch");
  for (double t : times)
    if (!(t >= 0.0) || !std::isfinite(t))
      // lint:allow hot-throw (argument validation at entry, before any series work)
      throw ModelError(std::string(what) + ": times must be finite and >= 0");

  std::vector<std::vector<double>> results(times.size());
  std::vector<std::size_t> series;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] == 0.0 || n == 0 || chain.max_exit_rate() == 0.0)
      results[i].assign(start.begin(), start.end());
    else
      // lint:allow hot-alloc (horizon scan at entry, before the series loop)
      series.push_back(i);
  }
  if (series.empty()) return results;

  const double lambda = resolve_rate(chain, options);
  const CsrMatrix p = chain.uniformised_dtmc(lambda);

  std::vector<PoissonWeights> windows;
  windows.reserve(series.size());
  std::vector<std::vector<double>*> outs;
  outs.reserve(series.size());
  for (std::size_t i : series) {
    // lint:allow hot-alloc (per-horizon window setup into capacity reserved above, before the series loop)
    windows.push_back(poisson_weights(lambda * times[i], options.epsilon));
    results[i].assign(n, 0.0);
    // lint:allow hot-alloc (per-horizon setup into capacity reserved above, before the series loop)
    outs.push_back(&results[i]);
  }

  // With more than one live horizon (and blocking not disabled via
  // rhs_block == 1) the per-horizon Poisson accumulators travel as one
  // interleaved block: every step updates all of them in one contiguous
  // lane loop per row instead of one strided pass per horizon.  The
  // unpacked lanes are bitwise identical to the unblocked accumulators
  // (see accumulate_series), so the knob changes speed only.
  const std::size_t num_windows = series.size();
  const bool block_horizons =
      num_windows > 1 && resolve_rhs_block(options.rhs_block) > 1;

  // The guard observes the whole series phase: against a warmed arena
  // the leases reuse retired buffers and the loop itself performs no
  // arena allocation, so the counter reports zero (tests pin this).
  Workspace::LoopGuard guard(options.workspace);
  Workspace::Lease iterate_lease(options.workspace, n);
  Workspace::Lease scratch_lease(options.workspace, n);
  Workspace::Lease acc_lease(options.workspace,
                             block_horizons ? n * num_windows : 0);
  Workspace::Lease weights_lease(options.workspace,
                                 block_horizons ? num_windows : 0);
  std::vector<double>& iterate = iterate_lease.get();
  iterate.assign(start.begin(), start.end());
  accumulate_series(p, forward, iterate, scratch_lease.get(), windows, outs,
                    options,
                    block_horizons ? acc_lease.span() : std::span<double>{},
                    block_horizons ? weights_lease.span()
                                   : std::span<double>{});
  if (block_horizons) {
    const std::span<const double> acc = acc_lease.span();
    for (std::size_t w = 0; w < num_windows; ++w) {
      std::vector<double>& out = *outs[w];
      for (std::size_t i = 0; i < n; ++i) out[i] = acc[i * num_windows + w];
    }
  }
  CSRL_COUNT("uniformisation/allocs_in_loop", guard.heap_allocations());
  return results;
}

/// Blocked multi-start runner behind transient_distribution_multi /
/// transient_backward_multi: groups the start vectors into row-major
/// lanes of at most rhs_block and streams the uniformised matrix once
/// per step for a whole group via the *_block_fused kernels.  Per lane
/// the iteration performs exactly the arithmetic of that start's
/// single-start batch run — same weighted axpys in the same order, with
/// per-lane steady-state diffs deciding each lane's cutoff at the same
/// step its own run would cut (a converged lane folds its remaining
/// window mass and goes dormant: its lane weights turn 0.0, whose exact
/// +0.0 adds change no bits; the block keeps iterating for the other
/// lanes).  Results are therefore bitwise identical to the per-start
/// loop.  Falls back to that loop outright when blocking is off
/// (rhs_block == 1), only one start is given, or support_epsilon > 0
/// (the single runs then truncate on the active path, which a shared
/// dense block cannot reproduce).
std::vector<std::vector<std::vector<double>>> run_multi(
    const Ctmc& chain, std::span<const std::vector<double>> starts,
    std::span<const double> times, const TransientOptions& options,
    const char* what, bool forward) {
  const std::size_t n = chain.num_states();
  for (const std::vector<double>& s : starts)
    if (s.size() != n)
      // lint:allow hot-throw (argument validation at entry, before any series work)
      throw ModelError(std::string(what) + ": vector size mismatch");
  for (double t : times)
    if (!(t >= 0.0) || !std::isfinite(t))
      // lint:allow hot-throw (argument validation at entry, before any series work)
      throw ModelError(std::string(what) + ": times must be finite and >= 0");

  const std::size_t num_starts = starts.size();
  const std::size_t block = resolve_rhs_block(options.rhs_block);
  std::vector<std::vector<std::vector<double>>> all(num_starts);
  if (num_starts == 0) return all;
  if (block == 1 || num_starts == 1 || n == 0 ||
      options.support_epsilon > 0.0) {
    for (std::size_t s = 0; s < num_starts; ++s)
      all[s] = run_batch(chain, starts[s], times, options, what, forward);
    return all;
  }

  // Degenerate horizons (t == 0, absorbing chain) copy the start; the
  // rest run the blocked series.
  // lint:allow hot-alloc (result-slot sizing at entry, one resize per start vector)
  for (std::size_t s = 0; s < num_starts; ++s) all[s].resize(times.size());
  std::vector<std::size_t> series;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] == 0.0 || chain.max_exit_rate() == 0.0)
      for (std::size_t s = 0; s < num_starts; ++s) all[s][i] = starts[s];
    else
      series.push_back(i);  // lint:allow hot-alloc (horizon scan at entry, before the series loop)
  }
  if (series.empty()) return all;

  const double lambda = resolve_rate(chain, options);
  const CsrMatrix p = chain.uniformised_dtmc(lambda);
  p.warm_kernel_caches(forward);

  const std::size_t num_windows = series.size();
  std::vector<PoissonWeights> windows;
  windows.reserve(num_windows);
  std::size_t max_right = 0;
  for (std::size_t i : series) {
    // lint:allow hot-alloc (per-horizon window setup into capacity reserved above, before the series loop)
    windows.push_back(poisson_weights(lambda * times[i], options.epsilon));
    max_right = std::max(max_right, windows.back().right);
  }

  Workspace::LoopGuard guard(options.workspace);
  // Largest lease first: the arena hands out its biggest retired buffer
  // on every acquire, so descending-size acquisition keeps a warmed
  // arena's buffers matched to the same requests call after call.
  Workspace::Lease acc_lease(options.workspace, num_windows * n * block);
  Workspace::Lease x_lease(options.workspace, n * block);
  Workspace::Lease y_lease(options.workspace, n * block);
  Workspace::Lease weights_lease(options.workspace, num_windows * block);
  std::vector<FusedBlockAxpy> block_pendings(num_windows);
  std::vector<double> diffs(block, 0.0);
  std::vector<char> dormant(block, 0);
  const double* cols[kMaxRhsBlock];

  for (std::size_t group = 0; group < num_starts; group += block) {
    const std::size_t width = std::min(block, num_starts - group);
    std::vector<double>& x = x_lease.get();
    std::vector<double>& y = y_lease.get();
    for (std::size_t b = 0; b < width; ++b)
      cols[b] = starts[group + b].data();
    pack_block({cols, width}, x, 0, n, width);

    double* const acc = acc_lease.get().data();
    double* const weights = weights_lease.get().data();
    std::fill_n(acc, num_windows * n * width, 0.0);
    for (std::size_t w = 0; w < num_windows; ++w) {
      double* const lane_weights = weights + w * block;
      const double anchor =
          (windows[w].left == 0 && !windows[w].weights.empty())
              ? windows[w].weights[0]
              : 0.0;
      for (std::size_t b = 0; b < width; ++b) lane_weights[b] = anchor;
      block_pendings[w] = {lane_weights, acc + w * n * width, width, width};
    }
    std::fill(dormant.begin(), dormant.end(), 0);
    std::size_t live = width;

    for (std::size_t step = 1; step <= max_right && live > 0; ++step) {
      CSRL_COUNT("uniformisation/steps", 1);
      const StepLatencySample step_latency;
      const bool want_diff = options.steady_state_detection;
      const std::span<double> diff_span =
          want_diff ? std::span<double>(diffs.data(), width)
                    : std::span<double>{};
      if (forward)
        p.multiply_left_block_fused(x, y, width, width, block_pendings,
                                    diff_span);
      else
        p.multiply_block_fused(x, y, width, width, block_pendings, diff_span);
      if (want_diff) {
        for (std::size_t b = 0; b < width; ++b) {
          if (dormant[b] != 0 || diffs[b] > options.steady_state_tolerance)
            continue;
          // Lane b converged: fold each still-running window's remaining
          // Poisson mass from the new iterate, exactly as its single run
          // folds at this step, then stop accumulating the lane.
          for (std::size_t w = 0; w < num_windows; ++w) {
            double remaining = 0.0;
            if (windows[w].right >= step)
              for (std::size_t m = std::max(step, windows[w].left);
                   m <= windows[w].right; ++m)
                remaining += windows[w].weight(m);
            if (remaining != 0.0) {
              double* const lane_acc = acc + w * n * width;
              for (std::size_t i = 0; i < n; ++i)
                lane_acc[i * width + b] += remaining * y[i * width + b];
            }
          }
          dormant[b] = 1;
          --live;
          CSRL_COUNT("uniformisation/steady_state_cutoffs", 1);
        }
      }
      x.swap(y);
      if (live == 0) break;
      for (std::size_t w = 0; w < num_windows; ++w) {
        double* const lane_weights = weights + w * block;
        const double next =
            (step >= windows[w].left && step <= windows[w].right)
                ? windows[w].weight(step)
                : 0.0;
        for (std::size_t b = 0; b < width; ++b)
          lane_weights[b] = dormant[b] != 0 ? 0.0 : next;
      }
    }
    if (live > 0) {
      // Flush the last pending weights against the final iterate
      // (dormant lanes already carry weight 0.0).
      for (std::size_t w = 0; w < num_windows; ++w) {
        const double* const lane_weights = weights + w * block;
        double* const lane_acc = acc + w * n * width;
        for (std::size_t i = 0; i < n; ++i) {
          const double* xi = x.data() + i * width;
          double* out = lane_acc + i * width;
          CSRL_PRAGMA_SIMD
          for (std::size_t b = 0; b < width; ++b)
            out[b] += lane_weights[b] * xi[b];
        }
      }
    }
    for (std::size_t w = 0; w < num_windows; ++w) {
      const double* const lane_acc = acc + w * n * width;
      for (std::size_t b = 0; b < width; ++b) {
        std::vector<double>& out = all[group + b][series[w]];
        // lint:allow hot-alloc (sizes each caller-owned result vector once while unpacking, after the series loop)
        out.resize(n);
        for (std::size_t i = 0; i < n; ++i) out[i] = lane_acc[i * width + b];
      }
    }
  }
  CSRL_COUNT("uniformisation/allocs_in_loop", guard.heap_allocations());
  return all;
}

}  // namespace

std::vector<double> transient_distribution(const Ctmc& chain,
                                           std::span<const double> initial,
                                           double t,
                                           const TransientOptions& options) {
  const std::size_t n = chain.num_states();
  if (initial.size() != n)
    throw ModelError("transient_distribution: initial distribution size mismatch");
  for (double v : initial)
    if (!(v >= 0.0) || !std::isfinite(v))
      throw ModelError("transient_distribution: initial entries must be >= 0");
  if (!(t >= 0.0) || !std::isfinite(t))
    throw ModelError("transient_distribution: time must be finite and >= 0");

  // With every state absorbing the distribution never moves; returning it
  // directly also avoids charging the truncation error for nothing.
  if (t == 0.0 || n == 0 || chain.max_exit_rate() == 0.0)
    return std::vector<double>(initial.begin(), initial.end());

  CSRL_SPAN("ctmc/transient/forward");

  const double times[1] = {t};
  auto results = run_batch(chain, initial, times, options,
                           "transient_distribution", /*forward=*/true);
  std::vector<double> result = std::move(results[0]);
  // P is stochastic, so each entry stays within the initial total mass
  // and the summed mass can only shrink by the truncation error.  This
  // also holds for the sub-distributions the engines feed in.
  CSRL_CONTRACT(
      [&] {
        double mass_in = 0.0;
        for (double v : initial) mass_in += v;
        if (!within_probability_bounds(result, mass_in, 1e-9)) return false;
        double mass_out = 0.0;
        for (double v : result) mass_out += v;
        return mass_out <= mass_in + 1e-9;
      }(),
      "transient_distribution: result is not a sub-distribution of the "
      "initial mass at t = " + std::to_string(t));
  return result;
}

std::vector<double> transient_backward(const Ctmc& chain,
                                       std::span<const double> terminal,
                                       double t, const TransientOptions& options) {
  const std::size_t n = chain.num_states();
  if (terminal.size() != n)
    throw ModelError("transient_backward: terminal vector size mismatch");
  if (!(t >= 0.0) || !std::isfinite(t))
    throw ModelError("transient_backward: time must be finite and >= 0");

  if (t == 0.0 || n == 0 || chain.max_exit_rate() == 0.0)
    return std::vector<double>(terminal.begin(), terminal.end());

  CSRL_SPAN("ctmc/transient/backward");

  const double times[1] = {t};
  auto results = run_batch(chain, terminal, times, options,
                           "transient_backward", /*forward=*/false);
  std::vector<double> result = std::move(results[0]);
  // E_s[v(X_t)] is a convex-combination-of-v per step, so whenever the
  // terminal vector is a [0,1] value function the result must be too.
  CSRL_CONTRACT(within_probability_bounds(terminal, 1.0, 0.0)
                    ? within_probability_bounds(result, 1.0, 1e-9)
                    : true,
                "transient_backward: [0,1] terminal values produced an "
                "out-of-range expectation at t = " + std::to_string(t));
  return result;
}

std::vector<double> transient_reach(const Ctmc& chain, const StateSet& target,
                                    double t, const TransientOptions& options) {
  if (target.size() != chain.num_states())
    throw ModelError("transient_reach: target universe size mismatch");
  return transient_backward(chain, target.indicator(), t, options);
}

std::vector<std::vector<double>> transient_distribution_batch(
    const Ctmc& chain, std::span<const double> initial,
    std::span<const double> times, const TransientOptions& options) {
  for (double v : initial)
    if (!(v >= 0.0) || !std::isfinite(v))
      throw ModelError(
          "transient_distribution_batch: initial entries must be >= 0");

  CSRL_SPAN("ctmc/transient/forward_batch");
  auto results = run_batch(chain, initial, times, options,
                           "transient_distribution_batch", /*forward=*/true);
  CSRL_CONTRACT(
      [&] {
        double mass_in = 0.0;
        for (double v : initial) mass_in += v;
        for (const auto& result : results) {
          if (!within_probability_bounds(result, mass_in, 1e-9)) return false;
          double mass_out = 0.0;
          for (double v : result) mass_out += v;
          if (mass_out > mass_in + 1e-9) return false;
        }
        return true;
      }(),
      "transient_distribution_batch: a result is not a sub-distribution of "
      "the initial mass");
  return results;
}

std::vector<std::vector<double>> transient_backward_batch(
    const Ctmc& chain, std::span<const double> terminal,
    std::span<const double> times, const TransientOptions& options) {
  CSRL_SPAN("ctmc/transient/backward_batch");
  auto results = run_batch(chain, terminal, times, options,
                           "transient_backward_batch", /*forward=*/false);
  CSRL_CONTRACT(
      [&] {
        if (!within_probability_bounds(terminal, 1.0, 0.0)) return true;
        for (const auto& result : results)
          if (!within_probability_bounds(result, 1.0, 1e-9)) return false;
        return true;
      }(),
      "transient_backward_batch: [0,1] terminal values produced an "
      "out-of-range expectation");
  return results;
}

std::vector<std::vector<double>> transient_reach_batch(
    const Ctmc& chain, const StateSet& target, std::span<const double> times,
    const TransientOptions& options) {
  if (target.size() != chain.num_states())
    throw ModelError("transient_reach_batch: target universe size mismatch");
  return transient_backward_batch(chain, target.indicator(), times, options);
}

std::vector<std::vector<std::vector<double>>> transient_distribution_multi(
    const Ctmc& chain, std::span<const std::vector<double>> initials,
    std::span<const double> times, const TransientOptions& options) {
  for (const std::vector<double>& initial : initials)
    for (double v : initial)
      if (!(v >= 0.0) || !std::isfinite(v))
        throw ModelError(
            "transient_distribution_multi: initial entries must be >= 0");

  CSRL_SPAN("ctmc/transient/forward_multi");
  auto results = run_multi(chain, initials, times, options,
                           "transient_distribution_multi", /*forward=*/true);
  CSRL_CONTRACT(
      [&] {
        for (std::size_t s = 0; s < initials.size(); ++s) {
          double mass_in = 0.0;
          for (double v : initials[s]) mass_in += v;
          for (const auto& result : results[s]) {
            if (!within_probability_bounds(result, mass_in, 1e-9))
              return false;
            double mass_out = 0.0;
            for (double v : result) mass_out += v;
            if (mass_out > mass_in + 1e-9) return false;
          }
        }
        return true;
      }(),
      "transient_distribution_multi: a result is not a sub-distribution of "
      "its initial mass");
  return results;
}

std::vector<std::vector<std::vector<double>>> transient_backward_multi(
    const Ctmc& chain, std::span<const std::vector<double>> terminals,
    std::span<const double> times, const TransientOptions& options) {
  CSRL_SPAN("ctmc/transient/backward_multi");
  auto results = run_multi(chain, terminals, times, options,
                           "transient_backward_multi", /*forward=*/false);
  CSRL_CONTRACT(
      [&] {
        for (std::size_t s = 0; s < terminals.size(); ++s) {
          if (!within_probability_bounds(terminals[s], 1.0, 0.0)) continue;
          for (const auto& result : results[s])
            if (!within_probability_bounds(result, 1.0, 1e-9)) return false;
        }
        return true;
      }(),
      "transient_backward_multi: [0,1] terminal values produced an "
      "out-of-range expectation");
  return results;
}

}  // namespace csrl
