#include "ctmc/stationary.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace csrl {

std::vector<double> component_stationary(const Ctmc& chain,
                                         std::span<const std::size_t> members,
                                         const SolverOptions& solver) {
  if (members.empty())
    throw ModelError("component_stationary: empty component");
  if (members.size() == 1) return {1.0};

  std::unordered_map<std::size_t, std::size_t> compact;
  compact.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    compact.emplace(members[i], i);

  CsrBuilder restricted(members.size(), members.size());
  double max_exit = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    double exit = 0.0;
    for (const auto& e : chain.rates().row(members[i])) {
      const auto it = compact.find(e.col);
      if (it == compact.end())
        throw ModelError("component_stationary: component is not closed");
      restricted.add(i, it->second, e.value);
      exit += e.value;
    }
    max_exit = std::max(max_exit, exit);
  }
  const Ctmc sub(restricted.build());
  // Strictly above the max exit rate => the uniformised chain is aperiodic
  // and the power iteration converges.
  const double lambda = max_exit * 1.05 + 1e-3;
  return power_stationary(sub.uniformised_dtmc(lambda), solver);
}

}  // namespace csrl
