// Continuous-time Markov chains (Section 2.1 of the paper).
//
// A CTMC is represented by its rate matrix R: R(s, s') > 0 is the rate of
// the exponential transition from s to s'.  The exit rate E(s) is the sum
// of row s; the infinitesimal generator is Q = R - diag(E).  Following the
// paper we keep R (not Q) as the primary representation — self-loop rates
// R(s, s) are permitted and observable by the CSRL next operator even
// though they cancel in Q.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/csr.hpp"

namespace csrl {

/// A finite-state continuous-time Markov chain.
class Ctmc {
 public:
  /// Empty chain (0 states).
  Ctmc() = default;

  /// Build from a rate matrix.  Validates: square, all rates finite and
  /// non-negative.
  explicit Ctmc(CsrMatrix rates);

  std::size_t num_states() const { return rates_.rows(); }

  const CsrMatrix& rates() const { return rates_; }

  /// Total rate E(s) of leaving state s (including any self-loop rate).
  double exit_rate(std::size_t s) const { return exit_rates_[s]; }

  const std::vector<double>& exit_rates() const { return exit_rates_; }

  /// max_s E(s); the minimum admissible uniformisation rate.
  double max_exit_rate() const { return max_exit_rate_; }

  /// True if no transition leaves s (E(s) = 0).
  bool is_absorbing(std::size_t s) const { return exit_rates_[s] == 0.0; }

  /// Infinitesimal generator Q = R - diag(E).
  CsrMatrix generator() const;

  /// Embedded jump chain: P(s, s') = R(s, s') / E(s); absorbing states get
  /// a probability-1 self-loop so that P is stochastic.
  CsrMatrix embedded_dtmc() const;

  /// Uniformised DTMC P = I + Q / lambda.  Requires lambda >= max exit
  /// rate (throws ModelError otherwise) and lambda > 0.
  CsrMatrix uniformised_dtmc(double lambda) const;

 private:
  CsrMatrix rates_;
  std::vector<double> exit_rates_;
  double max_exit_rate_ = 0.0;
};

}  // namespace csrl
