#include "logic/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace csrl {

std::string token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kInf: return "'inf'";
    case TokenKind::kProbOp: return "'P'";
    case TokenKind::kSteadyOp: return "'S'";
    case TokenKind::kUntilOp: return "'U'";
    case TokenKind::kWeakUntilOp: return "'W'";
    case TokenKind::kNextOp: return "'X'";
    case TokenKind::kFinallyOp: return "'F'";
    case TokenKind::kGloballyOp: return "'G'";
    case TokenKind::kRewardOp: return "'R'";
    case TokenKind::kCumulativeOp: return "'C'";
    case TokenKind::kInstantOp: return "'I'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kAnd: return "'&'";
    case TokenKind::kOr: return "'|'";
    case TokenKind::kImplies: return "'=>'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kQuery: return "'=?'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_number_start(char c, char next) {
  return std::isdigit(static_cast<unsigned char>(c)) ||
         (c == '.' && std::isdigit(static_cast<unsigned char>(next)));
}

/// Keywords and single-letter operators carved out of identifiers.  The
/// single letters P/S/U/X/F/G/R/C/I only act as operators when they stand
/// alone;
/// "Power" or "Up" remain ordinary identifiers.
TokenKind classify_word(const std::string& word) {
  if (word == "true") return TokenKind::kTrue;
  if (word == "false") return TokenKind::kFalse;
  if (word == "inf") return TokenKind::kInf;
  if (word == "P") return TokenKind::kProbOp;
  if (word == "S") return TokenKind::kSteadyOp;
  if (word == "U") return TokenKind::kUntilOp;
  if (word == "W") return TokenKind::kWeakUntilOp;
  if (word == "X") return TokenKind::kNextOp;
  if (word == "F") return TokenKind::kFinallyOp;
  if (word == "G") return TokenKind::kGloballyOp;
  if (word == "R") return TokenKind::kRewardOp;
  if (word == "C") return TokenKind::kCumulativeOp;
  if (word == "I") return TokenKind::kInstantOp;
  return TokenKind::kIdentifier;
}

}  // namespace

std::vector<Token> tokenize(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    const std::size_t start = i;
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(input[j])) ++j;
      std::string word(input.substr(i, j - i));
      tokens.push_back({classify_word(word), std::move(word), 0.0, start});
      i = j;
      continue;
    }

    if (is_number_start(c, i + 1 < n ? input[i + 1] : '\0')) {
      // Accept the usual floating-point shapes; strtod's end pointer tells
      // us how far the number extends.
      std::string buffer(input.substr(i));
      char* end = nullptr;
      const double value = std::strtod(buffer.c_str(), &end);
      const std::size_t length = static_cast<std::size_t>(end - buffer.c_str());
      if (length == 0) throw SyntaxError("malformed number", start);
      tokens.push_back(
          {TokenKind::kNumber, buffer.substr(0, length), value, start});
      i += length;
      continue;
    }

    auto simple = [&](TokenKind kind, std::size_t length) {
      tokens.push_back(
          {kind, std::string(input.substr(start, length)), 0.0, start});
      i += length;
    };

    switch (c) {
      case '(': simple(TokenKind::kLParen, 1); break;
      case ')': simple(TokenKind::kRParen, 1); break;
      case '[': simple(TokenKind::kLBracket, 1); break;
      case ']': simple(TokenKind::kRBracket, 1); break;
      case '{': simple(TokenKind::kLBrace, 1); break;
      case '}': simple(TokenKind::kRBrace, 1); break;
      case ',': simple(TokenKind::kComma, 1); break;
      case '!': simple(TokenKind::kNot, 1); break;
      case '&': simple(TokenKind::kAnd, 1); break;
      case '|': simple(TokenKind::kOr, 1); break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=')
          simple(TokenKind::kLessEq, 2);
        else
          simple(TokenKind::kLess, 1);
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=')
          simple(TokenKind::kGreaterEq, 2);
        else
          simple(TokenKind::kGreater, 1);
        break;
      case '=':
        if (i + 1 < n && input[i + 1] == '>') {
          simple(TokenKind::kImplies, 2);
        } else if (i + 1 < n && input[i + 1] == '?') {
          simple(TokenKind::kQuery, 2);
        } else {
          simple(TokenKind::kEquals, 1);
        }
        break;
      default:
        throw SyntaxError(std::string("unexpected character '") + c + "'",
                          start);
    }
  }

  tokens.push_back({TokenKind::kEnd, "", 0.0, n});
  return tokens;
}

}  // namespace csrl
