#include "logic/formula.hpp"

#include <bit>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace csrl {

bool compare(Comparison cmp, double value, double bound) {
  switch (cmp) {
    case Comparison::kLess:
      return value < bound;
    case Comparison::kLessEqual:
      return value <= bound;
    case Comparison::kGreater:
      return value > bound;
    case Comparison::kGreaterEqual:
      return value >= bound;
  }
  throw Error("compare: invalid comparison");
}

std::string to_string(Comparison cmp) {
  switch (cmp) {
    case Comparison::kLess:
      return "<";
    case Comparison::kLessEqual:
      return "<=";
    case Comparison::kGreater:
      return ">";
    case Comparison::kGreaterEqual:
      return ">=";
  }
  throw Error("to_string: invalid comparison");
}

namespace {

std::string format_number(double x) {
  std::ostringstream out;
  out.precision(15);
  out << x;
  return out.str();
}

/// Renders the time and reward intervals in concrete syntax: time bounds
/// as "[lo,hi]", reward bounds as "{lo,hi}"; unconstrained intervals are
/// omitted entirely.
std::string format_bounds(const Interval& time, const Interval& reward) {
  std::string out;
  if (!time.is_unbounded()) {
    out += "[" + format_number(time.lo) + ",";
    out += time.has_upper_bound() ? format_number(time.hi) : std::string("inf");
    out += "]";
  }
  if (!reward.is_unbounded()) {
    out += "{" + format_number(reward.lo) + ",";
    out +=
        reward.has_upper_bound() ? format_number(reward.hi) : std::string("inf");
    out += "}";
  }
  return out;
}

void validate_interval(const Interval& i, const char* what) {
  if (!(i.lo >= 0.0) || std::isnan(i.hi) || i.hi < i.lo)
    throw ModelError(std::string("PathFormula: ill-formed ") + what +
                     " interval (need 0 <= lo <= hi)");
}

FormulaPtr make_node(Formula&& node);

}  // namespace

// Formula is only constructible through the factories below; a private
// default constructor plus this helper keeps make_shared unusable from the
// outside while avoiding a friend declaration per factory.
namespace {
struct FormulaAccess : Formula {};

FormulaPtr make_node(Formula&& node) {
  auto owned = std::make_shared<FormulaAccess>();
  static_cast<Formula&>(*owned) = std::move(node);
  return owned;
}
}  // namespace

FormulaPtr Formula::make_true() {
  Formula f;
  f.kind_ = FormulaKind::kTrue;
  return make_node(std::move(f));
}

FormulaPtr Formula::make_false() { return negation(make_true()); }

FormulaPtr Formula::atomic(std::string name) {
  if (name.empty()) throw ModelError("Formula::atomic: empty name");
  Formula f;
  f.kind_ = FormulaKind::kAtomic;
  f.name_ = std::move(name);
  return make_node(std::move(f));
}

FormulaPtr Formula::negation(FormulaPtr operand) {
  if (!operand) throw ModelError("Formula::negation: null operand");
  Formula f;
  f.kind_ = FormulaKind::kNot;
  f.lhs_ = std::move(operand);
  return make_node(std::move(f));
}

FormulaPtr Formula::conjunction(FormulaPtr lhs, FormulaPtr rhs) {
  if (!lhs || !rhs) throw ModelError("Formula::conjunction: null operand");
  Formula f;
  f.kind_ = FormulaKind::kAnd;
  f.lhs_ = std::move(lhs);
  f.rhs_ = std::move(rhs);
  return make_node(std::move(f));
}

FormulaPtr Formula::disjunction(FormulaPtr lhs, FormulaPtr rhs) {
  if (!lhs || !rhs) throw ModelError("Formula::disjunction: null operand");
  Formula f;
  f.kind_ = FormulaKind::kOr;
  f.lhs_ = std::move(lhs);
  f.rhs_ = std::move(rhs);
  return make_node(std::move(f));
}

FormulaPtr Formula::implication(FormulaPtr lhs, FormulaPtr rhs) {
  return disjunction(negation(std::move(lhs)), std::move(rhs));
}

FormulaPtr Formula::probability(Comparison cmp, double bound,
                                PathFormulaPtr path) {
  if (!path) throw ModelError("Formula::probability: null path formula");
  if (!(bound >= 0.0 && bound <= 1.0))
    throw ModelError("Formula::probability: bound must lie in [0, 1]");
  Formula f;
  f.kind_ = FormulaKind::kProb;
  f.path_ = std::move(path);
  f.comparison_ = cmp;
  f.bound_ = bound;
  return make_node(std::move(f));
}

FormulaPtr Formula::probability_query(PathFormulaPtr path) {
  if (!path) throw ModelError("Formula::probability_query: null path formula");
  Formula f;
  f.kind_ = FormulaKind::kProb;
  f.path_ = std::move(path);
  f.is_query_ = true;
  return make_node(std::move(f));
}

FormulaPtr Formula::steady_state(Comparison cmp, double bound, FormulaPtr sub) {
  if (!sub) throw ModelError("Formula::steady_state: null subformula");
  if (!(bound >= 0.0 && bound <= 1.0))
    throw ModelError("Formula::steady_state: bound must lie in [0, 1]");
  Formula f;
  f.kind_ = FormulaKind::kSteady;
  f.lhs_ = std::move(sub);
  f.comparison_ = cmp;
  f.bound_ = bound;
  return make_node(std::move(f));
}

FormulaPtr Formula::steady_state_query(FormulaPtr sub) {
  if (!sub) throw ModelError("Formula::steady_state_query: null subformula");
  Formula f;
  f.kind_ = FormulaKind::kSteady;
  f.lhs_ = std::move(sub);
  f.is_query_ = true;
  return make_node(std::move(f));
}

namespace {
void validate_reward_query(RewardQuery query, double parameter,
                           const FormulaPtr& target) {
  if (query == RewardQuery::kCumulative || query == RewardQuery::kInstantaneous) {
    if (!(parameter >= 0.0) || !std::isfinite(parameter))
      throw ModelError("Formula::reward: the horizon must be finite and >= 0");
  }
  if (query == RewardQuery::kReachability && !target)
    throw ModelError("Formula::reward: reachability reward needs a target");
  if (query != RewardQuery::kReachability && target)
    throw ModelError("Formula::reward: only F takes a target formula");
}
}  // namespace

FormulaPtr Formula::reward(Comparison cmp, double bound, RewardQuery query,
                           double parameter, FormulaPtr target) {
  validate_reward_query(query, parameter, target);
  if (!(bound >= 0.0) || !std::isfinite(bound))
    throw ModelError("Formula::reward: bound must be finite and >= 0");
  Formula f;
  f.kind_ = FormulaKind::kReward;
  f.comparison_ = cmp;
  f.bound_ = bound;
  f.reward_query_ = query;
  f.reward_parameter_ = parameter;
  f.lhs_ = std::move(target);
  return make_node(std::move(f));
}

FormulaPtr Formula::reward_query(RewardQuery query, double parameter,
                                 FormulaPtr target) {
  validate_reward_query(query, parameter, target);
  Formula f;
  f.kind_ = FormulaKind::kReward;
  f.is_query_ = true;
  f.reward_query_ = query;
  f.reward_parameter_ = parameter;
  f.lhs_ = std::move(target);
  return make_node(std::move(f));
}

RewardQuery Formula::reward_query_kind() const {
  if (kind_ != FormulaKind::kReward)
    throw ModelError("Formula::reward_query_kind: not a reward formula");
  return reward_query_;
}

double Formula::reward_parameter() const {
  if (kind_ != FormulaKind::kReward)
    throw ModelError("Formula::reward_parameter: not a reward formula");
  return reward_parameter_;
}

const FormulaPtr& Formula::reward_target() const {
  if (kind_ != FormulaKind::kReward ||
      reward_query_ != RewardQuery::kReachability)
    throw ModelError("Formula::reward_target: not a reachability reward");
  return lhs_;
}

const std::string& Formula::name() const {
  if (kind_ != FormulaKind::kAtomic)
    throw ModelError("Formula::name: not an atomic proposition");
  return name_;
}

const FormulaPtr& Formula::operand() const {
  if (kind_ != FormulaKind::kNot && kind_ != FormulaKind::kSteady)
    throw ModelError("Formula::operand: node has no single operand");
  return lhs_;
}

const FormulaPtr& Formula::lhs() const {
  if (kind_ != FormulaKind::kAnd && kind_ != FormulaKind::kOr)
    throw ModelError("Formula::lhs: not a binary boolean node");
  return lhs_;
}

const FormulaPtr& Formula::rhs() const {
  if (kind_ != FormulaKind::kAnd && kind_ != FormulaKind::kOr)
    throw ModelError("Formula::rhs: not a binary boolean node");
  return rhs_;
}

const PathFormulaPtr& Formula::path() const {
  if (kind_ != FormulaKind::kProb)
    throw ModelError("Formula::path: not a probability node");
  return path_;
}

namespace {
bool has_bound(FormulaKind kind) {
  return kind == FormulaKind::kProb || kind == FormulaKind::kSteady ||
         kind == FormulaKind::kReward;
}
}  // namespace

Comparison Formula::comparison() const {
  if (!has_bound(kind_) || is_query_)
    throw ModelError("Formula::comparison: node has no bound");
  return comparison_;
}

double Formula::bound() const {
  if (!has_bound(kind_) || is_query_)
    throw ModelError("Formula::bound: node has no bound");
  return bound_;
}

std::string Formula::to_string() const {
  switch (kind_) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kAtomic:
      return name_;
    case FormulaKind::kNot:
      return "!(" + lhs_->to_string() + ")";
    case FormulaKind::kAnd:
      return "(" + lhs_->to_string() + " & " + rhs_->to_string() + ")";
    case FormulaKind::kOr:
      return "(" + lhs_->to_string() + " | " + rhs_->to_string() + ")";
    case FormulaKind::kProb:
      if (is_query_) return "P=? [ " + path_->to_string() + " ]";
      return "P" + csrl::to_string(comparison_) + format_number(bound_) + " [ " +
             path_->to_string() + " ]";
    case FormulaKind::kSteady:
      if (is_query_) return "S=? [ " + lhs_->to_string() + " ]";
      return "S" + csrl::to_string(comparison_) + format_number(bound_) + " [ " +
             lhs_->to_string() + " ]";
    case FormulaKind::kReward: {
      std::string body;
      switch (reward_query_) {
        case RewardQuery::kCumulative:
          body = "C<=" + format_number(reward_parameter_);
          break;
        case RewardQuery::kInstantaneous:
          body = "I=" + format_number(reward_parameter_);
          break;
        case RewardQuery::kReachability:
          body = "F (" + lhs_->to_string() + ")";
          break;
        case RewardQuery::kSteadyState:
          body = "S";
          break;
      }
      if (is_query_) return "R=? [ " + body + " ]";
      return "R" + csrl::to_string(comparison_) + format_number(bound_) +
             " [ " + body + " ]";
    }
  }
  throw Error("Formula::to_string: invalid kind");
}

namespace {

using hashing::mix;

/// Bit-level equality for formula parameters: the exact counterpart of
/// hashing doubles through their bit pattern, so structurally_equal and
/// hash() can never disagree.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::uint64_t mix_interval(std::uint64_t h, const Interval& i) {
  h = mix(h, i.lo);
  return mix(h, i.hi);
}

bool same_interval(const Interval& a, const Interval& b) {
  return same_bits(a.lo, b.lo) && same_bits(a.hi, b.hi);
}

}  // namespace

std::uint64_t Formula::hash() const {
  std::uint64_t h = hashing::kOffset;
  h = mix(h, static_cast<std::uint64_t>(kind_));
  h = mix(h, static_cast<std::uint64_t>(is_query_));
  switch (kind_) {
    case FormulaKind::kTrue:
      break;
    case FormulaKind::kAtomic:
      h = mix(h, name_);
      break;
    case FormulaKind::kNot:
      h = mix(h, lhs_->hash());
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      h = mix(h, lhs_->hash());
      h = mix(h, rhs_->hash());
      break;
    case FormulaKind::kProb:
      h = mix(h, path_->hash());
      break;
    case FormulaKind::kSteady:
      h = mix(h, lhs_->hash());
      break;
    case FormulaKind::kReward:
      h = mix(h, static_cast<std::uint64_t>(reward_query_));
      h = mix(h, reward_parameter_);
      if (lhs_) h = mix(h, lhs_->hash());
      break;
  }
  if (!is_query_ && has_bound(kind_)) {
    h = mix(h, static_cast<std::uint64_t>(comparison_));
    h = mix(h, bound_);
  }
  return h;
}

std::uint64_t PathFormula::hash() const {
  std::uint64_t h = hashing::kOffset;
  h = mix(h, static_cast<std::uint64_t>(kind_));
  h = mix_interval(h, time_);
  h = mix_interval(h, reward_);
  if (lhs_) h = mix(h, lhs_->hash());
  h = mix(h, rhs_->hash());
  return h;
}

bool structurally_equal(const Formula& a, const Formula& b) {
  if (a.kind() != b.kind() || a.is_query() != b.is_query()) return false;
  if (!a.is_query() && has_bound(a.kind())) {
    if (a.comparison() != b.comparison() || !same_bits(a.bound(), b.bound()))
      return false;
  }
  switch (a.kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kAtomic:
      return a.name() == b.name();
    case FormulaKind::kNot:
      return structurally_equal(*a.operand(), *b.operand());
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return structurally_equal(*a.lhs(), *b.lhs()) &&
             structurally_equal(*a.rhs(), *b.rhs());
    case FormulaKind::kProb:
      return structurally_equal(*a.path(), *b.path());
    case FormulaKind::kSteady:
      return structurally_equal(*a.operand(), *b.operand());
    case FormulaKind::kReward: {
      if (a.reward_query_kind() != b.reward_query_kind() ||
          !same_bits(a.reward_parameter(), b.reward_parameter()))
        return false;
      if (a.reward_query_kind() != RewardQuery::kReachability) return true;
      return structurally_equal(*a.reward_target(), *b.reward_target());
    }
  }
  throw Error("structurally_equal: invalid formula kind");
}

bool structurally_equal(const PathFormula& a, const PathFormula& b) {
  if (a.kind() != b.kind() || !same_interval(a.time(), b.time()) ||
      !same_interval(a.reward(), b.reward()))
    return false;
  if (!structurally_equal(*a.target(), *b.target())) return false;
  if (a.kind() == PathKind::kUntil || a.kind() == PathKind::kWeakUntil)
    return structurally_equal(*a.lhs(), *b.lhs());
  return true;
}

namespace {
struct PathAccess : PathFormula {};

PathFormulaPtr make_path_node(PathFormula&& node) {
  auto owned = std::make_shared<PathAccess>();
  static_cast<PathFormula&>(*owned) = std::move(node);
  return owned;
}
}  // namespace

PathFormulaPtr PathFormula::next(Interval time, Interval reward, FormulaPtr sub) {
  if (!sub) throw ModelError("PathFormula::next: null subformula");
  validate_interval(time, "time");
  validate_interval(reward, "reward");
  PathFormula p;
  p.kind_ = PathKind::kNext;
  p.time_ = time;
  p.reward_ = reward;
  p.rhs_ = std::move(sub);
  return make_path_node(std::move(p));
}

PathFormulaPtr PathFormula::until(Interval time, Interval reward, FormulaPtr lhs,
                                  FormulaPtr rhs) {
  if (!lhs || !rhs) throw ModelError("PathFormula::until: null subformula");
  validate_interval(time, "time");
  validate_interval(reward, "reward");
  PathFormula p;
  p.kind_ = PathKind::kUntil;
  p.time_ = time;
  p.reward_ = reward;
  p.lhs_ = std::move(lhs);
  p.rhs_ = std::move(rhs);
  return make_path_node(std::move(p));
}

PathFormulaPtr PathFormula::eventually(Interval time, Interval reward,
                                       FormulaPtr sub) {
  return until(time, reward, Formula::make_true(), std::move(sub));
}

PathFormulaPtr PathFormula::globally(Interval time, Interval reward,
                                     FormulaPtr sub) {
  if (!sub) throw ModelError("PathFormula::globally: null subformula");
  validate_interval(time, "time");
  validate_interval(reward, "reward");
  PathFormula p;
  p.kind_ = PathKind::kGlobally;
  p.time_ = time;
  p.reward_ = reward;
  p.rhs_ = std::move(sub);
  return make_path_node(std::move(p));
}

PathFormulaPtr PathFormula::weak_until(Interval time, Interval reward,
                                       FormulaPtr lhs, FormulaPtr rhs) {
  if (!lhs || !rhs) throw ModelError("PathFormula::weak_until: null subformula");
  validate_interval(time, "time");
  validate_interval(reward, "reward");
  PathFormula p;
  p.kind_ = PathKind::kWeakUntil;
  p.time_ = time;
  p.reward_ = reward;
  p.lhs_ = std::move(lhs);
  p.rhs_ = std::move(rhs);
  return make_path_node(std::move(p));
}

const FormulaPtr& PathFormula::lhs() const {
  if (kind_ != PathKind::kUntil && kind_ != PathKind::kWeakUntil)
    throw ModelError("PathFormula::lhs: not an until formula");
  return lhs_;
}

std::string PathFormula::to_string() const {
  const std::string bounds = format_bounds(time_, reward_);
  if (kind_ == PathKind::kNext)
    return "X" + bounds + " (" + rhs_->to_string() + ")";
  if (kind_ == PathKind::kGlobally)
    return "G" + bounds + " (" + rhs_->to_string() + ")";
  if (kind_ == PathKind::kWeakUntil)
    return "(" + lhs_->to_string() + ") W" + bounds + " (" + rhs_->to_string() +
           ")";
  if (lhs_->kind() == FormulaKind::kTrue)
    return "F" + bounds + " (" + rhs_->to_string() + ")";
  return "(" + lhs_->to_string() + ") U" + bounds + " (" + rhs_->to_string() +
         ")";
}

}  // namespace csrl
