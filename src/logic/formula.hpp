// Abstract syntax of CSRL (Section 2.2 of the paper).
//
// State formulas:  Phi ::= true | a | !Phi | Phi & Phi | Phi | Phi
//                        | P ~p [ phi ] | S ~p [ Phi ]
// Path formulas:   phi ::= X^I_J Phi | Phi U^I_J Phi
//
// where I is a time interval and J a reward interval.  Following the
// paper's restriction, the checker only supports intervals of the form
// [0, b] (possibly with b = infinity); the AST nevertheless stores a full
// [lo, hi] interval so that the implemented extension — general time
// intervals for reward-unbounded until, listed as future work in the
// paper — and future generalisations have a place to live.
//
// In addition to the boolean-bounded form P~p[...], quantitative queries
// P=?[...] and S=?[...] are supported (they return probabilities instead
// of truth values), mirroring what later CSL tools offer.
//
// Nodes are immutable and shared via shared_ptr<const ...>; formulas are
// cheap to copy and safe to reuse as subterms of several formulas.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

namespace csrl {

/// Comparison operator of probability bounds ("~" in P~p).
enum class Comparison {
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
};

/// value ~ bound.
bool compare(Comparison cmp, double value, double bound);

/// "<", "<=", ">", ">=".
std::string to_string(Comparison cmp);

/// A closed interval [lo, hi] on the non-negative reals; hi may be
/// infinity.  The paper's fragment uses lo == 0 throughout.
struct Interval {
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();

  /// The unconstrained interval [0, infinity).
  static Interval unbounded() { return {}; }

  /// [0, hi].
  static Interval upto(double hi) { return {0.0, hi}; }

  bool is_unbounded() const {
    return lo == 0.0 && hi == std::numeric_limits<double>::infinity();
  }
  bool has_upper_bound() const {
    return hi != std::numeric_limits<double>::infinity();
  }
  bool contains(double x) const { return lo <= x && x <= hi; }
};

class Formula;
class PathFormula;
using FormulaPtr = std::shared_ptr<const Formula>;
using PathFormulaPtr = std::shared_ptr<const PathFormula>;

/// Node kinds of state formulas.
enum class FormulaKind {
  kTrue,
  kAtomic,
  kNot,
  kAnd,
  kOr,
  kProb,    // P ~p [ path ] or P=? [ path ]
  kSteady,  // S ~p [ state ] or S=? [ state ]
  kReward,  // R ~r [ ... ] or R=? [ ... ] (an implemented extension)
};

/// The four expected-reward measures of the R operator (following the
/// conventions later tools such as PRISM established; impulse rewards are
/// included throughout via the effective per-state reward rate).
enum class RewardQuery {
  kCumulative,     // C<=t : E[Y_t]
  kInstantaneous,  // I=t  : E[rho(X_t)]
  kReachability,   // F Phi: E[reward accumulated until hitting Sat(Phi)]
  kSteadyState,    // S    : long-run reward rate
};

/// Node kinds of path formulas.
enum class PathKind {
  kNext,       // X^I_J Phi
  kUntil,      // Phi U^I_J Psi
  kGlobally,   // G^I_J Phi == not F^I_J not Phi (an implemented extension)
  kWeakUntil,  // Phi W^I_J Psi == not((Phi & !Psi) U^I_J (!Phi & !Psi))
};

/// An immutable CSRL state formula.
class Formula {
 public:
  // -- Constructors (factories) ------------------------------------------
  static FormulaPtr make_true();
  static FormulaPtr make_false();  // sugar: !true
  static FormulaPtr atomic(std::string name);
  static FormulaPtr negation(FormulaPtr operand);
  static FormulaPtr conjunction(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr disjunction(FormulaPtr lhs, FormulaPtr rhs);
  /// a => b, desugared to !a | b.
  static FormulaPtr implication(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr probability(Comparison cmp, double bound, PathFormulaPtr path);
  /// Quantitative form P=?[path].
  static FormulaPtr probability_query(PathFormulaPtr path);
  static FormulaPtr steady_state(Comparison cmp, double bound, FormulaPtr sub);
  /// Quantitative form S=?[Phi].
  static FormulaPtr steady_state_query(FormulaPtr sub);

  /// R ~r [ ... ]: bounded expected-reward formula.  `parameter` is the
  /// horizon t of C<=t / I=t (ignored for kReachability/kSteadyState);
  /// `target` is Sat-target of kReachability (null otherwise); `bound`
  /// must be finite and >= 0 (it is a reward, not a probability).
  static FormulaPtr reward(Comparison cmp, double bound, RewardQuery query,
                           double parameter, FormulaPtr target);
  /// Quantitative form R=?[...].
  static FormulaPtr reward_query(RewardQuery query, double parameter,
                                 FormulaPtr target);

  // -- Observers -----------------------------------------------------------
  FormulaKind kind() const { return kind_; }

  /// Atomic-proposition name (kAtomic only).
  const std::string& name() const;

  /// Operand of kNot / kSteady.
  const FormulaPtr& operand() const;

  /// Children of kAnd / kOr.
  const FormulaPtr& lhs() const;
  const FormulaPtr& rhs() const;

  /// Path subformula of kProb.
  const PathFormulaPtr& path() const;

  /// True for the quantitative P=? / S=? / R=? forms (comparison() and
  /// bound() must not be used on them).
  bool is_query() const { return is_query_; }
  Comparison comparison() const;
  double bound() const;

  /// kReward only: which expected-reward measure, and its horizon.
  RewardQuery reward_query_kind() const;
  double reward_parameter() const;
  /// kReward with kReachability only: the target state formula.
  const FormulaPtr& reward_target() const;

  /// Concrete-syntax rendering, re-parsable by parse_formula().
  std::string to_string() const;

  /// Structural hash: structurally_equal formulas hash equally (numeric
  /// parameters enter via their bit patterns).  Combined with the model
  /// fingerprint this keys the Sat-subformula cache (core/batch.hpp);
  /// cache users must still verify candidates with structurally_equal or
  /// the canonical printed form, since distinct formulas may collide.
  std::uint64_t hash() const;

 protected:
  // Only the factory functions create nodes (via a file-local subclass);
  // protected rather than private so that subclass can reach it.
  Formula() = default;

 private:
  FormulaKind kind_ = FormulaKind::kTrue;
  std::string name_;
  FormulaPtr lhs_;
  FormulaPtr rhs_;
  PathFormulaPtr path_;
  bool is_query_ = false;
  Comparison comparison_ = Comparison::kGreaterEqual;
  double bound_ = 0.0;
  RewardQuery reward_query_ = RewardQuery::kCumulative;
  double reward_parameter_ = 0.0;
};

/// An immutable CSRL path formula with time interval I and reward
/// interval J.
class PathFormula {
 public:
  static PathFormulaPtr next(Interval time, Interval reward, FormulaPtr sub);
  static PathFormulaPtr until(Interval time, Interval reward, FormulaPtr lhs,
                              FormulaPtr rhs);
  /// "Eventually" sugar: true U^I_J Phi (printed as F).
  static PathFormulaPtr eventually(Interval time, Interval reward, FormulaPtr sub);

  /// "Globally": Phi holds at every point selected by the bounds; the
  /// complement of eventually, Pr(G^I_J Phi) = 1 - Pr(F^I_J !Phi).
  static PathFormulaPtr globally(Interval time, Interval reward, FormulaPtr sub);

  /// Weak until: like until but also satisfied when Phi simply never
  /// fails within the bounds (no Psi-state required).  Checked through
  /// the complement identity above.
  static PathFormulaPtr weak_until(Interval time, Interval reward,
                                   FormulaPtr lhs, FormulaPtr rhs);

  PathKind kind() const { return kind_; }
  const Interval& time() const { return time_; }
  const Interval& reward() const { return reward_; }

  /// kNext/kGlobally: the subformula.  kUntil/kWeakUntil: the right-hand
  /// side.
  const FormulaPtr& target() const { return rhs_; }

  /// kUntil/kWeakUntil only: the left-hand side.
  const FormulaPtr& lhs() const;

  std::string to_string() const;

  /// Structural hash; see Formula::hash().
  std::uint64_t hash() const;

 protected:
  PathFormula() = default;

 private:
  PathKind kind_ = PathKind::kNext;
  Interval time_;
  Interval reward_;
  FormulaPtr lhs_;
  FormulaPtr rhs_;
};

/// Structural equality: same tree shape, kinds, names and bit-identical
/// numeric parameters.  Agrees with the canonical printed form
/// (to_string) on every formula the parser can produce, and with hash():
/// structurally equal formulas hash equally.
bool structurally_equal(const Formula& a, const Formula& b);
bool structurally_equal(const PathFormula& a, const PathFormula& b);

}  // namespace csrl
