// Tokeniser for the concrete CSRL syntax.
//
// The surface syntax accepted by the parser (see parser.hpp for the
// grammar) uses these tokens:
//
//   identifiers     [A-Za-z_][A-Za-z0-9_]*        (atomic propositions;
//                   the keywords true/false/inf and the operator
//                   letters P/S/U/X/F/G/R/C/I are carved out)
//   numbers         123, 0.5, 1e-3, .25
//   punctuation     ( ) [ ] { } ,
//   operators       ! & | => < <= > >= =?
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace csrl {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kTrue,
  kFalse,
  kInf,
  kProbOp,    // P
  kSteadyOp,  // S
  kUntilOp,   // U
  kWeakUntilOp, // W
  kNextOp,    // X
  kFinallyOp, // F
  kGloballyOp,// G
  kRewardOp,  // R
  kCumulativeOp, // C
  kInstantOp, // I
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kNot,      // !
  kAnd,      // &
  kOr,       // |
  kImplies,  // =>
  kLess,     // <
  kLessEq,   // <=
  kGreater,  // >
  kGreaterEq,// >=
  kQuery,    // =?
  kEquals,   // =   (only used inside R[ I=t ])
  kEnd,
};

/// One token with its source position (byte offset) for diagnostics.
struct Token {
  TokenKind kind;
  std::string text;
  double number = 0.0;  // valid for kNumber
  std::size_t position = 0;
};

/// Human-readable token-kind name used in parse error messages.
std::string token_kind_name(TokenKind kind);

/// Tokenise `input`; the result always ends with a kEnd token.  Throws
/// SyntaxError on characters outside the grammar.
std::vector<Token> tokenize(std::string_view input);

}  // namespace csrl
