// Recursive-descent parser for the concrete CSRL syntax.
//
// Grammar (precedence low to high: =>, |, &, !):
//
//   formula   := implies
//   implies   := or ( '=>' implies )?                       (right assoc.)
//   or        := and ( '|' and )*
//   and       := unary ( '&' unary )*
//   unary     := '!' unary | primary
//   primary   := 'true' | 'false' | identifier | '(' formula ')'
//              | 'P' bound '[' path ']' | 'S' bound '[' formula ']'
//              | 'R' bound '[' rmeasure ']'
//   bound     := ('<' | '<=' | '>' | '>=') number | '=?'
//   rmeasure  := 'C' '<=' number | 'I' '=' number | 'F' formula | 'S'
//   path      := 'X' intervals formula
//              | 'F' intervals formula                       (true U ...)
//              | 'G' intervals formula                       (not F not ...)
//              | formula ('U' | 'W') intervals formula
//   intervals := time? reward?
//   time      := '[' number ',' (number | 'inf') ']' | '<=' number
//   reward    := '{' number ',' (number | 'inf') '}'
//
// Examples from the paper's case study (Section 5.3):
//
//   Q1:  P>0.5 [ F{0,600} Call_Incoming ]
//   Q2:  P>0.5 [ F[0,24] Call_Incoming ]
//   Q3:  P>0.5 [ (Call_Idle | Doze) U[0,24]{0,600} Call_Initiated ]
#pragma once

#include <string_view>

#include "logic/formula.hpp"

namespace csrl {

/// Parse a CSRL state formula; throws SyntaxError with a byte offset on
/// malformed input.
FormulaPtr parse_formula(std::string_view input);

}  // namespace csrl
