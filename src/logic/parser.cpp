#include "logic/parser.hpp"

#include <string>
#include <vector>

#include "logic/lexer.hpp"
#include "util/error.hpp"

namespace csrl {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : tokens_(tokenize(input)) {}

  FormulaPtr parse() {
    FormulaPtr f = parse_implies();
    expect(TokenKind::kEnd);
    return f;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }

  bool at(TokenKind kind) const { return peek().kind == kind; }

  Token advance() { return tokens_[pos_++]; }

  bool accept(TokenKind kind) {
    if (!at(kind)) return false;
    ++pos_;
    return true;
  }

  Token expect(TokenKind kind) {
    if (!at(kind))
      throw SyntaxError("expected " + token_kind_name(kind) + " but found " +
                            token_kind_name(peek().kind),
                        peek().position);
    return advance();
  }

  FormulaPtr parse_implies() {
    FormulaPtr lhs = parse_or();
    if (accept(TokenKind::kImplies))
      return Formula::implication(std::move(lhs), parse_implies());
    return lhs;
  }

  FormulaPtr parse_or() {
    FormulaPtr f = parse_and();
    while (accept(TokenKind::kOr))
      f = Formula::disjunction(std::move(f), parse_and());
    return f;
  }

  FormulaPtr parse_and() {
    FormulaPtr f = parse_unary();
    while (accept(TokenKind::kAnd))
      f = Formula::conjunction(std::move(f), parse_unary());
    return f;
  }

  // Hostile inputs (kilobytes of '(' or '!') must fail with a
  // diagnostic, not exhaust the stack: every recursive descent passes
  // through parse_unary, so a depth guard there bounds the whole parse.
  static constexpr std::size_t kMaxDepth = 200;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth)
        throw SyntaxError("formula nesting deeper than " +
                              std::to_string(kMaxDepth) + " levels",
                          parser.peek().position);
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  FormulaPtr parse_unary() {
    const DepthGuard guard{*this};
    if (accept(TokenKind::kNot)) return Formula::negation(parse_unary());
    return parse_primary();
  }

  FormulaPtr parse_primary() {
    const Token& token = peek();
    switch (token.kind) {
      case TokenKind::kTrue:
        advance();
        return Formula::make_true();
      case TokenKind::kFalse:
        advance();
        return Formula::make_false();
      case TokenKind::kIdentifier:
        return Formula::atomic(advance().text);
      case TokenKind::kLParen: {
        advance();
        FormulaPtr f = parse_implies();
        expect(TokenKind::kRParen);
        return f;
      }
      case TokenKind::kProbOp:
        return parse_probability();
      case TokenKind::kSteadyOp:
        return parse_steady();
      case TokenKind::kRewardOp:
        return parse_reward();
      default:
        throw SyntaxError("expected a state formula but found " +
                              token_kind_name(token.kind),
                          token.position);
    }
  }

  struct BoundSpec {
    bool query = false;
    Comparison comparison = Comparison::kGreaterEqual;
    double bound = 0.0;
  };

  BoundSpec parse_bound() {
    BoundSpec spec;
    if (accept(TokenKind::kQuery)) {
      spec.query = true;
      return spec;
    }
    if (accept(TokenKind::kLess))
      spec.comparison = Comparison::kLess;
    else if (accept(TokenKind::kLessEq))
      spec.comparison = Comparison::kLessEqual;
    else if (accept(TokenKind::kGreater))
      spec.comparison = Comparison::kGreater;
    else if (accept(TokenKind::kGreaterEq))
      spec.comparison = Comparison::kGreaterEqual;
    else
      throw SyntaxError("expected a probability bound (<, <=, >, >=, =?)",
                        peek().position);
    spec.bound = expect(TokenKind::kNumber).number;
    return spec;
  }

  FormulaPtr parse_probability() {
    expect(TokenKind::kProbOp);
    const BoundSpec spec = parse_bound();
    expect(TokenKind::kLBracket);
    PathFormulaPtr path = parse_path();
    expect(TokenKind::kRBracket);
    if (spec.query) return Formula::probability_query(std::move(path));
    return Formula::probability(spec.comparison, spec.bound, std::move(path));
  }

  FormulaPtr parse_steady() {
    expect(TokenKind::kSteadyOp);
    const BoundSpec spec = parse_bound();
    expect(TokenKind::kLBracket);
    FormulaPtr sub = parse_implies();
    expect(TokenKind::kRBracket);
    if (spec.query) return Formula::steady_state_query(std::move(sub));
    return Formula::steady_state(spec.comparison, spec.bound, std::move(sub));
  }

  FormulaPtr parse_reward() {
    expect(TokenKind::kRewardOp);
    const BoundSpec spec = parse_bound();
    expect(TokenKind::kLBracket);

    RewardQuery query = RewardQuery::kSteadyState;
    double parameter = 0.0;
    FormulaPtr target;
    if (accept(TokenKind::kCumulativeOp)) {
      expect(TokenKind::kLessEq);
      parameter = expect(TokenKind::kNumber).number;
      query = RewardQuery::kCumulative;
    } else if (accept(TokenKind::kInstantOp)) {
      expect(TokenKind::kEquals);
      parameter = expect(TokenKind::kNumber).number;
      query = RewardQuery::kInstantaneous;
    } else if (accept(TokenKind::kFinallyOp)) {
      target = parse_implies();
      query = RewardQuery::kReachability;
    } else if (accept(TokenKind::kSteadyOp)) {
      query = RewardQuery::kSteadyState;
    } else {
      throw SyntaxError(
          "expected a reward measure (C<=t, I=t, F <formula>, S)",
          peek().position);
    }
    expect(TokenKind::kRBracket);
    if (spec.query)
      return Formula::reward_query(query, parameter, std::move(target));
    return Formula::reward(spec.comparison, spec.bound, query, parameter,
                           std::move(target));
  }

  double parse_interval_endpoint() {
    if (accept(TokenKind::kInf))
      return std::numeric_limits<double>::infinity();
    return expect(TokenKind::kNumber).number;
  }

  /// Parse the optional time ("[lo,hi]" or "<=hi") and reward ("{lo,hi}")
  /// annotations of a temporal operator.
  void parse_intervals(Interval& time, Interval& reward) {
    time = Interval::unbounded();
    reward = Interval::unbounded();
    if (accept(TokenKind::kLBracket)) {
      time.lo = parse_interval_endpoint();
      expect(TokenKind::kComma);
      time.hi = parse_interval_endpoint();
      expect(TokenKind::kRBracket);
    } else if (accept(TokenKind::kLessEq)) {
      time = Interval::upto(expect(TokenKind::kNumber).number);
    }
    if (accept(TokenKind::kLBrace)) {
      reward.lo = parse_interval_endpoint();
      expect(TokenKind::kComma);
      reward.hi = parse_interval_endpoint();
      expect(TokenKind::kRBrace);
    }
    const std::size_t where = peek().position;
    if (!(time.lo >= 0.0) || time.hi < time.lo)
      throw SyntaxError("ill-formed time interval", where);
    if (!(reward.lo >= 0.0) || reward.hi < reward.lo)
      throw SyntaxError("ill-formed reward interval", where);
  }

  PathFormulaPtr parse_path() {
    Interval time;
    Interval reward;
    if (accept(TokenKind::kNextOp)) {
      parse_intervals(time, reward);
      return PathFormula::next(time, reward, parse_unary_path_operand());
    }
    if (accept(TokenKind::kFinallyOp)) {
      parse_intervals(time, reward);
      return PathFormula::eventually(time, reward, parse_unary_path_operand());
    }
    if (accept(TokenKind::kGloballyOp)) {
      parse_intervals(time, reward);
      return PathFormula::globally(time, reward, parse_unary_path_operand());
    }
    FormulaPtr lhs = parse_implies();
    const bool weak = accept(TokenKind::kWeakUntilOp);
    if (!weak) expect(TokenKind::kUntilOp);
    parse_intervals(time, reward);
    FormulaPtr rhs = parse_implies();
    if (weak)
      return PathFormula::weak_until(time, reward, std::move(lhs),
                                     std::move(rhs));
    return PathFormula::until(time, reward, std::move(lhs), std::move(rhs));
  }

  /// The operand of X/F: a full state formula.  Parsing it as `implies`
  /// keeps "F a | b" unambiguous as F (a | b), matching PRISM conventions.
  FormulaPtr parse_unary_path_operand() { return parse_implies(); }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

FormulaPtr parse_formula(std::string_view input) {
  return Parser(input).parse();
}

}  // namespace csrl
