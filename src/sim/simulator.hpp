// Discrete-event simulation of Markov reward models (statistical model
// checking).
//
// A fourth, algorithmically independent way to evaluate the paper's
// measures: sample trajectories of the MRM, track elapsed time and
// accumulated reward along each, and estimate path probabilities with
// confidence intervals.  The numerical engines of Section 4 are exact up
// to truncation error; the simulator trades accuracy for complete
// generality (it handles arbitrary [lo, hi] time and reward intervals,
// which the numerical P3 procedures do not) and serves as an oracle in
// the cross-validation test-suite.
#pragma once

#include <cstdint>

#include "logic/formula.hpp"
#include "mrm/mrm.hpp"
#include "util/rng.hpp"
#include "util/state_set.hpp"

namespace csrl {

/// Simulation controls.
struct SimulationOptions {
  /// PRNG seed; equal seeds give bit-identical estimates.
  std::uint64_t seed = 1;
  /// Number of independent trajectories per estimate.
  std::size_t samples = 100'000;
};

/// A Monte-Carlo estimate with its 95% normal-approximation interval.
struct SimulationEstimate {
  double probability = 0.0;
  double half_width_95 = 0.0;
  std::size_t samples = 0;

  /// Is `p` inside the interval widened by `sigmas`/1.96 (use e.g. 4 sigma
  /// in tests to keep the flake rate negligible)?
  bool consistent_with(double p, double sigmas = 4.0) const {
    return p >= probability - half_width_95 * sigmas / 1.96 &&
           p <= probability + half_width_95 * sigmas / 1.96;
  }
};

/// Trajectory sampler bound to one model.  The model must outlive the
/// simulator.
class Simulator {
 public:
  explicit Simulator(const Mrm& model, SimulationOptions options = {});

  /// Estimate Pr( Sat-phi U^time_reward Sat-psi ) over paths started from
  /// the model's initial distribution.  Arbitrary intervals are supported,
  /// including lower bounds the numerical engines reject.
  SimulationEstimate until_probability(const StateSet& phi, const StateSet& psi,
                                       Interval time, Interval reward);

  /// Estimate the Theorem-2 joint probability Pr{Y_t <= r, X_t in target}.
  SimulationEstimate joint_probability(double t, double r,
                                       const StateSet& target);

  /// Estimate E[Y_t].
  SimulationEstimate expected_accumulated_reward(double t);

 private:
  std::size_t sample_initial_state();
  std::size_t sample_successor(std::size_t state);
  bool sample_until(const StateSet& phi, const StateSet& psi, Interval time,
                    Interval reward);

  const Mrm* model_;
  SimulationOptions options_;
  SplitMix64 rng_;
};

}  // namespace csrl
