#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace csrl {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SimulationEstimate summarise(std::size_t hits, std::size_t samples) {
  SimulationEstimate estimate;
  estimate.samples = samples;
  estimate.probability =
      static_cast<double>(hits) / static_cast<double>(samples);
  estimate.half_width_95 =
      1.96 * std::sqrt(estimate.probability * (1.0 - estimate.probability) /
                       static_cast<double>(samples));
  return estimate;
}

}  // namespace

Simulator::Simulator(const Mrm& model, SimulationOptions options)
    : model_(&model), options_(options), rng_(options.seed) {
  if (options_.samples == 0)
    throw ModelError("Simulator: need at least one sample");
  if (model.num_states() == 0) throw ModelError("Simulator: empty model");
}

std::size_t Simulator::sample_initial_state() {
  const auto& alpha = model_->initial_distribution();
  double u = rng_.next_double();
  for (std::size_t s = 0; s < alpha.size(); ++s) {
    u -= alpha[s];
    if (u < 0.0) return s;
  }
  // Floating-point slack: fall back to the last state with mass.
  for (std::size_t s = alpha.size(); s-- > 0;)
    if (alpha[s] > 0.0) return s;
  throw ModelError("Simulator: initial distribution has no mass");
}

std::size_t Simulator::sample_successor(std::size_t state) {
  const double exit = model_->chain().exit_rate(state);
  double u = rng_.next_double() * exit;
  const auto row = model_->rates().row(state);
  for (const auto& e : row) {
    u -= e.value;
    if (u < 0.0) return e.col;
  }
  return row.back().col;
}

bool Simulator::sample_until(const StateSet& phi, const StateSet& psi,
                             Interval time, Interval reward) {
  std::size_t state = sample_initial_state();
  double now = 0.0;     // arrival time in `state`
  double earned = 0.0;  // accumulated reward at arrival

  while (true) {
    const double rho = model_->reward(state);
    const double exit = model_->chain().exit_rate(state);
    const double sojourn =
        exit > 0.0 ? -std::log1p(-rng_.next_double()) / exit : kInf;
    const double departure = now + sojourn;

    if (psi.contains(state)) {
      // Does a qualifying instant t' lie inside this sojourn?  t' must
      // respect both interval bounds, with the reward constraint mapped
      // through the linear growth y(t') = earned + rho (t' - now).
      double lower = std::max(now, time.lo);
      double upper = std::min({departure, time.hi});
      if (rho > 0.0) {
        lower = std::max(lower, now + (reward.lo - earned) / rho);
        upper = std::min(upper, now + (reward.hi - earned) / rho);
      } else {
        if (earned < reward.lo) lower = kInf;   // never reaches the window
        if (earned > reward.hi) upper = -kInf;  // already past it
      }
      if (lower <= upper) {
        // The prefix up to `now` is phi-clean by induction; a qualifying
        // instant strictly after arrival additionally needs phi to hold
        // while waiting in this state.
        if (lower <= now || phi.contains(state)) return true;
      }
    }

    // No satisfaction here: the path may only continue through phi-states.
    if (!phi.contains(state)) return false;
    if (exit == 0.0) return false;  // trapped forever, psi out of reach

    now = departure;
    earned += rho * sojourn;
    const std::size_t next = sample_successor(state);
    earned += model_->impulse(state, next);  // fires at the jump instant
    state = next;
    // Hard failure bounds: time only moves forward, reward only grows.
    if (now > time.hi || earned > reward.hi) return false;
  }
}

SimulationEstimate Simulator::until_probability(const StateSet& phi,
                                                const StateSet& psi,
                                                Interval time, Interval reward) {
  const std::size_t n = model_->num_states();
  if (phi.size() != n || psi.size() != n)
    throw ModelError("Simulator::until_probability: universe mismatch");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < options_.samples; ++i)
    if (sample_until(phi, psi, time, reward)) ++hits;
  return summarise(hits, options_.samples);
}

SimulationEstimate Simulator::joint_probability(double t, double r,
                                                const StateSet& target) {
  if (target.size() != model_->num_states())
    throw ModelError("Simulator::joint_probability: universe mismatch");
  if (!(t >= 0.0) || !(r >= 0.0))
    throw ModelError("Simulator::joint_probability: bounds must be >= 0");

  std::size_t hits = 0;
  for (std::size_t i = 0; i < options_.samples; ++i) {
    std::size_t state = sample_initial_state();
    double now = 0.0;
    double earned = 0.0;
    while (true) {
      const double exit = model_->chain().exit_rate(state);
      const double sojourn =
          exit > 0.0 ? -std::log1p(-rng_.next_double()) / exit : kInf;
      if (now + sojourn >= t) {
        earned += model_->reward(state) * (t - now);
        if (earned <= r && target.contains(state)) ++hits;
        break;
      }
      now += sojourn;
      earned += model_->reward(state) * sojourn;
      const std::size_t next = sample_successor(state);
      earned += model_->impulse(state, next);
      state = next;
      if (earned > r) break;  // rewards are non-negative: no way back
    }
  }
  return summarise(hits, options_.samples);
}

SimulationEstimate Simulator::expected_accumulated_reward(double t) {
  if (!(t >= 0.0))
    throw ModelError("Simulator::expected_accumulated_reward: t must be >= 0");
  double sum = 0.0;
  double sum_squares = 0.0;
  for (std::size_t i = 0; i < options_.samples; ++i) {
    std::size_t state = sample_initial_state();
    double now = 0.0;
    double earned = 0.0;
    while (true) {
      const double exit = model_->chain().exit_rate(state);
      const double sojourn =
          exit > 0.0 ? -std::log1p(-rng_.next_double()) / exit : kInf;
      if (now + sojourn >= t) {
        earned += model_->reward(state) * (t - now);
        break;
      }
      now += sojourn;
      earned += model_->reward(state) * sojourn;
      const std::size_t next = sample_successor(state);
      earned += model_->impulse(state, next);
      state = next;
    }
    sum += earned;
    sum_squares += earned * earned;
  }
  const auto n = static_cast<double>(options_.samples);
  SimulationEstimate estimate;
  estimate.samples = options_.samples;
  estimate.probability = sum / n;  // the mean, despite the field name
  const double variance =
      std::max(0.0, sum_squares / n - estimate.probability * estimate.probability);
  estimate.half_width_95 = 1.96 * std::sqrt(variance / n);
  return estimate;
}

}  // namespace csrl
