// Explicit-state file format for labelled Markov reward models, in the
// tradition of the MRMC / PRISM explicit interfaces.  A model `prefix`
// consists of four text files:
//
//   prefix.tra   "<#states> <#transitions>" header, then one
//                "<src> <dst> <rate>" line per transition
//   prefix.lab   first line: all atomic propositions, space separated;
//                then "<state> <ap> <ap> ..." lines (states with no
//                labels may be omitted)
//   prefix.rew   "<state> <reward>" lines (missing states have reward 0)
//   prefix.init  "<state> <probability>" lines (a single "<state>" line
//                denotes a point mass)
//   prefix.imp   "<src> <dst> <impulse>" lines; the file is optional and
//                only written/required when the model carries impulse
//                rewards
//
// Lines starting with '#' are comments everywhere.
#pragma once

#include <string>

#include "mrm/mrm.hpp"

namespace csrl {

/// Write the four files for `model` under `prefix`.
void save_mrm(const Mrm& model, const std::string& prefix);

/// Load a model saved by save_mrm (or written by hand).  Throws ModelError
/// on malformed content, including the offending file and line number.
Mrm load_mrm(const std::string& prefix);

}  // namespace csrl
