#include "io/explicit_format.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace csrl {

namespace {

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ModelError("save_mrm: cannot open '" + path + "' for writing");
  out.precision(17);
  return out;
}

std::ifstream open_for_read(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ModelError("load_mrm: cannot open '" + path + "'");
  return in;
}

[[noreturn]] void malformed(const std::string& path, std::size_t line,
                            const std::string& what) {
  throw ModelError("load_mrm: " + path + ":" + std::to_string(line) + ": " +
                   what);
}

/// Reads non-comment, non-empty lines and hands them to `handle` with
/// their line number.
template <typename LineFn>
void for_each_line(std::ifstream& in, LineFn handle) {
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.empty() || line[0] == '#') continue;
    handle(line, number);
  }
}

}  // namespace

void save_mrm(const Mrm& model, const std::string& prefix) {
  const std::size_t n = model.num_states();

  {
    auto out = open_for_write(prefix + ".tra");
    out << n << " " << model.rates().nnz() << "\n";
    for (std::size_t s = 0; s < n; ++s)
      for (const auto& e : model.rates().row(s))
        out << s << " " << e.col << " " << e.value << "\n";
  }
  {
    auto out = open_for_write(prefix + ".lab");
    bool first = true;
    for (const std::string& ap : model.labelling().propositions()) {
      out << (first ? "" : " ") << ap;
      first = false;
    }
    out << "\n";
    for (std::size_t s = 0; s < n; ++s) {
      const auto labels = model.labelling().labels_of(s);
      if (labels.empty()) continue;
      out << s;
      for (const std::string& ap : labels) out << " " << ap;
      out << "\n";
    }
  }
  {
    auto out = open_for_write(prefix + ".rew");
    for (std::size_t s = 0; s < n; ++s)
      if (model.reward(s) != 0.0) out << s << " " << model.reward(s) << "\n";
  }
  {
    auto out = open_for_write(prefix + ".init");
    for (std::size_t s = 0; s < n; ++s)
      if (model.initial_distribution()[s] != 0.0)
        out << s << " " << model.initial_distribution()[s] << "\n";
  }
  if (model.has_impulse_rewards()) {
    auto out = open_for_write(prefix + ".imp");
    for (std::size_t s = 0; s < n; ++s)
      for (const auto& e : model.impulse_rewards().row(s))
        out << s << " " << e.col << " " << e.value << "\n";
  } else {
    // A stale .imp file from an earlier save must not haunt the next load.
    std::remove((prefix + ".imp").c_str());
  }
}

Mrm load_mrm(const std::string& prefix) {
  // --- transitions ---------------------------------------------------
  std::size_t num_states = 0;
  CsrBuilder* rates = nullptr;  // constructed once the header is seen
  CsrBuilder rates_storage(0, 0);
  {
    const std::string path = prefix + ".tra";
    auto in = open_for_read(path);
    bool header_seen = false;
    for_each_line(in, [&](const std::string& line, std::size_t number) {
      std::istringstream fields(line);
      if (!header_seen) {
        std::size_t declared_transitions = 0;
        if (!(fields >> num_states >> declared_transitions))
          malformed(path, number, "expected '<#states> <#transitions>' header");
        rates_storage = CsrBuilder(num_states, num_states);
        rates = &rates_storage;
        header_seen = true;
        return;
      }
      std::size_t src = 0;
      std::size_t dst = 0;
      double rate = 0.0;
      if (!(fields >> src >> dst >> rate))
        malformed(path, number, "expected '<src> <dst> <rate>'");
      if (src >= num_states || dst >= num_states)
        malformed(path, number, "state index out of range");
      if (!(rate > 0.0) || !std::isfinite(rate))
        malformed(path, number, "rate must be positive and finite");
      rates->add(src, dst, rate);
    });
    if (!header_seen) malformed(path, 0, "missing header");
  }

  // --- labels ---------------------------------------------------------
  Labelling labelling(num_states);
  {
    const std::string path = prefix + ".lab";
    auto in = open_for_read(path);
    bool header_seen = false;
    for_each_line(in, [&](const std::string& line, std::size_t number) {
      std::istringstream fields(line);
      if (!header_seen) {
        std::string ap;
        while (fields >> ap) labelling.add_proposition(ap);
        header_seen = true;
        return;
      }
      std::size_t state = 0;
      if (!(fields >> state)) malformed(path, number, "expected a state index");
      if (state >= num_states) malformed(path, number, "state index out of range");
      std::string ap;
      while (fields >> ap) {
        if (!labelling.has_proposition(ap))
          malformed(path, number, "proposition '" + ap + "' not declared");
        labelling.add_label(state, ap);
      }
    });
  }

  // --- rewards ----------------------------------------------------------
  std::vector<double> rewards(num_states, 0.0);
  {
    const std::string path = prefix + ".rew";
    auto in = open_for_read(path);
    for_each_line(in, [&](const std::string& line, std::size_t number) {
      std::istringstream fields(line);
      std::size_t state = 0;
      double reward = 0.0;
      if (!(fields >> state >> reward))
        malformed(path, number, "expected '<state> <reward>'");
      if (state >= num_states) malformed(path, number, "state index out of range");
      rewards[state] = reward;
    });
  }

  // --- initial distribution ----------------------------------------------
  std::vector<double> initial(num_states, 0.0);
  {
    const std::string path = prefix + ".init";
    auto in = open_for_read(path);
    bool any = false;
    for_each_line(in, [&](const std::string& line, std::size_t number) {
      std::istringstream fields(line);
      std::size_t state = 0;
      if (!(fields >> state)) malformed(path, number, "expected a state index");
      if (state >= num_states) malformed(path, number, "state index out of range");
      double probability = 1.0;
      fields >> probability;  // optional: absent means point mass
      initial[state] = probability;
      any = true;
    });
    if (!any) malformed(path, 0, "no initial state given");
  }

  Mrm model(Ctmc(rates_storage.build()), std::move(rewards),
            std::move(labelling), std::move(initial));

  // --- impulse rewards (optional file) -------------------------------------
  {
    const std::string path = prefix + ".imp";
    std::ifstream in(path);
    if (in) {
      CsrBuilder impulses(num_states, num_states);
      bool any = false;
      for_each_line(in, [&](const std::string& line, std::size_t number) {
        std::istringstream fields(line);
        std::size_t src = 0;
        std::size_t dst = 0;
        double impulse = 0.0;
        if (!(fields >> src >> dst >> impulse))
          malformed(path, number, "expected '<src> <dst> <impulse>'");
        if (src >= num_states || dst >= num_states)
          malformed(path, number, "state index out of range");
        impulses.add(src, dst, impulse);
        any = true;
      });
      if (any) model = model.with_impulses(impulses.build());
    }
  }
  return model;
}

}  // namespace csrl
