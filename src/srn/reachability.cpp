#include "srn/reachability.hpp"

#include <deque>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace csrl {

namespace {

struct MarkingHash {
  std::size_t operator()(const Marking& m) const {
    // FNV-1a over the token counts.
    std::size_t h = 1469598103934665603ULL;
    for (std::uint32_t v : m) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// A tangible marking reached from some firing, together with the
/// probability of the immediate chain that led there and the impulse
/// reward it accumulated.
struct TangibleSuccessor {
  Marking marking;
  double probability;
  double impulse;
};

/// Enabled immediate transitions of the highest enabled priority with
/// their weights; empty iff the marking is tangible.
std::vector<std::pair<TransitionId, double>> enabled_immediates(
    const Srn& net, const Marking& marking) {
  std::vector<std::pair<TransitionId, double>> result;
  int best_priority = 0;
  for (std::size_t t = 0; t < net.num_transitions(); ++t) {
    const TransitionId id{t};
    if (!net.is_immediate(id)) continue;
    if (!net.enabled(id, marking)) continue;
    const double w = net.weight(id, marking);
    if (w <= 0.0) continue;
    const int priority = net.priority(id);
    if (result.empty() || priority > best_priority) {
      result.clear();
      best_priority = priority;
    } else if (priority < best_priority) {
      continue;
    }
    result.emplace_back(id, w);
  }
  return result;
}

/// Follow chains of immediate firings from `marking` until tangible
/// markings are reached ("vanishing marking elimination").  Cycles of
/// immediate transitions indicate a modelling error (an infinite number
/// of zero-time firings) and are rejected.
void resolve_tangible(const Srn& net, const Marking& marking,
                      double probability, double impulse,
                      std::vector<TangibleSuccessor>& out,
                      std::vector<Marking>& chain) {
  const auto immediates = enabled_immediates(net, marking);
  if (immediates.empty()) {
    out.push_back({marking, probability, impulse});
    return;
  }
  for (const Marking& seen : chain) {
    if (seen == marking)
      throw ModelError(
          "explore: cycle of immediate transitions (zero-time loop) "
          "detected during vanishing-marking elimination");
  }
  double total_weight = 0.0;
  for (const auto& [id, weight] : immediates) total_weight += weight;

  chain.push_back(marking);
  for (const auto& [id, weight] : immediates) {
    resolve_tangible(net, net.fire(id, marking),
                     probability * weight / total_weight,
                     impulse + net.transition_impulse(id), out, chain);
  }
  chain.pop_back();
}

std::vector<TangibleSuccessor> resolve_tangible(const Srn& net,
                                                const Marking& marking) {
  std::vector<TangibleSuccessor> out;
  std::vector<Marking> chain;
  resolve_tangible(net, marking, 1.0, 0.0, out, chain);
  return out;
}

}  // namespace

ReachabilityGraph explore(const Srn& net, std::size_t max_states) {
  if (net.num_places() == 0)
    throw ModelError("explore: net has no places");

  std::unordered_map<Marking, std::size_t, MarkingHash> index;
  std::vector<Marking> markings;
  std::deque<std::size_t> frontier;

  const auto intern = [&](const Marking& m) {
    const auto [it, inserted] = index.emplace(m, markings.size());
    if (inserted) {
      if (markings.size() >= max_states)
        throw ModelError("explore: state space exceeds max_states limit");
      markings.push_back(m);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  // The initial marking may itself be vanishing; its immediate chain
  // splits the initial probability mass.  Impulses fired "before time 0"
  // have no representation in an MRM, so they are rejected.
  std::map<std::size_t, double> initial_mass;
  for (const TangibleSuccessor& init :
       resolve_tangible(net, net.initial_marking())) {
    if (init.impulse > 0.0)
      throw ModelError(
          "explore: the initial vanishing chain earns an impulse reward, "
          "which an MRM cannot express at time 0");
    initial_mass[intern(init.marking)] += init.probability;
  }

  // Aggregated tangible-to-tangible edges; parallel contributions add
  // their rates but must agree on the impulse (an MRM carries one impulse
  // per transition).
  struct EdgeData {
    double rate = 0.0;
    double impulse = 0.0;
    bool any = false;
  };
  std::map<std::pair<std::size_t, std::size_t>, EdgeData> edges;
  std::size_t firings = 0;

  while (!frontier.empty()) {
    const std::size_t s = frontier.front();
    frontier.pop_front();
    const Marking current = markings[s];  // copy: `markings` may grow
    for (std::size_t t = 0; t < net.num_transitions(); ++t) {
      const TransitionId transition{t};
      if (net.is_immediate(transition)) continue;  // tangible states only
      if (!net.enabled(transition, current)) continue;
      const double rate = net.rate(transition, current);
      if (rate == 0.0) continue;
      ++firings;
      for (const TangibleSuccessor& successor :
           resolve_tangible(net, net.fire(transition, current))) {
        const std::size_t to = intern(successor.marking);
        const double impulse =
            net.transition_impulse(transition) + successor.impulse;
        EdgeData& edge = edges[{s, to}];
        if (edge.any && edge.impulse != impulse)
          throw ModelError(
              "explore: two firings connect the same pair of markings with "
              "different impulse rewards; an MRM carries a single impulse "
              "per transition");
        edge.any = true;
        edge.impulse = impulse;
        edge.rate += rate * successor.probability;
      }
    }
  }

  const std::size_t n = markings.size();
  CsrBuilder rates(n, n);
  CsrBuilder impulses(n, n);
  bool any_impulse = false;
  for (const auto& [key, edge] : edges) {
    rates.add(key.first, key.second, edge.rate);
    if (edge.impulse > 0.0) {
      impulses.add(key.first, key.second, edge.impulse);
      any_impulse = true;
    }
  }

  std::vector<double> rewards(n, 0.0);
  Labelling labelling(n);
  for (std::size_t s = 0; s < n; ++s) {
    rewards[s] = net.reward(markings[s]);
    for (std::size_t p = 0; p < net.num_places(); ++p)
      if (markings[s][p] > 0) labelling.add_label(s, net.place_name(PlaceId{p}));
  }
  // Register every place name even if it never holds, so formulas over
  // empty places fail gracefully with "empty set" rather than "unknown
  // proposition".
  for (std::size_t p = 0; p < net.num_places(); ++p)
    labelling.add_proposition(net.place_name(PlaceId{p}));

  std::vector<double> initial(n, 0.0);
  for (const auto& [state, mass] : initial_mass) initial[state] = mass;

  ReachabilityGraph graph;
  graph.model = Mrm(Ctmc(rates.build()), std::move(rewards),
                    std::move(labelling), std::move(initial));
  if (any_impulse)
    graph.model = graph.model.with_impulses(impulses.build());
  graph.markings = std::move(markings);
  graph.num_firings = firings;
  return graph;
}

}  // namespace csrl
