// Reachability-graph generation: SRN -> labelled Markov reward model.
//
// Breadth-first exploration from the initial marking.  Every reachable
// *tangible* marking becomes one MRM state; markings enabling immediate
// transitions ("vanishing markings") are eliminated on the fly by
// following the zero-time firing chains and redistributing probability by
// normalised weights, exactly as SPNP does.  Parallel firings connecting
// the same pair of tangible markings add their rates (and must agree on
// their impulse rewards).  A vanishing initial marking spreads the
// initial distribution over the tangible markings its chains reach.
//
// Atomic propositions: one per place, holding in the markings where the
// place is non-empty; richer predicates can be derived by callers from
// the stored markings (see models/cluster.cpp for the pattern).
#pragma once

#include <cstddef>
#include <vector>

#include "mrm/mrm.hpp"
#include "srn/srn.hpp"

namespace csrl {

/// Result of state-space generation.
struct ReachabilityGraph {
  Mrm model;
  /// The marking of every MRM state (index-aligned).
  std::vector<Marking> markings;
  /// Number of timed transition firings discovered (before vanishing
  /// resolution and before merging parallel arcs).
  std::size_t num_firings = 0;
};

/// Explore the SRN's state space.  Throws ModelError if more than
/// `max_states` markings are found (guards against unbounded nets).
ReachabilityGraph explore(const Srn& net, std::size_t max_states = 1u << 20);

}  // namespace csrl
