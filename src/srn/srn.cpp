#include "srn/srn.hpp"

#include <cmath>

#include "util/error.hpp"

namespace csrl {

PlaceId Srn::add_place(std::string name, std::uint32_t initial_tokens) {
  if (name.empty()) throw ModelError("Srn: empty place name");
  places_.push_back({std::move(name), initial_tokens, 0.0});
  return {places_.size() - 1};
}

TransitionId Srn::add_transition(std::string name, double rate) {
  if (name.empty()) throw ModelError("Srn: empty transition name");
  if (!(rate > 0.0) || !std::isfinite(rate))
    throw ModelError("Srn: transition '" + name + "' needs a positive rate");
  transitions_.push_back(
      {std::move(name), rate, false, 0.0, 0, {}, {}, {}, nullptr, nullptr});
  return {transitions_.size() - 1};
}

TransitionId Srn::add_immediate_transition(std::string name, double weight) {
  if (name.empty()) throw ModelError("Srn: empty transition name");
  if (!(weight > 0.0) || !std::isfinite(weight))
    throw ModelError("Srn: immediate transition '" + name +
                     "' needs a positive weight");
  transitions_.push_back(
      {std::move(name), weight, true, 0.0, 0, {}, {}, {}, nullptr, nullptr});
  return {transitions_.size() - 1};
}

void Srn::set_transition_impulse(TransitionId transition, double impulse) {
  if (!(impulse >= 0.0) || !std::isfinite(impulse))
    throw ModelError("Srn: transition impulse must be finite and >= 0");
  transitions_.at(transition.index).impulse = impulse;
}

bool Srn::is_immediate(TransitionId transition) const {
  return transitions_.at(transition.index).immediate;
}

void Srn::set_priority(TransitionId transition, int priority) {
  Transition& t = transitions_.at(transition.index);
  if (!t.immediate)
    throw ModelError("Srn::set_priority: '" + t.name +
                     "' is timed; priorities apply to immediate transitions");
  t.priority = priority;
}

int Srn::priority(TransitionId transition) const {
  return transitions_.at(transition.index).priority;
}

double Srn::weight(TransitionId transition, const Marking& marking) const {
  const Transition& t = transitions_.at(transition.index);
  if (!t.immediate)
    throw ModelError("Srn::weight: '" + t.name + "' is a timed transition");
  if (!enabled(transition, marking)) return 0.0;
  double value = t.base_rate;
  if (t.rate_factor) value *= t.rate_factor(marking);
  if (!(value >= 0.0) || !std::isfinite(value))
    throw ModelError("Srn: weight function of '" + t.name +
                     "' produced an invalid value");
  return value;
}

double Srn::transition_impulse(TransitionId transition) const {
  return transitions_.at(transition.index).impulse;
}

namespace {
void check_multiplicity(std::uint32_t multiplicity) {
  if (multiplicity == 0)
    throw ModelError("Srn: arc multiplicity must be positive");
}
}  // namespace

void Srn::add_input_arc(TransitionId transition, PlaceId place,
                        std::uint32_t multiplicity) {
  check_multiplicity(multiplicity);
  transitions_.at(transition.index).inputs.push_back({place.index, multiplicity});
}

void Srn::add_output_arc(TransitionId transition, PlaceId place,
                         std::uint32_t multiplicity) {
  check_multiplicity(multiplicity);
  transitions_.at(transition.index).outputs.push_back({place.index, multiplicity});
}

void Srn::add_inhibitor_arc(TransitionId transition, PlaceId place,
                            std::uint32_t multiplicity) {
  check_multiplicity(multiplicity);
  transitions_.at(transition.index)
      .inhibitors.push_back({place.index, multiplicity});
}

void Srn::set_guard(TransitionId transition, GuardFunction guard) {
  transitions_.at(transition.index).guard = std::move(guard);
}

void Srn::set_rate_function(TransitionId transition, RateFunction factor) {
  transitions_.at(transition.index).rate_factor = std::move(factor);
}

void Srn::set_place_reward(PlaceId place, double reward_per_token) {
  if (!(reward_per_token >= 0.0) || !std::isfinite(reward_per_token))
    throw ModelError("Srn: place reward must be finite and >= 0");
  places_.at(place.index).reward_per_token = reward_per_token;
}

void Srn::set_reward_function(std::function<double(const Marking&)> reward) {
  reward_function_ = std::move(reward);
}

Marking Srn::initial_marking() const {
  Marking m(places_.size(), 0);
  for (std::size_t i = 0; i < places_.size(); ++i)
    m[i] = places_[i].initial_tokens;
  return m;
}

bool Srn::enabled(TransitionId transition, const Marking& marking) const {
  const Transition& t = transitions_.at(transition.index);
  for (const Arc& arc : t.inputs)
    if (marking[arc.place] < arc.multiplicity) return false;
  for (const Arc& arc : t.inhibitors)
    if (marking[arc.place] >= arc.multiplicity) return false;
  if (t.guard && !t.guard(marking)) return false;
  return true;
}

double Srn::rate(TransitionId transition, const Marking& marking) const {
  const Transition& immediate_check = transitions_.at(transition.index);
  if (immediate_check.immediate)
    throw ModelError("Srn::rate: '" + immediate_check.name +
                     "' is immediate and has no rate");
  if (!enabled(transition, marking)) return 0.0;
  const Transition& t = transitions_.at(transition.index);
  double value = t.base_rate;
  if (t.rate_factor) value *= t.rate_factor(marking);
  if (!(value >= 0.0) || !std::isfinite(value))
    throw ModelError("Srn: rate function of '" + t.name +
                     "' produced an invalid value");
  return value;
}

Marking Srn::fire(TransitionId transition, const Marking& marking) const {
  if (!enabled(transition, marking))
    throw ModelError("Srn::fire: transition not enabled");
  const Transition& t = transitions_.at(transition.index);
  Marking next = marking;
  for (const Arc& arc : t.inputs) next[arc.place] -= arc.multiplicity;
  for (const Arc& arc : t.outputs) next[arc.place] += arc.multiplicity;
  return next;
}

double Srn::reward(const Marking& marking) const {
  if (reward_function_) {
    const double value = reward_function_(marking);
    if (!(value >= 0.0) || !std::isfinite(value))
      throw ModelError("Srn: reward function produced an invalid value");
    return value;
  }
  double value = 0.0;
  for (std::size_t i = 0; i < places_.size(); ++i)
    value += places_[i].reward_per_token * marking[i];
  return value;
}

}  // namespace csrl
