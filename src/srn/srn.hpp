// Stochastic reward nets (SRNs), our stand-in for SPNP [6].
//
// The paper models its case study (Figure 2) as an SRN: a stochastic
// Petri net whose exponential transitions may have marking-dependent
// rates, guards and inhibitor arcs, extended with a reward function over
// markings.  Generating the reachability graph of an SRN yields exactly
// the labelled Markov reward model the checker consumes; place names
// double as atomic propositions (a proposition holds in a marking iff the
// place is non-empty).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace csrl {

/// A marking: token count per place, indexed by place id.
using Marking = std::vector<std::uint32_t>;

/// Identifier handles returned by Srn::add_place / add_transition.
struct PlaceId {
  std::size_t index;
};
struct TransitionId {
  std::size_t index;
};

/// Optional marking-dependent rate multiplier and enabling guard.
using RateFunction = std::function<double(const Marking&)>;
using GuardFunction = std::function<bool(const Marking&)>;

/// A stochastic reward net under construction.
class Srn {
 public:
  /// Add a place with initial token count.
  PlaceId add_place(std::string name, std::uint32_t initial_tokens = 0);

  /// Add an exponential transition with base rate (per time unit).
  TransitionId add_transition(std::string name, double rate);

  /// Add an *immediate* transition with the given weight.  Immediate
  /// transitions fire in zero time and preempt every timed transition;
  /// when several are enabled they race by normalised weight.  Markings
  /// enabling an immediate transition ("vanishing markings") are
  /// eliminated during reachability-graph generation, exactly as SPNP
  /// does.
  TransitionId add_immediate_transition(std::string name, double weight);

  /// Impulse reward earned whenever `transition` fires (default 0); fed
  /// into the generated MRM's impulse-reward structure.  Impulses of
  /// immediate transitions accumulate along the vanishing chain.
  void set_transition_impulse(TransitionId transition, double impulse);

  /// Firing priority of an immediate transition (default 0).  In a
  /// vanishing marking only the enabled immediate transitions of the
  /// *highest* priority race by weight, as in SPNP.  Throws for timed
  /// transitions.
  void set_priority(TransitionId transition, int priority);

  /// Arc from place to transition: `transition` needs `multiplicity`
  /// tokens in `place` and consumes them when firing.
  void add_input_arc(TransitionId transition, PlaceId place,
                     std::uint32_t multiplicity = 1);

  /// Arc from transition to place: firing deposits `multiplicity` tokens.
  void add_output_arc(TransitionId transition, PlaceId place,
                      std::uint32_t multiplicity = 1);

  /// Inhibitor arc: `transition` is disabled while `place` holds at least
  /// `multiplicity` tokens.
  void add_inhibitor_arc(TransitionId transition, PlaceId place,
                         std::uint32_t multiplicity = 1);

  /// Extra enabling predicate evaluated on the marking.
  void set_guard(TransitionId transition, GuardFunction guard);

  /// Marking-dependent rate multiplier; the effective rate is
  /// base_rate * factor(marking).
  void set_rate_function(TransitionId transition, RateFunction factor);

  /// Reward rate contributed by each token in `place` (rewards of a
  /// marking add up over places, as in the paper's Table 1).
  void set_place_reward(PlaceId place, double reward_per_token);

  /// Overrides the additive per-place scheme with an arbitrary
  /// marking-dependent reward rate.
  void set_reward_function(std::function<double(const Marking&)> reward);

  // -- Introspection used by the reachability generator -------------------
  std::size_t num_places() const { return places_.size(); }
  std::size_t num_transitions() const { return transitions_.size(); }
  const std::string& place_name(PlaceId p) const { return places_[p.index].name; }
  const std::string& transition_name(TransitionId t) const {
    return transitions_[t.index].name;
  }
  Marking initial_marking() const;

  /// Is `transition` enabled in `marking` (input arcs, inhibitors, guard)?
  bool enabled(TransitionId transition, const Marking& marking) const;

  /// True if `transition` was added with add_immediate_transition.
  bool is_immediate(TransitionId transition) const;

  /// The firing weight of an immediate transition in `marking` (base
  /// weight times the rate function; 0 if disabled).  Throws for timed
  /// transitions.
  double weight(TransitionId transition, const Marking& marking) const;

  /// Impulse reward of a transition (0 by default).
  double transition_impulse(TransitionId transition) const;

  /// Priority of an immediate transition (0 by default).
  int priority(TransitionId transition) const;

  /// Effective firing rate in `marking` (0 if disabled).  Throws for
  /// immediate transitions — they have no rate.
  double rate(TransitionId transition, const Marking& marking) const;

  /// Successor marking (requires enabled()).
  Marking fire(TransitionId transition, const Marking& marking) const;

  /// Reward rate of a marking.
  double reward(const Marking& marking) const;

 private:
  struct Arc {
    std::size_t place;
    std::uint32_t multiplicity;
  };

  struct Place {
    std::string name;
    std::uint32_t initial_tokens;
    double reward_per_token = 0.0;
  };

  struct Transition {
    std::string name;
    double base_rate;  // rate for timed, weight for immediate transitions
    bool immediate = false;
    double impulse = 0.0;
    int priority = 0;
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
    std::vector<Arc> inhibitors;
    GuardFunction guard;       // optional
    RateFunction rate_factor;  // optional
  };

  std::vector<Place> places_;
  std::vector<Transition> transitions_;
  std::function<double(const Marking&)> reward_function_;  // optional
};

}  // namespace csrl
