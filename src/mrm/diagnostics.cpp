#include "mrm/diagnostics.hpp"

#include <sstream>

#include "ctmc/graph.hpp"

namespace csrl {

ModelDiagnostics diagnose(const Mrm& model) {
  const std::size_t n = model.num_states();
  ModelDiagnostics d;
  d.num_states = n;
  d.num_transitions = model.rates().nnz();
  d.unreachable = StateSet(n);
  d.deadlocks = StateSet(n);
  if (n == 0) return d;

  StateSet initial_support(n);
  for (std::size_t s = 0; s < n; ++s)
    if (model.initial_distribution()[s] > 0.0) initial_support.insert(s);
  d.unreachable = forward_reachable(model.rates(), initial_support).complement();

  double min_positive = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    const double exit = model.chain().exit_rate(s);
    if (exit == 0.0) {
      d.deadlocks.insert(s);
    } else if (min_positive == 0.0 || exit < min_positive) {
      min_positive = exit;
    }
    if (model.reward(s) == 0.0) ++d.zero_reward_states;
  }
  d.max_exit_rate = model.chain().max_exit_rate();
  d.min_positive_exit_rate = min_positive;
  d.stiffness = min_positive > 0.0 ? d.max_exit_rate / min_positive : 0.0;

  d.num_bsccs = bottom_sccs(model.rates()).size();
  d.irreducible = d.num_bsccs == 1 && d.unreachable.empty() &&
                  bottom_sccs(model.rates()).front().count() == n;

  d.max_reward = model.max_reward();
  d.has_impulse_rewards = model.has_impulse_rewards();
  return d;
}

std::string ModelDiagnostics::summary() const {
  std::ostringstream out;
  out << "states: " << num_states << ", transitions: " << num_transitions
      << "\n";
  out << "reachability: "
      << (unreachable.empty()
              ? std::string("all states reachable")
              : std::to_string(unreachable.count()) +
                    " unreachable state(s) " + unreachable.to_string())
      << "\n";
  out << "absorbing states: "
      << (deadlocks.empty() ? std::string("none") : deadlocks.to_string())
      << "\n";
  out << "bottom SCCs: " << num_bsccs
      << (irreducible ? " (irreducible chain)" : "") << "\n";
  out << "exit rates: max " << max_exit_rate << ", min positive "
      << min_positive_exit_rate << " (stiffness " << stiffness << ")\n";
  out << "rewards: max rate " << max_reward << ", " << zero_reward_states
      << " zero-reward state(s)"
      << (has_impulse_rewards ? ", impulse rewards present" : "") << "\n";
  return out.str();
}

}  // namespace csrl
