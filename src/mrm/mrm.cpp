#include "mrm/mrm.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "matrix/vector_ops.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace csrl {

namespace {

std::vector<double> point_mass(std::size_t n, std::size_t state) {
  if (state >= n) throw ModelError("Mrm: initial state out of range");
  std::vector<double> alpha(n, 0.0);
  alpha[state] = 1.0;
  return alpha;
}

void validate(const Ctmc& chain, const std::vector<double>& rewards,
              const Labelling& labelling, const std::vector<double>& initial) {
  const std::size_t n = chain.num_states();
  if (rewards.size() != n) throw ModelError("Mrm: reward vector size mismatch");
  for (std::size_t s = 0; s < n; ++s)
    if (!(rewards[s] >= 0.0) || !std::isfinite(rewards[s]))
      throw ModelError("Mrm: reward of state " + std::to_string(s) +
                       " must be finite and >= 0");
  if (labelling.num_states() != n)
    throw ModelError("Mrm: labelling universe size mismatch");
  if (initial.size() != n)
    throw ModelError("Mrm: initial distribution size mismatch");
  for (double a : initial)
    if (!(a >= 0.0) || !std::isfinite(a))
      throw ModelError("Mrm: initial distribution entries must be >= 0");
  if (n > 0 && std::abs(sum(initial) - 1.0) > 1e-9)
    throw ModelError("Mrm: initial distribution must sum to 1");
}

}  // namespace

Mrm::Mrm(Ctmc chain, std::vector<double> rewards, Labelling labelling,
         std::vector<double> initial)
    : chain_(std::move(chain)),
      rewards_(std::move(rewards)),
      labelling_(std::move(labelling)),
      initial_(std::move(initial)) {
  validate(chain_, rewards_, labelling_, initial_);
}

Mrm::Mrm(Ctmc chain, std::vector<double> rewards, Labelling labelling,
         std::size_t initial_state)
    : chain_(std::move(chain)),
      rewards_(std::move(rewards)),
      labelling_(std::move(labelling)),
      initial_(point_mass(chain_.num_states(), initial_state)) {
  validate(chain_, rewards_, labelling_, initial_);
}

Mrm Mrm::with_impulses(CsrMatrix impulses) const {
  const std::size_t n = num_states();
  if (impulses.rows() != n || impulses.cols() != n)
    throw ModelError("Mrm::with_impulses: impulse matrix must be " +
                     std::to_string(n) + "x" + std::to_string(n));
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& e : impulses.row(s)) {
      if (!(e.value >= 0.0) || !std::isfinite(e.value))
        throw ModelError("Mrm::with_impulses: impulses must be finite and >= 0");
      if (rates().at(s, e.col) <= 0.0)
        throw ModelError(
            "Mrm::with_impulses: impulse on (" + std::to_string(s) + ", " +
            std::to_string(e.col) + ") has no underlying transition");
    }
  }
  Mrm copy = *this;
  copy.impulses_ = std::move(impulses);
  return copy;
}

double Mrm::max_reward() const {
  double best = 0.0;
  for (double r : rewards_) best = std::max(best, r);
  return best;
}

std::vector<double> Mrm::distinct_rewards() const {
  std::vector<double> values = rewards_;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::uint64_t Mrm::fingerprint() const {
  using hashing::mix;
  const std::size_t n = num_states();
  std::uint64_t h = hashing::kOffset;
  h = mix(h, static_cast<std::uint64_t>(n));
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& e : rates().row(s)) {
      h = mix(h, static_cast<std::uint64_t>(s));
      h = mix(h, static_cast<std::uint64_t>(e.col));
      h = mix(h, e.value);
    }
    h = mix(h, rewards_[s]);
    h = mix(h, initial_[s]);
  }
  h = mix(h, static_cast<std::uint64_t>(impulses_.nnz()));
  if (impulses_.nnz() > 0) {
    for (std::size_t s = 0; s < n; ++s) {
      for (const auto& e : impulses_.row(s)) {
        h = mix(h, static_cast<std::uint64_t>(s));
        h = mix(h, static_cast<std::uint64_t>(e.col));
        h = mix(h, e.value);
      }
    }
  }
  // Propositions in registration order, so relabelled models (same sets,
  // different names or order) fingerprint differently — exactly the
  // discipline Sat sets require, since they are computed from names.
  for (const std::string& prop : labelling_.propositions()) {
    h = mix(h, prop);
    for (std::size_t s : labelling_.states_with(prop).members())
      h = mix(h, static_cast<std::uint64_t>(s));
  }
  return h;
}

std::size_t Mrm::initial_state() const {
  std::size_t found = num_states();
  for (std::size_t s = 0; s < num_states(); ++s) {
    if (initial_[s] == 0.0) continue;
    if (initial_[s] == 1.0 && found == num_states()) {
      found = s;
    } else {
      throw ModelError("Mrm: initial distribution is not a point mass");
    }
  }
  if (found == num_states())
    throw ModelError("Mrm: initial distribution is not a point mass");
  return found;
}

}  // namespace csrl
