#include "mrm/transform.hpp"

#include <cmath>
#include <string>

#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace csrl {

Mrm make_absorbing(const Mrm& model, const StateSet& absorb, bool zero_reward) {
  const std::size_t n = model.num_states();
  if (absorb.size() != n)
    throw ModelError("make_absorbing: universe size mismatch");

  CsrBuilder rates(n, n);
  for (std::size_t s = 0; s < n; ++s) {
    if (absorb.contains(s)) continue;
    for (const auto& e : model.rates().row(s)) rates.add(s, e.col, e.value);
  }

  std::vector<double> rewards = model.rewards();
  if (zero_reward)
    for (std::size_t s : absorb.members()) rewards[s] = 0.0;

  Mrm result(Ctmc(rates.build()), std::move(rewards), model.labelling(),
             model.initial_distribution());
  if (model.has_impulse_rewards()) {
    // Impulses survive on the transitions that survive.
    CsrBuilder impulses(n, n);
    for (std::size_t s = 0; s < n; ++s) {
      if (absorb.contains(s)) continue;
      for (const auto& e : model.impulse_rewards().row(s))
        impulses.add(s, e.col, e.value);
    }
    result = result.with_impulses(impulses.build());
  }
  return result;
}

UntilReduction reduce_for_until(const Mrm& model, const StateSet& phi,
                                const StateSet& psi) {
  const std::size_t n = model.num_states();
  if (phi.size() != n || psi.size() != n)
    throw ModelError("reduce_for_until: universe size mismatch");

  // Transient states: Phi-states that are not Psi-states.  Everything in
  // Psi is amalgamated into "success", everything satisfying neither into
  // "fail".
  const StateSet transient = phi - psi;
  const std::vector<std::size_t> transient_states = transient.members();
  const std::size_t num_transient = transient_states.size();
  const std::size_t success = num_transient;
  const std::size_t fail = num_transient + 1;
  const std::size_t reduced_n = num_transient + 2;

  std::vector<std::size_t> state_map(n, fail);
  for (std::size_t i = 0; i < num_transient; ++i)
    state_map[transient_states[i]] = i;
  for (std::size_t s : psi.members()) state_map[s] = success;

  CsrBuilder rates(reduced_n, reduced_n);
  std::vector<double> rewards(reduced_n, 0.0);
  for (std::size_t i = 0; i < num_transient; ++i) {
    const std::size_t s = transient_states[i];
    rewards[i] = model.reward(s);
    for (const auto& e : model.rates().row(s))
      rates.add(i, state_map[e.col], e.value);
  }

  std::vector<double> initial(reduced_n, 0.0);
  for (std::size_t s = 0; s < n; ++s)
    initial[state_map[s]] += model.initial_distribution()[s];

  Labelling labelling(reduced_n);
  labelling.add_label(success, "success");
  labelling.add_label(fail, "fail");

  UntilReduction result;
  result.model = Mrm(Ctmc(rates.build()), std::move(rewards),
                     std::move(labelling), std::move(initial));
  result.success_state = success;
  result.fail_state = fail;

  if (model.has_impulse_rewards()) {
    // Impulses among the surviving transitions carry over.  Arcs that are
    // amalgamated into one reduced transition must agree on their impulse
    // (a rate-weighted average would change the *distribution* of the
    // accumulated reward, not just its mean); arcs into "fail" may differ
    // freely because failed paths never count.
    CsrBuilder impulses(reduced_n, reduced_n);
    for (std::size_t i = 0; i < num_transient; ++i) {
      const std::size_t s = transient_states[i];
      // reduced target -> impulse seen so far (kUnset = none yet).
      constexpr double kUnset = -1.0;
      std::vector<double> seen(reduced_n, kUnset);
      for (const auto& e : model.rates().row(s)) {
        const std::size_t to = state_map[e.col];
        const double impulse = model.impulse(s, e.col);
        if (to == fail) continue;
        if (seen[to] == kUnset) {
          seen[to] = impulse;
        } else if (seen[to] != impulse) {
          throw ModelError(
              "reduce_for_until: transitions amalgamated into one reduced arc "
              "carry different impulse rewards (source state " +
              std::to_string(s) + "); such models cannot be reduced exactly");
        }
      }
      for (std::size_t to = 0; to < reduced_n; ++to)
        if (seen[to] != kUnset && seen[to] > 0.0)
          impulses.add(i, to, seen[to]);
    }
    result.model = result.model.with_impulses(impulses.build());
  }

  result.state_map = std::move(state_map);
  return result;
}

Mrm permute_states(const Mrm& model, std::span<const std::size_t> perm) {
  const std::size_t n = model.num_states();
  if (perm.size() != n)
    throw ModelError("permute_states: permutation size mismatch");
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> inverse(n, kUnset);
  for (std::size_t new_index = 0; new_index < n; ++new_index) {
    const std::size_t old_index = perm[new_index];
    if (old_index >= n || inverse[old_index] != kUnset)
      throw ModelError("permute_states: not a permutation of the states");
    inverse[old_index] = new_index;
  }

  CsrBuilder rates(n, n);
  std::vector<double> rewards(n, 0.0);
  std::vector<double> initial(n, 0.0);
  for (std::size_t new_index = 0; new_index < n; ++new_index) {
    const std::size_t old_index = perm[new_index];
    rewards[new_index] = model.reward(old_index);
    initial[new_index] = model.initial_distribution()[old_index];
    for (const auto& e : model.rates().row(old_index))
      rates.add(new_index, inverse[e.col], e.value);
  }

  Labelling labelling(n);
  for (const std::string& name : model.labelling().propositions()) {
    labelling.add_proposition(name);
    for (std::size_t s : model.labelling().states_with(name).members())
      labelling.add_label(inverse[s], name);
  }

  Mrm result(Ctmc(rates.build()), std::move(rewards), std::move(labelling),
             std::move(initial));
  if (model.has_impulse_rewards()) {
    CsrBuilder impulses(n, n);
    for (std::size_t new_index = 0; new_index < n; ++new_index) {
      const std::size_t old_index = perm[new_index];
      for (const auto& e : model.impulse_rewards().row(old_index))
        impulses.add(new_index, inverse[e.col], e.value);
    }
    result = result.with_impulses(impulses.build());
  }
  return result;
}

Mrm dual(const Mrm& model) {
  CSRL_SPAN("mrm/dual");
  CSRL_COUNT("mrm/dual_transforms", 1);
  if (model.has_impulse_rewards())
    throw ModelError(
        "dual: the time/reward duality of [4, Thm 1] is a rate-reward "
        "result; impulse rewards have no time-dimension counterpart");
  const std::size_t n = model.num_states();
  CsrBuilder rates(n, n);
  std::vector<double> rewards(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const double rho = model.reward(s);
    if (model.chain().is_absorbing(s)) {
      // No outgoing transitions to rescale; the dual reward is 1/rho when
      // defined, and 0 for a reward-0 absorbing trap (see header).
      rewards[s] = rho > 0.0 ? 1.0 / rho : 0.0;
      continue;
    }
    if (!(rho > 0.0))
      throw ModelError("dual: non-absorbing state " + std::to_string(s) +
                       " has zero reward; the time/reward duality of [4, "
                       "Thm 1] requires a positive reward structure");
    rewards[s] = 1.0 / rho;
    for (const auto& e : model.rates().row(s)) rates.add(s, e.col, e.value / rho);
  }
  Mrm dualized(Ctmc(rates.build()), std::move(rewards), model.labelling(),
               model.initial_distribution());
  // Algebraic postcondition of [4, Thm 1]: multiplying the dual rates and
  // the dual rewards back by rho(s) must recover the original model —
  // M and M^ agree, entry by entry, up to one rounding of the division.
  CSRL_CONTRACT(
      [&] {
        for (std::size_t s = 0; s < n; ++s) {
          const double rho = model.reward(s);
          if (model.chain().is_absorbing(s)) {
            if (!dualized.chain().is_absorbing(s)) return false;
            continue;
          }
          if (std::abs(dualized.reward(s) * rho - 1.0) > 1e-12) return false;
          for (const auto& e : model.rates().row(s)) {
            const double back = dualized.rates().at(s, e.col) * rho;
            if (std::abs(back - e.value) > 1e-12 * std::abs(e.value))
              return false;
          }
        }
        return true;
      }(),
      "dual: M^ is not the [4, Thm 1] dual of M (rho * R^ != R or "
      "rho * rho^ != 1 on some state)");
  return dualized;
}

}  // namespace csrl
