#include "mrm/lumping.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <span>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace csrl {

namespace {

/// One outflow of a state under the current partition: the reached block,
/// the impulse carried by the arc(s), and their summed rate.  Signatures
/// are slices of a flat arena sized by the rate matrix's row extents, so
/// the parallel signing pass writes disjoint memory without coordination.
struct SigEntry {
  std::size_t block;
  double impulse;
  double rate;
};

inline bool sig_entry_less(const SigEntry& a, const SigEntry& b) {
  if (a.block != b.block) return a.block < b.block;
  if (a.impulse != b.impulse) return a.impulse < b.impulse;
  // Rates only tie-break duplicates of one (block, impulse) key before
  // compaction, fixing the floating-point summation order independently
  // of the column order — part of the determinism argument (DESIGN.md
  // section 3j).
  return a.rate < b.rate;
}

/// The refiner's parallel kernel: compute the outflow signatures of the
/// states worklist[begin..end) against the current partition.  Each state
/// gathers (block_of[col], impulse, rate) triples into its own arena
/// slice, sorts them, compacts equal (block, impulse) keys by summing
/// rates in sorted order, and records the compacted length and an FNV-1a
/// hash.  Pure per-state work into disjoint slots: no shared mutable
/// state, hence no locks and bitwise-identical output at any thread
/// count.  Registered as a hot root with scripts/analyze — keep it free
/// of allocation, locking, throwing and IO.
void sign_states(const CsrMatrix& rates, const CsrMatrix* impulses,
                 const std::vector<std::size_t>& block_of,
                 const std::vector<std::size_t>& worklist, std::size_t begin,
                 std::size_t end, const std::vector<std::size_t>& offsets,
                 SigEntry* entries, std::size_t* sig_len,
                 std::uint64_t* sig_hash) {
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t s = worklist[i];
    const std::span<const CsrEntry> row = rates.row_unchecked(s);
    SigEntry* const slice = entries + offsets[s];
    std::size_t k = 0;
    if (impulses == nullptr) {
      for (const CsrEntry& e : row) {
        slice[k].block = block_of[e.col];
        slice[k].impulse = 0.0;
        slice[k].rate = e.value;
        ++k;
      }
    } else {
      // Merge-walk the impulse row in lockstep with the rate row: both
      // are column-sorted, and every impulse sits on a positive-rate arc.
      const std::span<const CsrEntry> irow = impulses->row_unchecked(s);
      std::size_t j = 0;
      for (const CsrEntry& e : row) {
        while (j < irow.size() && irow[j].col < e.col) ++j;
        const bool hit = j < irow.size() && irow[j].col == e.col;
        slice[k].block = block_of[e.col];
        slice[k].impulse = hit ? irow[j].value : 0.0;
        slice[k].rate = e.value;
        ++k;
      }
    }
    std::sort(slice, slice + k, sig_entry_less);
    std::size_t m = 0;
    for (std::size_t a = 0; a < k;) {
      std::size_t b = a + 1;
      double sum = slice[a].rate;
      while (b < k && slice[b].block == slice[a].block &&
             slice[b].impulse == slice[a].impulse) {
        sum += slice[b].rate;
        ++b;
      }
      slice[m].block = slice[a].block;
      slice[m].impulse = slice[a].impulse;
      slice[m].rate = sum;
      ++m;
      a = b;
    }
    sig_len[s] = m;
    std::uint64_t h = hashing::kOffset;
    for (std::size_t a = 0; a < m; ++a) {
      h = hashing::mix(h, static_cast<std::uint64_t>(slice[a].block));
      h = hashing::mix(h, slice[a].impulse);
      h = hashing::mix(h, slice[a].rate);
    }
    sig_hash[s] = h;
  }
}

/// Exact signature comparison behind the hash prefilter — hash equality
/// alone must never merge states (collision soundness).
bool signatures_equal(const SigEntry* a, const SigEntry* b, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    if (a[i].block != b[i].block || a[i].impulse != b[i].impulse ||
        a[i].rate != b[i].rate)
      return false;
  }
  return true;
}

}  // namespace

bool resolve_lump(std::optional<bool> requested) noexcept {
  if (requested.has_value()) return *requested;
  const char* env = std::getenv("CSRL_LUMP");
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || parsed > 1) {
    std::fprintf(stderr,
                 "csrl: CSRL_LUMP must be 0 or 1, got \"%s\"; lumping stays "
                 "off\n",
                 env);
    return false;
  }
  return parsed == 1;
}

LumpingResult lump(const Mrm& model) {
  const WallTimer timer;
  const std::size_t n = model.num_states();
  LumpingResult result;
  result.block_of.assign(n, 0);
  if (n == 0) {
    result.quotient = model;
    return result;
  }
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t>& block_of = result.block_of;
  std::size_t num_blocks = 1;

  // Initial partition: states agreeing on labels and reward rate.  Split
  // by one proposition at a time (exact, no label-vector hashing); within
  // each block the side of the first member keeps the block id, the other
  // side gets a fresh id — deterministic by state order.
  for (const std::string& ap : model.labelling().propositions()) {
    const StateSet& holders = model.labelling().states_with(ap);
    std::vector<std::uint8_t> seen(num_blocks, 0);  // 0 unseen, 1 out, 2 in
    std::vector<std::size_t> other(num_blocks, kNone);
    const std::size_t old_blocks = num_blocks;
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t b = block_of[s];
      if (b >= old_blocks) continue;  // unreachable; guards the invariant
      const bool in = holders.contains(s);
      if (seen[b] == 0) {
        seen[b] = in ? 2 : 1;
        continue;
      }
      if (in != (seen[b] == 2)) {
        if (other[b] == kNone) other[b] = num_blocks++;
        block_of[s] = other[b];
      }
    }
  }
  {
    // Multiway split by reward rate: first-seen value per block keeps the
    // id, later values append in first-occurrence order.
    std::map<std::pair<std::size_t, std::uint64_t>, std::size_t> index;
    std::vector<std::uint8_t> seen(num_blocks, 0);
    const std::size_t old_blocks = num_blocks;
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t b = block_of[s];
      if (b >= old_blocks) continue;
      const auto key =
          std::make_pair(b, std::bit_cast<std::uint64_t>(model.reward(s)));
      const auto it = index.find(key);
      if (it != index.end()) {
        block_of[s] = it->second;
        continue;
      }
      if (seen[b] == 0) {
        seen[b] = 1;
        index.emplace(key, b);
      } else {
        index.emplace(key, num_blocks);
        block_of[s] = num_blocks++;
      }
    }
  }

  // Refinement state: member lists per block (kept in ascending state
  // order, so front() is the minimal representative), the flat signature
  // arena indexed by the rate matrix's row extents, and the transposed
  // rates for predecessor-driven dirtying.
  const CsrMatrix& rates = model.rates();
  const CsrMatrix* impulses =
      model.has_impulse_rewards() ? &model.impulse_rewards() : nullptr;
  const CsrMatrix transpose = rates.transposed();

  std::vector<std::vector<std::size_t>> members(num_blocks);
  for (std::size_t s = 0; s < n; ++s) members[block_of[s]].push_back(s);

  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t s = 0; s < n; ++s)
    offsets[s + 1] = offsets[s] + rates.row_unchecked(s).size();
  std::vector<SigEntry> entries(offsets[n]);
  std::vector<std::size_t> sig_len(n, 0);
  std::vector<std::uint64_t> sig_hash(n, 0);

  const auto sign_worklist = [&](const std::vector<std::size_t>& worklist) {
    parallel_for(0, worklist.size(), /*grain=*/64,
                 [&](std::size_t lo, std::size_t hi) {
                   sign_states(rates, impulses, block_of, worklist, lo, hi,
                               offsets, entries.data(), sig_len.data(),
                               sig_hash.data());
                 });
  };

  LumpingStats& stats = result.stats;
  std::vector<std::size_t> dirty_blocks;
  dirty_blocks.reserve(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b)
    if (members[b].size() > 1) dirty_blocks.push_back(b);

  std::vector<std::size_t> worklist;
  std::vector<std::size_t> moved;
  std::vector<std::size_t> group_of;   // per member of the block in hand
  std::vector<std::size_t> group_rep;  // exemplar state per group
  std::vector<std::size_t> group_id;   // block id per group

  while (!dirty_blocks.empty()) {
    ++stats.sweeps;
    // Re-sign every member of every dirty block against the current
    // partition, in parallel.  Singleton blocks never split and are kept
    // off the worklist; the quotient pass below re-signs representatives
    // against the final partition anyway.
    worklist.clear();
    for (const std::size_t b : dirty_blocks)
      worklist.insert(worklist.end(), members[b].begin(), members[b].end());
    sign_worklist(worklist);
    stats.states_resigned += worklist.size();
    for (const std::size_t s : worklist)
      stats.signature_entries += offsets[s + 1] - offsets[s];

    // Split sequentially in ascending block order: the group of the first
    // member keeps the block id, later groups take fresh ids in
    // first-occurrence order.  All decisions follow state order, so the
    // numbering never depends on the thread count.
    moved.clear();
    for (const std::size_t b : dirty_blocks) {
      std::vector<std::size_t> mem = std::move(members[b]);
      group_rep.clear();
      group_id.clear();
      group_of.assign(mem.size(), 0);
      group_rep.push_back(mem.front());
      group_id.push_back(b);
      for (std::size_t i = 1; i < mem.size(); ++i) {
        const std::size_t s = mem[i];
        std::size_t g = kNone;
        for (std::size_t c = 0; c < group_rep.size(); ++c) {
          const std::size_t r = group_rep[c];
          if (sig_hash[s] == sig_hash[r] && sig_len[s] == sig_len[r] &&
              signatures_equal(entries.data() + offsets[s],
                               entries.data() + offsets[r], sig_len[s])) {
            g = c;
            break;
          }
        }
        if (g == kNone) {
          g = group_rep.size();
          group_rep.push_back(s);
          group_id.push_back(num_blocks++);
          ++stats.splits;
        }
        group_of[i] = g;
      }
      if (group_rep.size() == 1) {
        members[b] = std::move(mem);
        continue;
      }
      std::vector<std::vector<std::size_t>> lists(group_rep.size());
      for (std::size_t i = 0; i < mem.size(); ++i)
        lists[group_of[i]].push_back(mem[i]);
      for (std::size_t i = 0; i < mem.size(); ++i) {
        if (group_of[i] == 0) continue;
        block_of[mem[i]] = group_id[group_of[i]];
        moved.push_back(mem[i]);
      }
      members[b] = std::move(lists.front());
      for (std::size_t g = 1; g < lists.size(); ++g)
        members.push_back(std::move(lists[g]));  // index == group_id[g]
    }

    // Next worklist: a state's signature can only change when one of its
    // successors changed block, so dirty exactly the blocks holding a
    // predecessor of a moved state.
    std::vector<std::uint8_t> dirty(num_blocks, 0);
    for (const std::size_t u : moved)
      for (const CsrEntry& e : transpose.row_unchecked(u))
        dirty[block_of[e.col]] = 1;
    dirty_blocks.clear();
    for (std::size_t b = 0; b < num_blocks; ++b)
      if (dirty[b] != 0 && members[b].size() > 1) dirty_blocks.push_back(b);
  }
  result.num_blocks = num_blocks;

  // Build the quotient from one representative per block (lumpability
  // guarantees representative-independence of everything we read off).
  // One more parallel pass signs the representatives against the *final*
  // partition — stored signatures may predate later splits.
  worklist.clear();
  worklist.reserve(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b)
    worklist.push_back(members[b].front());
  sign_worklist(worklist);

  CsrBuilder quotient_rates(num_blocks, num_blocks);
  CsrBuilder quotient_impulses(num_blocks, num_blocks);
  bool any_impulse = false;
  std::vector<double> rewards(num_blocks, 0.0);
  Labelling labelling(num_blocks);
  std::vector<double> initial(num_blocks, 0.0);

  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t rep = members[b].front();
    rewards[b] = model.reward(rep);
    for (const std::string& ap : model.labelling().labels_of(rep))
      labelling.add_label(b, ap);

    const SigEntry* const slice = entries.data() + offsets[rep];
    const std::size_t len = sig_len[rep];
    // Equal (block, impulse) keys were merged, so adjacent entries into
    // one block witness arcs with distinct impulses — unrepresentable by
    // a single quotient arc.
    for (std::size_t i = 0; i + 1 < len; ++i) {
      if (slice[i].block == slice[i + 1].block)
        throw ModelError(
            "lump: state " + std::to_string(rep) +
            " has transitions with different impulse rewards into one "
            "block; the quotient cannot represent them exactly");
    }
    for (std::size_t i = 0; i < len; ++i) {
      quotient_rates.add(b, slice[i].block, slice[i].rate);
      if (slice[i].impulse > 0.0) {
        quotient_impulses.add(b, slice[i].block, slice[i].impulse);
        any_impulse = true;
      }
    }
  }
  // Preserve propositions that exist but hold nowhere.
  for (const std::string& ap : model.labelling().propositions())
    labelling.add_proposition(ap);

  for (std::size_t s = 0; s < n; ++s)
    initial[block_of[s]] += model.initial_distribution()[s];

  result.quotient = Mrm(Ctmc(quotient_rates.build()), std::move(rewards),
                        std::move(labelling), std::move(initial));
  if (any_impulse)
    result.quotient = result.quotient.with_impulses(quotient_impulses.build());

  stats.wall_seconds = timer.seconds();
  CSRL_COUNT("lump/runs", 1);
  CSRL_COUNT("lump/sweeps", stats.sweeps);
  CSRL_COUNT("lump/splits", stats.splits);
  CSRL_COUNT("lump/states_resigned", stats.states_resigned);
  CSRL_COUNT("lump/signature_entries", stats.signature_entries);
  return result;
}

}  // namespace csrl
