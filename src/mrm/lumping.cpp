#include "mrm/lumping.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "util/error.hpp"

namespace csrl {

namespace {

/// Signature of a state under the current partition: per reached block and
/// impulse value, the total rate (sorted for canonical comparison).
struct Outflow {
  std::size_t block;
  double impulse;
  double rate;

  bool operator<(const Outflow& other) const {
    if (block != other.block) return block < other.block;
    if (impulse != other.impulse) return impulse < other.impulse;
    return rate < other.rate;
  }
  bool operator==(const Outflow& other) const {
    return block == other.block && impulse == other.impulse &&
           rate == other.rate;
  }
};

std::vector<Outflow> signature(const Mrm& model, std::size_t state,
                               const std::vector<std::size_t>& block_of) {
  // Gather (block, impulse) -> summed rate.
  std::map<std::pair<std::size_t, double>, double> flows;
  for (const auto& e : model.rates().row(state))
    flows[{block_of[e.col], model.impulse(state, e.col)}] += e.value;
  std::vector<Outflow> out;
  out.reserve(flows.size());
  for (const auto& [key, rate] : flows)
    out.push_back({key.first, key.second, rate});
  return out;  // std::map iteration is already sorted by (block, impulse)
}

}  // namespace

LumpingResult lump(const Mrm& model) {
  const std::size_t n = model.num_states();
  LumpingResult result;
  result.block_of.assign(n, 0);
  if (n == 0) {
    result.quotient = model;
    return result;
  }

  // Initial partition: states agreeing on labels and reward rate.
  {
    std::map<std::pair<std::vector<std::string>, double>, std::size_t> index;
    for (std::size_t s = 0; s < n; ++s) {
      const auto key =
          std::make_pair(model.labelling().labels_of(s), model.reward(s));
      const auto [it, inserted] = index.emplace(key, index.size());
      result.block_of[s] = it->second;
    }
    result.num_blocks = index.size();
  }

  // Refine until stable: split blocks by outflow signature.
  while (true) {
    std::map<std::pair<std::size_t, std::vector<Outflow>>, std::size_t> index;
    std::vector<std::size_t> next(n, 0);
    for (std::size_t s = 0; s < n; ++s) {
      auto key = std::make_pair(result.block_of[s],
                                signature(model, s, result.block_of));
      const auto [it, inserted] = index.emplace(std::move(key), index.size());
      next[s] = it->second;
    }
    const bool stable = index.size() == result.num_blocks;
    result.block_of = std::move(next);
    result.num_blocks = index.size();
    if (stable) break;
  }

  // Build the quotient from one representative per block (lumpability
  // guarantees representative-independence of everything we read off).
  const std::size_t blocks = result.num_blocks;
  std::vector<std::size_t> representative(blocks, n);
  for (std::size_t s = n; s-- > 0;) representative[result.block_of[s]] = s;

  CsrBuilder rates(blocks, blocks);
  CsrBuilder impulses(blocks, blocks);
  bool any_impulse = false;
  std::vector<double> rewards(blocks, 0.0);
  Labelling labelling(blocks);
  std::vector<double> initial(blocks, 0.0);

  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t rep = representative[b];
    rewards[b] = model.reward(rep);
    for (const std::string& ap : model.labelling().labels_of(rep))
      labelling.add_label(b, ap);

    const std::vector<Outflow> flows = signature(model, rep, result.block_of);
    // Detect arcs that would merge distinct impulses into one quotient arc.
    for (std::size_t i = 0; i + 1 < flows.size(); ++i) {
      if (flows[i].block == flows[i + 1].block)
        throw ModelError(
            "lump: state " + std::to_string(rep) +
            " has transitions with different impulse rewards into one "
            "block; the quotient cannot represent them exactly");
    }
    for (const Outflow& flow : flows) {
      rates.add(b, flow.block, flow.rate);
      if (flow.impulse > 0.0) {
        impulses.add(b, flow.block, flow.impulse);
        any_impulse = true;
      }
    }
  }
  // Preserve propositions that exist but hold nowhere.
  for (const std::string& ap : model.labelling().propositions())
    labelling.add_proposition(ap);

  for (std::size_t s = 0; s < n; ++s)
    initial[result.block_of[s]] += model.initial_distribution()[s];

  result.quotient = Mrm(Ctmc(rates.build()), std::move(rewards),
                        std::move(labelling), std::move(initial));
  if (any_impulse)
    result.quotient = result.quotient.with_impulses(impulses.build());
  return result;
}

}  // namespace csrl
