// Ordinary lumpability (Markov bisimulation) for Markov reward models.
//
// Two states are bisimilar if they carry the same atomic propositions and
// reward rate and have, for every equivalence class C, the same total rate
// into C (with agreeing impulse rewards).  The quotient chain is again an
// MRM, and because the joint process (X_t, Y_t) of the paper's Section 4
// factors through the partition, every CSRL measure computed on the
// quotient equals the measure on the original model (the CSL analogue is
// classic; rate-reward equality extends it to the reward dimension).
//
// Lumping is *the* enabler for checking models with symmetric structure:
// k identical components produce ~2^k markings but only ~k+1 blocks.
// bench_ablation_lumping quantifies the effect.
#pragma once

#include <cstddef>
#include <vector>

#include "mrm/mrm.hpp"

namespace csrl {

/// Quotient model plus the projection onto it.
struct LumpingResult {
  Mrm quotient;
  /// block_of[s] is the quotient state of original state s.
  std::vector<std::size_t> block_of;
  std::size_t num_blocks = 0;
};

/// Compute the coarsest lumpable partition refining (labels, reward) and
/// build the quotient.  The quotient's initial distribution aggregates the
/// original one.  Throws ModelError if impulse rewards prevent an exact
/// quotient (two arcs with different impulses from one state into the same
/// block cannot be merged into a single quotient arc).
///
/// The partition is deliberately *self-loop preserving*: states must also
/// agree on their flow into their own block (kept as a self-loop of the
/// quotient).  A plain Markov-lumping quotient may erase intra-block jumps
/// that the CSRL next operator can observe; requiring agreement keeps
/// every operator of the logic exact at the cost of occasionally missing a
/// coarser partition.
LumpingResult lump(const Mrm& model);

}  // namespace csrl
