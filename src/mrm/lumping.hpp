// Ordinary lumpability (Markov bisimulation) for Markov reward models.
//
// Two states are bisimilar if they carry the same atomic propositions and
// reward rate and have, for every equivalence class C, the same total rate
// into C (with agreeing impulse rewards).  The quotient chain is again an
// MRM, and because the joint process (X_t, Y_t) of the paper's Section 4
// factors through the partition, every CSRL measure computed on the
// quotient equals the measure on the original model (the CSL analogue is
// classic; rate-reward equality extends it to the reward dimension).
//
// Lumping is *the* enabler for checking models with symmetric structure:
// k identical components produce ~2^k markings but only ~k+1 blocks.
// bench_ablation_lumping quantifies the effect.
//
// The refiner is signature-based (DESIGN.md section 3j): each dirty state
// gathers its (block, impulse, rate) outflow signature into a flat arena
// slot, signatures are hashed and compared exactly, and only blocks whose
// members' successors moved are revisited (predecessor-driven dirtying
// over the transposed rate matrix).  The signature pass runs on the shared
// ThreadPool; splitting is sequential and ordered, so block_of is bitwise
// identical at any thread count.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "mrm/mrm.hpp"

namespace csrl {

/// Work accounting of one lump() run, surfaced through the RunReport's
/// "lumping" section and the deterministic lump/* counters.
struct LumpingStats {
  /// Refinement sweeps until the partition stabilised (>= 1 on any
  /// non-empty model: the first sweep signs every state).
  std::size_t sweeps = 0;
  /// Blocks created beyond the initial (labels, reward) partition.
  std::size_t splits = 0;
  /// Signature computations across all sweeps (re-signed states counted
  /// once per sweep that touched them).
  std::size_t states_resigned = 0;
  /// Outflow entries gathered by those computations (the refiner's true
  /// work measure: one per transition of each re-signed state).
  std::size_t signature_entries = 0;
  /// Wall-clock of the whole lump() call.
  double wall_seconds = 0.0;
};

/// Quotient model plus the projection onto it.
struct LumpingResult {
  Mrm quotient;
  /// block_of[s] is the quotient state of original state s.
  std::vector<std::size_t> block_of;
  std::size_t num_blocks = 0;
  LumpingStats stats;
};

/// Compute the coarsest lumpable partition refining (labels, reward) and
/// build the quotient.  The quotient's initial distribution aggregates the
/// original one.  Throws ModelError if impulse rewards prevent an exact
/// quotient (two arcs with different impulses from one state into the same
/// block cannot be merged into a single quotient arc).
///
/// The partition is deliberately *self-loop preserving*: states must also
/// agree on their flow into their own block (kept as a self-loop of the
/// quotient).  A plain Markov-lumping quotient may erase intra-block jumps
/// that the CSRL next operator can observe; requiring agreement keeps
/// every operator of the logic exact at the cost of occasionally missing a
/// coarser partition.
LumpingResult lump(const Mrm& model);

/// Resolve the CheckOptions::lump knob: an explicit value wins; unset
/// falls back to the CSRL_LUMP environment variable ("0" or "1"), else
/// off.  Unlike resolve_rhs_block, a malformed environment value warns on
/// stderr and falls back to off instead of throwing — lumping is a
/// transparent optimisation and a typo in the environment must never turn
/// a correct run into an error.
bool resolve_lump(std::optional<bool> requested) noexcept;

}  // namespace csrl
