// Model sanity diagnostics.
//
// Modelling mistakes (unreachable fragments, accidental deadlocks, wildly
// stiff rates) surface as puzzling probabilities rather than errors.
// diagnose() collects the structural facts a user should look at before
// trusting the numbers, and summary() renders them for humans; the CLI
// exposes it as --diagnose.
#pragma once

#include <cstddef>
#include <string>

#include "mrm/mrm.hpp"
#include "util/state_set.hpp"

namespace csrl {

/// Structural facts about a model.
struct ModelDiagnostics {
  std::size_t num_states = 0;
  std::size_t num_transitions = 0;

  /// States that no path from the initial distribution's support reaches.
  StateSet unreachable;

  /// Absorbing states (no outgoing transition).  Often intended (goal or
  /// failure traps), sometimes a missing arc.
  StateSet deadlocks;

  /// Bottom strongly connected components; 1 with nothing unreachable
  /// means the chain is irreducible.
  std::size_t num_bsccs = 0;
  bool irreducible = false;

  double max_exit_rate = 0.0;
  double min_positive_exit_rate = 0.0;
  /// max/min positive exit rate — large values mean stiff models where
  /// uniformisation-based methods need many steps.
  double stiffness = 0.0;

  double max_reward = 0.0;
  std::size_t zero_reward_states = 0;
  bool has_impulse_rewards = false;

  /// Multi-line human-readable report.
  std::string summary() const;
};

/// Analyse `model` (graph searches and scans only; no numerics).
ModelDiagnostics diagnose(const Mrm& model);

}  // namespace csrl
