// Markov reward models (Section 2.1 of the paper).
//
// An MRM M = (S, R, rho) couples a CTMC with a state-based reward
// structure: sojourning t time units in state s earns reward rho(s) * t.
// Following the paper, the model also carries a fixed initial distribution
// alpha and an atomic-proposition labelling used by CSRL formulas.
//
// Extension (the paper's Section-6 outlook): optional transition-triggered
// *impulse rewards* iota(s, s') >= 0, earned instantaneously when the
// transition s -> s' fires (so the accumulated reward at the arrival
// instant already includes the impulse).  The discretisation and
// pseudo-Erlang engines and the simulator support them; Sericola's
// occupation-time recursion and the time/reward duality do not (they are
// rate-reward results), and report that clearly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/labelling.hpp"

namespace csrl {

/// A labelled Markov reward model with an initial distribution.
class Mrm {
 public:
  Mrm() = default;

  /// Assemble and validate a model.  Requirements: rewards are finite and
  /// non-negative with one entry per state; labelling universe matches;
  /// the initial distribution is non-negative and sums to 1 (within 1e-9).
  Mrm(Ctmc chain, std::vector<double> rewards, Labelling labelling,
      std::vector<double> initial);

  /// Convenience: point-mass initial distribution on `initial_state`.
  Mrm(Ctmc chain, std::vector<double> rewards, Labelling labelling,
      std::size_t initial_state);

  std::size_t num_states() const { return chain_.num_states(); }

  const Ctmc& chain() const { return chain_; }
  const CsrMatrix& rates() const { return chain_.rates(); }

  double reward(std::size_t s) const { return rewards_[s]; }
  const std::vector<double>& rewards() const { return rewards_; }

  /// Largest reward rate assigned to any state.
  double max_reward() const;

  /// Copy of this model with impulse rewards attached.  `impulses` must be
  /// n x n with finite non-negative entries, each sitting on a transition
  /// with positive rate.
  Mrm with_impulses(CsrMatrix impulses) const;

  /// True if any transition carries a positive impulse reward.
  bool has_impulse_rewards() const { return impulses_.nnz() > 0; }

  /// The impulse matrix (an empty n x n matrix when none were attached).
  const CsrMatrix& impulse_rewards() const { return impulses_; }

  /// iota(from, to); 0 where no impulse is attached.
  double impulse(std::size_t from, std::size_t to) const {
    return impulses_.nnz() == 0 ? 0.0 : impulses_.at(from, to);
  }

  /// Largest impulse on any transition (0 without impulses).
  double max_impulse() const { return impulses_.max_abs(); }

  /// The distinct reward values in increasing order.
  std::vector<double> distinct_rewards() const;

  const Labelling& labelling() const { return labelling_; }

  const std::vector<double>& initial_distribution() const { return initial_; }

  /// The unique initial state if the distribution is a point mass; throws
  /// ModelError otherwise.  Theorem 2 of the paper (and hence all three P3
  /// engines) is phrased for a point-mass alpha.
  std::size_t initial_state() const;

  /// Structural fingerprint of the full model — rate matrix, rewards,
  /// impulses, initial distribution and labelling, all entering through
  /// their bit patterns — so equal fingerprints identify models that are
  /// bit-for-bit the same input to every checking pipeline.  Keys the
  /// Sat-subformula cache (core/batch.hpp) together with Formula::hash().
  /// O(nnz + states * labels); not cached, callers hold on to the value.
  std::uint64_t fingerprint() const;

 private:
  Ctmc chain_;
  std::vector<double> rewards_;
  Labelling labelling_;
  std::vector<double> initial_;
  CsrMatrix impulses_;  // empty unless with_impulses() attached some
};

}  // namespace csrl
