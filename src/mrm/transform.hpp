// Model transformations used by the CSRL model-checking procedure.
//
// Three transformations from the paper:
//
//  * make_absorbing — drop all outgoing transitions of selected states
//    (and optionally zero their reward).  This is the preprocessing step
//    of time-bounded until checking (property class P1, following [3]).
//
//  * reduce_for_until — the paper's Theorem 1: for Phi U^{<=t}_{<=r} Psi,
//    make Psi-states and ~(Phi | Psi)-states absorbing with reward 0 and
//    amalgamate each of the two groups into a single state ("success" and
//    "fail").  Checking the until formula then reduces to the joint
//    probability Pr{Y_t <= r, X_t = success} on the much smaller model.
//
//  * dual — the time/reward duality of [4, Theorem 1]: in
//    M^ = (S, R^, rho^) with R^(s,s') = R(s,s')/rho(s) and
//    rho^(s) = 1/rho(s), the roles of elapsed time and earned reward are
//    swapped.  Reward-bounded until on M (property class P2) becomes
//    time-bounded until on M^ (property class P1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mrm/mrm.hpp"
#include "util/state_set.hpp"

namespace csrl {

/// Copy of `model` in which every state of `absorb` loses its outgoing
/// transitions; if `zero_reward`, those states also get reward 0.
Mrm make_absorbing(const Mrm& model, const StateSet& absorb, bool zero_reward);

/// Result of the Theorem-1 reduction.  The reduced model keeps one state
/// per transient original state plus the two amalgamated absorbing states;
/// `state_map[s]` gives the reduced index of original state s.  The reduced
/// labelling carries the propositions "success" and "fail".
struct UntilReduction {
  Mrm model;
  std::size_t success_state = 0;
  std::size_t fail_state = 0;
  std::vector<std::size_t> state_map;
};

/// Apply Theorem 1 for the until formula with Sat sets `phi` and `psi`.
/// The initial distribution of the reduced model is the push-forward of
/// the original one (mass on Psi-states lands on "success", mass on bad
/// states on "fail").
UntilReduction reduce_for_until(const Mrm& model, const StateSet& phi,
                                const StateSet& psi);

/// The dual MRM of [4, Theorem 1].  Requires rho(s) > 0 for every
/// non-absorbing state (throws ModelError otherwise).  Absorbing states
/// with reward 0 stay absorbing with reward 0: no dual time ever passes in
/// them, which is consistent with the duality because no reward is earned
/// there in the original either.
Mrm dual(const Mrm& model);

/// Copy of `model` with its states renumbered by `perm`, where
/// perm[new_index] = old_index (the shape ctmc/graph.hpp's
/// reverse_cuthill_mckee returns).  Rates, impulse rewards, state
/// rewards, the labelling and the initial distribution all move
/// consistently, so the permuted model is the same MRM under a state
/// bijection.  Throws ModelError unless `perm` is a permutation of the
/// state indices.  This is the internal half of
/// CheckOptions::reorder_states; callers keep the inverse permutation to
/// translate results back to the original numbering.
Mrm permute_states(const Mrm& model, std::span<const std::size_t> perm);

}  // namespace csrl
