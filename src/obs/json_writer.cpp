#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace csrl {
namespace obs {

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!pending_.empty()) {
    if (pending_.back() != 0) out_ += ',';
    pending_.back() = 1;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  pending_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  pending_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  pending_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  pending_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", d);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  separate();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  separate();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  separate();
  out_ += json;
  return *this;
}

std::string JsonWriter::str() && { return std::move(out_); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void emit_metrics(JsonWriter& w, const MetricsSnapshot& metrics) {
  w.key("counters").begin_object();
  for (const auto& [name, value] : metrics.counters) w.key(name).value(value);
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, value] : metrics.gauges) w.key(name).value(value);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, stats] : metrics.histograms) {
    w.key(name).begin_object();
    w.key("count").value(stats.count);
    w.key("sum").value(stats.sum);
    w.key("min").value(stats.min);
    w.key("max").value(stats.max);
    w.key("p50").value(stats.quantile(0.50));
    w.key("p90").value(stats.quantile(0.90));
    w.key("p99").value(stats.quantile(0.99));
    w.key("p999").value(stats.quantile(0.999));
    w.end_object();
  }
  w.end_object();
}

void emit_spans(JsonWriter& w, const std::vector<SpanAggregate>& spans) {
  w.key("spans").begin_array();
  for (const SpanAggregate& span : spans) {
    w.begin_object();
    w.key("path").value(span.path);
    w.key("count").value(span.count);
    w.key("total_ms").value(span.total_ms);
    w.end_object();
  }
  w.end_array();
}

}  // namespace obs
}  // namespace csrl
