// Machine-readable run reports.
//
// A RunReport ties one checking/engine run's end-to-end number to the
// phase-level counters that explain it: the engine chosen, the model
// dimensions, the Fox-Glynn window actually used, iteration and SpMV
// counts, solver residuals, the flat span aggregate and the full metric
// delta of the run.  Benches serialise it next to their BENCH_*.json so
// the perf trajectory carries attribution, and Checker::check attaches
// it to CheckResult when CheckOptions::report (or CSRL_TRACE) asks.
//
// Collection protocol: construct a ReportScope before the work (it
// forces recording on and snapshots the registry), run the work, then
// finish() — the report holds the metric delta and the spans that
// started inside the scope.  Scopes do not nest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace csrl {
namespace obs {

struct RunReport {
  /// Engine or pipeline the run used ("sericola", "erlang-256", ...).
  std::string engine;

  /// Model dimensions: state count and rate-matrix non-zeros.
  std::size_t states = 0;
  std::size_t transitions = 0;

  /// Configured a-priori truncation error of the run's series (the
  /// Sericola epsilon or the transient-analysis epsilon).
  double truncation_error = 0.0;

  /// Total probability mass dropped by the active-support epsilon
  /// truncation during the run (the sum of the
  /// "uniformisation/truncation_dropped" histogram; see
  /// TransientOptions::support_epsilon).  Zero for exact runs.
  double support_truncation_bound = 0.0;

  /// truncation_error + support_truncation_bound: the run's total sound
  /// error bound from both truncation sources.
  double total_error_bound = 0.0;

  /// Key effort indicators lifted out of `metrics` for direct access.
  std::uint64_t fox_glynn_left = 0;
  std::uint64_t fox_glynn_right = 0;
  std::uint64_t solver_iterations = 0;
  std::uint64_t uniformisation_steps = 0;
  std::uint64_t spmv_count = 0;
  double solver_residual = 0.0;

  /// Blocked multi-RHS SpMM usage (matrix/spmm.cpp): the number of block
  /// products the run issued and the total column (lane) count they
  /// carried.  spmm_columns / spmm_block_products is the achieved mean
  /// block width; both are 0 when every product ran the one-RHS path.
  /// The per-lane SpMV work of block products is already folded into
  /// spmv_count (block kernels bump the spmv counters by their width).
  std::uint64_t spmm_block_products = 0;
  std::uint64_t spmm_columns = 0;

  /// Sat-subformula cache traffic of the run window (the
  /// "core/sat_cache/hits|misses" counters), aggregated across every
  /// checker that probed a cache — shared caches included.  Per-SatCache
  /// stats() cannot see cross-session reuse (each instance only counts
  /// its own probes, and a service builds many short-lived checkers);
  /// these counters can, so the resident service pins its cross-client
  /// hit rate on them.
  std::uint64_t sat_cache_hits = 0;
  std::uint64_t sat_cache_misses = 0;

  double wall_seconds = 0.0;

  /// Deterministic cost accounting: flop and memory-traffic totals the
  /// kernels computed from their structural dimensions (nnz, rows,
  /// block widths, sweep counts) — pure functions of the run, identical
  /// across machines, thread counts and reps, so perf gates can compare
  /// them exactly where wall time only supports noise bands.  The
  /// traffic model is documented per kernel family in DESIGN.md §3h.
  struct CostModel {
    std::uint64_t spmv_flops = 0;      // cost/spmv/flops
    std::uint64_t spmv_bytes = 0;      // cost/spmv/bytes
    std::uint64_t spmm_flops = 0;      // cost/spmm/flops
    std::uint64_t spmm_bytes = 0;      // cost/spmm/bytes
    std::uint64_t epilogue_flops = 0;  // cost/epilogue/flops
    std::uint64_t epilogue_bytes = 0;  // cost/epilogue/bytes
    std::uint64_t solver_flops = 0;    // cost/solver/flops
    std::uint64_t solver_bytes = 0;    // cost/solver/bytes

    std::uint64_t total_flops() const {
      return spmv_flops + spmm_flops + epilogue_flops + solver_flops;
    }
    std::uint64_t total_bytes() const {
      return spmv_bytes + spmm_bytes + epilogue_bytes + solver_bytes;
    }
  };
  CostModel cost_model;

  /// End-to-end check latency distribution of the run window (the
  /// "latency/check" histogram delta): sample count and nearest-rank
  /// quantiles in seconds.  One sample per Checker::check; a resident
  /// service reusing one scope across queries gets real percentiles.
  std::uint64_t latency_count = 0;
  double latency_p50 = 0.0;
  double latency_p90 = 0.0;
  double latency_p99 = 0.0;
  double latency_p999 = 0.0;

  /// Span events dropped during the run window (per-thread buffer cap
  /// reached).  Nonzero means `spans` undercounts; finish() also warns
  /// on stderr so a truncated trace is never mistaken for complete.
  std::uint64_t spans_dropped = 0;

  /// Lumping preprocessing of the run (CheckOptions::lump): the original
  /// vs quotient dimensions and the refiner's work accounting.  `states`
  /// and `transitions` at the top of the report already describe the
  /// quotient (the model the engines actually ran on); this section
  /// carries the reduction it bought.  Emitted as a "lumping" object in
  /// the JSON only when enabled.
  struct Lumping {
    bool enabled = false;
    std::uint64_t original_states = 0;
    std::uint64_t original_transitions = 0;
    std::uint64_t states = 0;       // quotient blocks
    std::uint64_t transitions = 0;  // quotient rate-matrix non-zeros
    std::uint64_t sweeps = 0;
    std::uint64_t splits = 0;
    std::uint64_t states_resigned = 0;
    double wall_seconds = 0.0;
  };
  Lumping lumping;

  /// Bound lattice of a batched grid run (Checker::check_until_grid):
  /// the time and reward axes the query evaluated.  Empty for point
  /// queries; emitted as a "grid" object in the JSON only when set.
  std::vector<double> grid_times;
  std::vector<double> grid_rewards;

  /// Metric delta of the run (counters/histograms) plus current gauges.
  MetricsSnapshot metrics;

  /// Flat per-path span aggregate of the run.
  std::vector<SpanAggregate> spans;

  /// Stable-keyed JSON document ("csrl-run-report-v1").
  std::string to_json() const;
};

/// Fill every metric-derived field of `report` from `report.metrics`
/// (the run's counter/histogram delta, which must already be set) and
/// `gauges` (current gauge values): Fox-Glynn window, solver /
/// uniformisation / SpMV / SpMM totals, Sat-cache traffic, truncation
/// bounds, the cost model, and the latency quantiles lifted from the
/// `latency_histogram` entry of the delta ("latency/check" for single
/// checks, "service/latency/query" for the resident service's
/// aggregated report).  ReportScope::finish and
/// service::CheckerService::report share this one lifting.
void populate_metric_fields(RunReport& report, const MetricsSnapshot& gauges,
                            const std::string& latency_histogram);

/// RAII collection window (see file comment).
class ReportScope {
 public:
  ReportScope();

  /// Build the report for everything recorded since construction.
  /// Callable once; the scope stays recording until destruction.
  RunReport finish(std::string engine, std::size_t states,
                   std::size_t transitions, double truncation_error);

 private:
  ScopedRecording recording_;
  MetricsSnapshot before_;
  std::uint64_t dropped_before_;
  std::int64_t start_ns_;
  WallTimer timer_;
};

/// Write `report` to "<stem>.report.json" and the chrome trace of all
/// currently buffered spans to "<stem>.trace.json" when the
/// CSRL_OBS_OUT environment variable is set; no-op otherwise.  Returns
/// true when files were written.
bool write_report_if_requested(const RunReport& report);

}  // namespace obs
}  // namespace csrl
