#include "obs/report.hpp"

#include <cstdio>

#include "obs/json_writer.hpp"

namespace csrl {
namespace obs {

std::string RunReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("csrl-run-report-v1");
  w.key("engine").value(engine);
  w.key("model").begin_object();
  w.key("states").value(static_cast<std::uint64_t>(states));
  w.key("transitions").value(static_cast<std::uint64_t>(transitions));
  w.end_object();
  w.key("truncation_error").value(truncation_error);
  w.key("support_truncation_bound").value(support_truncation_bound);
  w.key("total_error_bound").value(total_error_bound);
  w.key("fox_glynn").begin_object();
  w.key("left").value(fox_glynn_left);
  w.key("right").value(fox_glynn_right);
  w.end_object();
  w.key("solver_iterations").value(solver_iterations);
  w.key("uniformisation_steps").value(uniformisation_steps);
  w.key("spmv_count").value(spmv_count);
  w.key("spmm_block_products").value(spmm_block_products);
  w.key("spmm_columns").value(spmm_columns);
  w.key("sat_cache").begin_object();
  w.key("hits").value(sat_cache_hits);
  w.key("misses").value(sat_cache_misses);
  w.end_object();
  w.key("solver_residual").value(solver_residual);
  w.key("wall_seconds").value(wall_seconds);
  w.key("cost_model").begin_object();
  w.key("spmv_flops").value(cost_model.spmv_flops);
  w.key("spmv_bytes").value(cost_model.spmv_bytes);
  w.key("spmm_flops").value(cost_model.spmm_flops);
  w.key("spmm_bytes").value(cost_model.spmm_bytes);
  w.key("epilogue_flops").value(cost_model.epilogue_flops);
  w.key("epilogue_bytes").value(cost_model.epilogue_bytes);
  w.key("solver_flops").value(cost_model.solver_flops);
  w.key("solver_bytes").value(cost_model.solver_bytes);
  w.key("total_flops").value(cost_model.total_flops());
  w.key("total_bytes").value(cost_model.total_bytes());
  w.end_object();
  w.key("latency").begin_object();
  w.key("count").value(latency_count);
  w.key("p50").value(latency_p50);
  w.key("p90").value(latency_p90);
  w.key("p99").value(latency_p99);
  w.key("p999").value(latency_p999);
  w.end_object();
  w.key("spans_dropped").value(spans_dropped);
  if (lumping.enabled) {
    w.key("lumping").begin_object();
    w.key("original_states").value(lumping.original_states);
    w.key("original_transitions").value(lumping.original_transitions);
    w.key("states").value(lumping.states);
    w.key("transitions").value(lumping.transitions);
    w.key("sweeps").value(lumping.sweeps);
    w.key("splits").value(lumping.splits);
    w.key("states_resigned").value(lumping.states_resigned);
    w.key("wall_seconds").value(lumping.wall_seconds);
    w.end_object();
  }
  if (!grid_times.empty() || !grid_rewards.empty()) {
    w.key("grid").begin_object();
    w.key("times").begin_array();
    for (double t : grid_times) w.value(t);
    w.end_array();
    w.key("rewards").begin_array();
    for (double r : grid_rewards) w.value(r);
    w.end_array();
    w.end_object();
  }
  emit_metrics(w, metrics);
  emit_spans(w, spans);
  w.end_object();
  return std::move(w).str();
}

ReportScope::ReportScope()
    : recording_(true),
      before_(snapshot_metrics()),
      dropped_before_(dropped_span_events()),
      start_ns_(now_ns()) {}

void populate_metric_fields(RunReport& report, const MetricsSnapshot& gauges,
                            const std::string& latency_histogram) {
  report.fox_glynn_left =
      static_cast<std::uint64_t>(gauges.gauge("foxglynn/window_left"));
  report.fox_glynn_right =
      static_cast<std::uint64_t>(gauges.gauge("foxglynn/window_right"));
  report.solver_iterations = report.metrics.counter("solver/iterations");
  report.uniformisation_steps =
      report.metrics.counter("uniformisation/steps");
  report.spmv_count = report.metrics.counter("spmv/multiply") +
                      report.metrics.counter("spmv/multiply_left");
  report.spmm_block_products =
      report.metrics.counter("matrix/spmm/block_products");
  report.spmm_columns = report.metrics.counter("matrix/spmm/columns");
  report.sat_cache_hits = report.metrics.counter("core/sat_cache/hits");
  report.sat_cache_misses = report.metrics.counter("core/sat_cache/misses");
  report.solver_residual = gauges.gauge("solver/residual");
  // The histogram arrives through the delta, so the bound covers exactly
  // the mass this run's epsilon truncation dropped.
  report.support_truncation_bound =
      report.metrics.histogram("uniformisation/truncation_dropped").sum;
  report.total_error_bound =
      report.truncation_error + report.support_truncation_bound;

  report.cost_model.spmv_flops = report.metrics.counter("cost/spmv/flops");
  report.cost_model.spmv_bytes = report.metrics.counter("cost/spmv/bytes");
  report.cost_model.spmm_flops = report.metrics.counter("cost/spmm/flops");
  report.cost_model.spmm_bytes = report.metrics.counter("cost/spmm/bytes");
  report.cost_model.epilogue_flops =
      report.metrics.counter("cost/epilogue/flops");
  report.cost_model.epilogue_bytes =
      report.metrics.counter("cost/epilogue/bytes");
  report.cost_model.solver_flops = report.metrics.counter("cost/solver/flops");
  report.cost_model.solver_bytes = report.metrics.counter("cost/solver/bytes");

  const MetricsSnapshot::HistogramStats latency =
      report.metrics.histogram(latency_histogram);
  report.latency_count = latency.count;
  report.latency_p50 = latency.quantile(0.50);
  report.latency_p90 = latency.quantile(0.90);
  report.latency_p99 = latency.quantile(0.99);
  report.latency_p999 = latency.quantile(0.999);
}

RunReport ReportScope::finish(std::string engine, std::size_t states,
                              std::size_t transitions,
                              double truncation_error) {
  RunReport report;
  report.engine = std::move(engine);
  report.states = states;
  report.transitions = transitions;
  report.truncation_error = truncation_error;
  report.wall_seconds = timer_.seconds();

  const MetricsSnapshot after = snapshot_metrics();
  report.metrics = metrics_delta(before_, after);

  std::vector<SpanEvent> events;
  for (SpanEvent& event : peek_spans())
    if (event.start_ns >= start_ns_) events.push_back(std::move(event));
  report.spans = aggregate_spans(events);

  populate_metric_fields(report, after, "latency/check");

  // drain_spans()/reset_all() zero the per-buffer drop counters, so a
  // scope spanning one sees after < before; clamp instead of wrapping.
  const std::uint64_t dropped_after = dropped_span_events();
  report.spans_dropped =
      dropped_after >= dropped_before_ ? dropped_after - dropped_before_
                                       : dropped_after;
  if (report.spans_dropped > 0)
    std::fprintf(stderr,
                 "csrl: obs: %llu span event(s) dropped during this run "
                 "(per-thread buffer cap); the trace and span aggregate "
                 "are truncated\n",
                 static_cast<unsigned long long>(report.spans_dropped));
  return report;
}

bool write_report_if_requested(const RunReport& report) {
  const std::string stem = output_stem("");
  if (stem.empty()) return false;
  const auto write = [](const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return written == text.size();
  };
  const bool report_ok = write(stem + ".report.json", report.to_json());
  const bool trace_ok =
      write_chrome_trace(stem + ".trace.json", peek_spans());
  return report_ok && trace_ok;
}

}  // namespace obs
}  // namespace csrl
