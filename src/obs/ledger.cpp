#include "obs/ledger.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <thread>

#include "obs/json_writer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace csrl {
namespace obs {

namespace {

/// First "model name" value from /proc/cpuinfo, or "" (non-Linux hosts,
/// restricted containers).  Best-effort by design: the fingerprint
/// gates wall-time comparability, nothing correctness-bearing.
std::string probe_cpu_model() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "";
  std::string model;
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon == nullptr) break;
    ++colon;
    while (*colon == ' ' || *colon == '\t') ++colon;
    model = colon;
    while (!model.empty() && (model.back() == '\n' || model.back() == '\r'))
      model.pop_back();
    break;
  }
  std::fclose(f);
  return model;
}

}  // namespace

const HardwareFingerprint& hardware_fingerprint() {
  static const HardwareFingerprint fp = [] {
    HardwareFingerprint h;
    h.hw_threads = std::thread::hardware_concurrency();
    h.cpu_model = probe_cpu_model();
#if defined(__unix__) || defined(__APPLE__)
    utsname names{};
    if (uname(&names) == 0) h.machine = names.machine;
    const long page = sysconf(_SC_PAGESIZE);
    if (page > 0) h.page_size = static_cast<std::uint64_t>(page);
#endif
    return h;
  }();
  return fp;
}

std::string build_git_sha() {
  if (const char* env = std::getenv("CSRL_GIT_SHA"))
    if (*env != '\0') return env;
#ifdef CSRL_BUILD_GIT_SHA
  return CSRL_BUILD_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string ledger_line(const LedgerStamp& stamp,
                        const std::string& report_json) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("csrl-bench-ledger-v1");
  w.key("bench").value(stamp.bench);
  // Wall-clock stamp for history ordering only; the perf gates never
  // read it, so back-to-back runs still diff clean.
  w.key("unix_time")
      .value(static_cast<std::int64_t>(std::time(nullptr)));
  w.key("git_sha").value(build_git_sha());
  w.key("build").begin_object();
  w.key("simd_isa").value(stamp.simd_isa);
  w.key("rhs_block").value(stamp.rhs_block);
  w.key("threads").value(stamp.threads);
  w.key("obs_compiled").value(stamp.obs_compiled);
  w.end_object();
  const HardwareFingerprint& hw = hardware_fingerprint();
  w.key("hardware").begin_object();
  w.key("hw_threads").value(hw.hw_threads);
  w.key("machine").value(hw.machine);
  w.key("cpu_model").value(hw.cpu_model);
  w.key("page_size").value(hw.page_size);
  w.end_object();
  w.key("report").raw(report_json.empty() ? "null" : report_json);
  w.end_object();
  return std::move(w).str();
}

std::string ledger_path() {
  const char* env = std::getenv("CSRL_BENCH_LEDGER");
  if (env == nullptr) return "BENCH_history.jsonl";
  const std::string v(env);
  if (v.empty() || v == "0" || v == "off" || v == "false") return "";
  return v;
}

bool append_ledger_line(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(line.data(), 1, line.size(), f);
  const bool newline_ok = std::fputc('\n', f) != EOF;
  std::fclose(f);
  return written == line.size() && newline_ok;
}

}  // namespace obs
}  // namespace csrl
