// Bench run ledger: the repo's performance trajectory, one JSON line
// per bench invocation.
//
// Every bench binary (through BenchObs in bench/bench_obs.hpp) appends
// a "csrl-bench-ledger-v1" line to BENCH_history.jsonl stamping its
// report with the git SHA the binary was built from, the build
// configuration that shaped the numbers (SIMD ISA, RHS block width,
// thread count, whether obs sites were compiled in) and a hardware
// fingerprint — everything scripts/perf needs to decide which historical
// entries are comparable before fitting noise bands over their medians.
// Deterministic counters (spmv counts, cost model totals) are valid
// across hardware and thread counts by design; wall-clock entries are
// only banded against entries with a matching fingerprint.
//
// Layering: obs sits at the bottom of the include DAG, below util and
// matrix, so the build-flag fields it cannot discover itself (the SIMD
// ISA string lives in matrix/simd.hpp, the block width in
// matrix/spmm.hpp) arrive caller-provided in LedgerStamp.  The git SHA
// and hardware fingerprint are resolved here.
#pragma once

#include <cstdint>
#include <string>

namespace csrl {
namespace obs {

/// Caller-provided build configuration for one ledger line.  BenchObs
/// fills it from csrl::simd_isa(), resolve_rhs_block() and the thread
/// pool; fields default to "unknown"/0 so partial stamps still parse.
struct LedgerStamp {
  std::string bench;       // bench name, e.g. "kernels"
  std::string simd_isa;    // e.g. "avx2", "scalar"
  std::uint64_t rhs_block = 0;
  std::uint64_t threads = 0;
  bool obs_compiled = true;
};

/// Host identity for comparability decisions: logical CPU count,
/// machine architecture (uname), the CPU model string when exposed by
/// the OS, and the page size.  Intentionally coarse — it gates which
/// wall-time entries may be compared, it does not try to be unique.
struct HardwareFingerprint {
  std::uint64_t hw_threads = 0;
  std::string machine;    // e.g. "x86_64"
  std::string cpu_model;  // e.g. "AMD EPYC ...", "" when unavailable
  std::uint64_t page_size = 0;
};

/// Probe the host (cached after the first call).
const HardwareFingerprint& hardware_fingerprint();

/// The git SHA to stamp ledger lines with: the CSRL_GIT_SHA environment
/// variable when set (CI passes the exact checkout), else the SHA baked
/// in at configure time (the CSRL_BUILD_GIT_SHA compile definition on
/// this translation unit), else "unknown".
std::string build_git_sha();

/// One complete "csrl-bench-ledger-v1" line (no trailing newline):
/// schema, bench name, unix timestamp, git SHA, build block, hardware
/// block, and the bench's own report document embedded verbatim under
/// "report".  `report_json` must be a complete JSON value on one line
/// (BenchObs documents are).
std::string ledger_line(const LedgerStamp& stamp,
                        const std::string& report_json);

/// Where ledger lines go: the CSRL_BENCH_LEDGER environment variable
/// when set ("0"/"off"/"false"/"" disable the ledger — returns empty),
/// else "BENCH_history.jsonl" in the working directory.
std::string ledger_path();

/// Append `line` plus a newline to `path`; returns false on I/O failure
/// (benches warn but never fail a gate over a ledger write).
bool append_ledger_line(const std::string& path, const std::string& line);

}  // namespace obs
}  // namespace csrl
