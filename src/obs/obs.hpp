// Observability layer: metrics registry, tracing spans, wall timing.
//
// The P3 engines, the solvers and the thread pool expose their internals
// (Fox-Glynn window sizes, iteration counts, SpMV counts, per-phase wall
// time) through this zero-dependency subsystem so benches and run reports
// can attribute end-to-end numbers to phases.  Like the contracts layer
// (util/contracts.hpp) it has three gears:
//
//   * compiled out entirely with -DCSRL_OBS=OFF (every macro below
//     expands to nothing; the snapshot/report API still compiles and
//     returns empty data),
//   * compiled in but dormant by default (each CSRL_COUNT/CSRL_GAUGE/
//     CSRL_HIST site costs one relaxed atomic load and a predicted
//     branch; each CSRL_SPAN site additionally maintains the per-thread
//     span-path stack — two pointer pushes — so contract failures can
//     self-locate even when recording is off),
//   * switched on at runtime by the CSRL_TRACE environment variable, by
//     CheckOptions::report, or programmatically with
//     obs::set_recording / obs::ScopedRecording (what the tests use).
//
// Naming scheme: every span and metric name is a static '/'-separated
// path `subsystem/engine/phase` matching ^[a-z0-9_]+(/[a-z0-9_]+)*$
// (enforced by the obs-name pass of scripts/analyze),
// e.g. "p3/sericola/column_sweep",
// "solver/iterations", "pool/chunks".
//
// Concurrency: counters and histograms accumulate into lock-free
// thread-local shards (single writer each, relaxed atomics so snapshots
// from other threads are race-free); gauges are process-global relaxed
// atomics (set rarely, from the coordinating thread).  Span events go to
// per-thread buffers guarded by a per-buffer mutex that is only touched
// while recording is on.  snapshot_metrics() / drain_spans() merge the
// shards; they may run concurrently with writers and see a slightly
// stale but internally consistent view.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace csrl {

/// Wall-clock stopwatch; starts running on construction.  (Absorbed from
/// the retired util/timer.hpp — the single timing facility of the
/// library; SpanGuard uses the same steady clock.)
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

namespace obs {

// ---------------------------------------------------------------------------
// Recording control
// ---------------------------------------------------------------------------

/// Is metric/span recording currently on?  One relaxed atomic load; the
/// dormant fast path of every instrumentation site.
bool recording_enabled();

/// Turn recording on/off process-wide (like validation::set_level).  The
/// CSRL_TRACE environment variable ("1"/anything but "0") seeds the
/// initial state; when CSRL_TRACE is set, process exit writes a chrome
/// trace to "<CSRL_OBS_OUT or csrl_trace>.trace.json" and a metrics dump
/// to "<stem>.metrics.json".
void set_recording(bool on);

/// RAII recording override for tests and report collection: forces `on`
/// at construction, restores the previous state on destruction.
class ScopedRecording {
 public:
  explicit ScopedRecording(bool on = true);
  ~ScopedRecording();
  ScopedRecording(const ScopedRecording&) = delete;
  ScopedRecording& operator=(const ScopedRecording&) = delete;

 private:
  bool previous_;
};

/// The CSRL_OBS_OUT environment variable, or `fallback` when unset.
std::string output_stem(const std::string& fallback = "csrl_trace");

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

// -- Log-bucketed histogram geometry ----------------------------------
//
// Histograms accumulate per-value counts into log-spaced buckets so
// quantiles (p50/p90/p99/p999) can be extracted from merged shards
// without storing samples.  Each power-of-two octave [2^e, 2^(e+1)) is
// split into kHistogramSubBuckets linear sub-buckets, so a quantile is
// pinned to within a factor of 1 + 1/kHistogramSubBuckets (25%) of the
// exact order statistic — and bucket edges are exact binary doubles
// (1.25 * 2^e, 1.5 * 2^e, ...), so quantile extraction is bitwise
// deterministic across shard merge orders.  Bucket 0 absorbs zero,
// negative and sub-2^kHistogramMinExponent values; the last bucket
// absorbs everything at or above 2^kHistogramMaxExponent.  The covered
// range [2^-40, 2^24) spans sub-nanosecond latencies (in seconds) up to
// ~10^7-scale counts.

constexpr int kHistogramSubBuckets = 4;
constexpr int kHistogramMinExponent = -40;
constexpr int kHistogramMaxExponent = 24;
constexpr std::size_t kHistogramBuckets =
    static_cast<std::size_t>(kHistogramMaxExponent - kHistogramMinExponent) *
        kHistogramSubBuckets +
    2;

/// Bucket index a value lands in (0 for zero/negative/underflow,
/// kHistogramBuckets - 1 for overflow).
std::size_t histogram_bucket_index(double value);

/// Inclusive upper edge of a bucket: the deterministic value quantile
/// extraction reports for samples inside it.  +infinity for the
/// overflow bucket (callers clamp to the recorded max).
double histogram_bucket_upper(std::size_t index);

/// Interned metric identifiers.  Each instrumentation site interns its
/// name once (function-local static) and then increments by id; the
/// three kinds have independent id spaces.  Names must be string
/// literals (the registry stores the pointer's characters once).
std::size_t intern_counter(const char* name);
std::size_t intern_gauge(const char* name);
std::size_t intern_histogram(const char* name);

/// Hot-path mutators (call only with a valid interned id).  counter_add
/// and histogram_record write the calling thread's shard; gauge_set
/// writes the process-global slot.
void counter_add(std::size_t id, std::uint64_t delta);
void gauge_set(std::size_t id, double value);
void histogram_record(std::size_t id, double value);

/// Merged view of every shard at one instant.  Entries are sorted by
/// name, so serialisation is stable-keyed.
struct MetricsSnapshot {
  struct HistogramStats {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    // Merged per-bucket counts (kHistogramBuckets entries, or empty for
    // a histogram that was never recorded); what quantile() walks.
    std::vector<std::uint64_t> buckets;

    /// Nearest-rank quantile (q in [0, 1]): the upper edge of the
    /// bucket holding the ceil(q * count)-th smallest sample, clamped
    /// to the recorded max (so p999 of a tight distribution never
    /// exceeds the largest value actually seen).  0 when empty.
    double quantile(double q) const;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  /// Lookup helpers; zero-value defaults when the name is absent.
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  HistogramStats histogram(const std::string& name) const;
};

/// Merge all shards (counters/histograms summed, gauges read) into one
/// snapshot.  Never resets anything.
MetricsSnapshot snapshot_metrics();

/// Counter/histogram delta between two snapshots (after - before);
/// gauges take their `after` values.  Entries that are zero in the delta
/// are dropped, so a report only carries the metrics its run touched.
MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

// ---------------------------------------------------------------------------
// Tracing spans
// ---------------------------------------------------------------------------

/// Nanoseconds since the process-wide obs epoch (steady clock).
std::int64_t now_ns();

/// One completed span occurrence.
struct SpanEvent {
  std::string path;          // full nesting path "a/b/c"
  std::uint32_t thread = 0;  // small per-thread id (chrome tid)
  std::uint32_t depth = 0;   // nesting depth at entry (outermost = 0)
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
};

/// RAII span: pushes `name` on the calling thread's span-path stack for
/// its lifetime (always, so ContractViolation can self-locate) and, when
/// recording is on at construction, emits a SpanEvent on destruction.
/// `name` must be a string literal.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  std::int64_t start_ns_;  // negative: not recording this span
};

/// The calling thread's innermost active span path ("a/b/c"), or ""
/// outside every span.  Contract failures append this to their context.
std::string current_span_path();

/// RAII latency sample: records the scope's wall time in seconds into
/// histogram `name` (a string literal) on destruction.  Dormant-safe —
/// when recording is off at construction the clock is never read and
/// nothing is interned.  Fires on every exit path, so loop bodies with
/// breaks still sample their last (partial) pass.  For per-element hot
/// loops prefer an explicit CSRL_HIST site with a cached id; this guard
/// re-interns per construction and suits sweep/phase granularity.
class HistScope {
 public:
  explicit HistScope(const char* name)
      : name_(name), start_ns_(recording_enabled() ? now_ns() : -1) {}
  ~HistScope() {
    if (start_ns_ >= 0)
      histogram_record(intern_histogram(name_),
                       static_cast<double>(now_ns() - start_ns_) * 1e-9);
  }
  HistScope(const HistScope&) = delete;
  HistScope& operator=(const HistScope&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_;
};

/// Move all buffered span events (every thread) out of the registry.
std::vector<SpanEvent> drain_spans();

/// Copy the buffered span events without consuming them (what report
/// collection uses, so the process-exit trace flush still sees them).
std::vector<SpanEvent> peek_spans();

/// Total span events dropped (per-thread buffer cap reached) since the
/// last drain_spans()/reset_all().  A nonzero value means the recorded
/// trace is truncated; ReportScope surfaces it in RunReport.
std::uint64_t dropped_span_events();

///// Testing hook: shrink the per-thread span-buffer cap so a fast test
/// can force drops without recording half a million events.  0 restores
/// the default cap.  Not for production use.
void set_span_event_cap_for_testing(std::size_t cap);

/// Flat per-path aggregate of a batch of events, sorted by path.
struct SpanAggregate {
  std::string path;
  std::uint64_t count = 0;
  double total_ms = 0.0;
};
std::vector<SpanAggregate> aggregate_spans(const std::vector<SpanEvent>& events);

/// Serialise events in the chrome://tracing "complete event" JSON array
/// format (load the file via chrome://tracing or https://ui.perfetto.dev).
std::string chrome_trace_json(const std::vector<SpanEvent>& events);

/// chrome_trace_json written to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events);

/// Testing/reporting hook: forget all recorded spans and metric values
/// (interned names survive).  Not thread-safe against concurrent writers.
void reset_all();

}  // namespace obs

}  // namespace csrl

// ---------------------------------------------------------------------------
// Instrumentation macros (the only interface the numerical code uses)
// ---------------------------------------------------------------------------
//
// CSRL_SPAN(name)          RAII span for the rest of the enclosing scope.
// CSRL_COUNT(name, delta)  add `delta` to counter `name`.
// CSRL_GAUGE(name, value)  set gauge `name` to `value`.
// CSRL_HIST(name, value)   record `value` into histogram `name`.
// CSRL_HIST_SCOPE(name)    RAII latency sample (seconds) for the scope.
// CSRL_OBS_ACTIVE()        true when sites are compiled in AND recording.
//
// With -DCSRL_OBS=OFF all of them compile to nothing.

#ifdef CSRL_OBS_DISABLED

#define CSRL_SPAN(name) ((void)0)
#define CSRL_COUNT(name, delta) ((void)0)
#define CSRL_GAUGE(name, value) ((void)0)
#define CSRL_HIST(name, value) ((void)0)
#define CSRL_HIST_SCOPE(name) ((void)0)
#define CSRL_OBS_ACTIVE() false

#else

#define CSRL_OBS_CONCAT_IMPL(a, b) a##b
#define CSRL_OBS_CONCAT(a, b) CSRL_OBS_CONCAT_IMPL(a, b)

#define CSRL_SPAN(name) \
  ::csrl::obs::SpanGuard CSRL_OBS_CONCAT(csrl_obs_span_, __LINE__)(name)

#define CSRL_HIST_SCOPE(name) \
  ::csrl::obs::HistScope CSRL_OBS_CONCAT(csrl_obs_hist_, __LINE__)(name)

#define CSRL_COUNT(name, delta)                                            \
  do {                                                                     \
    if (::csrl::obs::recording_enabled()) {                                \
      static const std::size_t csrl_obs_id =                               \
          ::csrl::obs::intern_counter(name);                               \
      ::csrl::obs::counter_add(csrl_obs_id,                                \
                               static_cast<std::uint64_t>(delta));         \
    }                                                                      \
  } while (false)

#define CSRL_GAUGE(name, value)                                            \
  do {                                                                     \
    if (::csrl::obs::recording_enabled()) {                                \
      static const std::size_t csrl_obs_id =                               \
          ::csrl::obs::intern_gauge(name);                                 \
      ::csrl::obs::gauge_set(csrl_obs_id, static_cast<double>(value));     \
    }                                                                      \
  } while (false)

#define CSRL_HIST(name, value)                                             \
  do {                                                                     \
    if (::csrl::obs::recording_enabled()) {                                \
      static const std::size_t csrl_obs_id =                               \
          ::csrl::obs::intern_histogram(name);                             \
      ::csrl::obs::histogram_record(csrl_obs_id,                           \
                                    static_cast<double>(value));           \
    }                                                                      \
  } while (false)

#define CSRL_OBS_ACTIVE() (::csrl::obs::recording_enabled())

#endif  // CSRL_OBS_DISABLED
