#include "obs/obs.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>

#include "obs/json_writer.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace csrl {
namespace obs {

namespace {

/// Hard cap per metric kind.  Instrumentation sites are static program
/// locations, so the population is small and known; hitting the cap is a
/// programming error, reported loudly at intern time (never on the hot
/// path, which only runs with a valid id in hand).
constexpr std::size_t kMaxMetrics = 128;

/// Thread-local accumulation shard.  Exactly one thread writes a shard
/// (its owner); snapshots read concurrently, so slots are relaxed
/// atomics — single-writer means no lost updates, relaxed means no
/// synchronisation cost.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> counters{};
  struct Hist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    // Log-spaced per-bucket counts (see the geometry block in obs.hpp);
    // same single-writer/relaxed-reader discipline as the scalars.
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Hist, kMaxMetrics> histograms{};
};

/// Cap on buffered span events per thread, so leaving recording on for a
/// long run (e.g. a whole bench binary) bounds memory instead of growing
/// it without limit.  Events beyond the cap are counted, not stored; the
/// aggregate view loses their timing, never their existence.
constexpr std::size_t kMaxSpanEventsPerThread = std::size_t{1} << 19;

/// The live cap (set_span_event_cap_for_testing shrinks it so tests can
/// force drops cheaply).  Relaxed: the exact point where drops start is
/// not synchronisation-sensitive.
std::atomic<std::size_t>& span_event_cap() {
  static std::atomic<std::size_t> cap{kMaxSpanEventsPerThread};
  return cap;
}

/// Per-thread span buffer.  The owning thread appends under the mutex;
/// drain/peek lock the same mutex, so buffers are safe against
/// concurrent export.  The mutex is only ever touched while recording is
/// on — the dormant path never reaches it.
struct SpanBuffer {
  explicit SpanBuffer(std::uint32_t id) : thread_id(id) {}
  Mutex mutex;
  std::vector<SpanEvent> events CSRL_GUARDED_BY(mutex);
  std::uint64_t dropped CSRL_GUARDED_BY(mutex) = 0;
  const std::uint32_t thread_id;  // immutable after construction
};

struct Registry {
  Mutex mutex;
  std::vector<std::string> counter_names CSRL_GUARDED_BY(mutex);
  std::vector<std::string> gauge_names CSRL_GUARDED_BY(mutex);
  std::vector<std::string> histogram_names CSRL_GUARDED_BY(mutex);
  std::vector<std::unique_ptr<Shard>> shards CSRL_GUARDED_BY(mutex);
  std::vector<std::unique_ptr<SpanBuffer>> buffers CSRL_GUARDED_BY(mutex);
  // Gauges are process-global relaxed atomics, written rarely from the
  // coordinating thread: no lock on the write or the snapshot read.
  std::array<std::atomic<double>, kMaxMetrics> gauges{};

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

enum class MetricKind { kCounter, kGauge, kHistogram };

std::size_t intern(MetricKind kind, const char* name) {
  Registry& reg = Registry::instance();
  MutexLock lock(reg.mutex);
  std::vector<std::string>& names = kind == MetricKind::kCounter
                                        ? reg.counter_names
                                        : kind == MetricKind::kGauge
                                              ? reg.gauge_names
                                              : reg.histogram_names;
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  if (names.size() >= kMaxMetrics) {
    // Plain std::runtime_error, not util/error.hpp's Error: obs is the
    // bottom layer of the include DAG (below util) and must stay free of
    // upward dependencies.  Exhaustion is a programming error — sites
    // are static program locations — so the generic type is fine.
    const char* label = kind == MetricKind::kCounter
                            ? "counter"
                            : kind == MetricKind::kGauge ? "gauge"
                                                         : "histogram";
    throw std::runtime_error(std::string("obs: ") + label +
                             " id space exhausted at \"" + name + "\" (" +
                             std::to_string(kMaxMetrics) + " slots)");
  }
  names.emplace_back(name);
  return names.size() - 1;
}

// Shards and buffers are owned by the registry and never freed, so a
// pool worker's accumulated values survive its thread.  The thread-local
// pointer is just a cache of the owned object.
thread_local Shard* tls_shard = nullptr;
thread_local SpanBuffer* tls_buffer = nullptr;
thread_local std::vector<const char*> tls_span_stack;

Shard& my_shard() {
  if (tls_shard == nullptr) {
    Registry& reg = Registry::instance();
    MutexLock lock(reg.mutex);
    reg.shards.push_back(std::make_unique<Shard>());
    tls_shard = reg.shards.back().get();
  }
  return *tls_shard;
}

SpanBuffer& my_buffer() {
  if (tls_buffer == nullptr) {
    Registry& reg = Registry::instance();
    MutexLock lock(reg.mutex);
    reg.buffers.push_back(std::make_unique<SpanBuffer>(
        static_cast<std::uint32_t>(reg.buffers.size())));
    tls_buffer = reg.buffers.back().get();
  }
  return *tls_buffer;
}

struct EnvConfig {
  bool trace = false;
  std::string out_stem;  // empty = CSRL_OBS_OUT unset
};

const EnvConfig& env_config() {
  static const EnvConfig cfg = [] {
    EnvConfig c;
    if (const char* t = std::getenv("CSRL_TRACE")) {
      const std::string v(t);
      c.trace = !v.empty() && v != "0" && v != "off" && v != "false";
    }
    if (const char* o = std::getenv("CSRL_OBS_OUT")) c.out_stem = o;
    return c;
  }();
  return cfg;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

/// Process-exit flush for environment-driven runs (CSRL_TRACE=1): the
/// whole recorded trace and a final metrics snapshot land next to the
/// binary without any code in the host program.
void flush_process_outputs() {
  const std::string stem = output_stem();
  write_chrome_trace(stem + ".trace.json", drain_spans());
  JsonWriter w;
  w.begin_object();
  emit_metrics(w, snapshot_metrics());
  w.end_object();
  write_text_file(stem + ".metrics.json", std::move(w).str());
}

std::atomic<bool>& recording_flag() {
  static std::atomic<bool> flag{[] {
    const bool on = env_config().trace;
    if (on) {
      // The flush handler walks the registry and reads the steady-clock
      // epoch.  Both are function-local statics that would normally be
      // constructed *after* this point (on first event) and therefore be
      // destroyed before an atexit handler registered here runs.
      // Touching them first puts their destructors after the flush in
      // the exit sequence (static destructors and atexit handlers share
      // one LIFO).
      Registry::instance();
      now_ns();
      std::atexit(flush_process_outputs);
    }
    return on;
  }()};
  return flag;
}

/// Copy of the given events, for the non-destructive peek that report
/// collection uses (drain would starve the process-exit trace flush).
std::vector<SpanEvent> collect_spans(bool consume) {
  Registry& reg = Registry::instance();
  MutexLock lock(reg.mutex);
  std::vector<SpanEvent> all;
  for (const std::unique_ptr<SpanBuffer>& buffer : reg.buffers) {
    MutexLock buffer_lock(buffer->mutex);
    if (consume) {
      std::move(buffer->events.begin(), buffer->events.end(),
                std::back_inserter(all));
      buffer->events.clear();
      buffer->dropped = 0;
    } else {
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  // Buffer registration order is thread-arrival order, which can vary
  // run to run; a (start, thread, path) sort pins the export order.
  std::sort(all.begin(), all.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.path < b.path;
            });
  return all;
}

}  // namespace

bool recording_enabled() {
  return recording_flag().load(std::memory_order_relaxed);
}

void set_recording(bool on) {
  recording_flag().store(on, std::memory_order_relaxed);
}

ScopedRecording::ScopedRecording(bool on) : previous_(recording_enabled()) {
  set_recording(on);
}

ScopedRecording::~ScopedRecording() { set_recording(previous_); }

std::string output_stem(const std::string& fallback) {
  const std::string& stem = env_config().out_stem;
  return stem.empty() ? fallback : stem;
}

std::size_t histogram_bucket_index(double value) {
  // The first comparison is false for zero, negatives, underflow and
  // NaN — all of which belong in the catch-all bucket 0.
  if (!(value >= std::ldexp(1.0, kHistogramMinExponent))) return 0;
  if (value >= std::ldexp(1.0, kHistogramMaxExponent))
    return kHistogramBuckets - 1;
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp,
  const int octave = exp - 1;                       // m in [0.5, 1)
  // 2m - 1 is exact (Sterbenz: 1 <= 2m < 2) and the multiply by the
  // power-of-two sub-bucket count is exact, so the floor is the true
  // linear sub-bucket — no boundary jitter across platforms.
  const int sub = static_cast<int>((2.0 * mantissa - 1.0) *
                                   kHistogramSubBuckets);
  return 1 +
         static_cast<std::size_t>(octave - kHistogramMinExponent) *
             kHistogramSubBuckets +
         static_cast<std::size_t>(
             sub < kHistogramSubBuckets ? sub : kHistogramSubBuckets - 1);
}

double histogram_bucket_upper(std::size_t index) {
  if (index == 0) return std::ldexp(1.0, kHistogramMinExponent);
  if (index >= kHistogramBuckets - 1)
    return std::numeric_limits<double>::infinity();
  const std::size_t linear = index - 1;
  const int octave = kHistogramMinExponent +
                     static_cast<int>(linear / kHistogramSubBuckets);
  const int sub = static_cast<int>(linear % kHistogramSubBuckets);
  return std::ldexp(
      1.0 + static_cast<double>(sub + 1) / kHistogramSubBuckets, octave);
}

double MetricsSnapshot::HistogramStats::quantile(double q) const {
  if (count == 0) return 0.0;
  if (buckets.empty()) return max;  // no bucket data (legacy snapshot)
  const double scaled = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(scaled));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      const double upper = histogram_bucket_upper(i);
      return upper < max ? upper : max;
    }
  }
  return max;
}

std::size_t intern_counter(const char* name) {
  return intern(MetricKind::kCounter, name);
}

std::size_t intern_gauge(const char* name) {
  return intern(MetricKind::kGauge, name);
}

std::size_t intern_histogram(const char* name) {
  return intern(MetricKind::kHistogram, name);
}

void counter_add(std::size_t id, std::uint64_t delta) {
  my_shard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void gauge_set(std::size_t id, double value) {
  Registry::instance().gauges[id].store(value, std::memory_order_relaxed);
}

void histogram_record(std::size_t id, double value) {
  Shard::Hist& h = my_shard().histograms[id];
  // Single writer per shard: plain load/modify/store is race-free, and
  // ordering `count` last keeps min/max valid whenever a reader sees a
  // positive count.
  const std::uint64_t count = h.count.load(std::memory_order_relaxed);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  if (count == 0 || value < h.min.load(std::memory_order_relaxed))
    h.min.store(value, std::memory_order_relaxed);
  if (count == 0 || value > h.max.load(std::memory_order_relaxed))
    h.max.store(value, std::memory_order_relaxed);
  std::atomic<std::uint64_t>& bucket = h.buckets[histogram_bucket_index(value)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  h.count.store(count + 1, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return 0.0;
}

MetricsSnapshot::HistogramStats MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& [n, v] : histograms)
    if (n == name) return v;
  return {};
}

MetricsSnapshot snapshot_metrics() {
  Registry& reg = Registry::instance();
  MutexLock lock(reg.mutex);
  MetricsSnapshot snap;

  std::vector<std::uint64_t> counter_totals(reg.counter_names.size(), 0);
  std::vector<MetricsSnapshot::HistogramStats> hist_totals(
      reg.histogram_names.size());
  for (const std::unique_ptr<Shard>& shard : reg.shards) {
    for (std::size_t i = 0; i < counter_totals.size(); ++i)
      counter_totals[i] +=
          shard->counters[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < hist_totals.size(); ++i) {
      const Shard::Hist& h = shard->histograms[i];
      const std::uint64_t count = h.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      MetricsSnapshot::HistogramStats& t = hist_totals[i];
      const double lo = h.min.load(std::memory_order_relaxed);
      const double hi = h.max.load(std::memory_order_relaxed);
      if (t.count == 0 || lo < t.min) t.min = lo;
      if (t.count == 0 || hi > t.max) t.max = hi;
      t.count += count;
      t.sum += h.sum.load(std::memory_order_relaxed);
      if (t.buckets.empty()) t.buckets.assign(kHistogramBuckets, 0);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        t.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
    }
  }

  for (std::size_t i = 0; i < reg.counter_names.size(); ++i)
    snap.counters.emplace_back(reg.counter_names[i], counter_totals[i]);
  for (std::size_t i = 0; i < reg.gauge_names.size(); ++i)
    snap.gauges.emplace_back(reg.gauge_names[i],
                             reg.gauges[i].load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < reg.histogram_names.size(); ++i)
    snap.histograms.emplace_back(reg.histogram_names[i], hist_totals[i]);

  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const std::uint64_t diff = value - before.counter(name);
    if (diff != 0) delta.counters.emplace_back(name, diff);
  }
  // Gauges carry "current state", not accumulation: keep the after
  // values so a run whose gauge landed on the same value as the previous
  // run still reports it.
  delta.gauges = after.gauges;
  for (const auto& [name, stats] : after.histograms) {
    MetricsSnapshot::HistogramStats prior;
    for (const auto& [n, s] : before.histograms)
      if (n == name) prior = s;
    if (stats.count == prior.count) continue;
    // min/max cannot be un-merged; report the cumulative extrema with
    // the count/sum of this window — a conservative but honest summary.
    // Buckets, like counters, subtract exactly.
    MetricsSnapshot::HistogramStats d = stats;
    d.count = stats.count - prior.count;
    d.sum = stats.sum - prior.sum;
    if (!prior.buckets.empty())
      for (std::size_t b = 0;
           b < d.buckets.size() && b < prior.buckets.size(); ++b)
        d.buckets[b] -= prior.buckets[b];
    delta.histograms.emplace_back(name, d);
  }
  return delta;
}

std::int64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

SpanGuard::SpanGuard(const char* name) : start_ns_(-1) {
  tls_span_stack.push_back(name);
  if (recording_enabled()) start_ns_ = now_ns();
}

SpanGuard::~SpanGuard() {
  if (start_ns_ >= 0) {
    const std::int64_t end = now_ns();
    SpanEvent event;
    event.path = current_span_path();
    event.depth = static_cast<std::uint32_t>(tls_span_stack.size() - 1);
    event.start_ns = start_ns_;
    event.duration_ns = end - start_ns_;
    SpanBuffer& buffer = my_buffer();
    event.thread = buffer.thread_id;
    MutexLock lock(buffer.mutex);
    if (buffer.events.size() < span_event_cap().load(std::memory_order_relaxed))
      buffer.events.push_back(std::move(event));
    else
      ++buffer.dropped;
  }
  tls_span_stack.pop_back();
}

std::string current_span_path() {
  std::string path;
  for (const char* name : tls_span_stack) {
    if (!path.empty()) path += '/';
    path += name;
  }
  return path;
}

std::uint64_t dropped_span_events() {
  Registry& reg = Registry::instance();
  MutexLock lock(reg.mutex);
  std::uint64_t total = 0;
  for (const std::unique_ptr<SpanBuffer>& buffer : reg.buffers) {
    MutexLock buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void set_span_event_cap_for_testing(std::size_t cap) {
  span_event_cap().store(cap == 0 ? kMaxSpanEventsPerThread : cap,
                         std::memory_order_relaxed);
}

std::vector<SpanEvent> drain_spans() { return collect_spans(/*consume=*/true); }

std::vector<SpanEvent> peek_spans() { return collect_spans(/*consume=*/false); }

std::vector<SpanAggregate> aggregate_spans(
    const std::vector<SpanEvent>& events) {
  std::vector<SpanAggregate> flat;
  for (const SpanEvent& event : events) {
    SpanAggregate* slot = nullptr;
    for (SpanAggregate& agg : flat)
      if (agg.path == event.path) slot = &agg;
    if (slot == nullptr) {
      flat.push_back({event.path, 0, 0.0});
      slot = &flat.back();
    }
    slot->count += 1;
    slot->total_ms += static_cast<double>(event.duration_ns) * 1e-6;
  }
  std::sort(flat.begin(), flat.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.path < b.path;
            });
  return flat;
}

std::string chrome_trace_json(const std::vector<SpanEvent>& events) {
  JsonWriter w;
  w.begin_array();
  for (const SpanEvent& event : events) {
    w.begin_object();
    w.key("name").value(event.path);
    w.key("cat").value("csrl");
    w.key("ph").value("X");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(event.thread));
    w.key("ts").value(static_cast<double>(event.start_ns) * 1e-3);
    w.key("dur").value(static_cast<double>(event.duration_ns) * 1e-3);
    w.end_object();
  }
  w.end_array();
  return std::move(w).str();
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events) {
  return write_text_file(path, chrome_trace_json(events));
}

void reset_all() {
  Registry& reg = Registry::instance();
  MutexLock lock(reg.mutex);
  for (const std::unique_ptr<Shard>& shard : reg.shards) {
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
      shard->counters[i].store(0, std::memory_order_relaxed);
      shard->histograms[i].count.store(0, std::memory_order_relaxed);
      shard->histograms[i].sum.store(0.0, std::memory_order_relaxed);
      shard->histograms[i].min.store(0.0, std::memory_order_relaxed);
      shard->histograms[i].max.store(0.0, std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        shard->histograms[i].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < kMaxMetrics; ++i)
    reg.gauges[i].store(0.0, std::memory_order_relaxed);
  for (const std::unique_ptr<SpanBuffer>& buffer : reg.buffers) {
    MutexLock buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

}  // namespace obs
}  // namespace csrl
