// Minimal JSON serialiser for the observability layer.
//
// The library ships machine-readable run reports and chrome://tracing
// files without pulling a JSON dependency into a numerical codebase:
// JsonWriter is a forward-only builder with explicit begin/end calls,
// correct string escaping, and deterministic number formatting
// (shortest round-trip via %.17g, non-finite values mapped to null so
// the output always parses).  Callers are responsible for key order —
// the obs layer always emits sorted or fixed-order keys so reports are
// stable and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/obs.hpp"

namespace csrl {
namespace obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(bool b);

  /// Splice a pre-serialised JSON value verbatim (the ledger embeds a
  /// bench's own report document).  The caller guarantees `json` is a
  /// complete, valid JSON value; no escaping or validation happens here.
  JsonWriter& raw(std::string_view json);

  /// The finished document.  Consumes the builder.
  std::string str() &&;

 private:
  void separate();

  std::string out_;
  // One bool per open container: "the next element needs a comma".
  std::string pending_;
  bool after_key_ = false;
};

/// JSON-escape `s` (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

/// Emit the three metric maps as "counters"/"gauges"/"histograms" keys
/// of the currently open object.  Entries come out in the snapshot's
/// (sorted) order.
void emit_metrics(JsonWriter& w, const MetricsSnapshot& metrics);

/// Emit a "spans" key holding the flat aggregate as an array of
/// {path, count, total_ms} objects.
void emit_spans(JsonWriter& w, const std::vector<SpanAggregate>& spans);

}  // namespace obs
}  // namespace csrl
