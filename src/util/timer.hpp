// Small wall-clock timer used by benches and the verbose checker output.
#pragma once

#include <chrono>

namespace csrl {

/// Wall-clock stopwatch; starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace csrl
