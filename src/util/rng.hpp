// Deterministic pseudo-random number generation for property-based tests
// and synthetic model generators.
//
// We deliberately do not use std::mt19937 + std::uniform_real_distribution
// for reproducibility across standard libraries: distributions are not
// specified bit-exactly.  SplitMix64 is tiny, fast and fully portable.
#pragma once

#include <cstdint>

namespace csrl {

/// SplitMix64 generator (Steele, Lea, Flood 2014).  Deterministic across
/// platforms; good enough statistical quality for test-case generation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) for bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // small bounds used in tests.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next_u64()) * bound) >> 64);
  }

 private:
  std::uint64_t state_;
};

}  // namespace csrl
