// Reusable scratch-buffer arena for the numerical hot paths.
//
// The uniformisation series loop, the linear solvers and the P3 engines'
// grid sweeps all need a handful of state-sized double vectors per call.
// Allocating them per call is invisible for one query but dominates the
// constant factors of batched lattice runs, where the same sizes are
// requested thousands of times.  A Workspace keeps retired buffers and
// hands them back on the next acquire, so a warmed arena serves a whole
// grid sweep without touching the heap.
//
// The arena is deliberately not thread-safe: each engine call owns one
// workspace (stack-local or threaded through TransientOptions /
// SolverOptions) and leases buffers from the coordinating thread only.
// Parallel kernels keep writing into spans of leased buffers, exactly as
// they do into plain vectors.
//
// LoopGuard is the observability hook behind the allocation-free-loop
// contract: engines wrap their iteration loops in a guard and report the
// number of arena acquisitions that had to touch the heap while the
// guard was alive (counters "uniformisation/allocs_in_loop" and
// "matrix/solver/allocs_in_loop", pinned to zero by tests).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace csrl {

/// Pool of reusable double buffers (see file comment).  Buffers keep
/// their capacity across acquire/release cycles, so a warmed workspace
/// satisfies repeated same-shape requests without heap traffic.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Borrow a buffer resized to `n` (contents unspecified).  Prefers the
  /// retired buffer with the largest capacity, so arenas converge to a
  /// small set of full-sized buffers instead of accumulating one per
  /// distinct size.  Release with release() or via a Lease.
  std::vector<double>& acquire(std::size_t n) {
    std::unique_ptr<std::vector<double>> buf;
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i)
      if (best == free_.size() ||
          free_[i]->capacity() > free_[best]->capacity())
        best = i;
    if (best < free_.size()) {
      buf = std::move(free_[best]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
    } else {
      buf = std::make_unique<std::vector<double>>();
    }
    if (buf->capacity() < n) note_heap_allocation();
    buf->resize(n);
    std::vector<double>& ref = *buf;
    live_.push_back(std::move(buf));
    return ref;
  }

  /// Return a buffer previously obtained from acquire().  Unknown buffers
  /// are ignored (so a Lease outliving a cleared workspace stays safe).
  void release(std::vector<double>& buffer) {
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].get() != &buffer) continue;
      free_.push_back(std::move(live_[i]));
      live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }

  /// Number of buffers currently sitting in the free pool.
  std::size_t retired() const { return free_.size(); }

  /// RAII lease of one buffer; releases on destruction.  Null-workspace
  /// tolerant: with `ws == nullptr` the lease owns a plain vector, so
  /// call sites need no branching on whether an arena was provided.
  class Lease {
   public:
    Lease(Workspace* ws, std::size_t n)
        : ws_(ws), buffer_(ws != nullptr ? &ws->acquire(n) : nullptr) {
      if (buffer_ == nullptr) {
        owned_.resize(n);
        buffer_ = &owned_;
      }
    }
    ~Lease() {
      if (ws_ != nullptr) ws_->release(*buffer_);
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    std::vector<double>& get() { return *buffer_; }
    std::span<double> span() { return {buffer_->data(), buffer_->size()}; }

   private:
    Workspace* ws_;
    std::vector<double>* buffer_;
    std::vector<double> owned_;
  };

  /// Scope marker for an iteration loop: counts the arena acquisitions
  /// that had to grow or create heap storage while the guard was alive.
  /// A warmed loop reports zero; tests pin the derived obs counters to
  /// that.  Null-workspace tolerant (counts stay zero).
  class LoopGuard {
   public:
    explicit LoopGuard(Workspace* ws) : ws_(ws) {
      if (ws_ != nullptr) {
        previous_ = ws_->guard_;
        ws_->guard_ = this;
      }
    }
    ~LoopGuard() {
      if (ws_ != nullptr) ws_->guard_ = previous_;
    }
    LoopGuard(const LoopGuard&) = delete;
    LoopGuard& operator=(const LoopGuard&) = delete;

    /// Heap-touching acquisitions observed while this guard was active.
    std::size_t heap_allocations() const { return heap_allocations_; }

   private:
    friend class Workspace;
    Workspace* ws_;
    LoopGuard* previous_ = nullptr;
    std::size_t heap_allocations_ = 0;
  };

 private:
  void note_heap_allocation() {
    for (LoopGuard* g = guard_; g != nullptr; g = g->previous_)
      ++g->heap_allocations_;
  }

  std::vector<std::unique_ptr<std::vector<double>>> free_;
  std::vector<std::unique_ptr<std::vector<double>>> live_;
  LoopGuard* guard_ = nullptr;
};

/// Thread-safe pool of whole Workspace arenas, for callers that issue
/// engine calls from several threads at once (the resident checker
/// service of ROADMAP item 1).  The unit of checkout is an entire arena:
/// a Workspace itself stays single-threaded by design (see the file
/// comment), so each concurrent engine call borrows one, threads it
/// through its TransientOptions / SolverOptions, and returns it warm —
/// the next caller inherits the full-sized buffers instead of paying the
/// first-iteration allocations again.
class WorkspacePool {
 public:
  /// A pool seeded with `prewarm` empty arenas (they warm up on first
  /// use; pre-seeding merely avoids the unique_ptr allocations under
  /// first-wave contention).
  explicit WorkspacePool(std::size_t prewarm = 0) {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < prewarm; ++i)
      idle_.push_back(std::make_unique<Workspace>());
  }

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Borrow an arena: the most recently returned one (warmest), or a
  /// fresh one when every arena is checked out.  Never blocks and never
  /// fails — peak concurrency simply grows the pool.
  std::unique_ptr<Workspace> check_out() CSRL_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<Workspace> ws = std::move(idle_.back());
        idle_.pop_back();
        return ws;
      }
    }
    return std::make_unique<Workspace>();
  }

  /// Return an arena obtained from check_out().  Null is ignored, so a
  /// moved-from handle can be returned unconditionally.
  void check_in(std::unique_ptr<Workspace> ws) CSRL_EXCLUDES(mutex_) {
    if (ws == nullptr) return;
    MutexLock lock(mutex_);
    idle_.push_back(std::move(ws));
  }

  /// Number of arenas currently sitting idle in the pool.
  std::size_t idle() const CSRL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return idle_.size();
  }

  /// RAII checkout: `Scope scope(pool); engine(..., &scope.get());`.
  class Scope {
   public:
    explicit Scope(WorkspacePool& pool)
        : pool_(pool), ws_(pool.check_out()) {}
    ~Scope() { pool_.check_in(std::move(ws_)); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    Workspace& get() { return *ws_; }

   private:
    WorkspacePool& pool_;
    std::unique_ptr<Workspace> ws_;
  };

 private:
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Workspace>> idle_ CSRL_GUARDED_BY(mutex_);
};

}  // namespace csrl
