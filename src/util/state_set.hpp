// Dynamic bitset over the state space of a model.
//
// Model-checking a formula produces, for every subformula, the set of
// states satisfying it ("Sat sets").  StateSet is the representation used
// throughout the checker: a fixed-size dynamic bitset with the boolean
// algebra the CSRL semantics needs (complement, union, intersection) plus
// iteration over members.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace csrl {

/// Set of state indices drawn from a fixed universe {0, ..., size()-1}.
class StateSet {
 public:
  /// Empty set over an empty universe.
  StateSet() = default;

  /// Set over a universe of `universe` states; initially empty unless
  /// `filled` is true.
  explicit StateSet(std::size_t universe, bool filled = false);

  /// Number of states in the universe (not the number of members).
  std::size_t size() const { return size_; }

  /// Number of members.
  std::size_t count() const;

  bool empty() const { return count() == 0; }

  bool contains(std::size_t s) const;

  void insert(std::size_t s);
  void erase(std::size_t s);

  /// Remove all members (universe size unchanged).
  void clear();

  /// Insert every state of the universe.
  void fill();

  /// Membership complement with respect to the universe.
  StateSet complement() const;

  /// In-place set algebra.  Both operands must share a universe size.
  StateSet& operator|=(const StateSet& other);
  StateSet& operator&=(const StateSet& other);
  StateSet& operator-=(const StateSet& other);

  friend StateSet operator|(StateSet a, const StateSet& b) { return a |= b; }
  friend StateSet operator&(StateSet a, const StateSet& b) { return a &= b; }
  friend StateSet operator-(StateSet a, const StateSet& b) { return a -= b; }

  bool operator==(const StateSet& other) const;

  /// True if every member of this set is a member of `other`.
  bool subset_of(const StateSet& other) const;

  /// True if the two sets share at least one member.
  bool intersects(const StateSet& other) const;

  /// Members in increasing order.
  std::vector<std::size_t> members() const;

  /// 0/1 indicator vector over the universe, used as the right-hand side of
  /// numerical procedures ("probability of being in the set").
  std::vector<double> indicator() const;

  /// "{0, 3, 7}" — for diagnostics and test failure messages.
  std::string to_string() const;

 private:
  void check_same_universe(const StateSet& other) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> blocks_;
};

}  // namespace csrl
