// Clang Thread Safety Analysis attribute macros (DESIGN.md section 3g).
//
// The concurrent core — the thread pool's dispatch protocol, the obs
// metrics registry and span shards, the CsrMatrix kernel caches, the
// shared SatCache and the Workspace arena pool — declares its locking
// discipline with these macros so clang can prove, at compile time, that
// every access to a guarded field happens under its mutex and that every
// REQUIRES contract is met at each call site.  The runtime layers (TSan
// jobs, allocs_in_loop pins) check executions; this layer checks code.
//
// Build wiring: the CSRL_THREAD_SAFETY CMake option adds
// `-Wthread-safety -Werror=thread-safety` on clang, so a violation fails
// the build (negative try_compile cases in cmake/ThreadSafetyChecks.cmake
// prove the diagnostics actually fire).  Under gcc — which has no
// thread-safety analysis — every macro expands to nothing and the
// annotated code compiles unchanged.
//
// Vocabulary (mirrors the canonical mutex.h of the clang documentation):
//
//   CSRL_CAPABILITY("mutex")    class declares itself a lockable capability
//   CSRL_SCOPED_CAPABILITY      RAII class that acquires/releases in
//                               ctor/dtor (MutexLock)
//   CSRL_GUARDED_BY(mu)         field may only be accessed holding `mu`
//   CSRL_PT_GUARDED_BY(mu)      pointee may only be accessed holding `mu`
//   CSRL_REQUIRES(mu)           caller must already hold `mu`
//   CSRL_ACQUIRE(mu)/CSRL_RELEASE(mu)  function acquires/releases `mu`
//   CSRL_TRY_ACQUIRE(b, mu)     returns `b` when `mu` was acquired
//   CSRL_EXCLUDES(mu)           caller must NOT hold `mu` (deadlock guard)
//   CSRL_ACQUIRED_BEFORE/AFTER  lock-ordering declarations between mutexes
//   CSRL_NO_THREAD_SAFETY_ANALYSIS  opt a function body out (used only
//                               inside the CondVar adopt/release dance)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CSRL_TSA(x) __attribute__((x))
#endif
#endif

#ifndef CSRL_TSA
#define CSRL_TSA(x)  // no-op: compiler lacks thread-safety attributes
#endif

#define CSRL_CAPABILITY(x) CSRL_TSA(capability(x))
#define CSRL_SCOPED_CAPABILITY CSRL_TSA(scoped_lockable)
#define CSRL_GUARDED_BY(x) CSRL_TSA(guarded_by(x))
#define CSRL_PT_GUARDED_BY(x) CSRL_TSA(pt_guarded_by(x))
#define CSRL_ACQUIRED_BEFORE(...) CSRL_TSA(acquired_before(__VA_ARGS__))
#define CSRL_ACQUIRED_AFTER(...) CSRL_TSA(acquired_after(__VA_ARGS__))
#define CSRL_REQUIRES(...) CSRL_TSA(requires_capability(__VA_ARGS__))
#define CSRL_REQUIRES_SHARED(...) \
  CSRL_TSA(requires_shared_capability(__VA_ARGS__))
#define CSRL_ACQUIRE(...) CSRL_TSA(acquire_capability(__VA_ARGS__))
#define CSRL_RELEASE(...) CSRL_TSA(release_capability(__VA_ARGS__))
#define CSRL_TRY_ACQUIRE(...) CSRL_TSA(try_acquire_capability(__VA_ARGS__))
#define CSRL_EXCLUDES(...) CSRL_TSA(locks_excluded(__VA_ARGS__))
#define CSRL_RETURN_CAPABILITY(x) CSRL_TSA(lock_returned(x))
#define CSRL_NO_THREAD_SAFETY_ANALYSIS CSRL_TSA(no_thread_safety_analysis)
