// FNV-1a mixing helpers shared by the structural-hash users (formula
// hashing in logic/, the model fingerprint in mrm/, the Sat-cache key in
// core/batch).  64-bit FNV-1a folded byte-wise; doubles enter via their
// bit pattern, so two values hash equally iff they are bit-identical
// (in particular -0.0 and +0.0 differ — callers that want numeric
// equality must normalise first).
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace csrl {
namespace hashing {

inline constexpr std::uint64_t kOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kPrime = 1099511628211ULL;

inline std::uint64_t mix(std::uint64_t h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xffULL;
    h *= kPrime;
  }
  return h;
}

inline std::uint64_t mix(std::uint64_t h, double value) {
  return mix(h, std::bit_cast<std::uint64_t>(value));
}

inline std::uint64_t mix(std::uint64_t h, std::string_view text) {
  h = mix(h, static_cast<std::uint64_t>(text.size()));
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kPrime;
  }
  return h;
}

}  // namespace hashing
}  // namespace csrl
