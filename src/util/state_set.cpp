#include "util/state_set.hpp"

#include <bit>

#include "util/error.hpp"

namespace csrl {

namespace {
constexpr std::size_t kBits = 64;

std::size_t blocks_for(std::size_t n) { return (n + kBits - 1) / kBits; }
}  // namespace

StateSet::StateSet(std::size_t universe, bool filled)
    : size_(universe), blocks_(blocks_for(universe), 0) {
  if (filled) fill();
}

std::size_t StateSet::count() const {
  std::size_t total = 0;
  for (std::uint64_t b : blocks_) total += static_cast<std::size_t>(std::popcount(b));
  return total;
}

bool StateSet::contains(std::size_t s) const {
  if (s >= size_) return false;
  return (blocks_[s / kBits] >> (s % kBits)) & 1u;
}

void StateSet::insert(std::size_t s) {
  if (s >= size_) throw ModelError("StateSet::insert: state out of range");
  blocks_[s / kBits] |= std::uint64_t{1} << (s % kBits);
}

void StateSet::erase(std::size_t s) {
  if (s >= size_) throw ModelError("StateSet::erase: state out of range");
  blocks_[s / kBits] &= ~(std::uint64_t{1} << (s % kBits));
}

void StateSet::clear() {
  for (auto& b : blocks_) b = 0;
}

void StateSet::fill() {
  if (size_ == 0) return;
  for (auto& b : blocks_) b = ~std::uint64_t{0};
  // Mask off bits beyond the universe in the last block.
  const std::size_t used = size_ % kBits;
  if (used != 0) blocks_.back() = (std::uint64_t{1} << used) - 1;
}

StateSet StateSet::complement() const {
  StateSet result(size_, true);
  for (std::size_t i = 0; i < blocks_.size(); ++i) result.blocks_[i] &= ~blocks_[i];
  return result;
}

void StateSet::check_same_universe(const StateSet& other) const {
  if (size_ != other.size_)
    throw ModelError("StateSet: operands have different universe sizes (" +
                     std::to_string(size_) + " vs " + std::to_string(other.size_) + ")");
}

StateSet& StateSet::operator|=(const StateSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < blocks_.size(); ++i) blocks_[i] |= other.blocks_[i];
  return *this;
}

StateSet& StateSet::operator&=(const StateSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < blocks_.size(); ++i) blocks_[i] &= other.blocks_[i];
  return *this;
}

StateSet& StateSet::operator-=(const StateSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < blocks_.size(); ++i) blocks_[i] &= ~other.blocks_[i];
  return *this;
}

bool StateSet::operator==(const StateSet& other) const {
  return size_ == other.size_ && blocks_ == other.blocks_;
}

bool StateSet::subset_of(const StateSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    if ((blocks_[i] & ~other.blocks_[i]) != 0) return false;
  return true;
}

bool StateSet::intersects(const StateSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    if ((blocks_[i] & other.blocks_[i]) != 0) return true;
  return false;
}

std::vector<std::size_t> StateSet::members() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    std::uint64_t b = blocks_[i];
    while (b != 0) {
      const int bit = std::countr_zero(b);
      out.push_back(i * kBits + static_cast<std::size_t>(bit));
      b &= b - 1;
    }
  }
  return out;
}

std::vector<double> StateSet::indicator() const {
  std::vector<double> v(size_, 0.0);
  for (std::size_t s : members()) v[s] = 1.0;
  return v;
}

std::string StateSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for (std::size_t s : members()) {
    if (!first) out += ", ";
    out += std::to_string(s);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace csrl
