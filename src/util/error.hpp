// Error hierarchy for csrlcheck.
//
// All exceptions thrown by the library derive from csrl::Error, so callers
// can catch library failures with a single handler while still being able
// to distinguish model construction problems, formula syntax problems and
// numerical breakdowns.
#pragma once

#include <stdexcept>
#include <string>

namespace csrl {

/// Base class of every exception thrown by csrlcheck.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An ill-formed model: negative rates, dimension mismatches, bad initial
/// distributions, rewards violating an algorithm's precondition, ...
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// A CSRL formula that does not parse or that uses an operator in a way the
/// implemented fragment does not support.
class SyntaxError : public Error {
 public:
  SyntaxError(const std::string& what, std::size_t position)
      : Error(what + " (at offset " + std::to_string(position) + ")"),
        position_(position) {}

  /// Byte offset into the formula string where the problem was detected.
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// A numerical procedure failed to converge or was asked for parameters
/// outside its domain of validity.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// A runtime numerical contract (util/contracts.hpp, core/validate.hpp)
/// caught an invariant violation: a probability left [0,1], a stochastic
/// row stopped summing to 1, a CSR matrix lost structural sanity, an
/// engine postcondition failed, ...  Contracts only run when validation
/// is enabled (CSRL_VALIDATE / CheckOptions::validate), so this always
/// indicates a library bug or memory corruption, never bad user input —
/// bad input is rejected up front with ModelError/NumericalError.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what)
      : Error("contract violation: " + what) {}
};

}  // namespace csrl
