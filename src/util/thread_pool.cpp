#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <thread>

#include "obs/obs.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace csrl {

namespace {

// Set while a thread (worker or caller) executes chunks of some
// parallel_for; nested calls detect it and run inline.
thread_local bool tls_in_parallel_region = false;

// Nesting depth of ForceSerialGuard on this thread; positive forces
// parallel_for to dispatch inline.
thread_local int tls_force_serial = 0;

}  // namespace

ForceSerialGuard::ForceSerialGuard() { ++tls_force_serial; }
ForceSerialGuard::~ForceSerialGuard() { --tls_force_serial; }

struct ThreadPool::Impl {
  explicit Impl(std::size_t workers) {
    threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads.emplace_back([this] { worker_loop(); });
  }

  ~Impl() {
    {
      MutexLock lock(mutex);
      stop = true;
    }
    work_ready.notify_all();
    for (std::thread& t : threads) t.join();
  }

  /// Run `job` on every worker plus the calling thread; returns once all
  /// participants finished the current job.  Dispatches are serialized so
  /// independent callers (e.g. two Checkers on user threads) can share the
  /// pool; the second caller blocks until the first job drained.
  void run(const std::function<void()>& job) CSRL_EXCLUDES(run_mutex, mutex) {
    MutexLock dispatch(run_mutex);
    {
      MutexLock lock(mutex);
      current = &job;
      ++generation;
      active = threads.size();
    }
    work_ready.notify_all();

    tls_in_parallel_region = true;
    job();
    tls_in_parallel_region = false;

    {
      MutexLock lock(mutex);
      while (active != 0) work_done.wait(mutex);
      current = nullptr;
    }
  }

  void worker_loop() CSRL_EXCLUDES(mutex) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void()>* job = nullptr;
      {
        // Idle time is only metered while recording: the clock reads cost
        // more than the dormant-site budget allows, and the wait itself is
        // where a worker spends its whole life between jobs.
        const bool meter = CSRL_OBS_ACTIVE();
        [[maybe_unused]] const std::int64_t idle_from =
            meter ? obs::now_ns() : 0;
        MutexLock lock(mutex);
        while (!stop && generation == seen) work_ready.wait(mutex);
        if (meter)
          CSRL_COUNT("pool/worker_idle_ns",
                     static_cast<std::uint64_t>(obs::now_ns() - idle_from));
        if (stop) return;
        seen = generation;
        job = current;
      }
      tls_in_parallel_region = true;
      (*job)();
      tls_in_parallel_region = false;
      {
        MutexLock lock(mutex);
        if (--active == 0) work_done.notify_all();
      }
    }
  }

  /// Lock order: run_mutex (dispatch serialization) strictly before
  /// mutex (job state); worker threads only ever take mutex.
  Mutex run_mutex CSRL_ACQUIRED_BEFORE(mutex);
  Mutex mutex;
  CondVar work_ready;  // signalled with `mutex` held state changed:
                       // stop set or generation bumped
  CondVar work_done;   // signalled when `active` drops to zero
  const std::function<void()>* current CSRL_GUARDED_BY(mutex) = nullptr;
  std::uint64_t generation CSRL_GUARDED_BY(mutex) = 0;
  std::size_t active CSRL_GUARDED_BY(mutex) = 0;
  bool stop CSRL_GUARDED_BY(mutex) = false;
  std::vector<std::thread> threads;  // immutable after construction
};

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(resolve_threads(num_threads)) {
  if (num_threads_ > 1)
    impl_ = std::make_unique<Impl>(num_threads_ - 1);
}

ThreadPool::~ThreadPool() = default;

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_fn) const {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t range = end - begin;
  if (impl_ == nullptr || range <= grain || tls_in_parallel_region ||
      tls_force_serial > 0) {
    CSRL_COUNT("pool/inline_runs", 1);
    chunk_fn(begin, end);
    return;
  }

  const std::size_t num_chunks = (range + grain - 1) / grain;
  CSRL_COUNT("pool/dispatches", 1);
  CSRL_COUNT("pool/chunks", num_chunks);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error = nullptr;
  Mutex error_mutex;
  std::atomic<bool> failed{false};

  const std::function<void()> job = [&] {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks || failed.load(std::memory_order_relaxed)) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(lo + grain, end);
      try {
        chunk_fn(lo, hi);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  impl_->run(job);
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("CSRL_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0)
      return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {
Mutex global_pool_mutex;
std::shared_ptr<ThreadPool> global_pool CSRL_GUARDED_BY(global_pool_mutex);
}  // namespace

std::shared_ptr<ThreadPool> ThreadPool::global_ptr() {
  // lint:allow hot-lock (guards the global pool pointer; taken once per parallel dispatch, never per element)
  MutexLock lock(global_pool_mutex);
  // lint:allow hot-alloc (one-time lazy construction of the global pool; every later dispatch takes the pointer-copy path)
  if (!global_pool) global_pool = std::make_shared<ThreadPool>(0);
  return global_pool;
}

void ThreadPool::set_global_threads(std::size_t num_threads) {
  const std::size_t resolved = resolve_threads(num_threads);
  MutexLock lock(global_pool_mutex);
  if (global_pool && global_pool->num_threads() == resolved) return;
  global_pool = std::make_shared<ThreadPool>(resolved);
}

}  // namespace csrl
