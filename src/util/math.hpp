#pragma once

// Reentrant libm wrappers.  glibc's lgamma() reports the sign of the
// result through the *global* `signgam`, so two threads evaluating
// lgamma concurrently race on it — harmless for the value we use, but
// undefined behaviour and a TSan finding the moment two checker
// sessions run engine maths side by side (the resident service does
// exactly that).  lgamma_r() takes the sign slot as a parameter; use
// it wherever it exists.
#include <cmath>

namespace csrl {

inline double lgamma_safe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace csrl
