// Fixed-size thread pool with a parallel_for primitive.
//
// Every hot path of the library (SpMV, the engines' per-state sweeps) is
// data-parallel over disjoint index ranges, so one shared pool with a
// chunked parallel_for covers all of them.  Design constraints, in order:
//
//  1. *Determinism.*  Checking the same formula must give bit-identical
//     results at any thread count.  parallel_for guarantees nothing about
//     execution order, so it may only be used where each output element is
//     computed from a fixed expression independent of the partitioning
//     (elementwise kernels, per-row SpMV gathers, max-reductions).
//     Order-sensitive reductions (sums) go through parallel_reduce, whose
//     chunk boundaries depend only on (range, grain) — never on the thread
//     count — and whose partials are combined in ascending chunk order, so
//     the floating-point evaluation tree is fixed.
//  2. *Reusability.*  Workers are started once and reused across every
//     formula of a Checker (and across Checkers); parallel_for dispatch is
//     two mutex acquisitions plus condition-variable wakeups.
//  3. *Safe nesting.*  Kernels call parallel_for and are themselves called
//     from parallel engine loops.  A parallel_for issued from inside a
//     worker (or from a caller already inside a parallel region) runs the
//     whole range inline on the calling thread instead of deadlocking.
//
// Thread-count resolution (ThreadPool::resolve_threads): an explicit
// request wins; otherwise the CSRL_THREADS environment variable; otherwise
// std::thread::hardware_concurrency().  The process-wide shared pool is
// created lazily by ThreadPool::global() and can be re-sized with
// ThreadPool::set_global_threads() (not concurrently with checking).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace csrl {

class ThreadPool {
 public:
  /// A pool executing on `num_threads` lanes total (the calling thread
  /// participates, so num_threads - 1 workers are spawned).  0 resolves
  /// via resolve_threads().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (>= 1).
  std::size_t num_threads() const { return num_threads_; }

  /// Run `chunk_fn(chunk_begin, chunk_end)` over a partition of
  /// [begin, end) into chunks of at most `grain` indices.  Chunks are
  /// claimed dynamically, so per-chunk cost may be uneven; chunk_fn must
  /// write only to locations owned by its index range.  Empty ranges
  /// return immediately.  The first exception thrown by any chunk is
  /// rethrown on the calling thread after all chunks finished or were
  /// abandoned.  Runs inline when the pool has one lane, the range fits a
  /// single grain, or the caller is already inside a parallel region.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>&
                        chunk_fn) const;

  /// Deterministic chunked reduction: partition [begin, end) into chunks
  /// of exactly `grain` indices (last chunk shorter), map each chunk to a
  /// partial with `map(chunk_begin, chunk_end)`, and fold the partials
  /// with `combine` in ascending chunk order.  The evaluation tree depends
  /// only on (begin, end, grain), never on the thread count, so the result
  /// is bit-identical at 1 and N threads.
  template <typename T, typename MapFn, typename CombineFn>
  T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                    T init, MapFn map, CombineFn combine) const {
    if (end <= begin) return init;
    if (grain == 0) grain = 1;
    const std::size_t range = end - begin;
    const std::size_t num_chunks = (range + grain - 1) / grain;
    std::vector<T> partials(num_chunks, init);
    parallel_for(0, num_chunks, 1,
                 [&](std::size_t chunk_begin, std::size_t chunk_end) {
                   for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
                     const std::size_t lo = begin + c * grain;
                     const std::size_t hi = std::min(lo + grain, end);
                     partials[c] = map(lo, hi);
                   }
                 });
    T acc = init;
    for (const T& p : partials) acc = combine(acc, p);
    return acc;
  }

  /// Resolve a requested thread count: `requested` if non-zero, else the
  /// CSRL_THREADS environment variable if set and positive, else
  /// hardware_concurrency() (with a floor of 1).
  static std::size_t resolve_threads(std::size_t requested);

  /// The process-wide shared pool (created lazily).  Shared ownership so a
  /// re-size cannot pull the pool out from under an engine that captured
  /// it.
  static std::shared_ptr<ThreadPool> global_ptr();
  static ThreadPool& global() { return *global_ptr(); }

  /// Replace the shared pool with one of `num_threads` lanes (0 = resolve
  /// automatically).  No-op if the current pool already has that many.
  /// Must not race with checking in progress.
  static void set_global_threads(std::size_t num_threads);

 private:
  struct Impl;
  std::size_t num_threads_;
  std::unique_ptr<Impl> impl_;  // absent for single-lane pools
};

/// RAII: while alive, every parallel_for issued from this thread (on any
/// pool) runs inline on the calling thread, exactly like a 1-lane pool.
/// This is the 1-thread vs N-thread agreement hook of the contract layer
/// (core/validate.cpp): re-running a computation under the guard must
/// reproduce the parallel result bit for bit.  Guards nest.
class ForceSerialGuard {
 public:
  ForceSerialGuard();
  ~ForceSerialGuard();
  ForceSerialGuard(const ForceSerialGuard&) = delete;
  ForceSerialGuard& operator=(const ForceSerialGuard&) = delete;
};

/// parallel_for on the shared pool — the form the kernels use.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  ThreadPool::global().parallel_for(begin, end, grain, chunk_fn);
}

}  // namespace csrl
