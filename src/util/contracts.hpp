// Runtime numerical contracts.
//
// The correctness of the numerical core rests on invariants the type
// system cannot see: probability vectors stay inside [0,1], stochastic
// rows sum to 1, generator rows sum to 0, CSR structure stays sorted and
// duplicate-free, the P3 joint distribution is monotone in the reward
// bound.  The CSRL_CONTRACT macro family makes those invariants
// machine-checkable at the places that establish them, with three gears:
//
//   * compiled out entirely with -DCSRL_CONTRACTS=OFF (macros expand to
//     nothing; release builds pay zero cost),
//   * compiled in but dormant by default in NDEBUG builds (one predicted
//     branch on a cached level per contract site),
//   * switched on at runtime by the CSRL_VALIDATE environment variable
//     ("1"/"basic" for the cheap O(n)/O(nnz) checks, "2"/"paranoid" to
//     additionally re-run engines for monotonicity and 1-vs-N-thread
//     agreement), by CheckOptions::validate, or programmatically with
//     validation::set_level / ScopedValidation (what the tests use).
//
// Violations throw ContractViolation (util/error.hpp) carrying the
// failed expression, source location, and a caller-supplied context
// string (matrix name, row, value, tolerance).  The context expression
// is evaluated lazily — only when the contract actually fails — so
// call sites may build rich std::string messages without cost in the
// passing case.
#pragma once

#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace csrl {

/// How much runtime validation the contract sites perform.
enum class ValidationLevel {
  kOff = 0,       // contracts are no-ops
  kBasic = 1,     // cheap structural/numerical checks, O(n) or O(nnz)
  kParanoid = 2,  // + recomputation-based checks (monotonicity in r,
                  //   1-thread vs N-thread agreement): several times the
                  //   cost of the computation being checked
};

namespace validation {

namespace detail {

/// -1 encodes "no programmatic override: fall back to the environment".
inline std::atomic<int>& override_level() {
  static std::atomic<int> level{-1};
  return level;
}

/// CSRL_VALIDATE parsed once per process; absent/unrecognised values fall
/// back to the build-type default (basic in debug builds, off otherwise).
inline ValidationLevel env_level() {
  static const ValidationLevel parsed = [] {
    if (const char* env = std::getenv("CSRL_VALIDATE")) {
      const std::string v(env);
      if (v == "0" || v == "off" || v == "false" || v == "none")
        return ValidationLevel::kOff;
      if (v == "2" || v == "paranoid" || v == "full")
        return ValidationLevel::kParanoid;
      if (v == "1" || v == "on" || v == "true" || v == "basic")
        return ValidationLevel::kBasic;
    }
#ifdef NDEBUG
    return ValidationLevel::kOff;
#else
    return ValidationLevel::kBasic;
#endif
  }();
  return parsed;
}

}  // namespace detail

/// The level contract sites currently check at.
inline ValidationLevel level() {
  const int forced = detail::override_level().load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<ValidationLevel>(forced);
  return detail::env_level();
}

/// Programmatic override of the environment/build default (process-wide,
/// like ThreadPool::set_global_threads).  CheckOptions::validate routes
/// here.
inline void set_level(ValidationLevel l) {
  detail::override_level().store(static_cast<int>(l),
                                 std::memory_order_relaxed);
}

/// Drop the programmatic override, falling back to CSRL_VALIDATE.
inline void clear_level() {
  detail::override_level().store(-1, std::memory_order_relaxed);
}

inline bool enabled() { return level() >= ValidationLevel::kBasic; }
inline bool paranoid() { return level() >= ValidationLevel::kParanoid; }

/// Throw the single contract-failure error type with full context.  The
/// innermost active tracing span (obs/obs.hpp) is appended when one is
/// open, so a violation thrown deep inside an engine self-locates
/// ("... (span: core/until/p3/p3/sericola/all_starts)") even in builds
/// and runs where nothing is being recorded — the span *stack* is
/// maintained whenever the observability sites are compiled in.
[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              const std::string& context) {
  std::string message = std::string(expr) + " [" + file + ":" +
                        std::to_string(line) + "] " + context;
  if (const std::string span = obs::current_span_path(); !span.empty())
    message += " (span: " + span + ")";
  throw ContractViolation(std::move(message));
}

}  // namespace validation

/// RAII level override for tests and tools: forces `l` on construction,
/// restores the previous state (override or environment fallback) on
/// destruction.
class ScopedValidation {
 public:
  explicit ScopedValidation(ValidationLevel l)
      : previous_(validation::detail::override_level().load(
            std::memory_order_relaxed)) {
    validation::set_level(l);
  }
  ~ScopedValidation() {
    validation::detail::override_level().store(previous_,
                                               std::memory_order_relaxed);
  }
  ScopedValidation(const ScopedValidation&) = delete;
  ScopedValidation& operator=(const ScopedValidation&) = delete;

 private:
  int previous_;
};

}  // namespace csrl

// CSRL_CONTRACT(cond, context): check `cond` when validation is enabled;
// on failure throw ContractViolation with the stringised condition,
// source location and the lazily evaluated `context` (any expression
// convertible to std::string).  CSRL_CONTRACT_PARANOID only checks at the
// paranoid level.  With -DCSRL_CONTRACTS=OFF both compile to nothing.
#ifdef CSRL_CONTRACTS_DISABLED

#define CSRL_CONTRACT(cond, context) ((void)0)
#define CSRL_CONTRACT_PARANOID(cond, context) ((void)0)
#define CSRL_CONTRACTS_ACTIVE() false

#else

#define CSRL_CONTRACT(cond, context)                                     \
  do {                                                                   \
    if (::csrl::validation::enabled() && !(cond))                        \
      ::csrl::validation::fail(__FILE__, __LINE__, #cond, (context));    \
  } while (false)

#define CSRL_CONTRACT_PARANOID(cond, context)                            \
  do {                                                                   \
    if (::csrl::validation::paranoid() && !(cond))                       \
      ::csrl::validation::fail(__FILE__, __LINE__, #cond, (context));    \
  } while (false)

/// True when contract sites are compiled in AND validation is enabled —
/// for guarding whole validation blocks (e.g. a Validator call) rather
/// than a single condition.
#define CSRL_CONTRACTS_ACTIVE() (::csrl::validation::enabled())

#endif  // CSRL_CONTRACTS_DISABLED
