// Annotated mutex primitives for the concurrent core.
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// attributes, so clang's analysis (util/annotations.hpp) cannot see
// through them.  These thin wrappers — a std::mutex declared as a
// CAPABILITY, a lock_guard-shaped SCOPED_CAPABILITY, and a condition
// variable whose wait() declares its REQUIRES contract — are the only
// locking vocabulary the annotated subsystems use.  They add no state
// and no indirection beyond the wrapped standard types; under gcc the
// attributes vanish and they are exactly std::mutex / std::lock_guard.
//
// Deliberately minimal: no timed waits, no shared (reader/writer) mode,
// no try-scoped form — nothing in the codebase needs them, and every
// entry point added here is an entry point the analysis must model.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace csrl {

/// std::mutex declared as a thread-safety capability.  Fields guarded by
/// an instance are annotated CSRL_GUARDED_BY(that_instance).
class CSRL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CSRL_ACQUIRE() { m_.lock(); }
  void unlock() CSRL_RELEASE() { m_.unlock(); }
  bool try_lock() CSRL_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII scoped lock over a Mutex (std::lock_guard with the
/// scoped-capability attributes clang needs to track the critical
/// section's extent).
class CSRL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) CSRL_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() CSRL_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable bound to a Mutex at each wait.  wait() declares
/// that the caller holds the mutex, which is what lets guarded fields be
/// read in the caller's own `while (!condition) cv.wait(mu);` loop —
/// the analysis sees the whole loop inside the critical section.
/// (Predicate-lambda waits are deliberately absent: the lambda would be
/// analysed as a separate function that touches guarded state without a
/// visible lock.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `m`, sleep, re-acquire `m` before returning.
  /// The adopt/release dance below hands the already-held native mutex
  /// to a unique_lock for the wait and takes it back afterwards, so the
  /// capability stays held across the call from the analysis' point of
  /// view — which matches reality on both edges of the wait.
  void wait(Mutex& m) CSRL_REQUIRES(m) CSRL_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(m.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace csrl
