// Parallel scaling of the three P3 engines: wall-clock time at 1/2/4/N
// threads on (a) the paper's ad-hoc-network case study (the reduced Q3
// model — tiny, so it mostly measures dispatch overhead) and (b) a large
// synthetic MRM (>= 10^5 states) where the sweeps and SpMVs dominate.
//
// Emits BENCH_parallel_scaling.json in the working directory.  Both the
// measured and the single-CPU path write the same document shape —
// schema "csrl-bench-parallel-scaling-v1" with the common "reps" array
// plus a "scaling_measured" flag — so ledger and perf tooling never
// special-case this bench.  When scaling is measured, "records" holds
// one entry per (engine, model, threads) with wall_ms, speedup vs
// 1 thread, and a bitwise-identity flag against the 1-thread result;
// on single-CPU hosts "single_thread_profiles" carries each engine's
// full RunReport instead.
//
// Engines are measured in the shape the checker uses them in: Sericola in
// its one-pass all-start-states form, pseudo-Erlang and discretisation via
// joint_distribution from the model's initial state.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engines/discretisation_engine.hpp"
#include "core/engines/erlang_engine.hpp"
#include "core/engines/sericola_engine.hpp"
#include "models/adhoc.hpp"
#include "models/synthetic.hpp"
#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "util/state_set.hpp"
#include "util/thread_pool.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

struct Record {
  std::string engine;
  std::string model;
  std::size_t states = 0;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;
  bool identical_to_serial = true;
};

std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> counts{1, 2, 4};
  const std::size_t hw = ThreadPool::resolve_threads(0);
  counts.push_back(hw);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

/// One engine/model cell: run at every thread count, keep the 1-thread
/// result as the bitwise reference.
template <typename Fn>
void measure(const std::string& engine, const std::string& model_name,
             std::size_t states, Fn compute, std::vector<Record>& out) {
  std::vector<double> reference;
  double serial_ms = 0.0;
  for (std::size_t threads : thread_counts()) {
    ThreadPool::set_global_threads(threads);
    WallTimer timer;
    const std::vector<double> result = compute();
    const double ms = timer.seconds() * 1e3;

    Record rec;
    rec.engine = engine;
    rec.model = model_name;
    rec.states = states;
    rec.threads = threads;
    rec.wall_ms = ms;
    if (threads == 1) {
      reference = result;
      serial_ms = ms;
      rec.speedup = 1.0;
      rec.identical_to_serial = true;
    } else {
      rec.speedup = ms > 0.0 ? serial_ms / ms : 0.0;
      rec.identical_to_serial =
          result.size() == reference.size() &&
          std::memcmp(result.data(), reference.data(),
                      result.size() * sizeof(double)) == 0;
    }
    std::printf("%-16s  %-12s  %7zu states  %2zu threads  %9.2f ms  "
                "speedup %5.2fx  %s\n",
                engine.c_str(), model_name.c_str(), states, threads, ms,
                rec.speedup, rec.identical_to_serial ? "bit-identical" : "DIFFERS");
    std::fflush(stdout);
    out.push_back(std::move(rec));
  }
  ThreadPool::set_global_threads(1);
}

/// The single document shape both paths emit.  `records` is empty on
/// single-CPU hosts, `profiles` (pre-serialised RunReport JSON) is
/// empty when scaling was measured; the keys are always present so
/// consumers can parse unconditionally.
void write_json(const csrl_bench::BenchObs& obs_guard, bool scaling_measured,
                const std::vector<Record>& records,
                const std::vector<std::string>& profiles, const char* path) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("csrl-bench-parallel-scaling-v1");
  w.key("bench").value("parallel_scaling");
  w.key("scaling_measured").value(scaling_measured);
  w.key("reps").begin_array();
  for (const csrl_bench::BenchObs::RepStats& r : obs_guard.reps()) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("reps").value(static_cast<std::uint64_t>(r.reps));
    w.key("median_ms").value(r.median_ms);
    w.key("min_ms").value(r.min_ms);
    w.end_object();
  }
  w.end_array();
  w.key("records").begin_array();
  for (const Record& r : records) {
    w.begin_object();
    w.key("engine").value(r.engine);
    w.key("model").value(r.model);
    w.key("states").value(static_cast<std::uint64_t>(r.states));
    w.key("threads").value(static_cast<std::uint64_t>(r.threads));
    w.key("wall_ms").value(r.wall_ms);
    w.key("speedup").value(r.speedup);
    w.key("identical_to_serial").value(r.identical_to_serial);
    w.end_object();
  }
  w.end_array();
  w.key("single_thread_profiles").begin_array();
  for (const std::string& profile : profiles) w.raw(profile);
  w.end_array();
  w.end_object();
  const std::string text = std::move(w).str();

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  csrl_bench::BenchObs obs_guard("parallel_scaling");
  std::printf("=== Parallel scaling of the P3 engines ===\n");
  std::printf("hardware threads: %zu (CSRL_THREADS overrides)\n\n",
              ThreadPool::resolve_threads(0));
  {
    const Mrm q3 = build_q3_reduced_mrm();
    StateSet success(q3.num_states());
    success.insert(1);
    const SericolaEngine engine(1e-8);
    obs_guard.timed_reps("sericola_q3", [&] {
      return engine.joint_probability_all_starts(
          q3, kTimeBoundHours, kRewardBoundMah, success)[0];
    });
  }

  // On a single-CPU host every multi-thread point would just measure
  // oversubscription noise and report speedups < 1 that say nothing about
  // the code.  The scaling table is skipped (marked explicitly, so
  // downstream tooling can tell "not measured" from "measured badly"),
  // but each engine still runs once at 1 thread and its full RunReport —
  // Fox-Glynn window, iteration/SpMV counters, span timings — is emitted
  // so the perf trajectory keeps its attribution data on such hosts.
  if (ThreadPool::resolve_threads(0) <= 1) {
    std::printf(
        "single hardware thread: skipping scaling measurements, recording "
        "single-thread engine profiles instead\n");
    ThreadPool::set_global_threads(1);
    const Mrm q3 = build_q3_reduced_mrm();
    const std::size_t n = q3.num_states();
    StateSet success(n);
    success.insert(1);  // amalgamated "success" state of the reduction

    std::vector<std::string> profiles;
    const auto profile = [&](const std::string& engine, double truncation,
                             const auto& compute) {
      obs::ReportScope scope;
      compute();
      const obs::RunReport report = scope.finish(
          engine, n, q3.rates().nnz(), truncation);
      std::printf("%-16s  %7zu states  1 thread   %9.2f ms\n", engine.c_str(),
                  n, report.wall_seconds * 1e3);
      profiles.push_back(report.to_json());
    };
    profile("sericola", 1e-8, [&] {
      SericolaEngine(1e-8).joint_probability_all_starts(
          q3, kTimeBoundHours, kRewardBoundMah, success);
    });
    profile("erlang-64", 1e-9, [&] {
      ErlangEngine(64).joint_distribution(q3, kTimeBoundHours,
                                          kRewardBoundMah);
    });
    profile("discretisation", 1.0 / 32.0, [&] {
      DiscretisationEngine(1.0 / 32.0)
          .joint_distribution(q3, kTimeBoundHours, kRewardBoundMah);
    });

    write_json(obs_guard, /*scaling_measured=*/false, {}, profiles,
               "BENCH_parallel_scaling.json");
    return 0;
  }

  std::vector<Record> records;

  // --- The paper's ad-hoc-network case study (reduced Q3 model). ---
  {
    const Mrm q3 = build_q3_reduced_mrm();
    const std::size_t n = q3.num_states();
    StateSet success(n);
    success.insert(1);  // amalgamated "success" state of the reduction
    measure("sericola", "adhoc-q3", n,
            [&] {
              return SericolaEngine(1e-8).joint_probability_all_starts(
                  q3, kTimeBoundHours, kRewardBoundMah, success);
            },
            records);
    measure("erlang-64", "adhoc-q3", n,
            [&] {
              return ErlangEngine(64)
                  .joint_distribution(q3, kTimeBoundHours, kRewardBoundMah)
                  .per_state;
            },
            records);
    measure("discretisation", "adhoc-q3", n,
            [&] {
              return DiscretisationEngine(1.0 / 32.0)
                  .joint_distribution(q3, kTimeBoundHours, kRewardBoundMah)
                  .per_state;
            },
            records);
  }

  // --- A large synthetic MRM (>= 10^5 states). ---
  // Few distinct reward levels (Sericola's store is O(m N |S|)), modest
  // exit rates (the discretisation grid needs E(s) d < 1), ~5 transitions
  // per state.
  {
    const Mrm big = random_mrm(7, 100000, 4.0e-5, 1.0, 3);
    const std::size_t n = big.num_states();
    StateSet target(n);
    for (std::size_t s = n - 100; s < n; ++s) target.insert(s);
    const double t = 0.5;
    const double r = 0.4 * big.max_reward() * t;

    measure("sericola", "random-100k", n,
            [&] {
              return SericolaEngine(1e-6).joint_probability_all_starts(
                  big, t, r, target);
            },
            records);
    measure("erlang-8", "random-100k", n,
            [&] {
              return ErlangEngine(8).joint_distribution(big, t, r).per_state;
            },
            records);
    measure("discretisation", "random-100k", n,
            [&] {
              return DiscretisationEngine(1.0 / 16.0)
                  .joint_distribution(big, t, 0.5)
                  .per_state;
            },
            records);
  }

  write_json(obs_guard, /*scaling_measured=*/true, records, {},
             "BENCH_parallel_scaling.json");
  return 0;
}
