// Scaling study: how the three Section-4 procedures behave as the state
// space grows — the observations of the paper's Section 5.4 ("General
// observations") made measurable:
//   * Sericola is fast and has the only a-priori error bound, but its
//     cost grows with N_eps^2 and the number of reward classes;
//   * the discretisation suffers from large time bounds and state spaces;
//   * pseudo-Erlang is cheap for small k but its chain is |S|*k states.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engines/discretisation_engine.hpp"
#include "core/engines/erlang_engine.hpp"
#include "core/engines/sericola_engine.hpp"
#include "models/synthetic.hpp"
#include "obs/obs.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

struct Workload {
  Mrm model;
  double t;
  double r;
  StateSet target;
};

Workload workload(std::size_t states) {
  Mrm model = birth_death_mrm(states, 2.0, 3.0);
  const double t = 4.0;
  const double r = 0.5 * model.max_reward() * t;
  StateSet target(states);
  target.insert(states - 1);
  return {std::move(model), t, r, std::move(target)};
}

void print_comparison() {
  std::printf("=== Scaling: the three engines vs state-space size ===\n");
  std::printf("birth-death chains, t=4, r=0.5*max_reward*t\n");
  std::printf("%7s  %-22s  %-22s  %-22s\n", "states", "sericola(1e-8)",
              "erlang(k=64)", "discretisation(1/64)");
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    const Workload w = workload(n);
    std::printf("%7zu", n);

    WallTimer sericola_timer;
    const double ps = SericolaEngine(1e-8).joint_probability_all_starts(
        w.model, w.t, w.r, w.target)[0];
    std::printf("  %.6f %8.2f ms", ps, sericola_timer.seconds() * 1e3);

    WallTimer erlang_timer;
    const double pe = ErlangEngine(64).joint_probability_all_starts(
        w.model, w.t, w.r, w.target)[0];
    std::printf("  %.6f %8.2f ms", pe, erlang_timer.seconds() * 1e3);

    WallTimer disc_timer;
    const double pd = DiscretisationEngine(1.0 / 64)
                          .joint_distribution(w.model, w.t, w.r)
                          .probability_in(w.target);
    std::printf("  %.6f %8.2f ms\n", pd, disc_timer.seconds() * 1e3);
  }
  std::printf("\n");
}

void BM_ScalingSericola(benchmark::State& state) {
  const Workload w = workload(static_cast<std::size_t>(state.range(0)));
  const SericolaEngine engine(1e-8);
  for (auto _ : state) {
    auto result = engine.joint_probability_all_starts(w.model, w.t, w.r, w.target);
    benchmark::DoNotOptimize(result.data());
  }
}
BENCHMARK(BM_ScalingSericola)->RangeMultiplier(2)->Range(4, 32)->Unit(
    benchmark::kMillisecond);

void BM_ScalingErlang(benchmark::State& state) {
  const Workload w = workload(static_cast<std::size_t>(state.range(0)));
  const ErlangEngine engine(64);
  for (auto _ : state) {
    auto result = engine.joint_probability_all_starts(w.model, w.t, w.r, w.target);
    benchmark::DoNotOptimize(result.data());
  }
}
BENCHMARK(BM_ScalingErlang)->RangeMultiplier(2)->Range(4, 32)->Unit(
    benchmark::kMillisecond);

void BM_ScalingDiscretisation(benchmark::State& state) {
  const Workload w = workload(static_cast<std::size_t>(state.range(0)));
  const DiscretisationEngine engine(1.0 / 64);
  for (auto _ : state) {
    auto result = engine.joint_distribution(w.model, w.t, w.r);
    benchmark::DoNotOptimize(result.per_state.data());
  }
}
BENCHMARK(BM_ScalingDiscretisation)->RangeMultiplier(2)->Range(4, 32)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  csrl_bench::BenchObs obs_guard("scaling_engines");
  print_comparison();
  {
    const Workload w = workload(32);
    const SericolaEngine engine(1e-8);
    obs_guard.timed_reps("sericola_n32", [&] {
      return engine.joint_probability_all_starts(w.model, w.t, w.r,
                                                 w.target)[0];
    });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
