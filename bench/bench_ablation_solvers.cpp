// Ablation (DESIGN.md): iterative-solver choice for the embedded linear
// systems (unbounded until, property class P0) — Jacobi vs Gauss-Seidel vs
// SOR — and the effect of the Fox-Glynn-style Poisson window vs a naive
// fixed-length series on transient analysis.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/checker.hpp"
#include "ctmc/foxglynn.hpp"
#include "ctmc/uniformisation.hpp"
#include "logic/parser.hpp"
#include "models/synthetic.hpp"
#include "obs/obs.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

Mrm workload(std::size_t states) {
  // Tandem queue: the forward bias makes Gauss-Seidel ordering matter.
  const std::size_t side = states;
  return tandem_queue_mrm(side, side, 1.0, 1.5, 1.2);
}

void print_comparison() {
  std::printf("=== Ablation: linear solvers for unbounded until (P0) ===\n");
  const FormulaPtr formula = parse_formula("P=? [ !full2 U blocked ]");
  std::printf("%9s  %10s  %12s  %10s\n", "states", "jacobi", "gauss-seidel",
              "sor(1.2)");
  for (std::size_t side : {8u, 16u, 32u, 48u}) {
    const Mrm model = workload(side);
    std::printf("%9zu", model.num_states());
    for (LinearMethod method : {LinearMethod::kJacobi, LinearMethod::kGaussSeidel,
                                LinearMethod::kSor}) {
      CheckOptions options;
      options.solver.method = method;
      options.solver.omega = 1.2;
      const Checker checker(model, options);
      WallTimer timer;
      const double value = checker.value_initially(*formula);
      benchmark::DoNotOptimize(value);
      std::printf("  %7.2f ms", timer.seconds() * 1e3);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void solve_with(benchmark::State& state, LinearMethod method, double omega) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Mrm model = workload(side);
  CheckOptions options;
  options.solver.method = method;
  options.solver.omega = omega;
  const Checker checker(model, options);
  const FormulaPtr formula = parse_formula("P=? [ !full2 U blocked ]");
  double value = 0.0;
  for (auto _ : state) {
    value = checker.value_initially(*formula);
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
}

void BM_P0_Jacobi(benchmark::State& state) {
  solve_with(state, LinearMethod::kJacobi, 1.0);
}
void BM_P0_GaussSeidel(benchmark::State& state) {
  solve_with(state, LinearMethod::kGaussSeidel, 1.0);
}
void BM_P0_Sor(benchmark::State& state) {
  solve_with(state, LinearMethod::kSor, 1.2);
}
BENCHMARK(BM_P0_Jacobi)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_P0_GaussSeidel)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_P0_Sor)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// Poisson-window ablation: the adaptive window vs always starting at n=0.
void BM_PoissonWindowAdaptive(benchmark::State& state) {
  const double lt = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const PoissonWeights w = poisson_weights(lt, 1e-10);
    benchmark::DoNotOptimize(w.total);
    state.counters["window"] = static_cast<double>(w.right - w.left + 1);
  }
}
BENCHMARK(BM_PoissonWindowAdaptive)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TransientLargeHorizon(benchmark::State& state) {
  // Steady-state detection makes long horizons cheap; toggling it off
  // shows the cost of the full series.
  const Mrm model = workload(16);
  TransientOptions options;
  options.steady_state_detection = state.range(0) != 0;
  StateSet target(model.num_states());
  target.insert(0);
  double value = 0.0;
  for (auto _ : state) {
    value = transient_reach(model.chain(), target, 500.0, options)[0];
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
}
BENCHMARK(BM_TransientLargeHorizon)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  csrl_bench::BenchObs obs_guard("ablation_solvers");
  print_comparison();
  {
    const Mrm model = workload(32);
    const FormulaPtr formula = parse_formula("P=? [ !full2 U blocked ]");
    CheckOptions options;
    options.solver.method = LinearMethod::kGaussSeidel;
    const Checker checker(model, options);
    obs_guard.timed_reps("p0_gauss_seidel_side32", [&] {
      return checker.value_initially(*formula);
    });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
