// Resident-service gate: concurrent mixed-query replay with cross-client
// lattice coalescing.
//
// The workload replays a large stream of textual CSRL queries (default
// 1e5, --queries N) drawn from ~100 unique queries over two models — the
// paper's multiprocessor case study and a tandem queue — in a
// deterministic shuffled order: four P3 point-query families that
// coalesce into times x rewards lattice passes, plus a sprinkle of
// direct (boolean / steady-state / unbounded-until) queries that
// exercise the shared SatCache instead.
//
// Two phases:
//   * offline replay (workers = 0, drain_now): the deterministic
//     coalescing gate.  Total SpMV work of the served replay must be
//     >= 3x lower than the uncoalesced per-query baseline (each unique
//     query run once on a fresh private checker, scaled by its replay
//     multiplicity), every answer bitwise identical to that private
//     checker, and zero queries dropped.
//   * live serving (2 workers, 4 client threads): throughput and the
//     p50/p99 query latency lifted from the service's own RunReport.
//
// Exit code 0 only when the offline gate holds; CI's bench-smoke job
// runs this with --queries 10000 and archives BENCH_service.json plus
// the BENCH_service_obs.json attribution.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/checker.hpp"
#include "models/multiprocessor.hpp"
#include "models/synthetic.hpp"
#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "service/plan.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

struct UniqueQuery {
  std::size_t model = 0;  // index into the model table
  std::string text;
  std::size_t multiplicity = 0;
  // Reference answer from a private per-query checker (the uncoalesced
  // client), mirroring the service's value semantics.
  double ref_value = 0.0;
  std::uint64_t baseline_spmv = 0;  // SpMV count of one private run
};

std::uint64_t spmv_total(const obs::MetricsSnapshot& delta) {
  return delta.counter("spmv/multiply") + delta.counter("spmv/multiply_left");
}

std::string fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", v);
  return buffer;
}

/// The ~100 unique queries of the replay: four coalescible P3 families
/// (6 times x 4 rewards each) plus four direct queries per model.
std::vector<UniqueQuery> build_unique_queries() {
  const std::vector<double> times{0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
  const std::vector<double> mp_rewards{1.0, 2.0, 4.0, 6.0};
  const std::vector<double> tq_rewards{1.0, 2.0, 3.0, 5.0};

  std::vector<UniqueQuery> unique;
  const auto lattice_family = [&](std::size_t model, const std::string& head,
                                  const std::string& body,
                                  const std::vector<double>& rewards) {
    for (double t : times) {
      for (double r : rewards) {
        UniqueQuery q;
        q.model = model;
        q.text = head + " [ " + body + "[0," + fmt(t) + "]{0," + fmt(r) +
                 "} " + (model == 0 ? "down" : "blocked") + " ]";
        unique.push_back(q);
      }
    }
    (void)body;
  };
  lattice_family(0, "P=?", "operational U", mp_rewards);
  lattice_family(0, "P>=0.5", "(operational | degraded) U", mp_rewards);
  lattice_family(1, "P=?", "!blocked U", tq_rewards);
  lattice_family(1, "P<0.5", "(full1 | full2) U", tq_rewards);

  const char* const direct[][2] = {
      {"0", "P>=0.01 [ operational U down ]"},
      {"0", "S>0.05 [ all_up ]"},
      {"0", "operational | down"},
      {"0", "P>=0.5 [ (operational & !degraded) U[1,2] down ]"},
      {"1", "S>0.05 [ empty ]"},
      {"1", "empty | full1"},
      {"1", "P>=0.01 [ !blocked U blocked ]"},
      {"1", "P<0.9 [ (full1 | full2) U[0.5,1.5] blocked ]"},
  };
  for (const auto& d : direct) {
    UniqueQuery q;
    q.model = static_cast<std::size_t>(d[0][0] - '0');
    q.text = d[1];
    unique.push_back(q);
  }
  return unique;
}

/// Private-checker reference mirroring CheckerService value semantics:
/// lattice-planned verdict queries carry the underlying probability.
double reference_value(const Mrm& model, const std::string& text) {
  const Checker checker(model);
  const service::QueryPlan plan = service::plan_query(text);
  if (plan.kind == service::PlanKind::kLattice && !plan.is_value_query)
    return checker.value_initially(
        *Formula::probability_query(plan.formula->path()));
  return checker.value_initially(*plan.formula);
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct ReplayOutcome {
  std::uint64_t spmv = 0;
  std::uint64_t mismatches = 0;
  service::ServiceStats stats;
  obs::RunReport report;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_queries = 100000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc)
      num_queries = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
  }

  csrl_bench::BenchObs obs_guard("service");

  MultiprocessorParams params;
  const std::vector<Mrm> models = {multiprocessor_mrm(params),
                                   tandem_queue_mrm(3, 3, 2.0, 2.5, 2.0)};
  std::printf("=== Service gate: coalesced replay vs per-query baseline ===\n");
  std::printf("models: multiprocessor (%zu states), tandem queue (%zu states)\n",
              models[0].num_states(), models[1].num_states());

  // ---- Workload -----------------------------------------------------------
  std::vector<UniqueQuery> unique = build_unique_queries();
  // Direct queries get ~0.25% of the stream each; the lattice families
  // share the rest evenly.
  const std::size_t num_direct = 8;
  const std::size_t num_lattice = unique.size() - num_direct;
  const std::size_t direct_mult =
      num_queries / 400 > 0 ? num_queries / 400 : 1;
  std::size_t assigned = 0;
  for (std::size_t i = num_lattice; i < unique.size(); ++i) {
    unique[i].multiplicity = direct_mult;
    assigned += direct_mult;
  }
  const std::size_t remaining = num_queries > assigned ? num_queries - assigned : 0;
  for (std::size_t i = 0; i < num_lattice; ++i)
    unique[i].multiplicity = remaining / num_lattice + (i < remaining % num_lattice ? 1 : 0);

  std::vector<std::size_t> stream;  // indices into `unique`
  stream.reserve(num_queries);
  for (std::size_t i = 0; i < unique.size(); ++i)
    for (std::size_t k = 0; k < unique[i].multiplicity; ++k) stream.push_back(i);
  SplitMix64 rng(4242);
  for (std::size_t i = stream.size(); i > 1; --i)
    std::swap(stream[i - 1], stream[rng.next_below(i)]);
  std::printf("replaying %zu queries over %zu unique (%zu coalescible)\n",
              stream.size(), unique.size(), num_lattice);

  // ---- Uncoalesced baseline ----------------------------------------------
  // Each unique query once, on a fresh private checker (no shared cache),
  // scaled by its multiplicity: what num_queries independent clients with
  // private Checkers would pay.
  std::uint64_t baseline_spmv = 0;
  for (UniqueQuery& q : unique) {
    const obs::MetricsSnapshot before = obs::snapshot_metrics();
    q.ref_value = reference_value(models[q.model], q.text);
    q.baseline_spmv =
        spmv_total(obs::metrics_delta(before, obs::snapshot_metrics()));
    baseline_spmv += q.baseline_spmv * q.multiplicity;
  }
  std::printf("baseline (private checker per query): %llu SpMV\n",
              static_cast<unsigned long long>(baseline_spmv));

  // ---- Phase 1: offline replay (deterministic coalescing gate) ------------
  const auto offline_replay = [&]() {
    service::ServiceOptions options;
    options.workers = 0;
    options.max_pending = stream.size() + 1;
    service::CheckerService checker_service(options);
    std::vector<service::ModelId> ids;
    ids.reserve(models.size());
    for (const Mrm& m : models)
      ids.push_back(checker_service.register_model(m));

    const obs::MetricsSnapshot before = obs::snapshot_metrics();
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(stream.size());
    for (std::size_t q : stream)
      futures.push_back(
          checker_service.submit(ids[unique[q].model], unique[q].text));
    checker_service.drain_now();

    ReplayOutcome outcome;
    outcome.spmv =
        spmv_total(obs::metrics_delta(before, obs::snapshot_metrics()));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const service::QueryResult r = futures[i].get();
      if (r.status != service::QueryStatus::kOk ||
          !bitwise_equal(r.value, unique[stream[i]].ref_value))
        ++outcome.mismatches;
    }
    outcome.stats = checker_service.stats();
    outcome.report = checker_service.report();
    return outcome;
  };
  const ReplayOutcome offline =
      obs_guard.timed_reps("offline_replay", offline_replay);

  const double ratio = offline.spmv > 0
                           ? static_cast<double>(baseline_spmv) /
                                 static_cast<double>(offline.spmv)
                           : 0.0;
  std::printf("coalesced replay: %llu SpMV in %llu batches "
              "(%llu lattice passes, %llu cells); ratio %.1fx, gate >= 3x\n",
              static_cast<unsigned long long>(offline.spmv),
              static_cast<unsigned long long>(offline.stats.batches),
              static_cast<unsigned long long>(offline.stats.lattice_passes),
              static_cast<unsigned long long>(offline.stats.lattice_cells),
              ratio);
  std::printf("bitwise mismatches: %llu, rejected: %llu\n",
              static_cast<unsigned long long>(offline.mismatches),
              static_cast<unsigned long long>(offline.stats.rejected));

  // ---- Phase 2: live serving (workers + concurrent clients) ---------------
  const std::size_t num_clients = 4;
  const auto live_serving = [&]() {
    service::ServiceOptions options;
    options.workers = 2;
    options.max_pending = stream.size() + 1;
    service::CheckerService checker_service(options);
    std::vector<service::ModelId> ids;
    ids.reserve(models.size());
    for (const Mrm& m : models)
      ids.push_back(checker_service.register_model(m));

    std::vector<std::thread> clients;
    std::vector<std::uint64_t> failures(num_clients, 0);
    clients.reserve(num_clients);
    for (std::size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<std::future<service::QueryResult>> futures;
        for (std::size_t i = c; i < stream.size(); i += num_clients)
          futures.push_back(checker_service.submit(ids[unique[stream[i]].model],
                                                   unique[stream[i]].text));
        for (auto& f : futures)
          if (f.get().status != service::QueryStatus::kOk) ++failures[c];
      });
    }
    for (std::thread& t : clients) t.join();

    ReplayOutcome outcome;
    for (std::uint64_t f : failures) outcome.mismatches += f;
    outcome.stats = checker_service.stats();
    outcome.report = checker_service.report();
    checker_service.shutdown();
    return outcome;
  };
  const ReplayOutcome live = obs_guard.timed_reps("live_serving", live_serving);

  double live_median_ms = 0.0;
  for (const csrl_bench::BenchObs::RepStats& r : obs_guard.reps())
    if (r.name == "live_serving") live_median_ms = r.median_ms;
  const double throughput =
      live_median_ms > 0.0
          ? static_cast<double>(stream.size()) / (live_median_ms / 1e3)
          : 0.0;
  std::printf("\nlive serving: %zu clients, throughput %.0f queries/s, "
              "p50 %.3g s, p99 %.3g s (%llu latency samples)\n",
              num_clients, throughput, live.report.latency_p50,
              live.report.latency_p99,
              static_cast<unsigned long long>(live.report.latency_count));

  // ---- Gate and JSON ------------------------------------------------------
  const bool obs_compiled = baseline_spmv > 0;
  const bool gate = offline.mismatches == 0 && offline.stats.rejected == 0 &&
                    live.mismatches == 0 && live.stats.rejected == 0 &&
                    (!obs_compiled || ratio >= 3.0);

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("csrl-bench-service-v1");
  w.key("bench").value("service");
  w.key("queries").value(static_cast<std::uint64_t>(stream.size()));
  w.key("unique_queries").value(static_cast<std::uint64_t>(unique.size()));
  w.key("models").value(static_cast<std::uint64_t>(models.size()));
  w.key("baseline_spmv").value(baseline_spmv);
  w.key("coalesced_spmv").value(offline.spmv);
  w.key("coalescing_ratio").value(ratio);
  w.key("batches").value(offline.stats.batches);
  w.key("lattice_passes").value(offline.stats.lattice_passes);
  w.key("lattice_cells").value(offline.stats.lattice_cells);
  w.key("coalesced_queries").value(offline.stats.coalesced_queries);
  w.key("sat_cache_hits").value(offline.report.sat_cache_hits);
  w.key("bitwise_mismatches").value(offline.mismatches + live.mismatches);
  w.key("rejected").value(offline.stats.rejected + live.stats.rejected);
  w.key("clients").value(static_cast<std::uint64_t>(num_clients));
  w.key("throughput_qps").value(throughput);
  w.key("latency_p50_s").value(live.report.latency_p50);
  w.key("latency_p99_s").value(live.report.latency_p99);
  w.key("gate_passed").value(gate);
  w.key("reps").begin_array();
  for (const csrl_bench::BenchObs::RepStats& r : obs_guard.reps()) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("reps").value(static_cast<std::uint64_t>(r.reps));
    w.key("median_ms").value(r.median_ms);
    w.key("min_ms").value(r.min_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string text = std::move(w).str();

  const char* path = "BENCH_service.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }

  if (!obs_compiled)
    std::printf("obs compiled out: SpMV ratio gate skipped\n");
  std::printf("gate %s\n", gate ? "PASSED" : "FAILED");
  return gate ? 0 : 1;
}
