// Section 5.3 of the paper: properties Q1-Q3 checked end to end on the
// 9-state ad hoc station model (SRN -> reachability graph -> CSRL checker).
// Q1 exercises the P2 pipeline (duality), Q2 the P1 pipeline
// (uniformisation), Q3 the P3 pipeline (Theorem-1 reduction + engine).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/checker.hpp"
#include "logic/parser.hpp"
#include "models/adhoc.hpp"
#include "obs/obs.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

void print_properties() {
  const Mrm model = build_adhoc_mrm();
  const Checker checker(model);
  std::printf("=== Section 5.3: properties Q1-Q3 ===\n");
  struct Row {
    const char* name;
    const char* query;
    const char* bounded;
  };
  const Row rows[] = {
      {"Q1 (reward-bounded eventually, P2)", kQueryQ1, kPropertyQ1},
      {"Q2 (time-bounded eventually, P1)", kQueryQ2, kPropertyQ2},
      {"Q3 (time+reward until, P3)", kQueryQ3, kPropertyQ3},
  };
  for (const Row& row : rows) {
    WallTimer timer;
    const double value = checker.value_initially(*parse_formula(row.query));
    const bool verdict = checker.holds_initially(*parse_formula(row.bounded));
    std::printf("%-36s  p = %.8f  %-13s (%.2f ms)\n", row.name, value,
                verdict ? "-> HOLDS" : "-> VIOLATED", timer.seconds() * 1e3);
  }
  std::printf("\n");
}

void check_property(benchmark::State& state, const char* query) {
  const Mrm model = build_adhoc_mrm();
  const Checker checker(model);
  const FormulaPtr formula = parse_formula(query);
  double value = 0.0;
  for (auto _ : state) {
    value = checker.value_initially(*formula);
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
}

void BM_Q1_RewardBounded(benchmark::State& state) {
  check_property(state, kQueryQ1);
}
void BM_Q2_TimeBounded(benchmark::State& state) {
  check_property(state, kQueryQ2);
}
void BM_Q3_TimeRewardBounded(benchmark::State& state) {
  check_property(state, kQueryQ3);
}
BENCHMARK(BM_Q1_RewardBounded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q2_TimeBounded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q3_TimeRewardBounded)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  csrl_bench::BenchObs obs_guard("case_study_properties");
  print_properties();
  {
    const Mrm model = build_adhoc_mrm();
    const Checker checker(model);
    const FormulaPtr q3 = parse_formula(kQueryQ3);
    obs_guard.timed_reps("q3_time_reward_until",
                         [&] { return checker.value_initially(*q3); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
