// Blocked multi-RHS SpMM gate: the Figure-1-style Sericola grid with
// grouped coefficient products vs the one-RHS path.
//
// The Sericola recursion's m * n per-level products P * c(h, n-1, k) all
// share the matrix, so the blocked path (rhs_block > 1, the default)
// streams P once per group of lanes while the one-RHS path (rhs_block =
// 1) re-streams it once per vector.  This bench evaluates the same
// all-starts joint-probability surface both ways on a synthetic MRM
// whose CSR arrays outgrow L2, checks the grids are bitwise identical
// (the blocked kernels perform the identical per-lane arithmetic — see
// DESIGN.md section 3f), and times both configurations with 1 warmup +
// 5 timed reps.
//
// The exit code is the acceptance gate for CI's bench-smoke job: 0 only
// when the grids are bit-identical AND the blocked run is at least 2x
// faster (median over reps).  Results go to BENCH_spmm.json; the usual
// metric/span attribution (including the matrix/spmm/* counters) goes
// to BENCH_spmm_obs.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engines/sericola_engine.hpp"
#include "matrix/simd.hpp"
#include "matrix/spmm.hpp"
#include "models/synthetic.hpp"
#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "util/state_set.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

bool bitwise_equal(const std::vector<std::vector<double>>& a,
                   const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t g = 0; g < a.size(); ++g) {
    if (a[g].size() != b[g].size() ||
        std::memcmp(a[g].data(), b[g].data(), a[g].size() * sizeof(double)) !=
            0)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  csrl_bench::BenchObs obs_guard("spmm");

  // Mean degree ~61 puts the CSR arrays well past L2 and makes the
  // m * n per-level coefficient products carry ~90% of the recursion's
  // wall-clock (the high/low sweeps and Bernstein accumulation scale
  // with |S| per slot, the products with nnz), so the grid ratio tracks
  // the blocked kernel's own speedup instead of being diluted by the
  // sweep epilogues.
  const std::size_t n = 10000;
  const Mrm model = random_mrm(/*seed=*/7, n, /*density=*/120.0 / n);
  StateSet target(n);
  for (std::size_t s = 0; s < n; s += 7) target.insert(s);
  // Short horizons keep the truncation depth (and so the bench's
  // wall-clock) modest without touching the blocked-vs-one-RHS ratio:
  // products, sweeps and Bernstein accumulation all scale together with
  // depth.  Rewards sit strictly inside (0, max_reward * t) so no grid
  // cell degenerates to a trivial case.
  const std::vector<double> times{0.14, 0.15};
  const std::vector<double> rewards{0.1, 0.3};
  const double epsilon = 1e-7;

  const SericolaEngine blocked(epsilon, nullptr, /*rhs_block=*/0);
  const SericolaEngine one_rhs(epsilon, nullptr, /*rhs_block=*/1);
  const std::size_t block = resolve_rhs_block(0);

  std::printf("=== SpMM gate: blocked Sericola grid vs one-RHS ===\n");
  std::printf(
      "random MRM, %zu states, %zu transitions; %zux%zu grid, eps=%.0e\n"
      "simd: %s, default rhs_block: %zu\n\n",
      n, model.rates().nnz(), times.size(), rewards.size(), epsilon,
      simd_isa(), block);

  // Bitwise identity at default settings (one clean run per path).
  const std::vector<std::vector<double>> grid_blocked =
      blocked.joint_probability_all_starts_grid(model, times, rewards, target);
  const std::vector<std::vector<double>> grid_one =
      one_rhs.joint_probability_all_starts_grid(model, times, rewards, target);
  const bool identical = bitwise_equal(grid_blocked, grid_one);
  std::printf("bitwise identical at width %zu vs width 1: %s\n\n", block,
              identical ? "yes" : "NO");

  obs_guard.timed_reps("grid_rhs_block_default", [&] {
    return blocked.joint_probability_all_starts_grid(model, times, rewards,
                                                     target)[0][0];
  });
  obs_guard.timed_reps("grid_rhs_block_1", [&] {
    return one_rhs.joint_probability_all_starts_grid(model, times, rewards,
                                                     target)[0][0];
  });

  double blocked_ms = 0.0;
  double one_rhs_ms = 0.0;
  for (const csrl_bench::BenchObs::RepStats& r : obs_guard.reps()) {
    if (r.name == "grid_rhs_block_default") blocked_ms = r.median_ms;
    if (r.name == "grid_rhs_block_1") one_rhs_ms = r.median_ms;
  }
  const double speedup = blocked_ms > 0.0 ? one_rhs_ms / blocked_ms : 0.0;
  std::printf("\nmedian wall-clock: blocked %.1f ms, one-RHS %.1f ms "
              "(%.2fx), gate needs >= 2x\n",
              blocked_ms, one_rhs_ms, speedup);

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("csrl-bench-spmm-v1");
  w.key("bench").value("spmm");
  w.key("states").value(static_cast<std::uint64_t>(n));
  w.key("transitions").value(static_cast<std::uint64_t>(model.rates().nnz()));
  w.key("simd_isa").value(simd_isa());
  w.key("rhs_block").value(static_cast<std::uint64_t>(block));
  w.key("blocked_median_ms").value(blocked_ms);
  w.key("one_rhs_median_ms").value(one_rhs_ms);
  w.key("speedup").value(speedup);
  w.key("bitwise_identical").value(identical);
  w.key("reps").begin_array();
  for (const csrl_bench::BenchObs::RepStats& r : obs_guard.reps()) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("reps").value(static_cast<std::uint64_t>(r.reps));
    w.key("median_ms").value(r.median_ms);
    w.key("min_ms").value(r.min_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string text = std::move(w).str();

  const char* path = "BENCH_spmm.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }

  return (identical && speedup >= 2.0) ? 0 : 1;
}
