// Table 2 of the paper: the occupation-time-distribution algorithm
// (Sericola) on the Q3 reduced model, sweeping the a-priori error bound
// epsilon from 1e-1 to 1e-8.  Reported per row: the truncation depth
// N_eps, the computed path probability, and the wall-clock time.
//
// Paper reference rows (Pentium III, 1 GHz):
//   eps    N    value        time
//   1e-1   496  0.44831203    76.27 s
//   1e-8   594  0.49540399   110.78 s
//
// Shape expectations: N grows logarithmically-slowly in 1/eps, the value
// converges monotonically from below, time grows mildly with N.  Absolute
// values sit ~0.3% above the paper's (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/engines/sericola_engine.hpp"
#include "models/adhoc.hpp"
#include "obs/obs.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

double run_once(double epsilon, std::size_t* steps_out = nullptr) {
  const Mrm reduced = build_q3_reduced_mrm();
  const SericolaEngine engine(epsilon);
  StateSet success(reduced.num_states());
  success.insert(3);
  if (steps_out) *steps_out = engine.truncation_depth(reduced, kTimeBoundHours);
  return engine.joint_probability_all_starts(
      reduced, kTimeBoundHours, kRewardBoundMah, success)[reduced.initial_state()];
}

void print_table() {
  std::printf("=== Table 2: occupation time distributions (Sericola) ===\n");
  std::printf("Q3 on the reduced 5-state MRM, t=%.0f h, r=%.0f mAh\n",
              kTimeBoundHours, kRewardBoundMah);
  std::printf("%-8s %6s  %-14s %10s\n", "eps", "N", "value", "time");
  for (double eps : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8}) {
    std::size_t steps = 0;
    WallTimer timer;
    const double value = run_once(eps, &steps);
    std::printf("%-8.0e %6zu  %.8f %9.2f ms\n", eps, steps, value,
                timer.seconds() * 1e3);
  }
  std::printf("paper's converged value: %.8f (see EXPERIMENTS.md)\n\n",
              kPaperQ3Reference);
}

void print_grid_comparison() {
  // The batched-lattice path (core/batch.hpp): the Table-2 property swept
  // over a bound lattice in one occupation-time pass, against the
  // point-by-point loop it replaces.
  const Mrm reduced = build_q3_reduced_mrm();
  const SericolaEngine engine(1e-8);
  StateSet success(reduced.num_states());
  success.insert(3);
  const std::vector<double> times{4.0, 8.0, 16.0, kTimeBoundHours};
  const std::vector<double> rewards{150.0, 300.0, 450.0, kRewardBoundMah};

  WallTimer timer;
  const auto batched = engine.joint_probability_all_starts_grid(
      reduced, times, rewards, success);
  const double batched_ms = timer.seconds() * 1e3;
  timer.reset();
  const auto looped =
      joint_grid_reference(engine, reduced, times, rewards, success);
  const double looped_ms = timer.seconds() * 1e3;

  bool bitwise = true;
  for (std::size_t g = 0; g < batched.size(); ++g)
    for (std::size_t s = 0; s < batched[g].size(); ++s)
      bitwise = bitwise && batched[g][s] == looped[g][s];
  std::printf("batched %zux%zu lattice: %.2f ms vs %.2f ms point-by-point "
              "(%.1fx), bitwise identical: %s\n\n",
              times.size(), rewards.size(), batched_ms, looped_ms,
              batched_ms > 0.0 ? looped_ms / batched_ms : 0.0,
              bitwise ? "yes" : "NO");
}

void BM_SericolaQ3(benchmark::State& state) {
  const double epsilon = std::pow(10.0, -static_cast<double>(state.range(0)));
  double value = 0.0;
  std::size_t steps = 0;
  for (auto _ : state) {
    value = run_once(epsilon, &steps);
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
  state.counters["N_eps"] = static_cast<double>(steps);
}
BENCHMARK(BM_SericolaQ3)->DenseRange(1, 8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  csrl_bench::BenchObs obs_guard("table2_sericola");
  print_table();
  print_grid_comparison();
  obs_guard.timed_reps("sericola_q3_eps1e-4",
                       [] { return run_once(1e-4); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
