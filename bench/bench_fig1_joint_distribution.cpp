// Figure 1 of the paper illustrates the two-dimensional stochastic
// process (X_t, Y_t) — CTMC state vs accumulated reward with an absorbing
// barrier at the reward bound r.  This bench regenerates the quantity the
// figure depicts: the joint probability surface
//
//   Pr{Y_t <= r, X_t = success}
//
// over a (t, r) grid on the Q3 reduced model, which is precisely the
// function the barrier process was introduced to define.  The printed
// series shows both marginals' behaviour: increasing in r for fixed t
// (the barrier relaxes) and converging over t to the reward-bounded
// reachability probability.
// `--grid` switches to the batched-lattice comparison (core/batch.hpp):
// the whole surface through joint_probability_all_starts_grid vs the
// point-by-point loop, with the SpMV counts of both passes and a bitwise
// equality verdict written to BENCH_fig1_grid.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engines/engine.hpp"
#include "core/engines/sericola_engine.hpp"
#include "models/adhoc.hpp"
#include "obs/json_writer.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

double surface_point(double t, double r) {
  const Mrm reduced = build_q3_reduced_mrm();
  const SericolaEngine engine(1e-9);
  StateSet success(reduced.num_states());
  success.insert(3);
  return engine.joint_probability_all_starts(reduced, t, r,
                                             success)[reduced.initial_state()];
}

void print_surface() {
  std::printf("=== Figure 1: joint distribution of (X_t, Y_t) ===\n");
  std::printf("Pr{Y_t <= r, X_t = success} on the Q3 reduced model\n\n");
  const double times[] = {1.0, 2.0, 4.0, 8.0, 16.0, 24.0};
  const double rewards[] = {100.0, 200.0, 400.0, 600.0, 1200.0, 2400.0};
  std::printf("t \\ r   ");
  for (double r : rewards) std::printf("%9.0f", r);
  std::printf("\n");
  for (double t : times) {
    std::printf("%5.0f h ", t);
    for (double r : rewards) std::printf("%9.5f", surface_point(t, r));
    std::printf("\n");
  }
  std::printf("\nrows increase with t (more time to reach the goal), "
              "columns with r (the Figure-1 barrier moves up)\n\n");
}

std::uint64_t spmv_between(const obs::MetricsSnapshot& before,
                           const obs::MetricsSnapshot& after) {
  const obs::MetricsSnapshot delta = obs::metrics_delta(before, after);
  return delta.counter("spmv/multiply") + delta.counter("spmv/multiply_left");
}

/// The batched-vs-looped comparison behind `--grid`: evaluates the full
/// Figure-1 surface both ways, prints it, and writes the SpMV counts and
/// the bitwise verdict to BENCH_fig1_grid.json.
int run_grid_mode() {
  // Grid mode gets its own obs guard (BENCH_fig1_grid_obs.json + ledger
  // entry): CI's bench-smoke job runs only this mode, and the perf
  // baseline-check needs the counter report it leaves behind.
  csrl_bench::BenchObs obs_guard("fig1_grid");
  const Mrm reduced = build_q3_reduced_mrm();
  const SericolaEngine engine(1e-9);
  StateSet success(reduced.num_states());
  success.insert(3);
  const std::vector<double> times{1.0, 2.0, 4.0, 8.0, 16.0, 24.0};
  const std::vector<double> rewards{100.0, 200.0,  400.0,
                                    600.0, 1200.0, 2400.0};
  const std::size_t init = reduced.initial_state();

  const obs::ScopedRecording recording(true);
  const obs::MetricsSnapshot start = obs::snapshot_metrics();
  const std::vector<std::vector<double>> batched =
      engine.joint_probability_all_starts_grid(reduced, times, rewards,
                                               success);
  const obs::MetricsSnapshot mid = obs::snapshot_metrics();
  const std::vector<std::vector<double>> looped =
      joint_grid_reference(engine, reduced, times, rewards, success);
  const std::uint64_t batched_spmvs = spmv_between(start, mid);
  const std::uint64_t looped_spmvs = spmv_between(mid, obs::snapshot_metrics());

  bool bitwise = batched.size() == looped.size();
  for (std::size_t g = 0; bitwise && g < batched.size(); ++g)
    bitwise = batched[g].size() == looped[g].size() &&
              std::memcmp(batched[g].data(), looped[g].data(),
                          batched[g].size() * sizeof(double)) == 0;

  std::printf("=== Figure 1 surface, batched lattice vs point loop ===\n");
  std::printf("t \\ r   ");
  for (double r : rewards) std::printf("%9.0f", r);
  std::printf("\n");
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::printf("%5.0f h ", times[i]);
    for (std::size_t j = 0; j < rewards.size(); ++j)
      std::printf("%9.5f", batched[i * rewards.size() + j][init]);
    std::printf("\n");
  }
  const double ratio = batched_spmvs == 0
                           ? 0.0
                           : static_cast<double>(looped_spmvs) /
                                 static_cast<double>(batched_spmvs);
  std::printf("\nSpMV invocations: batched %llu, looped %llu (%.1fx), "
              "bitwise identical: %s\n",
              static_cast<unsigned long long>(batched_spmvs),
              static_cast<unsigned long long>(looped_spmvs), ratio,
              bitwise ? "yes" : "NO");

  // Wall-clock trajectory of the batched pass (median of 5 reps in the
  // obs report).  Runs after the SpMV-count snapshots above, so the
  // extra evaluations never distort the acceptance ratio; the counters
  // they add to the obs report are deterministic (same work, 6 times).
  obs_guard.timed_reps("batched_grid", [&] {
    return engine
        .joint_probability_all_starts_grid(reduced, times, rewards, success)
        .size();
  });

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("csrl-bench-grid-v1");
  w.key("bench").value("fig1_grid");
  w.key("times").begin_array();
  for (double t : times) w.value(t);
  w.end_array();
  w.key("rewards").begin_array();
  for (double r : rewards) w.value(r);
  w.end_array();
  w.key("values").begin_array();
  for (std::size_t g = 0; g < batched.size(); ++g) w.value(batched[g][init]);
  w.end_array();
  w.key("spmv_batched").value(batched_spmvs);
  w.key("spmv_looped").value(looped_spmvs);
  w.key("spmv_ratio").value(ratio);
  w.key("bitwise_identical").value(bitwise);
  w.end_object();
  const std::string text = std::move(w).str();

  const char* path = "BENCH_fig1_grid.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  // The acceptance gate for CI's bench-smoke job: the batched pass must be
  // at least 5x cheaper and bit-identical.
  return (bitwise && (batched_spmvs == 0 || ratio >= 5.0)) ? 0 : 1;
}

void BM_JointSurfacePoint(benchmark::State& state) {
  const double t = static_cast<double>(state.range(0));
  const double r = static_cast<double>(state.range(1));
  double value = 0.0;
  for (auto _ : state) {
    value = surface_point(t, r);
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
}
BENCHMARK(BM_JointSurfacePoint)
    ->Args({4, 200})
    ->Args({24, 600})
    ->Args({24, 2400})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--grid") == 0) return run_grid_mode();
  }
  csrl_bench::BenchObs obs_guard("fig1_joint_distribution");
  print_surface();
  obs_guard.timed_reps("surface_point_t24_r600",
                       [] { return surface_point(24.0, 600.0); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
