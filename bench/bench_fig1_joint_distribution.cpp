// Figure 1 of the paper illustrates the two-dimensional stochastic
// process (X_t, Y_t) — CTMC state vs accumulated reward with an absorbing
// barrier at the reward bound r.  This bench regenerates the quantity the
// figure depicts: the joint probability surface
//
//   Pr{Y_t <= r, X_t = success}
//
// over a (t, r) grid on the Q3 reduced model, which is precisely the
// function the barrier process was introduced to define.  The printed
// series shows both marginals' behaviour: increasing in r for fixed t
// (the barrier relaxes) and converging over t to the reward-bounded
// reachability probability.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engines/sericola_engine.hpp"
#include "models/adhoc.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

double surface_point(double t, double r) {
  const Mrm reduced = build_q3_reduced_mrm();
  const SericolaEngine engine(1e-9);
  StateSet success(reduced.num_states());
  success.insert(3);
  return engine.joint_probability_all_starts(reduced, t, r,
                                             success)[reduced.initial_state()];
}

void print_surface() {
  std::printf("=== Figure 1: joint distribution of (X_t, Y_t) ===\n");
  std::printf("Pr{Y_t <= r, X_t = success} on the Q3 reduced model\n\n");
  const double times[] = {1.0, 2.0, 4.0, 8.0, 16.0, 24.0};
  const double rewards[] = {100.0, 200.0, 400.0, 600.0, 1200.0, 2400.0};
  std::printf("t \\ r   ");
  for (double r : rewards) std::printf("%9.0f", r);
  std::printf("\n");
  for (double t : times) {
    std::printf("%5.0f h ", t);
    for (double r : rewards) std::printf("%9.5f", surface_point(t, r));
    std::printf("\n");
  }
  std::printf("\nrows increase with t (more time to reach the goal), "
              "columns with r (the Figure-1 barrier moves up)\n\n");
}

void BM_JointSurfacePoint(benchmark::State& state) {
  const double t = static_cast<double>(state.range(0));
  const double r = static_cast<double>(state.range(1));
  double value = 0.0;
  for (auto _ : state) {
    value = surface_point(t, r);
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
}
BENCHMARK(BM_JointSurfacePoint)
    ->Args({4, 200})
    ->Args({24, 600})
    ->Args({24, 2400})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const csrl_bench::BenchObs obs_guard("fig1_joint_distribution");
  print_surface();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
