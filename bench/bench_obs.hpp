// Shared observability hook-up for the bench executables.
//
// A BenchObs guard at the top of main() turns recording on for the whole
// run and, on exit, writes BENCH_<name>_obs.json next to the bench's own
// output: the metric delta of the run (Fox-Glynn windows, iteration and
// SpMV counts, pool dispatch statistics) and the flat span aggregate.
// The perf trajectory thereby carries attribution — a wall-clock
// regression in BENCH_*.json can be matched against the counters that
// explain it without re-running anything.
// Every bench also routes its headline workloads through timed_reps():
// one warmup run, then at least five timed repetitions, with the median
// and minimum wall-clock recorded under the "reps" key of the obs JSON.
// Medians resist scheduler noise; minima approximate the unloaded cost.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "matrix/simd.hpp"
#include "matrix/spmm.hpp"
#include "obs/json_writer.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace csrl_bench {

class BenchObs {
 public:
  struct RepStats {
    std::string name;
    std::size_t reps;
    double median_ms;
    double min_ms;
  };

  explicit BenchObs(std::string name)
      : name_(std::move(name)), before_(csrl::obs::snapshot_metrics()) {}

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

  /// Run `fn` once untimed (warmup), then `reps` (>= 5) timed times;
  /// record the median and minimum wall-clock under `label` in the
  /// "reps" section of the obs JSON and return the last run's result.
  template <typename Fn>
  auto timed_reps(const std::string& label, Fn&& fn, std::size_t reps = 5) {
    if (reps < 5) reps = 5;
    fn();  // warmup: faults pages, warms caches and allocator pools
    std::vector<double> seconds;
    seconds.reserve(reps);
    if constexpr (std::is_void_v<std::invoke_result_t<Fn&>>) {
      for (std::size_t i = 0; i < reps; ++i) {
        csrl::WallTimer timer;
        fn();
        seconds.push_back(timer.seconds());
        // Every rep also lands in the log-bucketed latency histogram, so
        // the obs JSON carries p50/p99 across workloads alongside the
        // per-workload median/min.
        CSRL_HIST("latency/bench_rep", seconds.back());
      }
      record_reps(label, seconds);
    } else {
      std::invoke_result_t<Fn&> result{};
      for (std::size_t i = 0; i < reps; ++i) {
        csrl::WallTimer timer;
        result = fn();
        seconds.push_back(timer.seconds());
        CSRL_HIST("latency/bench_rep", seconds.back());
      }
      record_reps(label, seconds);
      return result;
    }
  }

  ~BenchObs() {
    const csrl::obs::MetricsSnapshot after = csrl::obs::snapshot_metrics();
    const csrl::obs::MetricsSnapshot delta =
        csrl::obs::metrics_delta(before_, after);
    const std::vector<csrl::obs::SpanAggregate> spans =
        csrl::obs::aggregate_spans(csrl::obs::peek_spans());

    csrl::obs::JsonWriter w;
    w.begin_object();
    w.key("schema").value("csrl-bench-obs-v1");
    w.key("bench").value(name_);
    // Kernel configuration of this run, so perf trajectories can be
    // compared like-for-like: the SIMD instruction set the blocked SpMM
    // lane loops were compiled for ("scalar" under CSRL_SIMD=OFF) and
    // the effective multi-RHS block width (honouring CSRL_RHS_BLOCK;
    // 0 only if the environment value is invalid).
    w.key("simd_isa").value(csrl::simd_isa());
    std::uint64_t rhs_block = 0;
    try {
      rhs_block = csrl::resolve_rhs_block(0);
    } catch (const csrl::Error&) {
      // An invalid CSRL_RHS_BLOCK should fail the workload itself, not
      // the obs write-out.
    }
    w.key("rhs_block").value(rhs_block);
    const std::uint64_t threads = csrl::ThreadPool::global().num_threads();
    w.key("threads").value(threads);
    const std::uint64_t spans_dropped = csrl::obs::dropped_span_events();
    w.key("spans_dropped").value(spans_dropped);
    if (spans_dropped > 0)
      std::fprintf(stderr,
                   "csrl: obs: %llu span event(s) dropped during this bench "
                   "(per-thread buffer cap); the span aggregate is "
                   "truncated\n",
                   static_cast<unsigned long long>(spans_dropped));
    w.key("reps").begin_array();
    for (const RepStats& r : rep_stats_) {
      w.begin_object();
      w.key("name").value(r.name);
      w.key("reps").value(static_cast<std::uint64_t>(r.reps));
      w.key("median_ms").value(r.median_ms);
      w.key("min_ms").value(r.min_ms);
      w.end_object();
    }
    w.end_array();
    csrl::obs::emit_metrics(w, delta);
    csrl::obs::emit_spans(w, spans);
    w.end_object();
    const std::string text = std::move(w).str();

    const std::string path = "BENCH_" + name_ + "_obs.json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    }

    // Run ledger: append this report to BENCH_history.jsonl (or the
    // CSRL_BENCH_LEDGER override) stamped with git SHA, build flags and
    // the hardware fingerprint, so the perf trajectory accumulates
    // across invocations.  A ledger write failure warns but never fails
    // the bench — gates live in the bench's own exit code.
    const std::string ledger = csrl::obs::ledger_path();
    if (!ledger.empty()) {
      csrl::obs::LedgerStamp stamp;
      stamp.bench = name_;
      stamp.simd_isa = csrl::simd_isa();
      stamp.rhs_block = rhs_block;
      stamp.threads = threads;
#ifdef CSRL_OBS_DISABLED
      stamp.obs_compiled = false;
#endif
      const std::string line = csrl::obs::ledger_line(stamp, text);
      if (csrl::obs::append_ledger_line(ledger, line))
        std::printf("appended %s\n", ledger.c_str());
      else
        std::fprintf(stderr, "cannot append to %s\n", ledger.c_str());
    }
  }

  /// Stats recorded by timed_reps so far, in call order.
  const std::vector<RepStats>& reps() const { return rep_stats_; }

 private:
  void record_reps(const std::string& label, std::vector<double>& seconds) {
    std::sort(seconds.begin(), seconds.end());
    rep_stats_.push_back({label, seconds.size(),
                          seconds[seconds.size() / 2] * 1e3,
                          seconds.front() * 1e3});
    std::printf("[reps] %-32s %zu reps: median %.3f ms, min %.3f ms\n",
                label.c_str(), seconds.size(), rep_stats_.back().median_ms,
                rep_stats_.back().min_ms);
  }

  csrl::obs::ScopedRecording recording_{true};
  std::string name_;
  csrl::obs::MetricsSnapshot before_;
  std::vector<RepStats> rep_stats_;
};

}  // namespace csrl_bench
