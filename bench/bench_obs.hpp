// Shared observability hook-up for the bench executables.
//
// A BenchObs guard at the top of main() turns recording on for the whole
// run and, on exit, writes BENCH_<name>_obs.json next to the bench's own
// output: the metric delta of the run (Fox-Glynn windows, iteration and
// SpMV counts, pool dispatch statistics) and the flat span aggregate.
// The perf trajectory thereby carries attribution — a wall-clock
// regression in BENCH_*.json can be matched against the counters that
// explain it without re-running anything.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"

namespace csrl_bench {

class BenchObs {
 public:
  explicit BenchObs(std::string name)
      : name_(std::move(name)), before_(csrl::obs::snapshot_metrics()) {}

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

  ~BenchObs() {
    const csrl::obs::MetricsSnapshot after = csrl::obs::snapshot_metrics();
    const csrl::obs::MetricsSnapshot delta =
        csrl::obs::metrics_delta(before_, after);
    const std::vector<csrl::obs::SpanAggregate> spans =
        csrl::obs::aggregate_spans(csrl::obs::peek_spans());

    csrl::obs::JsonWriter w;
    w.begin_object();
    w.key("schema").value("csrl-bench-obs-v1");
    w.key("bench").value(name_);
    csrl::obs::emit_metrics(w, delta);
    csrl::obs::emit_spans(w, spans);
    w.end_object();
    const std::string text = std::move(w).str();

    const std::string path = "BENCH_" + name_ + "_obs.json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    }
  }

 private:
  csrl::obs::ScopedRecording recording_{true};
  std::string name_;
  csrl::obs::MetricsSnapshot before_;
};

}  // namespace csrl_bench
