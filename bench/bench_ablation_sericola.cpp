// Ablation (DESIGN.md): the Sericola engine's vector formulation vs the
// paper-faithful matrix-shaped computation.
//
// The recursion of [23, Thm 5.6] is stated over |S| x |S| matrices
// C(h,n,k); the paper reports O(N^2 |S|^3) time.  Our engine iterates the
// vectors C(h,n,k) * v for the fixed target indicator v, costing a factor
// |S| less.  joint_distribution() reconstructs the per-final-state answer
// by running the vector pass per basis vector — i.e. it *is* the
// matrix-cost variant — so timing both quantifies what the reformulation
// buys at different model sizes.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/engines/sericola_engine.hpp"
#include "models/synthetic.hpp"
#include "obs/obs.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

Mrm scaled_model(std::size_t states) {
  return birth_death_mrm(states, 2.0, 3.0);
}

void print_comparison() {
  std::printf("=== Ablation: Sericola vector pass vs matrix-cost pass ===\n");
  std::printf("birth-death chains, t=4, r=0.4*max_reward*t, eps=1e-8\n");
  std::printf("%7s  %12s  %12s  %8s\n", "states", "vector", "matrix-cost",
              "speedup");
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    const Mrm model = scaled_model(n);
    const double t = 4.0;
    const double r = 0.4 * model.max_reward() * t;
    StateSet target(n);
    target.insert(n - 1);
    const SericolaEngine engine(1e-8);

    WallTimer vector_timer;
    const auto by_vector =
        engine.joint_probability_all_starts(model, t, r, target);
    const double vector_seconds = vector_timer.seconds();

    WallTimer matrix_timer;
    const auto by_matrix = engine.joint_distribution(model, t, r);
    const double matrix_seconds = matrix_timer.seconds();

    std::printf("%7zu  %9.2f ms  %9.2f ms  %7.1fx   |diff| = %.2e\n", n,
                vector_seconds * 1e3, matrix_seconds * 1e3,
                matrix_seconds / vector_seconds,
                std::abs(by_matrix.per_state[n - 1] - by_vector[0]));
  }
  std::printf("\n");
}

void BM_SericolaVector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mrm model = scaled_model(n);
  const double t = 4.0;
  const double r = 0.4 * model.max_reward() * t;
  StateSet target(n);
  target.insert(n - 1);
  const SericolaEngine engine(1e-8);
  for (auto _ : state) {
    auto result = engine.joint_probability_all_starts(model, t, r, target);
    benchmark::DoNotOptimize(result.data());
  }
}
BENCHMARK(BM_SericolaVector)->RangeMultiplier(2)->Range(4, 32)->Unit(
    benchmark::kMillisecond);

void BM_SericolaMatrixCost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mrm model = scaled_model(n);
  const double t = 4.0;
  const double r = 0.4 * model.max_reward() * t;
  const SericolaEngine engine(1e-8);
  for (auto _ : state) {
    auto result = engine.joint_distribution(model, t, r);
    benchmark::DoNotOptimize(result.per_state.data());
  }
}
BENCHMARK(BM_SericolaMatrixCost)->RangeMultiplier(2)->Range(4, 32)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  csrl_bench::BenchObs obs_guard("ablation_sericola");
  print_comparison();
  {
    const Mrm model = scaled_model(32);
    const double t = 4.0;
    const double r = 0.4 * model.max_reward() * t;
    StateSet target(32);
    target.insert(31);
    const SericolaEngine engine(1e-8);
    obs_guard.timed_reps("sericola_vector_n32", [&] {
      return engine.joint_probability_all_starts(model, t, r, target)[0];
    });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
