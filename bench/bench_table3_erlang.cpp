// Table 3 of the paper: the pseudo-Erlang approximation on the Q3 reduced
// model, sweeping the number of phases k = 1 ... 1024.  Reported per row:
// the probability, its relative error against the high-precision Sericola
// value, and the wall-clock time.
//
// Paper reference rows (SPNP v6 on a 1 GHz Pentium III):
//   k=1    0.41067310  17.10%   < 0.01 s
//   k=256  0.49520304   0.04%     0.50 s
//   k=1024 0.49535410   0.01%    21.34 s
//
// Shape expectations: the estimate approaches the reference from below
// with error ~ 1/k; time grows superlinearly in k (the uniformisation
// rate grows by k*rho_max/r and the chain by a factor k).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/engines/erlang_engine.hpp"
#include "core/engines/sericola_engine.hpp"
#include "models/adhoc.hpp"
#include "obs/obs.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

double erlang_once(std::size_t k) {
  const Mrm reduced = build_q3_reduced_mrm();
  const ErlangEngine engine(k);
  StateSet success(reduced.num_states());
  success.insert(3);
  return engine.joint_probability_all_starts(
      reduced, kTimeBoundHours, kRewardBoundMah, success)[reduced.initial_state()];
}

double sericola_reference() {
  const Mrm reduced = build_q3_reduced_mrm();
  const SericolaEngine engine(1e-10);
  StateSet success(reduced.num_states());
  success.insert(3);
  return engine.joint_probability_all_starts(
      reduced, kTimeBoundHours, kRewardBoundMah, success)[reduced.initial_state()];
}

void print_table() {
  const double reference = sericola_reference();
  std::printf("=== Table 3: pseudo-Erlang approximation ===\n");
  std::printf("Q3 on the reduced 5-state MRM; reference (Sericola 1e-10): "
              "%.8f\n", reference);
  std::printf("%6s  %-14s %-10s %10s\n", "k", "value", "rel.err", "time");
  for (std::size_t k = 1; k <= 1024; k *= 2) {
    WallTimer timer;
    const double value = erlang_once(k);
    const double seconds = timer.seconds();
    std::printf("%6zu  %.8f %7.2f%% %9.2f ms\n", k, value,
                100.0 * std::abs(value - reference) / reference,
                seconds * 1e3);
  }
  std::printf("\n");
}

void BM_ErlangQ3(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  double value = 0.0;
  for (auto _ : state) {
    value = erlang_once(k);
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
  state.counters["phases"] = static_cast<double>(k);
}
BENCHMARK(BM_ErlangQ3)->RangeMultiplier(4)->Range(1, 1024)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  csrl_bench::BenchObs obs_guard("table3_erlang");
  print_table();
  obs_guard.timed_reps("erlang_q3_k64", [] { return erlang_once(64); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
