// Hot-path kernel gate: active-support SpMV vs the dense fused kernel.
//
// A 4096-state birth-death chain started from a point mass has a frontier
// that grows by one state per uniformisation step, so over a small horizon
// the active-support path touches a few dozen rows per step while the
// dense path touches all 4096.  This bench runs both paths at
// support_epsilon = 0 (forward from the point mass and backward to a
// single target state), checks the results are bitwise identical, and
// compares the "matrix/spmv/rows_active" counters.
//
// The exit code is the acceptance gate for CI's bench-smoke job: 0 only
// when both directions are bit-identical AND the active path reduced the
// rows-touched counter by at least 3x.  Results, counters and timed reps
// (1 warmup + 5 measurements, median and min) go to BENCH_kernels.json;
// the usual metric/span attribution goes to BENCH_kernels_obs.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ctmc/uniformisation.hpp"
#include "models/synthetic.hpp"
#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "util/state_set.hpp"
#include "util/workspace.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

std::uint64_t rows_active_since(const obs::MetricsSnapshot& before) {
  return obs::metrics_delta(before, obs::snapshot_metrics())
      .counter("matrix/spmv/rows_active");
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main() {
  csrl_bench::BenchObs obs_guard("kernels");

  const std::size_t n = 4096;
  const Mrm model = birth_death_mrm(n, 2.0, 3.0);
  const Ctmc& chain = model.chain();
  const double t = 2.0;

  std::vector<double> initial(n, 0.0);
  initial[model.initial_state()] = 1.0;
  StateSet target(n);
  target.insert(0);

  TransientOptions dense;
  dense.active_support = false;
  TransientOptions active;
  active.active_support = true;
  active.support_epsilon = 0.0;

  std::printf("=== Kernel gate: active-support SpMV vs dense ===\n");
  std::printf("birth-death chain, %zu states, point-mass start, t=%.1f\n\n",
              n, t);

  // One clean run per configuration for the rows_active attribution.
  const obs::MetricsSnapshot before_dense_fwd = obs::snapshot_metrics();
  const std::vector<double> dense_fwd =
      transient_distribution(chain, initial, t, dense);
  const std::uint64_t rows_dense_fwd = rows_active_since(before_dense_fwd);

  const obs::MetricsSnapshot before_active_fwd = obs::snapshot_metrics();
  const std::vector<double> active_fwd =
      transient_distribution(chain, initial, t, active);
  const std::uint64_t rows_active_fwd = rows_active_since(before_active_fwd);

  const obs::MetricsSnapshot before_dense_bwd = obs::snapshot_metrics();
  const std::vector<double> dense_bwd = transient_reach(chain, target, t, dense);
  const std::uint64_t rows_dense_bwd = rows_active_since(before_dense_bwd);

  const obs::MetricsSnapshot before_active_bwd = obs::snapshot_metrics();
  const std::vector<double> active_bwd =
      transient_reach(chain, target, t, active);
  const std::uint64_t rows_active_bwd = rows_active_since(before_active_bwd);

  const bool identical =
      bitwise_equal(dense_fwd, active_fwd) && bitwise_equal(dense_bwd, active_bwd);
  const std::uint64_t rows_dense = rows_dense_fwd + rows_dense_bwd;
  const std::uint64_t rows_active = rows_active_fwd + rows_active_bwd;
  const double ratio = rows_active > 0
                           ? static_cast<double>(rows_dense) /
                                 static_cast<double>(rows_active)
                           : 0.0;

  std::printf("rows touched, forward:  dense %10llu  active %10llu\n",
              static_cast<unsigned long long>(rows_dense_fwd),
              static_cast<unsigned long long>(rows_active_fwd));
  std::printf("rows touched, backward: dense %10llu  active %10llu\n",
              static_cast<unsigned long long>(rows_dense_bwd),
              static_cast<unsigned long long>(rows_active_bwd));
  std::printf("reduction: %.1fx, bitwise identical: %s\n\n", ratio,
              identical ? "yes" : "NO");

  // Wall-clock reps: the active path with a warmed workspace arena, the
  // configuration the engines' grid sweeps run in.
  obs_guard.timed_reps("dense_forward", [&] {
    return transient_distribution(chain, initial, t, dense)[0];
  });
  Workspace workspace;
  TransientOptions active_ws = active;
  active_ws.workspace = &workspace;
  obs_guard.timed_reps("active_forward", [&] {
    return transient_distribution(chain, initial, t, active_ws)[0];
  });

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("csrl-bench-kernels-v1");
  w.key("bench").value("kernels");
  w.key("states").value(static_cast<std::uint64_t>(n));
  w.key("t").value(t);
  w.key("rows_active_dense").value(rows_dense);
  w.key("rows_active_active").value(rows_active);
  w.key("reduction").value(ratio);
  w.key("bitwise_identical").value(identical);
  w.key("reps").begin_array();
  for (const csrl_bench::BenchObs::RepStats& r : obs_guard.reps()) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("reps").value(static_cast<std::uint64_t>(r.reps));
    w.key("median_ms").value(r.median_ms);
    w.key("min_ms").value(r.min_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string text = std::move(w).str();

  const char* path = "BENCH_kernels.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }

  return (identical && ratio >= 3.0) ? 0 : 1;
}
