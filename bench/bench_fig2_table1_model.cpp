// Figure 2 + Table 1 of the paper: the SRN of the battery-powered mobile
// station and its rate/reward parameters.  This bench validates the
// generated state space against everything the paper states about it
// (9 recurrent states; the reduced Q3 model has 3 transient + 2 absorbing
// states) and measures SRN construction + reachability-graph generation
// throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "models/adhoc.hpp"
#include "mrm/transform.hpp"
#include "srn/reachability.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

void print_model() {
  const Srn net = build_adhoc_srn();
  const ReachabilityGraph graph = explore(net);
  const Mrm& model = graph.model;

  std::printf("=== Figure 2 / Table 1: the ad hoc station SRN ===\n");
  std::printf("places: %zu, transitions: %zu\n", net.num_places(),
              net.num_transitions());
  std::printf("reachable markings: %zu (paper: nine recurrent states)\n\n",
              model.num_states());

  std::printf("state  exit-rate  reward  labels\n");
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    std::printf("%4zu   %8.2f  %6.0f  ", s, model.chain().exit_rate(s),
                model.reward(s));
    for (const auto& ap : model.labelling().labels_of(s))
      std::printf("%s ", ap.c_str());
    std::printf("%s\n", s == model.initial_state() ? " <- initial" : "");
  }

  const StateSet phi = model.labelling().states_with("Call_Idle") |
                       model.labelling().states_with("Doze");
  const StateSet psi = model.labelling().states_with("Call_Initiated");
  const UntilReduction reduction = reduce_for_until(model, phi, psi);
  std::size_t absorbing = 0;
  for (std::size_t s = 0; s < reduction.model.num_states(); ++s)
    if (reduction.model.chain().is_absorbing(s)) ++absorbing;
  std::printf("\nTheorem-1 reduction for Q3: %zu states (%zu transient, %zu "
              "absorbing; paper: 3 + 2)\n\n",
              reduction.model.num_states(),
              reduction.model.num_states() - absorbing, absorbing);
}

void BM_BuildSrn(benchmark::State& state) {
  for (auto _ : state) {
    const Srn net = build_adhoc_srn();
    benchmark::DoNotOptimize(&net);
  }
}
BENCHMARK(BM_BuildSrn);

void BM_ExploreStateSpace(benchmark::State& state) {
  const Srn net = build_adhoc_srn();
  for (auto _ : state) {
    const ReachabilityGraph graph = explore(net);
    benchmark::DoNotOptimize(&graph);
  }
  state.counters["states"] = 9.0;
}
BENCHMARK(BM_ExploreStateSpace);

void BM_ReduceForQ3(benchmark::State& state) {
  const Mrm model = build_adhoc_mrm();
  const StateSet phi = model.labelling().states_with("Call_Idle") |
                       model.labelling().states_with("Doze");
  const StateSet psi = model.labelling().states_with("Call_Initiated");
  for (auto _ : state) {
    const UntilReduction reduction = reduce_for_until(model, phi, psi);
    benchmark::DoNotOptimize(&reduction);
  }
}
BENCHMARK(BM_ReduceForQ3);

}  // namespace

int main(int argc, char** argv) {
  csrl_bench::BenchObs obs_guard("fig2_table1_model");
  print_model();
  obs_guard.timed_reps("explore_state_space", [] {
    const Srn net = build_adhoc_srn();
    return explore(net).model.num_states();
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
