// Table 4 of the paper: the Tijms-Veldman discretisation on the Q3
// reduced model, halving the step size d row by row.  Reported: the
// probability, the relative error against the high-precision Sericola
// value, and the wall-clock time.
//
// Paper reference rows (1 GHz Pentium III; its d column is garbled in the
// available scan, but the 4x time growth per row pins consecutive
// halvings, and E(s) d < 1 forces d <= 1/32 for this model):
//   0.49566676  0.05%    26.71 s
//   0.49553603  0.03%   107.62 s
//   0.49547017  0.01%   431.93 s
//   0.49543712 <0.01%  1712.00 s
//
// Shape expectations: error shrinks linearly in d, time grows ~ 1/d^2.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/engines/discretisation_engine.hpp"
#include "core/engines/sericola_engine.hpp"
#include "models/adhoc.hpp"
#include "obs/obs.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

double discretisation_once(double d) {
  const Mrm reduced = build_q3_reduced_mrm();
  const DiscretisationEngine engine(d);
  return engine.joint_distribution(reduced, kTimeBoundHours, kRewardBoundMah)
      .per_state[3];
}

double sericola_reference() {
  const Mrm reduced = build_q3_reduced_mrm();
  const SericolaEngine engine(1e-10);
  StateSet success(reduced.num_states());
  success.insert(3);
  return engine.joint_probability_all_starts(
      reduced, kTimeBoundHours, kRewardBoundMah, success)[reduced.initial_state()];
}

void print_table() {
  const double reference = sericola_reference();
  std::printf("=== Table 4: Tijms-Veldman discretisation ===\n");
  std::printf("Q3 on the reduced 5-state MRM; reference (Sericola 1e-10): "
              "%.8f\n", reference);
  std::printf("%8s  %-14s %-10s %10s\n", "d", "value", "rel.err", "time");
  for (int denom : {32, 64, 128, 256}) {
    WallTimer timer;
    const double value = discretisation_once(1.0 / denom);
    const double seconds = timer.seconds();
    std::printf("   1/%-4d  %.8f %7.3f%% %9.2f ms\n", denom, value,
                100.0 * std::abs(value - reference) / reference,
                seconds * 1e3);
  }
  std::printf("\n");
}

void print_grid_comparison() {
  // The batched-lattice path (core/batch.hpp): one F-grid sweep to
  // (t_max, r_max) harvests every smaller Table-4 bound on the way,
  // against the point-by-point loop it replaces.
  const Mrm reduced = build_q3_reduced_mrm();
  const double d = 1.0 / 64.0;
  const DiscretisationEngine engine(d);
  const std::vector<double> times{6.0, 12.0, kTimeBoundHours};
  const std::vector<double> rewards{150.0, 300.0, kRewardBoundMah};

  WallTimer timer;
  const auto batched = engine.joint_distribution_grid(reduced, times, rewards);
  const double batched_ms = timer.seconds() * 1e3;
  timer.reset();
  const auto looped =
      joint_distribution_grid_reference(engine, reduced, times, rewards);
  const double looped_ms = timer.seconds() * 1e3;

  bool bitwise = true;
  for (std::size_t g = 0; g < batched.size(); ++g)
    for (std::size_t s = 0; s < batched[g].per_state.size(); ++s)
      bitwise = bitwise && batched[g].per_state[s] == looped[g].per_state[s];
  std::printf("batched %zux%zu lattice at d=1/64: %.2f ms vs %.2f ms "
              "point-by-point (%.1fx), bitwise identical: %s\n\n",
              times.size(), rewards.size(), batched_ms, looped_ms,
              batched_ms > 0.0 ? looped_ms / batched_ms : 0.0,
              bitwise ? "yes" : "NO");
}

void BM_DiscretisationQ3(benchmark::State& state) {
  const double d = 1.0 / static_cast<double>(state.range(0));
  double value = 0.0;
  for (auto _ : state) {
    value = discretisation_once(d);
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
  state.counters["inv_step"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DiscretisationQ3)->RangeMultiplier(2)->Range(32, 256)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  csrl_bench::BenchObs obs_guard("table4_discretisation");
  print_table();
  print_grid_comparison();
  obs_guard.timed_reps("discretisation_q3_d1_32",
                       [] { return discretisation_once(1.0 / 32.0); });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
