// Ablation (DESIGN.md): lumping as a preprocessing step.
//
// k identical fail/repair machines span 2^k states but lump into k+1
// blocks.  We time a P3 CSRL query (time- and reward-bounded until, the
// paper's headline measure) on the full model vs lump-then-check, which is
// how a production checker would attack symmetric SRNs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/checker.hpp"
#include "logic/parser.hpp"
#include "models/synthetic.hpp"
#include "mrm/lumping.hpp"
#include "obs/obs.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

const char* kQuery = "P=? [ !all_down U[0,2]{0,6} all_up ]";

double check_full(const Mrm& model) {
  return Checker(model).value_initially(*parse_formula(kQuery));
}

double check_lumped(const Mrm& model) {
  const LumpingResult lumped = lump(model);
  const Checker checker(lumped.quotient);
  const auto values = checker.values(*parse_formula(kQuery));
  return values[lumped.block_of[model.initial_state()]];
}

void print_comparison() {
  std::printf("=== Ablation: lumping before checking ===\n");
  std::printf("k identical machines, query %s\n", kQuery);
  std::printf("%3s %8s %8s  %12s  %12s  %10s\n", "k", "states", "blocks",
              "full", "lump+check", "speedup");
  for (std::size_t k : {4u, 6u, 8u, 10u}) {
    const Mrm model = independent_machines_mrm(k, 0.5, 1.0);

    WallTimer full_timer;
    const double p_full = check_full(model);
    const double full_seconds = full_timer.seconds();

    WallTimer lumped_timer;
    const double p_lumped = check_lumped(model);
    const double lumped_seconds = lumped_timer.seconds();

    std::printf("%3zu %8zu %8zu  %9.2f ms  %9.2f ms  %9.1fx  (|diff|=%.1e)\n",
                k, model.num_states(), k + 1, full_seconds * 1e3,
                lumped_seconds * 1e3, full_seconds / lumped_seconds,
                std::abs(p_full - p_lumped));
  }
  std::printf("\n");
}

void BM_CheckFullModel(benchmark::State& state) {
  const Mrm model =
      independent_machines_mrm(static_cast<std::size_t>(state.range(0)), 0.5,
                               1.0);
  double value = 0.0;
  for (auto _ : state) {
    value = check_full(model);
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
  state.counters["states"] = static_cast<double>(model.num_states());
}
BENCHMARK(BM_CheckFullModel)->DenseRange(4, 8, 2)->Unit(benchmark::kMillisecond);

void BM_LumpThenCheck(benchmark::State& state) {
  const Mrm model =
      independent_machines_mrm(static_cast<std::size_t>(state.range(0)), 0.5,
                               1.0);
  double value = 0.0;
  for (auto _ : state) {
    value = check_lumped(model);
    benchmark::DoNotOptimize(value);
  }
  state.counters["probability"] = value;
}
BENCHMARK(BM_LumpThenCheck)->DenseRange(4, 8, 2)->Unit(benchmark::kMillisecond);

void BM_LumpingAlone(benchmark::State& state) {
  const Mrm model =
      independent_machines_mrm(static_cast<std::size_t>(state.range(0)), 0.5,
                               1.0);
  for (auto _ : state) {
    const LumpingResult lumped = lump(model);
    benchmark::DoNotOptimize(lumped.num_blocks);
  }
}
BENCHMARK(BM_LumpingAlone)->DenseRange(4, 10, 2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  csrl_bench::BenchObs obs_guard("ablation_lumping");
  print_comparison();
  {
    const Mrm model = independent_machines_mrm(6, 0.5, 1.0);
    obs_guard.timed_reps("check_full_k6", [&] { return check_full(model); });
    obs_guard.timed_reps("lump_then_check_k6",
                         [&] { return check_lumped(model); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
