// Lumping ablation gate: signature-based quotient as a transparent
// checker preprocessing pass (DESIGN.md section 3j).
//
// k identical fail/repair machines span 2^k states but are ordinarily
// lumpable into k+1 blocks (the count of working machines).  We check a
// P3 CSRL query (time- and reward-bounded until, the paper's headline
// measure) end to end — fresh Checker construction plus values() — with
// CheckOptions::lump off and on.  The lumped path pays the refiner, the
// quotient build, and the per-query lift back to the original
// numbering, so the measured ratio is the honest user-visible speedup,
// not the kernel-only one.
//
// The exit code is the acceptance gate for CI's bench-smoke job: 0 only
// when, at k = 10 machines (1024 states),
//   * the quotient has exactly k + 1 blocks,
//   * lump-then-check is at least 5x faster than the full model
//     (median over 1 warmup + 5 timed reps each),
//   * every lifted per-state value agrees with the unlumped run to
//     1e-9, and
//   * the Sat set of a threshold formula P>=p[...] is exactly equal,
//     with p chosen data-driven as the midpoint of the widest gap
//     between adjacent distinct unlumped values (maximally far from
//     every decision boundary, so the comparison is robust yet real).
// Results go to BENCH_lumping.json; metric/span attribution (including
// the lump/* refiner counters) goes to BENCH_lumping_obs.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "logic/parser.hpp"
#include "models/synthetic.hpp"
#include "mrm/lumping.hpp"
#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "util/state_set.hpp"

#include "bench_obs.hpp"

namespace {

using namespace csrl;

const char* kQuery = "P=? [ !all_down U[0,2]{0,6} all_up ]";

CheckOptions lump_options() {
  CheckOptions options;
  options.lump = true;
  return options;
}

std::vector<double> check_full(const Mrm& model, const Formula& f) {
  return Checker(model).values(f);
}

std::vector<double> lump_then_check(const Mrm& model, const Formula& f) {
  return Checker(model, lump_options()).values(f);
}

/// Midpoint of the widest gap between adjacent distinct values: a
/// threshold as far as possible from every per-state probability, so
/// the derived Sat set is insensitive to sub-gap numerical noise while
/// still partitioning the states non-trivially.
double widest_gap_midpoint(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  double best = values.front() / 2.0;
  double best_gap = values.front();
  for (std::size_t i = 1; i < values.size(); ++i) {
    const double gap = values[i] - values[i - 1];
    if (gap > best_gap) {
      best_gap = gap;
      best = (values[i] + values[i - 1]) / 2.0;
    }
  }
  return best;
}

}  // namespace

int main() {
  csrl_bench::BenchObs obs_guard("lumping");

  const std::size_t k = 10;
  const Mrm model = independent_machines_mrm(k, 0.5, 1.0);
  const auto formula = parse_formula(kQuery);

  std::printf("=== Lumping gate: quotient-then-check vs full model ===\n");
  std::printf("%zu identical machines (%zu states), query %s\n\n", k,
              model.num_states(), kQuery);

  // Smaller sizes for the printed trajectory (not part of the gate).
  std::printf("%3s %8s %8s  %12s  %12s  %9s\n", "k", "states", "blocks",
              "full", "lump+check", "speedup");
  for (std::size_t kk : {std::size_t{4}, std::size_t{6}, std::size_t{8}}) {
    const Mrm small = independent_machines_mrm(kk, 0.5, 1.0);
    WallTimer full_timer;
    const std::vector<double> full = check_full(small, *formula);
    const double full_s = full_timer.seconds();
    WallTimer lumped_timer;
    const std::vector<double> lumped = lump_then_check(small, *formula);
    const double lumped_s = lumped_timer.seconds();
    double max_diff = 0.0;
    for (std::size_t s = 0; s < full.size(); ++s)
      max_diff = std::max(max_diff, std::abs(full[s] - lumped[s]));
    std::printf("%3zu %8zu %8zu  %9.2f ms  %9.2f ms  %8.1fx  (|diff|=%.1e)\n",
                kk, small.num_states(), kk + 1, full_s * 1e3, lumped_s * 1e3,
                full_s / lumped_s, max_diff);
  }
  std::printf("\n");

  // Gate 1: exact block count on the gate model.
  const std::size_t num_blocks = lump(model).num_blocks;
  const bool blocks_ok = num_blocks == k + 1;
  std::printf("quotient blocks: %zu (expect %zu): %s\n", num_blocks, k + 1,
              blocks_ok ? "ok" : "FAIL");

  // Gates 2+3: end-to-end medians and lifted-value agreement.  Each rep
  // constructs a fresh Checker, so the lumped reps pay the full refiner
  // + quotient + lift cost every time.
  const std::vector<double> values_full =
      obs_guard.timed_reps("check_full", [&] { return check_full(model, *formula); });
  const std::vector<double> values_lumped = obs_guard.timed_reps(
      "lump_then_check", [&] { return lump_then_check(model, *formula); });

  double max_diff = 0.0;
  for (std::size_t s = 0; s < values_full.size(); ++s)
    max_diff = std::max(max_diff, std::abs(values_full[s] - values_lumped[s]));
  const bool values_ok = max_diff <= 1e-9;
  std::printf("max |lifted - full| over %zu states: %.2e (gate 1e-9): %s\n",
              values_full.size(), max_diff, values_ok ? "ok" : "FAIL");

  double full_ms = 0.0;
  double lumped_ms = 0.0;
  for (const csrl_bench::BenchObs::RepStats& r : obs_guard.reps()) {
    if (r.name == "check_full") full_ms = r.median_ms;
    if (r.name == "lump_then_check") lumped_ms = r.median_ms;
  }
  const double speedup = lumped_ms > 0.0 ? full_ms / lumped_ms : 0.0;
  const bool speed_ok = speedup >= 5.0;
  std::printf("median wall-clock: full %.2f ms, lump+check %.2f ms "
              "(%.2fx), gate needs >= 5x: %s\n",
              full_ms, lumped_ms, speedup, speed_ok ? "ok" : "FAIL");

  // Gate 4: exact Sat-set agreement on a data-driven threshold formula.
  const double threshold = widest_gap_midpoint(values_full);
  char sat_query[160];
  std::snprintf(sat_query, sizeof sat_query,
                "P>=%.17g [ !all_down U[0,2]{0,6} all_up ]", threshold);
  const auto sat_formula = parse_formula(sat_query);
  const StateSet sat_full = Checker(model).sat(*sat_formula);
  const StateSet sat_lumped = Checker(model, lump_options()).sat(*sat_formula);
  const bool sat_ok = sat_full == sat_lumped;
  std::printf("Sat(%s): full %zu states, lumped %zu states, exact: %s\n",
              sat_query, sat_full.count(), sat_lumped.count(),
              sat_ok ? "ok" : "FAIL");

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("csrl-bench-lumping-v1");
  w.key("bench").value("lumping");
  w.key("machines").value(static_cast<std::uint64_t>(k));
  w.key("states").value(static_cast<std::uint64_t>(model.num_states()));
  w.key("blocks").value(static_cast<std::uint64_t>(num_blocks));
  w.key("full_median_ms").value(full_ms);
  w.key("lumped_median_ms").value(lumped_ms);
  w.key("speedup").value(speedup);
  w.key("max_value_diff").value(max_diff);
  w.key("sat_threshold").value(threshold);
  w.key("sat_exact").value(sat_ok);
  w.key("reps").begin_array();
  for (const csrl_bench::BenchObs::RepStats& r : obs_guard.reps()) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("reps").value(static_cast<std::uint64_t>(r.reps));
    w.key("median_ms").value(r.median_ms);
    w.key("min_ms").value(r.min_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string text = std::move(w).str();

  const char* path = "BENCH_lumping.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }

  return (blocks_ok && values_ok && speed_ok && sat_ok) ? 0 : 1;
}
