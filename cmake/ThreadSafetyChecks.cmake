# Clang Thread Safety Analysis wiring (util/annotations.hpp).
#
# Included from the top-level CMakeLists.txt when CSRL_THREAD_SAFETY=ON.
# Two responsibilities:
#
#   1. Compile the tree with -Wthread-safety -Werror=thread-safety so
#      any lock-discipline violation in annotated code fails the build.
#      Clang-only: the attributes expand to nothing elsewhere
#      (annotations.hpp gates on __has_attribute(capability)), so
#      requesting the mode under gcc is a hard configure error rather
#      than a silent no-op.
#
#   2. Verify the analysis actually has teeth with three try_compile
#      probes over tests/negative_compile/:
#        locked_access.cpp     correct usage — MUST compile (positive
#                              control: proves flags/includes are sane
#                              before trusting any negative result)
#        unlocked_access.cpp   GUARDED_BY access without the mutex —
#                              MUST fail
#        missing_requires.cpp  calling a REQUIRES(m) function without
#                              holding m — MUST fail
#      A probe landing on the wrong side is a configure-time FATAL_ERROR.

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(FATAL_ERROR
    "CSRL_THREAD_SAFETY=ON requires clang (-Wthread-safety); the current "
    "compiler is ${CMAKE_CXX_COMPILER_ID}. Configure with "
    "CC=clang CXX=clang++ or drop the option.")
endif()

add_compile_options(-Wthread-safety -Werror=thread-safety)

function(csrl_thread_safety_probe case expect_success)
  set(src ${CMAKE_SOURCE_DIR}/tests/negative_compile/${case}.cpp)
  # try_compile caches its result; per-case names (and an unset) keep
  # every probe honest on reconfigure.
  unset(probe_ok_${case} CACHE)
  try_compile(probe_ok_${case}
    ${CMAKE_BINARY_DIR}/thread_safety_probes/${case}
    ${src}
    COMPILE_DEFINITIONS -Wthread-safety -Werror=thread-safety
    CMAKE_FLAGS
      -DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src
      -DCMAKE_CXX_STANDARD=20
      -DCMAKE_CXX_STANDARD_REQUIRED=ON
    OUTPUT_VARIABLE probe_output)
  if(expect_success AND NOT probe_ok_${case})
    message(FATAL_ERROR
      "thread-safety probe `${case}` failed to compile but is the "
      "positive control — the probe harness itself is broken:\n"
      "${probe_output}")
  endif()
  if(NOT expect_success AND probe_ok_${case})
    message(FATAL_ERROR
      "thread-safety probe `${case}` compiled but must be rejected "
      "under -Werror=thread-safety — the analysis has no teeth "
      "(annotations expanding to nothing under this compiler?)")
  endif()
  if(expect_success)
    message(STATUS "Thread-safety probe ${case}: compiles, as expected")
  else()
    message(STATUS "Thread-safety probe ${case}: rejected, as expected")
  endif()
endfunction()

csrl_thread_safety_probe(locked_access TRUE)
csrl_thread_safety_probe(unlocked_access FALSE)
csrl_thread_safety_probe(missing_requires FALSE)
message(STATUS "Thread-safety analysis enabled; negative-compile probes passed")
