// The globally operator G^I_J (an extension): Pr(G) = 1 - Pr(F !Phi).
#include <gtest/gtest.h>

#include <cmath>

#include "core/checker.hpp"
#include "logic/parser.hpp"
#include "models/synthetic.hpp"

namespace csrl {
namespace {

/// 0 (up) -> 1 (down, absorbing) at rate a.
Mrm failing(double a) {
  CsrBuilder b(2, 2);
  b.add(0, 1, a);
  Labelling l(2);
  l.add_label(0, "up");
  l.add_label(1, "down");
  return Mrm(Ctmc(b.build()), {1.0, 0.0}, std::move(l), 0);
}

TEST(Globally, ParsesAndPrints) {
  const FormulaPtr f = parse_formula("P>=0.9 [ G[0,10] up ]");
  EXPECT_EQ(f->path()->kind(), PathKind::kGlobally);
  EXPECT_EQ(f->to_string(), "P>=0.9 [ G[0,10] (up) ]");
  const FormulaPtr again = parse_formula(f->to_string());
  EXPECT_EQ(again->to_string(), f->to_string());
}

TEST(Globally, TimeBoundedReliability) {
  // G[0,t] up == survive until t: e^{-a t}.
  const double a = 0.8;
  const Mrm m = failing(a);
  const Checker c(m);
  for (double t : {0.5, 2.0}) {
    const auto probs = c.values(*parse_formula(
        "P=? [ G[0," + std::to_string(t) + "] up ]"));
    EXPECT_NEAR(probs[0], std::exp(-a * t), 1e-9) << t;
    EXPECT_NEAR(probs[1], 0.0, 1e-9);
  }
}

TEST(Globally, UnboundedOnAbsorbingFailure) {
  const Mrm m = failing(1.0);
  const auto probs = Checker(m).values(*parse_formula("P=? [ G up ]"));
  EXPECT_NEAR(probs[0], 0.0, 1e-10);  // failure is certain eventually
  const auto down = Checker(m).values(*parse_formula("P=? [ G down ]"));
  EXPECT_NEAR(down[1], 1.0, 1e-10);  // absorbing: down forever
}

TEST(Globally, RewardBudgetVariant) {
  // G{0,r} up: never leave "up" while the accumulated reward stays within
  // r... the complement is F{0,r} down, reached at reward T (rho=1 in up):
  // Pr = 1 - Pr{T <= r}.
  const double a = 1.1, r = 2.0;
  const Mrm m = failing(a);
  const auto probs =
      Checker(m).values(*parse_formula("P=? [ G{0,2} up ]"));
  EXPECT_NEAR(probs[0], std::exp(-a * r), 1e-9);
}

TEST(Globally, ComplementIdentityOnRandomModel) {
  const Mrm m = birth_death_mrm(5, 1.0, 2.0);
  const Checker c(m);
  const auto g = c.values(*parse_formula("P=? [ G[0,3] !full ]"));
  const auto f = c.values(*parse_formula("P=? [ F[0,3] full ]"));
  for (std::size_t s = 0; s < m.num_states(); ++s)
    EXPECT_NEAR(g[s] + f[s], 1.0, 1e-9);
}

TEST(Globally, BoundedOperatorDecides) {
  const Mrm m = failing(1.0);
  const Checker c(m);
  // e^{-0.1} ~ 0.905.
  EXPECT_TRUE(c.holds_initially(*parse_formula("P>0.9 [ G[0,0.1] up ]")));
  EXPECT_FALSE(c.holds_initially(*parse_formula("P>0.95 [ G[0,0.1] up ]")));
}

}  // namespace
}  // namespace csrl
