// Property-based fuzzing of the full checking pipeline: random models,
// random CSRL formulas, structural invariants that must hold regardless
// of the numbers.
#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "logic/parser.hpp"
#include "util/rng.hpp"

namespace csrl {
namespace {

/// Random strongly-labelled MRM with strictly positive rewards (so that
/// the duality-based P2 pipeline is available for every generated
/// formula).
Mrm fuzz_model(std::uint64_t seed) {
  SplitMix64 rng(seed * 31 + 5);
  const std::size_t n = 3 + rng.next_below(4);
  CsrBuilder b(n, n);
  std::vector<double> rewards(n, 0.0);
  Labelling l(n);
  l.add_proposition("a");
  l.add_proposition("b");
  for (std::size_t s = 0; s < n; ++s) {
    rewards[s] = 1.0 + static_cast<double>(rng.next_below(3));
    const std::size_t degree = 1 + rng.next_below(2);
    for (std::size_t e = 0; e < degree; ++e) {
      std::size_t to = rng.next_below(n - 1);
      if (to >= s) ++to;
      b.add(s, to, rng.next_double(0.2, 2.0));
    }
    if (rng.next_double() < 0.5) l.add_label(s, "a");
    if (rng.next_double() < 0.4) l.add_label(s, "b");
  }
  return Mrm(Ctmc(b.build()), std::move(rewards), std::move(l), 0);
}

/// Random state formula of bounded depth; temporal bounds stay in the
/// fragment every pipeline supports.
FormulaPtr random_formula(SplitMix64& rng, int depth) {
  const auto atom = [&]() {
    return Formula::atomic(rng.next_double() < 0.5 ? "a" : "b");
  };
  if (depth == 0) return atom();

  switch (rng.next_below(7)) {
    case 0:
      return atom();
    case 1:
      return Formula::negation(random_formula(rng, depth - 1));
    case 2:
      return Formula::conjunction(random_formula(rng, depth - 1),
                                  random_formula(rng, depth - 1));
    case 3:
      return Formula::disjunction(random_formula(rng, depth - 1),
                                  random_formula(rng, depth - 1));
    case 4: {  // steady state
      return Formula::steady_state(Comparison::kGreater,
                                   rng.next_double(0.05, 0.95),
                                   random_formula(rng, depth - 1));
    }
    default: {  // probability over a random path formula
      Interval time = Interval::unbounded();
      Interval reward = Interval::unbounded();
      if (rng.next_double() < 0.6)
        time = Interval::upto(rng.next_double(0.3, 2.0));
      if (rng.next_double() < 0.5)
        reward = Interval::upto(rng.next_double(0.3, 3.0));
      PathFormulaPtr path;
      switch (rng.next_below(4)) {
        case 0:
          path = PathFormula::next(time, reward, random_formula(rng, depth - 1));
          break;
        case 1:
          path = PathFormula::eventually(time, reward,
                                         random_formula(rng, depth - 1));
          break;
        case 2:
          path = PathFormula::globally(time, reward,
                                       random_formula(rng, depth - 1));
          break;
        default:
          path = PathFormula::until(time, reward, random_formula(rng, depth - 1),
                                    random_formula(rng, depth - 1));
          break;
      }
      return Formula::probability(Comparison::kGreaterEqual,
                                  rng.next_double(0.05, 0.95), path);
    }
  }
}

class FormulaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormulaFuzz, BooleanAlgebraOfSatSets) {
  const Mrm m = fuzz_model(GetParam());
  CheckOptions options;
  options.sericola_epsilon = 1e-7;
  const Checker c(m, options);
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 4; ++i) {
    const FormulaPtr f = random_formula(rng, 2);
    const FormulaPtr g = random_formula(rng, 2);
    EXPECT_EQ(c.sat(*Formula::negation(f)), c.sat(*f).complement())
        << f->to_string();
    EXPECT_EQ(c.sat(*Formula::conjunction(f, g)), c.sat(*f) & c.sat(*g));
    EXPECT_EQ(c.sat(*Formula::disjunction(f, g)), c.sat(*f) | c.sat(*g));
    // De Morgan.
    EXPECT_EQ(c.sat(*Formula::negation(Formula::conjunction(f, g))),
              c.sat(*Formula::disjunction(Formula::negation(f),
                                          Formula::negation(g))));
  }
}

TEST_P(FormulaFuzz, PathProbabilitiesAreProbabilities) {
  const Mrm m = fuzz_model(GetParam());
  CheckOptions options;
  options.sericola_epsilon = 1e-7;
  const Checker c(m, options);
  SplitMix64 rng(GetParam() + 1000);
  for (int i = 0; i < 4; ++i) {
    const FormulaPtr f = random_formula(rng, 2);
    if (f->kind() != FormulaKind::kProb) continue;
    const auto probs = c.path_probabilities(*f->path());
    for (double p : probs) {
      EXPECT_GE(p, -1e-9) << f->to_string();
      EXPECT_LE(p, 1.0 + 1e-9) << f->to_string();
    }
  }
}

TEST_P(FormulaFuzz, GloballyIsTheDualOfEventually) {
  const Mrm m = fuzz_model(GetParam());
  CheckOptions options;
  options.sericola_epsilon = 1e-7;
  const Checker c(m, options);
  SplitMix64 rng(GetParam() + 2000);
  const FormulaPtr target = random_formula(rng, 1);
  const Interval time = Interval::upto(rng.next_double(0.3, 1.5));
  const auto g = c.path_probabilities(
      *PathFormula::globally(time, Interval::unbounded(), target));
  const auto f = c.path_probabilities(*PathFormula::eventually(
      time, Interval::unbounded(), Formula::negation(target)));
  for (std::size_t s = 0; s < m.num_states(); ++s)
    EXPECT_NEAR(g[s] + f[s], 1.0, 1e-7);
}

TEST_P(FormulaFuzz, EventuallyIsTrueUntil) {
  const Mrm m = fuzz_model(GetParam());
  const Checker c(m);
  SplitMix64 rng(GetParam() + 3000);
  const FormulaPtr target = random_formula(rng, 1);
  const Interval time = Interval::upto(rng.next_double(0.3, 1.5));
  const Interval reward = Interval::upto(rng.next_double(0.5, 2.5));
  const auto a =
      c.path_probabilities(*PathFormula::eventually(time, reward, target));
  const auto b = c.path_probabilities(
      *PathFormula::until(time, reward, Formula::make_true(), target));
  for (std::size_t s = 0; s < m.num_states(); ++s) EXPECT_NEAR(a[s], b[s], 1e-9);
}

TEST_P(FormulaFuzz, CachedAndUncachedAgree) {
  const Mrm m = fuzz_model(GetParam());
  CheckOptions cached;
  cached.sericola_epsilon = 1e-7;
  CheckOptions uncached = cached;
  uncached.cache_sat_sets = false;
  const Checker with(m, cached);
  const Checker without(m, uncached);
  SplitMix64 rng(GetParam() + 4000);
  for (int i = 0; i < 3; ++i) {
    const FormulaPtr f = random_formula(rng, 3);
    EXPECT_EQ(with.sat(*f), without.sat(*f)) << f->to_string();
  }
}

TEST_P(FormulaFuzz, ParseOfPrintedFormulaChecksIdentically) {
  const Mrm m = fuzz_model(GetParam());
  const Checker c(m);
  SplitMix64 rng(GetParam() + 5000);
  const FormulaPtr f = random_formula(rng, 3);
  const FormulaPtr reparsed = parse_formula(f->to_string());
  EXPECT_EQ(c.sat(*f), c.sat(*reparsed)) << f->to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulaFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace csrl
