#include "logic/formula.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace csrl {
namespace {

TEST(Comparison, Semantics) {
  EXPECT_TRUE(compare(Comparison::kLess, 0.4, 0.5));
  EXPECT_FALSE(compare(Comparison::kLess, 0.5, 0.5));
  EXPECT_TRUE(compare(Comparison::kLessEqual, 0.5, 0.5));
  EXPECT_TRUE(compare(Comparison::kGreater, 0.6, 0.5));
  EXPECT_FALSE(compare(Comparison::kGreater, 0.5, 0.5));
  EXPECT_TRUE(compare(Comparison::kGreaterEqual, 0.5, 0.5));
}

TEST(Interval, Helpers) {
  const Interval u = Interval::unbounded();
  EXPECT_TRUE(u.is_unbounded());
  EXPECT_FALSE(u.has_upper_bound());
  EXPECT_TRUE(u.contains(1e12));

  const Interval i = Interval::upto(2.0);
  EXPECT_FALSE(i.is_unbounded());
  EXPECT_TRUE(i.has_upper_bound());
  EXPECT_TRUE(i.contains(0.0));
  EXPECT_TRUE(i.contains(2.0));
  EXPECT_FALSE(i.contains(2.1));
}

TEST(Formula, AtomicAndBoolean) {
  const FormulaPtr a = Formula::atomic("a");
  const FormulaPtr b = Formula::atomic("b");
  const FormulaPtr f = Formula::conjunction(a, Formula::negation(b));
  EXPECT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->lhs()->name(), "a");
  EXPECT_EQ(f->rhs()->kind(), FormulaKind::kNot);
  EXPECT_EQ(f->rhs()->operand()->name(), "b");
}

TEST(Formula, ImplicationDesugars) {
  const FormulaPtr f =
      Formula::implication(Formula::atomic("a"), Formula::atomic("b"));
  EXPECT_EQ(f->kind(), FormulaKind::kOr);
  EXPECT_EQ(f->lhs()->kind(), FormulaKind::kNot);
}

TEST(Formula, FalseIsNotTrue) {
  const FormulaPtr f = Formula::make_false();
  EXPECT_EQ(f->kind(), FormulaKind::kNot);
  EXPECT_EQ(f->operand()->kind(), FormulaKind::kTrue);
}

TEST(Formula, ProbabilityNode) {
  const PathFormulaPtr path = PathFormula::eventually(
      Interval::upto(24.0), Interval::upto(600.0), Formula::atomic("goal"));
  const FormulaPtr f = Formula::probability(Comparison::kGreater, 0.5, path);
  EXPECT_EQ(f->kind(), FormulaKind::kProb);
  EXPECT_FALSE(f->is_query());
  EXPECT_EQ(f->comparison(), Comparison::kGreater);
  EXPECT_DOUBLE_EQ(f->bound(), 0.5);
  EXPECT_EQ(f->path()->kind(), PathKind::kUntil);
}

TEST(Formula, QueryNodeRejectsBoundAccess) {
  const PathFormulaPtr path = PathFormula::next(
      Interval::unbounded(), Interval::unbounded(), Formula::make_true());
  const FormulaPtr f = Formula::probability_query(path);
  EXPECT_TRUE(f->is_query());
  EXPECT_THROW((void)f->comparison(), ModelError);
  EXPECT_THROW((void)f->bound(), ModelError);
}

TEST(Formula, BoundOutsideUnitIntervalThrows) {
  const PathFormulaPtr path = PathFormula::next(
      Interval::unbounded(), Interval::unbounded(), Formula::make_true());
  EXPECT_THROW((void)Formula::probability(Comparison::kLess, 1.5, path),
               ModelError);
  EXPECT_THROW(
      (void)Formula::steady_state(Comparison::kLess, -0.1, Formula::make_true()),
      ModelError);
}

TEST(Formula, WrongAccessorsThrow) {
  const FormulaPtr t = Formula::make_true();
  EXPECT_THROW((void)t->name(), ModelError);
  EXPECT_THROW((void)t->lhs(), ModelError);
  EXPECT_THROW((void)t->path(), ModelError);
}

TEST(PathFormula, UntilAccessors) {
  const PathFormulaPtr u =
      PathFormula::until(Interval::upto(1.0), Interval::unbounded(),
                         Formula::atomic("g"), Formula::atomic("r"));
  EXPECT_EQ(u->kind(), PathKind::kUntil);
  EXPECT_EQ(u->lhs()->name(), "g");
  EXPECT_EQ(u->target()->name(), "r");
  EXPECT_DOUBLE_EQ(u->time().hi, 1.0);
  EXPECT_TRUE(u->reward().is_unbounded());
}

TEST(PathFormula, NextHasNoLhs) {
  const PathFormulaPtr x = PathFormula::next(
      Interval::unbounded(), Interval::unbounded(), Formula::atomic("a"));
  EXPECT_THROW((void)x->lhs(), ModelError);
}

TEST(PathFormula, IllFormedIntervalThrows) {
  EXPECT_THROW((void)PathFormula::next(Interval{2.0, 1.0}, Interval::unbounded(),
                                       Formula::make_true()),
               ModelError);
}

TEST(ToString, RoundTripShapes) {
  EXPECT_EQ(Formula::make_true()->to_string(), "true");
  EXPECT_EQ(Formula::atomic("up")->to_string(), "up");
  const FormulaPtr f = Formula::probability(
      Comparison::kGreater, 0.5,
      PathFormula::until(Interval::upto(24.0), Interval::upto(600.0),
                         Formula::atomic("g"), Formula::atomic("r")));
  EXPECT_EQ(f->to_string(), "P>0.5 [ (g) U[0,24]{0,600} (r) ]");
}

TEST(ToString, EventuallyPrintsAsF) {
  const FormulaPtr f = Formula::probability_query(PathFormula::eventually(
      Interval::unbounded(), Interval::upto(600.0), Formula::atomic("goal")));
  EXPECT_EQ(f->to_string(), "P=? [ F{0,600} (goal) ]");
}

TEST(ToString, UnboundedIntervalsOmitted) {
  const FormulaPtr f = Formula::probability_query(PathFormula::until(
      Interval::unbounded(), Interval::unbounded(), Formula::atomic("a"),
      Formula::atomic("b")));
  EXPECT_EQ(f->to_string(), "P=? [ (a) U (b) ]");
}

}  // namespace
}  // namespace csrl
