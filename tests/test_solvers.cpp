#include "matrix/solvers.hpp"

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/workspace.hpp"

namespace csrl {
namespace {

/// A 2x2 contraction A = [[0.2, 0.3], [0.1, 0.4]] and b = [1, 2]:
/// the fixpoint of x = Ax + b is x = (I-A)^{-1} b.
CsrMatrix contraction() {
  CsrBuilder b(2, 2);
  b.add(0, 0, 0.2);
  b.add(0, 1, 0.3);
  b.add(1, 0, 0.1);
  b.add(1, 1, 0.4);
  return b.build();
}

std::vector<double> exact_fixpoint() {
  // (I-A) = [[0.8, -0.3], [-0.1, 0.6]]; det = 0.45.
  // x = 1/det * [[0.6, 0.3], [0.1, 0.8]] * [1, 2] = [1.2/0.45? ...] computed:
  // x0 = (0.6*1 + 0.3*2)/0.45 = 1.2/0.45, x1 = (0.1*1 + 0.8*2)/0.45 = 1.7/0.45
  return {1.2 / 0.45, 1.7 / 0.45};
}

class SolveFixpointMethods : public ::testing::TestWithParam<LinearMethod> {};

TEST_P(SolveFixpointMethods, AgreesWithExactSolution) {
  SolverOptions options;
  options.method = GetParam();
  options.tolerance = 1e-14;
  const std::vector<double> b{1.0, 2.0};
  const std::vector<double> x = solve_fixpoint(contraction(), b, options);
  const std::vector<double> expect = exact_fixpoint();
  EXPECT_NEAR(x[0], expect[0], 1e-10);
  EXPECT_NEAR(x[1], expect[1], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SolveFixpointMethods,
                         ::testing::Values(LinearMethod::kJacobi,
                                           LinearMethod::kGaussSeidel,
                                           LinearMethod::kSor,
                                           LinearMethod::kBicgstab));

TEST(SolveFixpoint, BicgstabHandlesZeroRhs) {
  SolverOptions options;
  options.method = LinearMethod::kBicgstab;
  const std::vector<double> zero{0.0, 0.0};
  const std::vector<double> x = solve_fixpoint(contraction(), zero, options);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(SolveFixpoint, BicgstabMatchesGaussSeidelOnLargerSystem) {
  // Random-ish substochastic matrix: x = Ax + b.
  const std::size_t n = 60;
  CsrBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, (i + 1) % n, 0.4);
    builder.add(i, (i * 7 + 3) % n, 0.3);
  }
  const CsrMatrix a = builder.build();
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) b[i] = 0.01 * static_cast<double>(i);
  SolverOptions krylov;
  krylov.method = LinearMethod::kBicgstab;
  SolverOptions stationary;
  stationary.method = LinearMethod::kGaussSeidel;
  const auto x1 = solve_fixpoint(a, b, krylov);
  const auto x2 = solve_fixpoint(a, b, stationary);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

TEST(SolveFixpoint, ZeroMatrixReturnsRhs) {
  const CsrMatrix a(3, 3);
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_EQ(solve_fixpoint(a, b), b);
}

TEST(SolveFixpoint, EmptySystem) {
  const CsrMatrix a(0, 0);
  EXPECT_TRUE(solve_fixpoint(a, {}).empty());
}

TEST(SolveFixpoint, RectangularThrows) {
  const CsrMatrix a(2, 3);
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)solve_fixpoint(a, b), ModelError);
}

TEST(SolveFixpoint, UnitDiagonalThrows) {
  CsrBuilder a(1, 1);
  a.add(0, 0, 1.0);
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)solve_fixpoint(a.build(), b), NumericalError);
}

TEST(SolveFixpoint, IterationLimitThrows) {
  SolverOptions options;
  options.max_iterations = 1;
  options.tolerance = 1e-16;
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)solve_fixpoint(contraction(), b, options), NumericalError);
}

TEST(SolveFixpoint, InvalidOmegaThrows) {
  SolverOptions options;
  options.method = LinearMethod::kSor;
  options.omega = 2.5;
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)solve_fixpoint(contraction(), b, options), NumericalError);
}

TEST(SolveFixpoint, SorUnderRelaxationStillConverges) {
  SolverOptions options;
  options.method = LinearMethod::kSor;
  options.omega = 0.7;
  const std::vector<double> b{1.0, 2.0};
  const std::vector<double> x = solve_fixpoint(contraction(), b, options);
  EXPECT_NEAR(x[0], exact_fixpoint()[0], 1e-9);
}

TEST(PowerStationary, TwoStateChain) {
  // P = [[0.5, 0.5], [0.25, 0.75]] has stationary (1/3, 2/3).
  CsrBuilder b(2, 2);
  b.add(0, 0, 0.5);
  b.add(0, 1, 0.5);
  b.add(1, 0, 0.25);
  b.add(1, 1, 0.75);
  const std::vector<double> pi = power_stationary(b.build());
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-9);
}

TEST(PowerStationary, SymmetricRing) {
  // Doubly stochastic => uniform stationary distribution.
  const std::size_t n = 5;
  CsrBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, (i + 1) % n, 0.5);
    b.add(i, i, 0.5);
  }
  const std::vector<double> pi = power_stationary(b.build());
  for (double v : pi) EXPECT_NEAR(v, 0.2, 1e-9);
}

TEST(PowerStationary, EmptyThrows) {
  EXPECT_THROW((void)power_stationary(CsrMatrix(0, 0)), ModelError);
}

TEST(SolverWorkspace, ResultsMatchPlainSolve) {
  Workspace workspace;
  SolverOptions with_arena;
  with_arena.workspace = &workspace;
  const std::vector<double> b{1.0, 2.0};
  for (LinearMethod method :
       {LinearMethod::kJacobi, LinearMethod::kGaussSeidel, LinearMethod::kSor,
        LinearMethod::kBicgstab}) {
    with_arena.method = method;
    SolverOptions plain = with_arena;
    plain.workspace = nullptr;
    const std::vector<double> expect = solve_fixpoint(contraction(), b, plain);
    const std::vector<double> x = solve_fixpoint(contraction(), b, with_arena);
    EXPECT_DOUBLE_EQ(x[0], expect[0]);
    EXPECT_DOUBLE_EQ(x[1], expect[1]);
  }
}

#ifndef CSRL_OBS_DISABLED
TEST(SolverWorkspace, IterationLoopsAreAllocFreeWhenWarmed) {
  obs::ScopedRecording recording;
  Workspace workspace;
  SolverOptions options;
  options.workspace = &workspace;
  const std::vector<double> b{1.0, 2.0};

  CsrBuilder p(2, 2);
  p.add(0, 0, 0.5);
  p.add(0, 1, 0.5);
  p.add(1, 0, 0.25);
  p.add(1, 1, 0.75);
  const CsrMatrix stochastic = p.build();

  // Warm the arena: one pass per solver shape.
  for (LinearMethod method : {LinearMethod::kJacobi, LinearMethod::kBicgstab}) {
    options.method = method;
    (void)solve_fixpoint(contraction(), b, options);
  }
  (void)power_stationary(stochastic, options);

  const obs::MetricsSnapshot before = obs::snapshot_metrics();
  for (LinearMethod method : {LinearMethod::kJacobi, LinearMethod::kBicgstab}) {
    options.method = method;
    (void)solve_fixpoint(contraction(), b, options);
  }
  (void)power_stationary(stochastic, options);
  EXPECT_EQ(obs::metrics_delta(before, obs::snapshot_metrics())
                .counter("matrix/solver/allocs_in_loop"),
            0u)
      << "warmed arena still hit the heap inside a solver loop";
}
#endif  // CSRL_OBS_DISABLED

}  // namespace
}  // namespace csrl
