// Golden regression values.
//
// These pin the concrete numbers recorded in EXPERIMENTS.md.  They are
// *this implementation's* reference outputs (cross-validated between four
// independent methods), so any drift — a refactor changing results, a
// numerics regression — fails loudly here, and an intentional change must
// update EXPERIMENTS.md in the same commit.
#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/engines/sericola_engine.hpp"
#include "logic/parser.hpp"
#include "models/adhoc.hpp"
#include "models/multiprocessor.hpp"

namespace csrl {
namespace {

TEST(Regression, Q3ConvergedValue) {
  const Mrm m = build_adhoc_mrm();
  const Checker checker(m);
  EXPECT_NEAR(checker.value_initially(*parse_formula(kQueryQ3)), 0.49699672,
              5e-8);
}

TEST(Regression, Q3TruncationDepth) {
  const SericolaEngine engine(1e-8);
  EXPECT_EQ(engine.truncation_depth(build_q3_reduced_mrm(), kTimeBoundHours),
            596u);
}

TEST(Regression, Q1Value) {
  const Mrm m = build_adhoc_mrm();
  EXPECT_NEAR(Checker(m).value_initially(*parse_formula(kQueryQ1)), 0.90913334,
              1e-7);
}

TEST(Regression, Q2Value) {
  const Mrm m = build_adhoc_mrm();
  EXPECT_NEAR(Checker(m).value_initially(*parse_formula(kQueryQ2)), 0.99444054,
              1e-7);
}

TEST(Regression, SericolaEpsilonTrajectory) {
  // The per-epsilon partial sums of Table 2 (EXPERIMENTS.md).
  const Mrm reduced = build_q3_reduced_mrm();
  StateSet success(5);
  success.insert(3);
  const struct {
    double epsilon;
    double value;
  } rows[] = {
      {1e-1, 0.44926185},
      {1e-2, 0.49222500},
      {1e-4, 0.49695067},
      {1e-8, 0.49699672},
  };
  for (const auto& row : rows) {
    const SericolaEngine engine(row.epsilon);
    EXPECT_NEAR(engine.joint_probability_all_starts(
                    reduced, kTimeBoundHours, kRewardBoundMah, success)[1],
                row.value, 5e-8)
        << row.epsilon;
  }
}

TEST(Regression, AdhocExpectedDrainOverADay) {
  // E[Y_24] on the full station model: 1413.87 mAh (printed by csrl_cli in
  // the EXPERIMENTS walkthrough).
  const Mrm m = build_adhoc_mrm();
  EXPECT_NEAR(Checker(m).value_initially(*parse_formula("R=? [ C<=24 ]")),
              1413.8716, 1e-3);
}

TEST(Regression, MultiprocessorHeadlineNumbers) {
  const Mrm m = multiprocessor_mrm({});  // the documented defaults
  const Checker checker(m);
  EXPECT_NEAR(checker.value_initially(*parse_formula("P=? [ F[0,10] down ]")),
              0.172848, 1e-5);
  EXPECT_NEAR(checker.value_initially(*parse_formula("S=? [ operational ]")),
              0.979838, 1e-5);
  EXPECT_NEAR(checker.value_initially(*parse_formula("R=? [ C<=10 ]")),
              34.9265, 1e-3);
}

}  // namespace
}  // namespace csrl
