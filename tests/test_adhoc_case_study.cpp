// End-to-end reproduction of the paper's Section 5 case study.
#include <gtest/gtest.h>

#include <cmath>

#include "core/checker.hpp"
#include "core/engines/discretisation_engine.hpp"
#include "core/engines/erlang_engine.hpp"
#include "core/engines/sericola_engine.hpp"
#include "logic/parser.hpp"
#include "models/adhoc.hpp"
#include "mrm/transform.hpp"
#include "sim/simulator.hpp"

namespace csrl {
namespace {

/// Converged Q3 path probability of *this* implementation on the model
/// exactly as specified by Table 1 / Figure 2.  All three engines agree on
/// it to >= 6 digits; it sits 0.0016 above the paper's 0.49540399 — see
/// EXPERIMENTS.md for the analysis of that residual (the paper's own
/// rates/rewards are stated to be educated guesses, and no parameter
/// choice consistent with its Table 1 reproduces both its Table 2 and
/// Table 3 simultaneously).
constexpr double kOurQ3Reference = 0.49699672;

TEST(AdhocModel, NineRecurrentStates) {
  // "The MRM underlying the given SRN has nine recurrent states."
  const ReachabilityGraph g = build_adhoc_graph();
  EXPECT_EQ(g.model.num_states(), 9u);
}

TEST(AdhocModel, RatesMatchTable1) {
  const Mrm m = build_adhoc_mrm();
  // Initial state: both idle. Exit = doze + request + launch + ring = 19.5.
  const std::size_t init = m.initial_state();
  EXPECT_NEAR(m.chain().exit_rate(init), 19.5, 1e-12);
  EXPECT_NEAR(m.chain().max_exit_rate(), 435.0, 1e-9);  // Call_Initiated + Ad_hoc_Active
}

TEST(AdhocModel, RewardsAreAdditivePower) {
  const Mrm m = build_adhoc_mrm();
  const Labelling& l = m.labelling();
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    if (l.has_label(s, "Doze")) {
      EXPECT_DOUBLE_EQ(m.reward(s), 20.0);
    }
    if (l.has_label(s, "Call_Active") && l.has_label(s, "Ad_hoc_Active")) {
      EXPECT_DOUBLE_EQ(m.reward(s), 350.0);
    }
    if (l.has_label(s, "Call_Idle") && l.has_label(s, "Ad_hoc_Idle")) {
      EXPECT_DOUBLE_EQ(m.reward(s), 100.0);
    }
  }
}

TEST(AdhocModel, ReducedModelMatchesHandConstruction) {
  // reduce_for_until on the generated 9-state model must coincide with the
  // directly-constructed 5-state reduced MRM.
  const Mrm full = build_adhoc_mrm();
  const StateSet phi = full.labelling().states_with("Call_Idle") |
                       full.labelling().states_with("Doze");
  const StateSet psi = full.labelling().states_with("Call_Initiated");
  const UntilReduction r = reduce_for_until(full, phi, psi);
  const Mrm hand = build_q3_reduced_mrm();

  ASSERT_EQ(r.model.num_states(), hand.num_states());
  // Match states by reward (20/100/200 identify the transient states).
  for (std::size_t hs = 0; hs < 3; ++hs) {
    std::size_t rs = 5;
    for (std::size_t cand = 0; cand < 3; ++cand)
      if (r.model.reward(cand) == hand.reward(hs)) rs = cand;
    ASSERT_LT(rs, 5u) << "no reduced state with reward " << hand.reward(hs);
    EXPECT_NEAR(r.model.chain().exit_rate(rs), hand.chain().exit_rate(hs),
                1e-12);
    EXPECT_NEAR(r.model.rates().at(rs, r.success_state),
                hand.rates().at(hs, 3), 1e-12);
    EXPECT_NEAR(r.model.rates().at(rs, r.fail_state), hand.rates().at(hs, 4),
                1e-12);
  }
}

TEST(AdhocCaseStudy, Q3SericolaConvergence) {
  // Table 2's qualitative content: the estimate converges monotonically in
  // epsilon and N_eps grows; final value = our reference.
  const Mrm reduced = build_q3_reduced_mrm();
  StateSet success(5);
  success.insert(3);
  double previous_n = 0.0;
  for (double eps : {1e-2, 1e-4, 1e-6, 1e-8}) {
    const SericolaEngine engine(eps);
    const double n = static_cast<double>(engine.truncation_depth(reduced, 24.0));
    EXPECT_GT(n, previous_n);
    previous_n = n;
  }
  const SericolaEngine fine(1e-10);
  const double p = fine.joint_probability_all_starts(
      reduced, kTimeBoundHours, kRewardBoundMah, success)[1];
  EXPECT_NEAR(p, kOurQ3Reference, 1e-7);
  // Shape vs the paper: within 0.4% of its converged Table 2 value.
  EXPECT_NEAR(p, kPaperQ3Reference, 2.5e-3);
}

TEST(AdhocCaseStudy, Q3TruncationDepthMatchesPaper) {
  // Table 2 reports N_eps = 594 at eps = 1e-8 (lambda t = 19.5 * 24): an
  // implementation-independent quantity up to the truncation convention.
  const Mrm reduced = build_q3_reduced_mrm();
  const SericolaEngine engine(1e-8);
  EXPECT_NEAR(static_cast<double>(engine.truncation_depth(reduced, 24.0)),
              594.0, 5.0);
}

TEST(AdhocCaseStudy, Q3ErlangConvergesFromBelow) {
  // Table 3: increasing k approaches the Sericola value monotonically, and
  // all pseudo-Erlang estimates stay below it (the paper observes the
  // same and leaves the why as an open question).
  const Mrm reduced = build_q3_reduced_mrm();
  StateSet success(5);
  success.insert(3);
  double previous = 0.0;
  for (std::size_t k : {1u, 4u, 16u, 64u, 256u}) {
    const ErlangEngine engine(k);
    const double p = engine.joint_probability_all_starts(
        reduced, kTimeBoundHours, kRewardBoundMah, success)[1];
    EXPECT_GT(p, previous) << "k=" << k;
    EXPECT_LT(p, kOurQ3Reference) << "k=" << k;
    previous = p;
  }
  EXPECT_NEAR(previous, kOurQ3Reference, 5e-4);  // k = 256: ~3 digits
}

TEST(AdhocCaseStudy, Q3DiscretisationConverges) {
  // Table 4: the Tijms-Veldman estimate approaches the Sericola value as
  // d shrinks (relative error well below 0.1% already at d = 1/32).
  const Mrm reduced = build_q3_reduced_mrm();
  double previous_error = 1.0;
  for (double d : {1.0 / 32, 1.0 / 64, 1.0 / 128}) {
    const DiscretisationEngine engine(d);
    const double p = engine
                         .joint_distribution(reduced, kTimeBoundHours,
                                             kRewardBoundMah)
                         .per_state[3];
    const double error = std::abs(p - kOurQ3Reference) / kOurQ3Reference;
    EXPECT_LT(error, previous_error) << "d=" << d;
    EXPECT_LT(error, 1e-3) << "d=" << d;
    previous_error = error;
  }
}

TEST(AdhocCaseStudy, FullPipelineFromSrnToVerdict) {
  const Mrm m = build_adhoc_mrm();
  const Checker checker(m);
  // Q3's probability is ~0.497 < 0.5: the property P>0.5[...] is violated.
  EXPECT_FALSE(checker.holds_initially(*parse_formula(kPropertyQ3)));
  EXPECT_NEAR(checker.value_initially(*parse_formula(kQueryQ3)),
              kOurQ3Reference, 1e-6);
}

TEST(AdhocCaseStudy, AllEnginesAgreeThroughTheChecker) {
  const Mrm m = build_adhoc_mrm();
  const FormulaPtr q3 = parse_formula(kQueryQ3);

  CheckOptions sericola;
  sericola.engine = P3Engine::kSericola;
  CheckOptions erlang;
  erlang.engine = P3Engine::kErlang;
  erlang.erlang_phases = 1024;
  CheckOptions discretisation;
  discretisation.engine = P3Engine::kDiscretisation;
  discretisation.discretisation_step = 1.0 / 64;

  const double ps = Checker(m, sericola).value_initially(*q3);
  const double pe = Checker(m, erlang).value_initially(*q3);
  const double pd = Checker(m, discretisation).value_initially(*q3);
  EXPECT_NEAR(ps, pe, 2e-4);
  EXPECT_NEAR(ps, pd, 2e-4);
}

TEST(AdhocCaseStudy, Q1AndQ2AreDecidable) {
  const Mrm m = build_adhoc_mrm();
  const Checker checker(m);
  const double q1 = checker.value_initially(*parse_formula(kQueryQ1));
  const double q2 = checker.value_initially(*parse_formula(kQueryQ2));
  EXPECT_GT(q1, 0.0);
  EXPECT_LE(q1, 1.0);
  EXPECT_GT(q2, 0.0);
  EXPECT_LE(q2, 1.0);
  // Within 24h an incoming call rings with near-certainty (mean time 80
  // minutes while Call_Idle): Q2 holds comfortably.
  EXPECT_TRUE(checker.holds_initially(*parse_formula(kPropertyQ2)));
}

TEST(AdhocCaseStudy, MonteCarloBracketsTheBatchedLattice) {
  // Independent cross-validation of the batched grid (core/batch.hpp):
  // every numerical lattice value must fall inside the Monte-Carlo
  // confidence interval of a trajectory simulation of the same reduced
  // model — the simulator shares no code with the engines' recursions.
  const Mrm reduced = build_q3_reduced_mrm();
  StateSet success(5);
  success.insert(3);
  const std::vector<double> times{8.0, 16.0, 24.0};
  const std::vector<double> rewards{200.0, 400.0, 600.0};

  const SericolaEngine engine(1e-9);
  const auto grid = engine.joint_probability_all_starts_grid(reduced, times,
                                                             rewards, success);

  SimulationOptions options;
  options.seed = 7;
  options.samples = 100000;
  Simulator simulator(reduced, options);
  const std::size_t init = reduced.initial_state();
  for (std::size_t i = 0; i < times.size(); ++i) {
    for (std::size_t j = 0; j < rewards.size(); ++j) {
      const SimulationEstimate estimate =
          simulator.joint_probability(times[i], rewards[j], success);
      const double value = grid[i * rewards.size() + j][init];
      EXPECT_TRUE(estimate.consistent_with(value))
          << "t = " << times[i] << ", r = " << rewards[j] << ": batched "
          << value << " vs simulated " << estimate.probability << " +/- "
          << estimate.half_width_95;
    }
  }
}

}  // namespace
}  // namespace csrl
