#include "util/workspace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

namespace csrl {
namespace {

TEST(Workspace, AcquireResizesAndReleaseRetires) {
  Workspace ws;
  std::vector<double>& a = ws.acquire(16);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(ws.retired(), 0u);
  ws.release(a);
  EXPECT_EQ(ws.retired(), 1u);
}

TEST(Workspace, ReusesRetiredBufferWithoutReallocating) {
  Workspace ws;
  std::vector<double>& a = ws.acquire(128);
  const double* storage = a.data();
  ws.release(a);

  Workspace::LoopGuard guard(&ws);
  std::vector<double>& b = ws.acquire(128);
  EXPECT_EQ(b.data(), storage);
  EXPECT_EQ(guard.heap_allocations(), 0u);
}

TEST(Workspace, PrefersLargestRetiredBuffer) {
  Workspace ws;
  std::vector<double>& small = ws.acquire(8);
  std::vector<double>& large = ws.acquire(256);
  const double* large_storage = large.data();
  ws.release(small);
  ws.release(large);

  // A mid-sized request should come out of the big buffer, heap-free.
  Workspace::LoopGuard guard(&ws);
  std::vector<double>& mid = ws.acquire(64);
  EXPECT_EQ(mid.data(), large_storage);
  EXPECT_EQ(guard.heap_allocations(), 0u);
}

TEST(Workspace, LoopGuardCountsColdAcquisitions) {
  Workspace ws;
  Workspace::LoopGuard guard(&ws);
  std::vector<double>& a = ws.acquire(32);
  ws.release(a);
  std::vector<double>& b = ws.acquire(32);  // warm: reuses a's storage
  ws.release(b);
  std::vector<double>& c = ws.acquire(1024);  // cold again: must grow
  ws.release(c);
  EXPECT_EQ(guard.heap_allocations(), 2u);
}

TEST(Workspace, NestedGuardsEachSeeInnerAllocations) {
  Workspace ws;
  Workspace::LoopGuard outer(&ws);
  {
    std::vector<double>& a = ws.acquire(8);
    ws.release(a);
  }
  {
    Workspace::LoopGuard inner(&ws);
    std::vector<double>& b = ws.acquire(4096);
    ws.release(b);
    EXPECT_EQ(inner.heap_allocations(), 1u);
  }
  // The outer guard saw both the first acquisition and the inner growth.
  EXPECT_EQ(outer.heap_allocations(), 2u);
}

TEST(Workspace, LeaseIsNullWorkspaceTolerant) {
  Workspace::Lease lease(nullptr, 64);
  EXPECT_EQ(lease.get().size(), 64u);
  EXPECT_EQ(lease.span().size(), 64u);
  lease.get()[0] = 1.5;
  EXPECT_DOUBLE_EQ(lease.span()[0], 1.5);
}

TEST(Workspace, LeaseReleasesOnDestruction) {
  Workspace ws;
  {
    Workspace::Lease lease(&ws, 32);
    EXPECT_EQ(lease.get().size(), 32u);
    EXPECT_EQ(ws.retired(), 0u);
  }
  EXPECT_EQ(ws.retired(), 1u);
}

TEST(Workspace, NullGuardStaysZero) {
  Workspace::LoopGuard guard(nullptr);
  EXPECT_EQ(guard.heap_allocations(), 0u);
}

TEST(WorkspacePool, PrewarmSeedsIdleArenas) {
  WorkspacePool pool(3);
  EXPECT_EQ(pool.idle(), 3u);
}

TEST(WorkspacePool, CheckOutGrowsAtPeakAndCheckInReturns) {
  WorkspacePool pool;
  EXPECT_EQ(pool.idle(), 0u);
  std::unique_ptr<Workspace> a = pool.check_out();  // pool empty: fresh
  std::unique_ptr<Workspace> b = pool.check_out();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  pool.check_in(std::move(a));
  pool.check_in(std::move(b));
  EXPECT_EQ(pool.idle(), 2u);
  pool.check_in(nullptr);  // moved-from handles are ignored
  EXPECT_EQ(pool.idle(), 2u);
}

TEST(WorkspacePool, HandsBackWarmestArenaFirst) {
  WorkspacePool pool;
  std::unique_ptr<Workspace> warm = pool.check_out();
  std::vector<double>& buf = warm->acquire(64);
  warm->release(buf);
  Workspace* warm_raw = warm.get();
  pool.check_in(pool.check_out());  // a cold arena, returned first
  pool.check_in(std::move(warm));   // warm arena returned last (LIFO top)
  std::unique_ptr<Workspace> next = pool.check_out();
  EXPECT_EQ(next.get(), warm_raw);
  EXPECT_EQ(next->retired(), 1u);
}

TEST(WorkspacePool, ScopeReturnsOnExit) {
  WorkspacePool pool(1);
  {
    WorkspacePool::Scope scope(pool);
    EXPECT_EQ(pool.idle(), 0u);
    std::vector<double>& buf = scope.get().acquire(16);
    EXPECT_EQ(buf.size(), 16u);
    scope.get().release(buf);
  }
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(WorkspacePool, ConcurrentCheckOutsNeverShareAnArena) {
  WorkspacePool pool(2);
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures] {
      for (int round = 0; round < kRounds; ++round) {
        WorkspacePool::Scope scope(pool);
        // Exclusive use: a private buffer written and read back intact.
        std::vector<double>& buf = scope.get().acquire(32);
        std::fill(buf.begin(), buf.end(),
                  static_cast<double>(round));
        for (double v : buf)
          if (v != static_cast<double>(round)) failures.fetch_add(1);
        scope.get().release(buf);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Every arena came home.
  EXPECT_GE(pool.idle(), 2u);
}

}  // namespace
}  // namespace csrl
