#include "util/workspace.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace csrl {
namespace {

TEST(Workspace, AcquireResizesAndReleaseRetires) {
  Workspace ws;
  std::vector<double>& a = ws.acquire(16);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(ws.retired(), 0u);
  ws.release(a);
  EXPECT_EQ(ws.retired(), 1u);
}

TEST(Workspace, ReusesRetiredBufferWithoutReallocating) {
  Workspace ws;
  std::vector<double>& a = ws.acquire(128);
  const double* storage = a.data();
  ws.release(a);

  Workspace::LoopGuard guard(&ws);
  std::vector<double>& b = ws.acquire(128);
  EXPECT_EQ(b.data(), storage);
  EXPECT_EQ(guard.heap_allocations(), 0u);
}

TEST(Workspace, PrefersLargestRetiredBuffer) {
  Workspace ws;
  std::vector<double>& small = ws.acquire(8);
  std::vector<double>& large = ws.acquire(256);
  const double* large_storage = large.data();
  ws.release(small);
  ws.release(large);

  // A mid-sized request should come out of the big buffer, heap-free.
  Workspace::LoopGuard guard(&ws);
  std::vector<double>& mid = ws.acquire(64);
  EXPECT_EQ(mid.data(), large_storage);
  EXPECT_EQ(guard.heap_allocations(), 0u);
}

TEST(Workspace, LoopGuardCountsColdAcquisitions) {
  Workspace ws;
  Workspace::LoopGuard guard(&ws);
  std::vector<double>& a = ws.acquire(32);
  ws.release(a);
  std::vector<double>& b = ws.acquire(32);  // warm: reuses a's storage
  ws.release(b);
  std::vector<double>& c = ws.acquire(1024);  // cold again: must grow
  ws.release(c);
  EXPECT_EQ(guard.heap_allocations(), 2u);
}

TEST(Workspace, NestedGuardsEachSeeInnerAllocations) {
  Workspace ws;
  Workspace::LoopGuard outer(&ws);
  {
    std::vector<double>& a = ws.acquire(8);
    ws.release(a);
  }
  {
    Workspace::LoopGuard inner(&ws);
    std::vector<double>& b = ws.acquire(4096);
    ws.release(b);
    EXPECT_EQ(inner.heap_allocations(), 1u);
  }
  // The outer guard saw both the first acquisition and the inner growth.
  EXPECT_EQ(outer.heap_allocations(), 2u);
}

TEST(Workspace, LeaseIsNullWorkspaceTolerant) {
  Workspace::Lease lease(nullptr, 64);
  EXPECT_EQ(lease.get().size(), 64u);
  EXPECT_EQ(lease.span().size(), 64u);
  lease.get()[0] = 1.5;
  EXPECT_DOUBLE_EQ(lease.span()[0], 1.5);
}

TEST(Workspace, LeaseReleasesOnDestruction) {
  Workspace ws;
  {
    Workspace::Lease lease(&ws, 32);
    EXPECT_EQ(lease.get().size(), 32u);
    EXPECT_EQ(ws.retired(), 0u);
  }
  EXPECT_EQ(ws.retired(), 1u);
}

TEST(Workspace, NullGuardStaysZero) {
  Workspace::LoopGuard guard(nullptr);
  EXPECT_EQ(guard.heap_allocations(), 0u);
}

}  // namespace
}  // namespace csrl
