#include "matrix/csr.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace csrl {
namespace {

CsrMatrix small() {
  // [ 1 2 0 ]
  // [ 0 0 3 ]
  // [ 4 0 5 ]
  CsrBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 2, 3.0);
  b.add(2, 0, 4.0);
  b.add(2, 2, 5.0);
  return b.build();
}

TEST(CsrBuilder, BuildsSortedRows) {
  CsrBuilder b(2, 4);
  b.add(0, 3, 1.0);
  b.add(0, 1, 2.0);
  b.add(0, 2, 3.0);
  const CsrMatrix m = b.build();
  const auto row = m.row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].col, 1u);
  EXPECT_EQ(row[1].col, 2u);
  EXPECT_EQ(row[2].col, 3u);
}

TEST(CsrBuilder, DuplicatesAccumulate) {
  CsrBuilder b(1, 2);
  b.add(0, 1, 1.5);
  b.add(0, 1, 2.5);
  b.add(0, 0, 1.0);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
}

TEST(CsrBuilder, ZeroEntriesAreDropped) {
  CsrBuilder b(1, 2);
  b.add(0, 0, 0.0);
  EXPECT_EQ(b.build().nnz(), 0u);
}

TEST(CsrBuilder, OutOfRangeThrows) {
  CsrBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), ModelError);
  EXPECT_THROW(b.add(0, 2, 1.0), ModelError);
}

TEST(CsrBuilder, NonFiniteThrows) {
  CsrBuilder b(1, 1);
  EXPECT_THROW(b.add(0, 0, std::numeric_limits<double>::quiet_NaN()), ModelError);
  EXPECT_THROW(b.add(0, 0, std::numeric_limits<double>::infinity()), ModelError);
}

TEST(CsrBuilder, ReusableAfterBuild) {
  CsrBuilder b(1, 1);
  b.add(0, 0, 1.0);
  const CsrMatrix first = b.build();
  const CsrMatrix second = b.build();
  EXPECT_EQ(first.nnz(), second.nnz());
  EXPECT_DOUBLE_EQ(second.at(0, 0), 1.0);
}

TEST(CsrMatrix, AtReadsStoredAndMissing) {
  const CsrMatrix m = small();
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 5.0);
}

TEST(CsrMatrix, Multiply) {
  const CsrMatrix m = small();
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y(3, -1.0);
  m.multiply(x, y);
  EXPECT_EQ(y, (std::vector<double>{5.0, 9.0, 19.0}));
}

TEST(CsrMatrix, MultiplyLeftIsTransposedMultiply) {
  const CsrMatrix m = small();
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> left(3, 0.0);
  m.multiply_left(x, left);

  std::vector<double> viat(3, 0.0);
  m.transposed().multiply(x, viat);
  EXPECT_EQ(left, viat);
  EXPECT_EQ(left, (std::vector<double>{13.0, 2.0, 21.0}));
}

TEST(CsrMatrix, MultiplyDimensionMismatchThrows) {
  const CsrMatrix m = small();
  std::vector<double> bad(2, 0.0);
  std::vector<double> out(3, 0.0);
  EXPECT_THROW(m.multiply(bad, out), ModelError);
  EXPECT_THROW(m.multiply_left(bad, out), ModelError);
}

TEST(CsrMatrix, RowSumsAndDiagonal) {
  const CsrMatrix m = small();
  EXPECT_EQ(m.row_sums(), (std::vector<double>{3.0, 3.0, 9.0}));
  EXPECT_EQ(m.diagonal(), (std::vector<double>{1.0, 0.0, 5.0}));
}

TEST(CsrMatrix, TransposedTwiceIsIdentity) {
  const CsrMatrix m = small();
  const CsrMatrix tt = m.transposed().transposed();
  ASSERT_EQ(tt.nnz(), m.nnz());
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt.at(r, c), m.at(r, c));
}

TEST(CsrMatrix, ScaledAndMaxAbs) {
  const CsrMatrix m = small().scaled(-2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), -10.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 10.0);
  EXPECT_DOUBLE_EQ(CsrMatrix(3, 3).max_abs(), 0.0);
}

TEST(CsrMatrix, RectangularShapes) {
  CsrBuilder b(2, 5);
  b.add(1, 4, 7.0);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 5u);
  const CsrMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_DOUBLE_EQ(t.at(4, 1), 7.0);
}

TEST(CsrMatrix, EmptyMatrix) {
  const CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
}

}  // namespace
}  // namespace csrl
