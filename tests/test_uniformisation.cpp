#include "ctmc/uniformisation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matrix/vector_ops.hpp"
#include "util/error.hpp"

namespace csrl {
namespace {

/// 2-state chain 0 -> 1 at rate a, 1 -> 0 at rate b has the closed-form
/// transient probability (starting in 0):
///   P00(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}.
double p00(double a, double b, double t) {
  return b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
}

Ctmc flip_flop(double a, double b) {
  CsrBuilder m(2, 2);
  m.add(0, 1, a);
  m.add(1, 0, b);
  return Ctmc(m.build());
}

TEST(TransientDistribution, MatchesTwoStateClosedForm) {
  const double a = 2.0, b = 0.5;
  const Ctmc chain = flip_flop(a, b);
  const std::vector<double> initial{1.0, 0.0};
  for (double t : {0.1, 1.0, 3.0, 10.0}) {
    const std::vector<double> pi = transient_distribution(chain, initial, t);
    EXPECT_NEAR(pi[0], p00(a, b, t), 1e-9) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-9);
  }
}

TEST(TransientDistribution, TimeZeroReturnsInitial) {
  const Ctmc chain = flip_flop(1.0, 1.0);
  const std::vector<double> initial{0.3, 0.7};
  EXPECT_EQ(transient_distribution(chain, initial, 0.0), initial);
}

TEST(TransientDistribution, TinyLambdaTIsSafeAndNearInitial) {
  // Regression: the series accumulator must not read weights[0] blindly —
  // a (near-)degenerate Fox-Glynn window for pathologically small
  // lambda*t has left == 0 but may carry (almost) no probability beyond
  // the anchor.  A tiny horizon must neither crash nor move mass.
  const Ctmc chain = flip_flop(3.0, 0.25);
  const std::vector<double> initial{0.6, 0.4};
  for (double t : {1e-300, 1e-30, 1e-15, 1e-9}) {
    const std::vector<double> pi = transient_distribution(chain, initial, t);
    ASSERT_EQ(pi.size(), 2u) << "t=" << t;
    EXPECT_NEAR(pi[0], initial[0], 1e-8) << "t=" << t;
    EXPECT_NEAR(pi[1], initial[1], 1e-8) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-8) << "t=" << t;
  }
  // The backward form shares the accumulator; exercise it too.
  const std::vector<double> terminal{1.0, 0.0};
  const std::vector<double> u = transient_backward(chain, terminal, 1e-300);
  EXPECT_NEAR(u[0], 1.0, 1e-8);
  EXPECT_NEAR(u[1], 0.0, 1e-8);
}

TEST(TransientDistribution, PureDeathIsErlang) {
  // 3 -> 2 -> 1 -> 0 at rate mu: P{X_t = 0 | X_0 = 3} = P{Erlang(3,mu) <= t}.
  const double mu = 1.3;
  CsrBuilder b(4, 4);
  for (std::size_t i = 1; i < 4; ++i) b.add(i, i - 1, mu);
  const Ctmc chain(b.build());
  const std::vector<double> initial{0.0, 0.0, 0.0, 1.0};
  const double t = 2.0;
  const std::vector<double> pi = transient_distribution(chain, initial, t);
  const double x = mu * t;
  const double erlang3_cdf = 1.0 - std::exp(-x) * (1.0 + x + x * x / 2.0);
  EXPECT_NEAR(pi[0], erlang3_cdf, 1e-9);
}

TEST(TransientDistribution, AllAbsorbingStaysPut) {
  const Ctmc chain{CsrMatrix(3, 3)};
  const std::vector<double> initial{0.2, 0.3, 0.5};
  EXPECT_EQ(transient_distribution(chain, initial, 5.0), initial);
}

TEST(TransientDistribution, SubStochasticInitialAllowed) {
  const Ctmc chain = flip_flop(1.0, 1.0);
  const std::vector<double> initial{0.5, 0.0};
  const std::vector<double> pi = transient_distribution(chain, initial, 1.0);
  EXPECT_NEAR(pi[0] + pi[1], 0.5, 1e-9);
}

TEST(TransientDistribution, InvalidInputsThrow) {
  const Ctmc chain = flip_flop(1.0, 1.0);
  std::vector<double> initial{1.0, 0.0};
  EXPECT_THROW((void)transient_distribution(chain, initial, -1.0), ModelError);
  std::vector<double> negative{-0.1, 1.1};
  EXPECT_THROW((void)transient_distribution(chain, negative, 1.0), ModelError);
  std::vector<double> short_vec{1.0};
  EXPECT_THROW((void)transient_distribution(chain, short_vec, 1.0), ModelError);
}

TEST(TransientDistribution, CustomRateMatchesAuto) {
  const Ctmc chain = flip_flop(2.0, 1.0);
  const std::vector<double> initial{1.0, 0.0};
  TransientOptions custom;
  custom.uniformisation_rate = 10.0;  // any rate >= max exit works
  const std::vector<double> a = transient_distribution(chain, initial, 1.5);
  const std::vector<double> b = transient_distribution(chain, initial, 1.5, custom);
  EXPECT_NEAR(a[0], b[0], 1e-9);
}

TEST(TransientDistribution, RateBelowMaxExitThrows) {
  const Ctmc chain = flip_flop(2.0, 1.0);
  const std::vector<double> initial{1.0, 0.0};
  TransientOptions bad;
  bad.uniformisation_rate = 1.0;
  EXPECT_THROW((void)transient_distribution(chain, initial, 1.0, bad), ModelError);
}

TEST(TransientDistribution, SteadyStateDetectionMatchesPlainSeries) {
  // Long horizon: detection should kick in and still give the right answer.
  const double a = 2.0, b = 0.5;
  const Ctmc chain = flip_flop(a, b);
  const std::vector<double> initial{1.0, 0.0};
  TransientOptions with;
  with.steady_state_detection = true;
  TransientOptions without;
  without.steady_state_detection = false;
  const double t = 400.0;
  const std::vector<double> pi_with = transient_distribution(chain, initial, t, with);
  const std::vector<double> pi_without =
      transient_distribution(chain, initial, t, without);
  EXPECT_NEAR(pi_with[0], pi_without[0], 1e-8);
  EXPECT_NEAR(pi_with[0], b / (a + b), 1e-8);
}

TEST(TransientReach, MatchesClosedFormForAllStartStates) {
  const double a = 2.0, b = 0.5;
  const Ctmc chain = flip_flop(a, b);
  StateSet target(2);
  target.insert(0);
  const double t = 0.7;
  const std::vector<double> u = transient_reach(chain, target, t);
  EXPECT_NEAR(u[0], p00(a, b, t), 1e-9);
  // By symmetry: starting from 1, P10(t) = b/(a+b) (1 - e^{-(a+b)t}).
  const double p10 = b / (a + b) * (1.0 - std::exp(-(a + b) * t));
  EXPECT_NEAR(u[1], p10, 1e-9);
}

TEST(TransientBackward, LinearInTerminalVector) {
  const Ctmc chain = flip_flop(1.0, 2.0);
  const std::vector<double> v1{1.0, 0.0};
  const std::vector<double> v2{0.0, 1.0};
  const std::vector<double> v3{2.0, 3.0};
  const double t = 1.1;
  const auto u1 = transient_backward(chain, v1, t);
  const auto u2 = transient_backward(chain, v2, t);
  const auto u3 = transient_backward(chain, v3, t);
  for (std::size_t s = 0; s < 2; ++s)
    EXPECT_NEAR(u3[s], 2.0 * u1[s] + 3.0 * u2[s], 1e-9);
}

TEST(TransientReach, UniverseMismatchThrows) {
  const Ctmc chain = flip_flop(1.0, 1.0);
  EXPECT_THROW((void)transient_reach(chain, StateSet(3), 1.0), ModelError);
}

}  // namespace
}  // namespace csrl
