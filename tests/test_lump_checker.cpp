// CheckOptions::lump as a transparent preprocessing pass: everything a
// user can observe through the public Checker (and CheckerService)
// surface must be indistinguishable from the unlumped checker, up to FP
// noise in lifted values.  The differential workhorse is replicated_mrm
// (models/synthetic.hpp): clone copies are ordinarily lumpable and their
// CSR rows equal the base rows entry for entry, so quotient-vs-full
// agreement is tight to rounding, not engine truncation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/artifacts.hpp"
#include "core/batch.hpp"
#include "core/checker.hpp"
#include "logic/parser.hpp"
#include "models/synthetic.hpp"
#include "mrm/lumping.hpp"
#include "obs/obs.hpp"
#include "service/service.hpp"
#include "util/error.hpp"
#include "util/state_set.hpp"
#include "util/thread_pool.hpp"

namespace csrl {
namespace {

CheckOptions with_lump(CheckOptions options = {}) {
  options.lump = true;
  return options;
}

/// Largest-gap midpoint of the distinct values: a Sat threshold maximally
/// far from every per-state probability (see bench_ablation_lumping).
double widest_gap_midpoint(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  double best = values.front() / 2.0;
  double best_gap = values.front();
  for (std::size_t i = 1; i < values.size(); ++i) {
    const double gap = values[i] - values[i - 1];
    if (gap > best_gap) {
      best_gap = gap;
      best = (values[i] + values[i - 1]) / 2.0;
    }
  }
  return best;
}

void expect_close(const std::vector<double>& a, const std::vector<double>& b,
                  double tolerance, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t s = 0; s < a.size(); ++s)
    EXPECT_NEAR(a[s], b[s], tolerance) << what << " state " << s;
}

TEST(LumpChecker, DifferentialAcrossEnginesSeedsAndThreadCounts) {
  // Bounded-until (P3) values and data-driven Sat sets, lumped vs
  // unlumped, under all three engines and at 1 vs 4 threads.  The
  // time/reward bounds are multiples of 1/64 and the rewards integers,
  // so the discretisation engine applies unchanged.
  const char* kValueQuery = "P=? [ a U[0,1.5]{0,4} b ]";
  for (std::uint64_t seed : {3u, 7u, 21u, 42u}) {
    const std::size_t clones = seed % 2 == 0 ? 4 : 2;
    const Mrm model = replicated_mrm(random_mrm(seed, 40, 0.1), clones);
    for (P3Engine engine : {P3Engine::kSericola, P3Engine::kDiscretisation,
                            P3Engine::kErlang}) {
      CheckOptions options;
      options.engine = engine;
      const Checker plain(model, options);
      const std::vector<double> expected =
          plain.values(*parse_formula(kValueQuery));

      char sat_query[96];
      std::snprintf(sat_query, sizeof sat_query,
                    "P>=%.17g [ a U[0,1.5]{0,4} b ]",
                    widest_gap_midpoint(expected));
      const StateSet expected_sat = plain.sat(*parse_formula(sat_query));

      for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " engine " +
                     engine_label(options) + " threads " +
                     std::to_string(threads));
        ThreadPool::set_global_threads(threads);
        const Checker lumped(model, with_lump(options));
        expect_close(expected, lumped.values(*parse_formula(kValueQuery)),
                     1e-9, "values");
        EXPECT_TRUE(expected_sat == lumped.sat(*parse_formula(sat_query)));
      }
      ThreadPool::set_global_threads(0);
    }
  }
}

TEST(LumpChecker, UntilGridLatticeLiftsCellByCell) {
  const Mrm model = replicated_mrm(random_mrm(11, 32, 0.12), 2);
  BatchQuery query;
  query.phi = parse_formula("a");
  query.psi = parse_formula("b");
  query.times = {0.5, 1.5};
  query.rewards = {1.0, 4.0};

  const BatchResult expected = Checker(model).until_grid(query);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ThreadPool::set_global_threads(threads);
    const BatchResult lumped =
        Checker(model, with_lump()).until_grid(query);
    EXPECT_EQ(lumped.times, expected.times);
    EXPECT_EQ(lumped.rewards, expected.rewards);
    EXPECT_EQ(lumped.initial_state, expected.initial_state);
    ASSERT_EQ(lumped.per_state.size(), expected.per_state.size());
    for (std::size_t g = 0; g < expected.per_state.size(); ++g)
      expect_close(expected.per_state[g], lumped.per_state[g], 1e-9,
                   "cell " + std::to_string(g));
  }
  ThreadPool::set_global_threads(0);
}

TEST(LumpChecker, ComposesWithStateReordering) {
  const Mrm model = replicated_mrm(random_mrm(5, 30, 0.15), 2);
  const Checker plain(model);
  CheckOptions both = with_lump();
  both.reorder_states = true;
  const Checker composed(model, both);
  for (const char* query :
       {"P=? [ a U[0,1.5]{0,4} b ]", "P=? [ F[0,2] b ]", "S=? [ a ]"}) {
    expect_close(plain.values(*parse_formula(query)),
                 composed.values(*parse_formula(query)), 1e-9, query);
  }
}

TEST(LumpChecker, EnvOverrideParsesLikeTheOtherKnobs) {
  // Explicit settings win outright.
  ASSERT_EQ(setenv("CSRL_LUMP", "0", 1), 0);
  EXPECT_TRUE(resolve_lump(true));
  ASSERT_EQ(setenv("CSRL_LUMP", "1", 1), 0);
  EXPECT_FALSE(resolve_lump(false));
  // Unset options fall through to the environment.
  EXPECT_TRUE(resolve_lump(std::nullopt));
  ASSERT_EQ(setenv("CSRL_LUMP", "0", 1), 0);
  EXPECT_FALSE(resolve_lump(std::nullopt));
  // Malformed values warn on stderr and fall back to off — never throw.
  for (const char* bad : {"banana", "2", "-1", "", "1x"}) {
    ASSERT_EQ(setenv("CSRL_LUMP", bad, 1), 0);
    EXPECT_FALSE(resolve_lump(std::nullopt)) << "CSRL_LUMP=" << bad;
  }
  ASSERT_EQ(unsetenv("CSRL_LUMP"), 0);
  EXPECT_FALSE(resolve_lump(std::nullopt));
}

TEST(LumpChecker, EnvOverrideReachesTheChecker) {
  const Mrm model = independent_machines_mrm(3, 0.5, 1.0);
  CheckOptions reporting;
  reporting.report = true;
  const auto formula = parse_formula("P=? [ F[0,1] all_down ]");

  ASSERT_EQ(setenv("CSRL_LUMP", "1", 1), 0);
  const CheckResult on = Checker(model, reporting).check(*formula);
  ASSERT_TRUE(on.report.has_value());
  EXPECT_TRUE(on.report->lumping.enabled);
  EXPECT_EQ(on.report->lumping.states, 4u);
  EXPECT_NE(on.report->to_json().find("\"lumping\""), std::string::npos);

  // An explicit lump=false beats the environment.
  CheckOptions forced_off = reporting;
  forced_off.lump = false;
  const CheckResult off = Checker(model, forced_off).check(*formula);
  ASSERT_TRUE(off.report.has_value());
  EXPECT_FALSE(off.report->lumping.enabled);
  EXPECT_EQ(off.report->to_json().find("\"lumping\""), std::string::npos);

  // A malformed value falls back to off instead of throwing.
  ASSERT_EQ(setenv("CSRL_LUMP", "banana", 1), 0);
  const CheckResult fallback = Checker(model, reporting).check(*formula);
  ASSERT_TRUE(fallback.report.has_value());
  EXPECT_FALSE(fallback.report->lumping.enabled);
  ASSERT_EQ(unsetenv("CSRL_LUMP"), 0);

  EXPECT_NEAR(on.value, off.value, 1e-12);
  EXPECT_NEAR(fallback.value, off.value, 1e-12);
}

TEST(LumpChecker, ConflictingImpulsesFailConstruction) {
  // Same conflict model as test_lumping.cpp: two mutually symmetric
  // absorbing states reached with different impulses.  The error must
  // surface at Checker construction, not mid-query.
  CsrBuilder b(3, 3);
  b.add(0, 1, 1.0);
  b.add(0, 2, 1.0);
  CsrBuilder imp(3, 3);
  imp.add(0, 1, 1.0);
  imp.add(0, 2, 2.0);
  const Mrm m = Mrm(Ctmc(b.build()), {1.0, 0.0, 0.0}, Labelling(3), 0)
                    .with_impulses(imp.build());
  EXPECT_THROW(Checker(m, with_lump()), ModelError);
}

TEST(LumpChecker, SteadySetsMustBeUnionsOfBlocks) {
  const Mrm model = replicated_mrm(random_mrm(9, 24, 0.15), 2);
  const Checker plain(model);
  const Checker lumped(model, with_lump());

  // Every labelled set is block-invariant by construction, so it passes
  // through and agrees with the unlumped checker.
  const StateSet labelled = plain.sat(*parse_formula("a"));
  ASSERT_FALSE(labelled.empty());
  expect_close(plain.steady_probabilities(labelled),
               lumped.steady_probabilities(labelled), 1e-9, "steady");

  // A single clone copy splits its block: no quotient counterpart.
  StateSet split(model.num_states());
  split.insert(0);
  EXPECT_THROW((void)lumped.steady_probabilities(split), ModelError);
}

TEST(LumpChecker, SharedSatCacheScopesLumpedAndUnlumpedApart) {
  // The quotient fingerprints as its own model, so one SatCache can
  // serve a lumped and an unlumped checker of the same Mrm without
  // either reading the other's (differently-numbered) entries.
  const Mrm model = replicated_mrm(random_mrm(13, 24, 0.15), 2);
  const auto cache = std::make_shared<SatCache>();
  const Checker plain(model, {}, cache);
  const Checker lumped(model, with_lump(), cache);
  const auto formula = parse_formula("P>=0.1 [ a U[0,1.5]{0,4} b ]");
  const StateSet expected = plain.sat(*formula);
  EXPECT_TRUE(lumped.sat(*formula) == expected);
  // Re-query both ways after both have populated the cache.
  EXPECT_TRUE(plain.sat(*formula) == expected);
  EXPECT_TRUE(lumped.sat(*formula) == expected);
}

TEST(LumpChecker, ServiceSessionsShareOneQuotientArtifact) {
  // Registration builds the quotient into the shared ModelArtifacts;
  // re-registering the bit-identical model must dedup by fingerprint
  // without running the refiner again.  (The machines model: the service
  // evaluates at the initial state, which must be a point mass.)
  const Mrm model = independent_machines_mrm(4, 0.5, 1.0);
  const double expected = Checker(model).value_initially(
      *parse_formula("P=? [ F[0,2] all_down ]"));

  obs::ScopedRecording recording;
  const obs::MetricsSnapshot before = obs::snapshot_metrics();

  service::ServiceOptions options;
  options.workers = 0;  // deterministic inline draining
  options.check = with_lump();
  service::CheckerService service(options);
  const service::ModelId first = service.register_model(model);
  const service::ModelId second = service.register_model(model);
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.num_models(), 1u);

#ifndef CSRL_OBS_DISABLED
  const obs::MetricsSnapshot after = obs::snapshot_metrics();
  EXPECT_EQ(obs::metrics_delta(before, after).counter("lump/runs"), 1u);
#endif

  // Two sessions on the shared quotient agree with a private unlumped
  // checker.
  for (int session = 0; session < 2; ++session) {
    const service::QueryResult result =
        service.query(first, "P=? [ F[0,2] all_down ]");
    ASSERT_EQ(result.status, service::QueryStatus::kOk);
    EXPECT_NEAR(result.value, expected, 1e-9);
  }
}

TEST(LumpChecker, ArtifactsCarryTheComposedProjection) {
  const Mrm model = independent_machines_mrm(4, 0.5, 1.0);
  CheckOptions both = with_lump();
  both.reorder_states = true;
  const auto artifacts = ModelArtifacts::build(model, both);
  EXPECT_TRUE(artifacts->lumped());
  EXPECT_TRUE(artifacts->reordered());
  EXPECT_EQ(artifacts->internal_model().num_states(), 5u);
  EXPECT_EQ(artifacts->projection().size(), 16u);
  EXPECT_EQ(artifacts->lumping_info().original_states, 16u);
  EXPECT_EQ(artifacts->lumping_info().states, 5u);
  EXPECT_NE(artifacts->fingerprint(), artifacts->internal_fingerprint());

  // A checker over the artifact answers like a direct lumped checker.
  const Checker shared(artifacts);
  const Checker direct(model, both);
  const auto formula = parse_formula("P=? [ !all_down U[0,2]{0,3} all_up ]");
  expect_close(direct.values(*formula), shared.values(*formula), 0.0,
               "artifact values");
}

}  // namespace
}  // namespace csrl
