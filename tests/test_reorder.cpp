// CheckOptions::reorder_states: the checker computes on a
// bandwidth-reduced (reverse Cuthill-McKee) copy of the model but every
// public result speaks the original numbering.  Reordering permutes the
// summation order inside the kernels, so probabilities agree to
// near-equality (1e-9), while Sat sets and boolean verdicts — thresholded
// far from the decision boundaries here — must agree exactly.
#include "core/checker.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batch.hpp"
#include "core/options.hpp"
#include "logic/formula.hpp"
#include "models/synthetic.hpp"
#include "util/state_set.hpp"

namespace csrl {
namespace {

constexpr double kTol = 1e-9;

CheckOptions with_reordering() {
  CheckOptions options;
  options.reorder_states = true;
  return options;
}

void expect_near_vectors(const std::vector<double>& plain,
                         const std::vector<double>& reordered,
                         const char* what) {
  ASSERT_EQ(plain.size(), reordered.size()) << what;
  for (std::size_t s = 0; s < plain.size(); ++s)
    EXPECT_NEAR(plain[s], reordered[s], kTol)
        << what << " differs at original state " << s;
}

TEST(ReorderStates, ModelAccessorReturnsOriginalNumbering) {
  const Mrm model = tandem_queue_mrm(3, 3, 1.0, 2.0, 2.0);
  const Checker checker(model, with_reordering());
  EXPECT_EQ(&checker.model(), &model);
}

TEST(ReorderStates, QuantitativeValuesMatchOnTandemQueue) {
  const Mrm model = tandem_queue_mrm(4, 4, 1.5, 2.0, 2.0);
  const Checker plain(model);
  const Checker reordered(model, with_reordering());

  const FormulaPtr bounded_until = Formula::probability_query(
      PathFormula::until(Interval::upto(2.0), Interval::upto(8.0),
                         Formula::negation(Formula::atomic("blocked")),
                         Formula::atomic("full2")));
  expect_near_vectors(plain.values(*bounded_until),
                      reordered.values(*bounded_until), "P3 until values");
  EXPECT_NEAR(plain.value_initially(*bounded_until),
              reordered.value_initially(*bounded_until), kTol);

  const FormulaPtr unbounded = Formula::probability_query(
      PathFormula::eventually(Interval::unbounded(), Interval::unbounded(),
                              Formula::atomic("blocked")));
  expect_near_vectors(plain.values(*unbounded), reordered.values(*unbounded),
                      "unbounded until values");

  const FormulaPtr steady =
      Formula::steady_state_query(Formula::atomic("empty"));
  expect_near_vectors(plain.values(*steady), reordered.values(*steady),
                      "steady-state values");
}

TEST(ReorderStates, SatSetsAndVerdictsMatchExactly) {
  for (std::uint64_t seed : {3u, 11u}) {
    const Mrm model = random_mrm(seed, 48, 0.06);
    const Checker plain(model);
    const Checker reordered(model, with_reordering());

    const FormulaPtr thresholded = Formula::probability(
        Comparison::kGreaterEqual, 0.1,
        PathFormula::until(Interval::upto(1.0), Interval::upto(3.0),
                           Formula::atomic("a"), Formula::atomic("b")));
    EXPECT_EQ(plain.sat(*thresholded).members(),
              reordered.sat(*thresholded).members())
        << "Sat set differs under reordering (seed " << seed << ")";
    EXPECT_EQ(plain.holds_initially(*thresholded),
              reordered.holds_initially(*thresholded));

    const FormulaPtr atom = Formula::atomic("a");
    EXPECT_EQ(plain.sat(*atom).members(), reordered.sat(*atom).members())
        << "atomic Sat set not translated back to original numbering";
  }
}

TEST(ReorderStates, SteadyProbabilitiesMatchPerStartState) {
  const Mrm model = tandem_queue_mrm(3, 3, 1.0, 2.5, 1.5);
  const Checker plain(model);
  const Checker reordered(model, with_reordering());
  StateSet empty_states(model.num_states());
  for (std::size_t s = 0; s < model.num_states(); ++s)
    if (model.labelling().has_label(s, "empty")) empty_states.insert(s);
  expect_near_vectors(plain.steady_probabilities(empty_states),
                      reordered.steady_probabilities(empty_states),
                      "steady probabilities");
}

TEST(ReorderStates, UntilGridMatchesCellByCell) {
  const Mrm model = random_mrm(17, 40, 0.08);
  const Checker plain(model);
  const Checker reordered(model, with_reordering());

  BatchQuery query;
  query.phi = Formula::atomic("a");
  query.psi = Formula::atomic("b");
  query.times = {0.5, 1.0, 2.0};
  query.rewards = {1.0, 4.0};

  const BatchResult expect = plain.until_grid(query);
  const BatchResult got = reordered.until_grid(query);
  EXPECT_EQ(expect.initial_state, got.initial_state);
  ASSERT_EQ(expect.per_state.size(), got.per_state.size());
  for (std::size_t cell = 0; cell < expect.per_state.size(); ++cell)
    expect_near_vectors(expect.per_state[cell], got.per_state[cell],
                        "until_grid lattice cell");
}

TEST(ReorderStates, RewardValuesMatch) {
  const Mrm model = tandem_queue_mrm(3, 3, 1.0, 2.0, 2.0);
  const Checker plain(model);
  const Checker reordered(model, with_reordering());
  const FormulaPtr expected_rate =
      Formula::reward_query(RewardQuery::kInstantaneous, 1.5, nullptr);
  expect_near_vectors(plain.reward_values(*expected_rate),
                      reordered.reward_values(*expected_rate),
                      "instantaneous reward values");
}

}  // namespace
}  // namespace csrl
