#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "logic/parser.hpp"
#include "models/synthetic.hpp"

namespace csrl {
namespace {

TEST(SteadyState, BirthDeathClosedForm) {
  // M/M/1/K-style chain: pi_i ~ (lambda/mu)^i.
  const double lambda = 1.0, mu = 2.0;
  const Mrm m = birth_death_mrm(4, lambda, mu);
  const Checker c(m);
  const auto probs = c.values(*parse_formula("S=? [ empty ]"));
  const double rho = lambda / mu;
  const double z = 1.0 + rho + rho * rho + rho * rho * rho;
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_NEAR(probs[s], 1.0 / z, 1e-8) << s;  // irreducible: same everywhere
}

TEST(SteadyState, AbsorbingStateTakesAllMass) {
  CsrBuilder b(2, 2);
  b.add(0, 1, 3.0);
  Labelling l(2);
  l.add_label(1, "sink");
  const Mrm m(Ctmc(b.build()), {0.0, 0.0}, std::move(l), 0);
  const auto probs = Checker(m).values(*parse_formula("S=? [ sink ]"));
  EXPECT_NEAR(probs[0], 1.0, 1e-10);
  EXPECT_NEAR(probs[1], 1.0, 1e-10);
}

TEST(SteadyState, TwoBsccsSplitByReachability) {
  // 0 branches to absorbing 1 (rate 1) and absorbing 2 (rate 3).
  CsrBuilder b(3, 3);
  b.add(0, 1, 1.0);
  b.add(0, 2, 3.0);
  Labelling l(3);
  l.add_label(1, "left");
  l.add_label(2, "right");
  const Mrm m(Ctmc(b.build()), {0.0, 0.0, 0.0}, std::move(l), 0);
  const Checker c(m);
  const auto left = c.values(*parse_formula("S=? [ left ]"));
  EXPECT_NEAR(left[0], 0.25, 1e-9);
  EXPECT_NEAR(left[1], 1.0, 1e-9);
  EXPECT_NEAR(left[2], 0.0, 1e-9);
  const auto right = c.values(*parse_formula("S=? [ right ]"));
  EXPECT_NEAR(right[0], 0.75, 1e-9);
}

TEST(SteadyState, TransientStatesCarryNoLongRunMass) {
  CsrBuilder b(2, 2);
  b.add(0, 1, 1.0);
  Labelling l(2);
  l.add_label(0, "start");
  const Mrm m(Ctmc(b.build()), {0.0, 0.0}, std::move(l), 0);
  const auto probs = Checker(m).values(*parse_formula("S=? [ start ]"));
  EXPECT_NEAR(probs[0], 0.0, 1e-10);
}

TEST(SteadyState, BsccWithInternalStructure) {
  // 0 -> {1,2} cycle; inside the BSCC rates 1->2 (1.0) and 2->1 (4.0)
  // give stationary (0.8, 0.2).
  CsrBuilder b(3, 3);
  b.add(0, 1, 2.0);
  b.add(1, 2, 1.0);
  b.add(2, 1, 4.0);
  Labelling l(3);
  l.add_label(1, "one");
  const Mrm m(Ctmc(b.build()), {0.0, 0.0, 0.0}, std::move(l), 0);
  const auto probs = Checker(m).values(*parse_formula("S=? [ one ]"));
  EXPECT_NEAR(probs[0], 0.8, 1e-8);
  EXPECT_NEAR(probs[1], 0.8, 1e-8);
}

TEST(SteadyState, BoundedOperatorDecides) {
  const Mrm m = birth_death_mrm(3, 1.0, 1.0);
  const Checker c(m);
  // Uniform stationary distribution over 3 states: S(full) = 1/3.
  EXPECT_TRUE(c.holds_initially(*parse_formula("S>0.3 [ full ]")));
  EXPECT_FALSE(c.holds_initially(*parse_formula("S>0.35 [ full ]")));
}

TEST(SteadyState, NestedInsideBooleanFormula) {
  const Mrm m = birth_death_mrm(3, 1.0, 1.0);
  const Checker c(m);
  const StateSet sat = c.sat(*parse_formula("S>0.3 [ full ] & empty"));
  EXPECT_EQ(sat.members(), (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace csrl
